// Command clarify-lb fronts a fleet of clarifyd replicas with
// session-affinity load balancing, lifting the single-daemon scale ceiling
// while keeping the disambiguation protocol's statefulness intact: a parked
// OPTION 1/2 question is only answerable on the replica that asked it.
//
// Usage:
//
//	clarify-lb -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080 [flags]
//
// Routing (see the lb package):
//
//   - POST /v1/sessions places the session on one backend — consistent-hash
//     ring, power-of-two-choices on probed load (queue depth, then active
//     sessions) — and pins the returned session ID to it.
//   - /v1/sessions/{id}/... follows the pin, so updates, question polls, and
//     answers land on the replica holding the session; unknown IDs fall back
//     to a consistent hash of the ID.
//   - GET /v1/sessions merges the listing across admitted backends.
//   - GET /healthz and /metrics (?format=prometheus) are the balancer's own.
//
// A background prober GETs each backend's /readyz: -eject-after consecutive
// failures take a backend out of rotation, -readmit-after consecutive
// successes restore it, and a backend reporting "draining" keeps serving its
// pinned sessions but receives no new ones. Every response carries
// X-Clarify-Backend (the serving replica, whose /debug/traces holds the
// update's trace) and X-Request-Id.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/clarifynet/clarify/lb"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backendsSpec  = flag.String("backends", "", "comma-separated clarifyd replica URLs (required)")
		vnodes        = flag.Int("vnodes", lb.DefaultVirtualNodes, "hash-ring virtual nodes per backend")
		probeInterval = flag.Duration("probe-interval", lb.DefaultProbeInterval, "health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", lb.DefaultProbeTimeout, "per-probe timeout")
		ejectAfter    = flag.Int("eject-after", lb.DefaultEjectAfter, "consecutive probe failures that eject a backend")
		readmitAfter  = flag.Int("readmit-after", lb.DefaultReadmitAfter, "consecutive probe successes that re-admit a backend")
		affinityTTL   = flag.Duration("affinity-ttl", 30*time.Minute, "evict session pins idle this long (>= the replicas' -idle-ttl)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight proxied requests")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		quiet         = flag.Bool("quiet", false, "disable state-transition logging")
	)
	flag.Parse()
	if err := run(*addr, *backendsSpec, *vnodes, *probeInterval, *probeTimeout,
		*ejectAfter, *readmitAfter, *affinityTTL, *drainTimeout, *logFormat, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "clarify-lb:", err)
		os.Exit(1)
	}
}

func run(addr, backendsSpec string, vnodes int, probeInterval, probeTimeout time.Duration,
	ejectAfter, readmitAfter int, affinityTTL, drainTimeout time.Duration, logFormat string, quiet bool) error {
	var handler slog.Handler
	switch logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", logFormat)
	}
	logger := slog.New(handler)

	var backends []string
	for _, b := range strings.Split(backendsSpec, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		return fmt.Errorf("-backends is required (comma-separated clarifyd URLs)")
	}

	opts := lb.Options{
		Backends:      backends,
		VirtualNodes:  vnodes,
		ProbeInterval: probeInterval,
		ProbeTimeout:  probeTimeout,
		EjectAfter:    ejectAfter,
		ReadmitAfter:  readmitAfter,
		AffinityTTL:   affinityTTL,
	}
	if !quiet {
		opts.Logger = slog.NewLogLogger(handler, slog.LevelInfo)
	}
	balancer, err := lb.New(opts)
	if err != nil {
		return err
	}
	defer balancer.Close()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           balancer,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "backends", len(backends),
			"probe-interval", probeInterval.String(), "eject-after", ejectAfter)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", drainTimeout.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete; in-flight requests cancelled", "err", err)
	} else {
		logger.Info("drained cleanly")
	}
	return nil
}
