// Command clarify-lb fronts a fleet of clarifyd replicas with
// session-affinity load balancing, lifting the single-daemon scale ceiling
// while keeping the disambiguation protocol's statefulness intact: a parked
// OPTION 1/2 question is only answerable on the replica that asked it.
//
// Usage:
//
//	clarify-lb -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080 [flags]
//
// Routing (see the lb package):
//
//   - POST /v1/sessions places the session on one backend — consistent-hash
//     ring, power-of-two-choices on probed load (queue depth, then active
//     sessions) — and pins the returned session ID to it.
//   - /v1/sessions/{id}/... follows the pin, so updates, question polls, and
//     answers land on the replica holding the session; unknown IDs fall back
//     to a consistent hash of the ID.
//   - GET /v1/sessions merges the listing across admitted backends.
//   - GET /healthz and /metrics (?format=prometheus or openmetrics) are the
//     balancer's own.
//   - GET /debug/traces lists the balancer's per-request proxy traces;
//     GET /debug/traces/{id} reassembles the fleet-wide trace, grafting each
//     replica's spans under the forward span that propagated its context.
//
// A background prober GETs each backend's /readyz: -eject-after consecutive
// failures take a backend out of rotation, -readmit-after consecutive
// successes restore it, and a backend reporting "draining" keeps serving its
// pinned sessions but receives no new ones. Every response carries
// X-Clarify-Backend (the serving replica, whose /debug/traces holds the
// update's trace) and X-Request-Id — minted as the request's W3C trace ID
// when the client sent none, so one identifier correlates the access log,
// the metrics exemplars, and the fleet trace view.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/clarifynet/clarify/lb"
)

// lbConfig carries the parsed flags into run.
type lbConfig struct {
	addr         string
	backends     []string
	opts         lb.Options
	drainTimeout time.Duration
	logFormat    string
	quiet        bool
	accessLog    bool
}

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backendsSpec  = flag.String("backends", "", "comma-separated clarifyd replica URLs (required)")
		vnodes        = flag.Int("vnodes", lb.DefaultVirtualNodes, "hash-ring virtual nodes per backend")
		probeInterval = flag.Duration("probe-interval", lb.DefaultProbeInterval, "health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", lb.DefaultProbeTimeout, "per-probe timeout")
		ejectAfter    = flag.Int("eject-after", lb.DefaultEjectAfter, "consecutive probe failures that eject a backend")
		readmitAfter  = flag.Int("readmit-after", lb.DefaultReadmitAfter, "consecutive probe successes that re-admit a backend")
		affinityTTL   = flag.Duration("affinity-ttl", 30*time.Minute, "evict session pins idle this long (>= the replicas' -idle-ttl)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight proxied requests")
		traceBuffer   = flag.Int("trace-buffer", lb.DefaultTraceBufferSize, "per-request proxy traces retained for /debug/traces (negative disables tracing)")
		traceKeep     = flag.Int("trace-keep", lb.DefaultTraceKeepSize, "evicted error traces kept by tail retention (negative disables)")
		exemplars     = flag.Bool("exemplars", false, "attach trace-ID exemplars to OpenMetrics latency histograms")
		accessLog     = flag.Bool("access-log", false, "log one structured line per proxied request (trace ID, backend, placement, status, duration)")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		quiet         = flag.Bool("quiet", false, "disable state-transition logging")
	)
	flag.Parse()
	var backends []string
	for _, b := range strings.Split(*backendsSpec, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	cfg := lbConfig{
		addr:     *addr,
		backends: backends,
		opts: lb.Options{
			Backends:        backends,
			VirtualNodes:    *vnodes,
			ProbeInterval:   *probeInterval,
			ProbeTimeout:    *probeTimeout,
			EjectAfter:      *ejectAfter,
			ReadmitAfter:    *readmitAfter,
			AffinityTTL:     *affinityTTL,
			TraceBufferSize: *traceBuffer,
			TraceKeepSize:   *traceKeep,
			Exemplars:       *exemplars,
		},
		drainTimeout: *drainTimeout,
		logFormat:    *logFormat,
		quiet:        *quiet,
		accessLog:    *accessLog,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "clarify-lb:", err)
		os.Exit(1)
	}
}

func run(cfg lbConfig) error {
	var handler slog.Handler
	switch cfg.logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", cfg.logFormat)
	}
	logger := slog.New(handler)

	if len(cfg.backends) == 0 {
		return fmt.Errorf("-backends is required (comma-separated clarifyd URLs)")
	}
	if !cfg.quiet {
		cfg.opts.Logger = slog.NewLogLogger(handler, slog.LevelInfo)
	}
	if cfg.accessLog {
		cfg.opts.AccessLog = logger
	}
	balancer, err := lb.New(cfg.opts)
	if err != nil {
		return err
	}
	defer balancer.Close()

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           balancer,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr, "backends", len(cfg.backends),
			"probe-interval", cfg.opts.ProbeInterval.String(), "eject-after", cfg.opts.EjectAfter)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", cfg.drainTimeout.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete; in-flight requests cancelled", "err", err)
	} else {
		logger.Info("drained cleanly")
	}
	return nil
}
