// Command overlaps runs the paper's Section 3 measurement over configuration
// files: for every ACL and route-map found, it reports the overlapping rule
// pairs (conflicting, proper-subset, non-trivial) computed by the symbolic
// engine, plus corpus-level aggregates.
//
// Usage:
//
//	overlaps file1.cfg [file2.cfg ...]
//	overlaps -dir configs/
//	overlaps -witness file.cfg      # also print one witness per overlap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
)

func main() {
	var (
		dir     = flag.String("dir", "", "analyze every *.cfg file under this directory")
		witness = flag.Bool("witness", false, "print a witness input for each overlapping pair")
	)
	flag.Parse()
	paths := flag.Args()
	if *dir != "" {
		found, err := filepath.Glob(filepath.Join(*dir, "*.cfg"))
		if err != nil {
			fatal(err)
		}
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "overlaps: no configuration files given")
		flag.Usage()
		os.Exit(2)
	}
	sort.Strings(paths)
	if err := run(paths, *witness, os.Stdout); err != nil {
		fatal(err)
	}
}

// run analyzes the given configuration files and writes the report to w.
func run(paths []string, witness bool, w io.Writer) error {
	var totals struct {
		acls, aclsWithConflict, aclsOver20 int
		rms, rmsWithOverlap, rmsOver20     int
	}
	aclSpace := symbolic.NewACLSpace()
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		cfg, err := ios.Parse(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(w, "== %s\n", path)

		for _, name := range sortedACLs(cfg) {
			acl := cfg.ACLs[name]
			st := analysis.AnalyzeACL(aclSpace, acl)
			shadowed := analysis.ShadowedACEs(aclSpace, acl)
			totals.acls++
			if st.Conflicting > 0 {
				totals.aclsWithConflict++
			}
			if st.Conflicting > 20 {
				totals.aclsOver20++
			}
			fmt.Fprintf(w, "  ACL %-20s entries=%-3d overlaps=%-4d conflicting=%-4d non-trivial=%-3d shadowed=%d\n",
				name, st.Entries, st.Overlaps, st.Conflicting, st.NonTrivial, len(shadowed))
			if witness {
				for _, o := range analysis.ACLOverlaps(aclSpace, acl) {
					kind := "overlap"
					if o.Conflicting {
						kind = "conflict"
					}
					if o.ProperSubset {
						kind += "/subset"
					}
					fmt.Fprintf(w, "    entries %d×%d (%s): %s\n", o.I+1, o.J+1, kind, o.Witness)
				}
			}
		}

		if len(cfg.RouteMaps) > 0 {
			space, err := symbolic.NewRouteSpace(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			for _, name := range sortedRMs(cfg) {
				rm := cfg.RouteMaps[name]
				st, err := analysis.AnalyzeRouteMap(space, cfg, rm)
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				totals.rms++
				if st.Overlaps > 0 {
					totals.rmsWithOverlap++
				}
				if st.Overlaps > 20 {
					totals.rmsOver20++
				}
				shadowNote := ""
				if !rm.HasContinue() {
					if shadowed, err := analysis.ShadowedStanzas(space, cfg, rm); err == nil && len(shadowed) > 0 {
						shadowNote = fmt.Sprintf(" shadowed=%d", len(shadowed))
					}
				}
				fmt.Fprintf(w, "  route-map %-15s stanzas=%-3d overlaps=%-4d conflicting=%d%s\n",
					name, st.Stanzas, st.Overlaps, st.Conflicting, shadowNote)
				if witness {
					overlaps, err := analysis.RouteMapOverlaps(space, cfg, rm)
					if err != nil {
						return err
					}
					for _, o := range overlaps {
						fmt.Fprintf(w, "    stanzas %d×%d: route %s communities %v\n",
							o.I+1, o.J+1, o.Witness.Network, o.Witness.Communities)
					}
				}
			}
		}
	}
	fmt.Fprintf(w, "\nTotals: %d ACLs (%d with conflicts, %d with >20) | %d route-maps (%d with overlaps, %d with >20)\n",
		totals.acls, totals.aclsWithConflict, totals.aclsOver20,
		totals.rms, totals.rmsWithOverlap, totals.rmsOver20)
	return nil
}

func sortedACLs(cfg *ios.Config) []string {
	var out []string
	for n := range cfg.ACLs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sortedRMs(cfg *ios.Config) []string {
	var out []string
	for n := range cfg.RouteMaps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overlaps:", err)
	os.Exit(1)
}
