package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOverlapsReport(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "edge.cfg")
	if err := os.WriteFile(cfg, []byte(`ip access-list extended EDGE
 permit tcp host 1.1.1.1 any eq 80
 deny ip any any
ip prefix-list P seq 10 permit 10.0.0.0/8 le 24
route-map RM deny 10
 match ip address prefix-list P
route-map RM permit 20
 match ip address prefix-list P
 set metric 5
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{cfg}, true, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"ACL EDGE", "conflicting=1", "non-trivial=0",
		"route-map RM", "overlaps=1",
		"entries 1×2 (conflict/subset)",
		"stanzas 1×2: route",
		"Totals: 1 ACLs (1 with conflicts, 0 with >20) | 1 route-maps (1 with overlaps, 0 with >20)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestOverlapsErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/nonexistent.cfg"}, false, &out); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.cfg")
	_ = os.WriteFile(bad, []byte("frobnicate\n"), 0o644)
	if err := run([]string{bad}, false, &out); err == nil {
		t.Error("unparseable file should fail")
	}
}
