// Command clarify-load drives a running clarifyd with synthetic intent
// traffic and emits a JSON latency/throughput/SLO report on stdout.
//
// Usage:
//
//	clarify-load -addr http://127.0.0.1:8080 [-workers 4] [-duration 10s]
//	             [-rate 20] [-max-updates 100] [-acl-fraction 0.25]
//	             [-corpus cloud] [-seed 1] [-failover] [-out report.json]
//	             [-rolling url=pidfile,url=pidfile]
//	             [-tenants victim:4,noisy:mallory:8]
//
// -addr may point at a single clarifyd or at a clarify-lb fronting several;
// with -failover the run survives losing a replica mid-run (sessions are
// re-created on a survivor and the interrupted intent retried, with the
// disruption latency charged to the client-side SLO).
//
// With -rolling the run doubles as a zero-downtime rollout drill: each
// listed replica is SIGTERMed in turn (its supervisor must restart it,
// rewriting the pidfile) while workers insist on their sessions surviving
// the handoff — same session ID, same in-flight update, same parked
// question on whichever replica the session lands on.
//
// With -tenants the run is a multi-tenant mix: each entry contributes its
// own workers submitting under its X-Clarify-Tenant header. Entries with a
// noisy: prefix are noisy-neighbor aggressors: their workers count 429
// admission sheds instead of retrying them, and their outcomes are excluded
// from the run's verdict — the SLO bar belongs to the victim tenants.
//
// Exit status is 0 when the run completed and every client-side SLO window
// is quiet, 1 when any burn-rate alert is firing — or, under -rolling, when
// any session was lost, any update failed, or any replica failed to cycle —
// or, under -tenants, when any non-noisy tenant's SLO verdict is not green.
// 2 on operational errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"github.com/clarifynet/clarify/loadgen"
	"github.com/clarifynet/clarify/slo"
)

func main() {
	var cfg loadgen.Config
	flag.StringVar(&cfg.BaseURL, "addr", "http://127.0.0.1:8080", "clarifyd base URL")
	flag.IntVar(&cfg.Workers, "workers", 4, "concurrent workers (one daemon session each)")
	flag.Float64Var(&cfg.Rate, "rate", 0, "target updates/second across all workers (0 = flat out)")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "run length")
	flag.IntVar(&cfg.MaxUpdates, "max-updates", 0, "stop after this many updates (0 = until -duration)")
	flag.Float64Var(&cfg.ACLFraction, "acl-fraction", 0.25, "fraction of workers driving ACL intents")
	flag.StringVar(&cfg.Corpus, "corpus", "cloud", "base-config corpus: cloud or campus")
	flag.Int64Var(&cfg.Seed, "seed", 1, "deterministic seed for intents and answers")
	flag.DurationVar(&cfg.UpdateTimeout, "update-timeout", 60*time.Second, "per-update timeout")
	flag.BoolVar(&cfg.Failover, "failover", false, "survive replica loss behind clarify-lb: re-create the session elsewhere and retry the intent")
	rollingSpec := flag.String("rolling", "", "rolling-restart drill: comma-separated url=pidfile replicas to SIGTERM in turn; sessions must survive the handoffs")
	tenantSpec := flag.String("tenants", "", "multi-tenant mix: comma-separated [noisy:]name:workers[:rate], e.g. \"victim:4,noisy:mallory:8\"; noisy tenants count 429 sheds and are excluded from the verdict")
	sloWindows := flag.String("slo-windows", "", "client-side alert windows long:short:burn:severity,... (default package windows)")
	outPath := flag.String("out", "", "write the JSON report here instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress the summary line on stderr")
	flag.Parse()

	if *rollingSpec != "" {
		targets, err := loadgen.ParseRolling(*rollingSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-load: -rolling:", err)
			os.Exit(2)
		}
		cfg.Rolling = targets
	}

	if *tenantSpec != "" {
		mixes, err := loadgen.ParseTenants(*tenantSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-load: -tenants:", err)
			os.Exit(2)
		}
		cfg.Tenants = mixes
	}

	if *sloWindows != "" {
		ws, err := slo.ParseWindows(*sloWindows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-load: -slo-windows:", err)
			os.Exit(2)
		}
		cfg.SLO = &slo.Config{Windows: ws}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clarify-load:", err)
		os.Exit(2)
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"clarify-load: %d updates (%d failed, %d degraded) in %.1fs; %.1f ok/s; p50 %.0fms p95 %.0fms p99 %.0fms\n",
			rep.Updates, rep.Failures, rep.Degraded, rep.DurationSeconds,
			rep.Throughput, rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms)
		if rep.Questions.Count > 0 {
			fmt.Fprintf(os.Stderr,
				"clarify-load: questions/update: mean %.2f p50 %.0f p95 %.0f p99 %.0f max %.0f\n",
				rep.Questions.Mean, rep.Questions.P50, rep.Questions.P95, rep.Questions.P99, rep.Questions.Max)
		}
		if amb := rep.DaemonAmbiguity; amb != nil && amb.Rollup != nil && amb.Rollup.Total.Questions > 0 {
			fmt.Fprintf(os.Stderr,
				"clarify-load: ambiguity: %.1f bits resolved over %d questions (%.2f bits/question), %.1f bits residual\n",
				amb.Rollup.Total.ResolvedBits, amb.Rollup.Total.Questions,
				amb.Rollup.Total.BitsPerQuestion(), amb.Rollup.Total.ResidualBits)
		}
		if rep.Disruptions > 0 {
			fmt.Fprintf(os.Stderr, "clarify-load: %d replica disruptions survived by failover\n", rep.Disruptions)
		}
		if len(cfg.Rolling) > 0 {
			fmt.Fprintf(os.Stderr, "clarify-load: rolling drill: %d/%d replicas cycled, %d session(s) lost\n",
				rep.Restarts, len(cfg.Rolling), rep.LostSessions)
		}
		for _, name := range sortedTenantNames(rep.Tenants) {
			tr := rep.Tenants[name]
			kind := "tenant"
			if tr.Noisy {
				kind = "noisy tenant"
			}
			fmt.Fprintf(os.Stderr,
				"clarify-load: %s %s: %d updates (%d failed), %d sheds, p99 %.0fms, %.2f bits/question, verdict %s\n",
				kind, name, tr.Updates, tr.Failures, tr.Sheds, tr.Latency.P99Ms, tr.BitsPerQuestion, tr.Verdict)
		}
		if rep.ClientSLO.Firing() {
			fmt.Fprintln(os.Stderr, "clarify-load: client-side SLO burn-rate alert FIRING")
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-load:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "clarify-load:", err)
		os.Exit(2)
	}
	if rep.ClientSLO.Firing() {
		os.Exit(1)
	}
	// A rolling drill has its own pass bar: every replica cycled, no session
	// lost, nothing failed.
	if len(cfg.Rolling) > 0 && (rep.LostSessions > 0 || rep.Restarts != len(cfg.Rolling) || rep.Failures > 0) {
		os.Exit(1)
	}
	// A multi-tenant run fails if any victim tenant's SLO is firing; the
	// noisy tenants' verdicts are informational.
	for _, tr := range rep.Tenants {
		if !tr.Noisy && tr.Verdict != "green" {
			os.Exit(1)
		}
	}
}

// sortedTenantNames orders the per-tenant summary lines deterministically.
func sortedTenantNames(m map[string]*loadgen.TenantReport) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
