package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const beforeCfg = `ip as-path access-list D0 permit _32$
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT permit 20
route-map STABLE permit 10
`

const afterCfg = `ip as-path access-list D0 permit _32$
route-map ISP_OUT permit 10
route-map STABLE permit 10
`

func write(t *testing.T, dir, name, text string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRmdiffFindsDifference(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "before.cfg", beforeCfg)
	b := write(t, dir, "after.cfg", afterCfg)
	var out strings.Builder
	equal, err := run(a, b, "", 3, &out)
	if err != nil {
		t.Fatal(err)
	}
	if equal {
		t.Fatal("dropping the as-path deny must be visible")
	}
	text := out.String()
	for _, want := range []string{"route-map ISP_OUT:", "differential example", "ACTION: deny", "ACTION: permit", "route-map STABLE: equivalent"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRmdiffEquivalent(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.cfg", beforeCfg)
	b := write(t, dir, "b.cfg", beforeCfg)
	var out strings.Builder
	equal, err := run(a, b, "ISP_OUT", 3, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !equal || !strings.Contains(out.String(), "equivalent") {
		t.Errorf("identical configs should compare equivalent:\n%s", out.String())
	}
}

func TestRmdiffErrors(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.cfg", beforeCfg)
	var out strings.Builder
	if _, err := run(a, filepath.Join(dir, "missing.cfg"), "", 3, &out); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := run(a, a, "NOPE", 3, &out); err == nil {
		t.Error("unknown map should fail")
	}
	empty := write(t, dir, "empty.cfg", "! nothing\n")
	if _, err := run(a, empty, "", 3, &out); err == nil {
		t.Error("no shared maps should fail")
	}
}
