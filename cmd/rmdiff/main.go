// Command rmdiff compares route maps across two configurations and prints
// concrete differential examples — the standalone form of the paper's
// compareRoutePolicies step (§2.2), useful for reviewing any manual or
// tool-made change.
//
// Usage:
//
//	rmdiff before.cfg after.cfg              # compare every shared route-map
//	rmdiff -map ISP_OUT before.cfg after.cfg # one route-map
//	rmdiff -n 10 before.cfg after.cfg        # up to 10 examples per map
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/symbolic"
)

func main() {
	var (
		mapName = flag.String("map", "", "compare only this route-map")
		maxN    = flag.Int("n", 3, "maximum differential examples per route-map")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rmdiff [-map NAME] [-n N] before.cfg after.cfg")
		os.Exit(2)
	}
	equal, err := run(flag.Arg(0), flag.Arg(1), *mapName, *maxN, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmdiff:", err)
		os.Exit(1)
	}
	if !equal {
		os.Exit(1) // diff-style exit code
	}
}

// run compares the two files' route maps; equal reports observational
// equivalence of every compared map.
func run(beforePath, afterPath, mapName string, maxN int, w io.Writer) (equal bool, err error) {
	before, err := load(beforePath)
	if err != nil {
		return false, err
	}
	after, err := load(afterPath)
	if err != nil {
		return false, err
	}
	var names []string
	if mapName != "" {
		names = []string{mapName}
	} else {
		for name := range before.RouteMaps {
			if _, ok := after.RouteMaps[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		return false, fmt.Errorf("no shared route-maps to compare")
	}
	space, err := symbolic.NewRouteSpace(before, after)
	if err != nil {
		return false, err
	}
	equal = true
	for _, name := range names {
		rmA, okA := before.RouteMaps[name]
		rmB, okB := after.RouteMaps[name]
		if !okA || !okB {
			return false, fmt.Errorf("route-map %q missing from one configuration", name)
		}
		diffs, err := analysis.CompareRouteMaps(space, before, rmA, after, rmB, maxN)
		if err != nil {
			return false, err
		}
		if len(diffs) == 0 {
			fmt.Fprintf(w, "route-map %s: equivalent\n", name)
			continue
		}
		equal = false
		fmt.Fprintf(w, "route-map %s: %d differential example(s)\n", name, len(diffs))
		for i, d := range diffs {
			fmt.Fprintf(w, "\n--- example %d ---\nInput route:\n%s\n\n%s behavior:\n%s\n%s behavior:\n%s\n",
				i+1, d.Input, beforePath, verdict(d.VerdictA), afterPath, verdict(d.VerdictB))
		}
	}
	return equal, nil
}

func verdict(v policy.RouteVerdict) string {
	if !v.Permit {
		return "ACTION: deny"
	}
	return "ACTION: permit\n" + v.Output.String()
}

func load(path string) (*ios.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := ios.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
