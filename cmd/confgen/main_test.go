package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfgenWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run("cloud", dir, 7, 12, 8, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 12 ACL configs and 8 route-map configs") {
		t.Errorf("summary wrong: %s", out.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 20 {
		t.Fatalf("wrote %d files, want 20", len(files))
	}
	// Files are non-empty IOS text.
	data, err := os.ReadFile(files[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("empty corpus file: %v", err)
	}
}

func TestConfgenUnknownProfile(t *testing.T) {
	var out strings.Builder
	if err := run("martian", t.TempDir(), 1, 1, 1, &out); err == nil {
		t.Fatal("unknown profile should fail")
	}
}
