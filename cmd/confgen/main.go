// Command confgen materializes the synthetic Section 3 corpora as *.cfg
// files, one configuration per file, for use with the overlaps analyzer or
// any external tool.
//
// Usage:
//
//	confgen -profile cloud  -out corpus/ [-acls 237]  [-routemaps 800] [-seed 1]
//	confgen -profile campus -out corpus/ [-acls 11088] [-routemaps 169] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/workload"
)

func main() {
	var (
		profile = flag.String("profile", "cloud", "corpus profile: cloud or campus")
		out     = flag.String("out", "corpus", "output directory")
		seed    = flag.Int64("seed", 1, "generator seed")
		acls    = flag.Int("acls", -1, "ACL count (-1 = the paper's full size)")
		rms     = flag.Int("routemaps", -1, "route-map count (-1 = the paper's full size)")
	)
	flag.Parse()
	if err := run(*profile, *out, *seed, *acls, *rms, os.Stdout); err != nil {
		fatal(err)
	}
}

// run generates the corpus and writes one .cfg per configuration under dir.
func run(profile, dir string, seed int64, acls, rms int, w io.Writer) error {
	var corpus *workload.Corpus
	switch profile {
	case "cloud":
		corpus = workload.Cloud(seed, pick(acls, workload.CloudACLCount), pick(rms, workload.CloudRouteMapCount))
	case "campus":
		corpus = workload.Campus(seed, pick(acls, workload.CampusACLCount), pick(rms, workload.CampusRouteMapCount))
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(kind string, i int, cfg *ios.Config) error {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-%05d.cfg", corpus.Name, kind, i))
		return os.WriteFile(path, []byte(cfg.Print()), 0o644)
	}
	for i, cfg := range corpus.ACLConfigs {
		if err := write("acl", i, cfg); err != nil {
			return err
		}
	}
	for i, cfg := range corpus.RouteMapConfigs {
		if err := write("rm", i, cfg); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "confgen: wrote %d ACL configs and %d route-map configs to %s (profile %s, seed %d)\n",
		len(corpus.ACLConfigs), len(corpus.RouteMapConfigs), dir, corpus.Name, seed)
	return nil
}

func pick(v, full int) int {
	if v < 0 {
		return full
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confgen:", err)
	os.Exit(1)
}
