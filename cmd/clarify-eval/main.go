// Command clarify-eval regenerates every table and figure of the paper's
// evaluation: the Section 3 overlap measurements over the synthetic corpora,
// the Figure 4 incremental-synthesis statistics with global-policy
// validation, and the Section 4 question-complexity ablation.
//
// Usage:
//
//	clarify-eval -exp all                 # everything, scaled-down corpora
//	clarify-eval -exp campus-acl -full    # the paper's full 11,088-ACL corpus
//	clarify-eval -exp figure4
//	clarify-eval -exp questions
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/clarifynet/clarify/exper"
	"github.com/clarifynet/clarify/workload"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: cloud-acl, cloud-rm, campus-acl, campus-rm, figure4, questions, verify, all")
		seed = flag.Int64("seed", 1, "corpus seed")
		full = flag.Bool("full", false, "use the paper's full corpus sizes (slower)")
	)
	flag.Parse()

	sizes := map[string]int{
		"cloud-acl":  80,
		"cloud-rm":   120,
		"campus-acl": 400,
		"campus-rm":  169,
	}
	if *full {
		sizes["cloud-acl"] = workload.CloudACLCount
		sizes["cloud-rm"] = workload.CloudRouteMapCount
		sizes["campus-acl"] = workload.CampusACLCount
		sizes["campus-rm"] = workload.CampusRouteMapCount
	}

	run := func(name string) {
		switch name {
		case "cloud-acl":
			fmt.Printf("(corpus: %d ACLs, seed %d)\n", sizes[name], *seed)
			exper.WriteCloudACLTable(os.Stdout, exper.CloudACLExperiment(*seed, sizes[name]))
		case "cloud-rm":
			fmt.Printf("(corpus: %d route-maps, seed %d)\n", sizes[name], *seed)
			agg, err := exper.CloudRouteMapExperiment(*seed, sizes[name])
			if err != nil {
				fatal(err)
			}
			exper.WriteCloudRMTable(os.Stdout, agg)
		case "campus-acl":
			fmt.Printf("(corpus: %d ACLs, seed %d)\n", sizes[name], *seed)
			exper.WriteCampusACLTable(os.Stdout, exper.CampusACLExperiment(*seed, sizes[name]))
		case "campus-rm":
			fmt.Printf("(corpus: %d route-maps, seed %d)\n", sizes[name], *seed)
			agg, err := exper.CampusRouteMapExperiment(*seed, sizes[name])
			if err != nil {
				fatal(err)
			}
			exper.WriteCampusRMTable(os.Stdout, agg)
		case "figure4":
			if err := exper.Figure4(context.Background(), os.Stdout); err != nil {
				fatal(err)
			}
		case "verify":
			rows, err := exper.VerifyAblation(context.Background())
			if err != nil {
				fatal(err)
			}
			exper.WriteVerifyAblation(os.Stdout, rows)
		case "questions":
			binary, linear, err := exper.QuestionComplexity([]int{1, 2, 3, 7, 15, 31, 63, 127})
			if err != nil {
				fatal(err)
			}
			exper.WriteQuestionTable(os.Stdout, binary, linear)
		default:
			fmt.Fprintf(os.Stderr, "clarify-eval: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"cloud-acl", "cloud-rm", "campus-acl", "campus-rm", "figure4", "questions", "verify"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clarify-eval:", err)
	os.Exit(1)
}
