// Command clarifyd serves the Clarify pipeline (Figure 1 of the paper) as a
// concurrent JSON HTTP API: many sessions, each owning one configuration,
// with intent submissions scheduled on a bounded worker pool and
// disambiguation questions answered asynchronously over HTTP.
//
// Usage:
//
//	clarifyd [-addr :8080] [-workers 8] [-queue 32] [-llm sim|http] [flags]
//
// Endpoints (see the server package for the wire types):
//
//	POST   /v1/sessions                     create a session from a config
//	GET    /v1/sessions                     list sessions
//	GET    /v1/sessions/{id}                session info
//	DELETE /v1/sessions/{id}                delete a session
//	POST   /v1/sessions/{id}/updates        submit an intent (?async=1 to poll)
//	GET    /v1/sessions/{id}/updates/{uid}  poll an update
//	GET    /v1/sessions/{id}/question       pending disambiguation question
//	POST   /v1/sessions/{id}/answer         answer it (OPTION 1 or 2)
//	GET    /v1/sessions/{id}/config         current configuration text
//	GET    /v1/sessions/{id}/stats          per-session pipeline counters
//	GET    /healthz                         liveness (503 while draining)
//	GET    /metrics                         JSON metrics (?format=prometheus
//	                                        for text exposition)
//	GET    /debug/traces                    recent pipeline traces
//	GET    /debug/traces/{id}               one trace's full span tree
//	GET    /debug/pprof/...                 Go profiler (with -pprof)
//
// Logs are structured (log/slog), text by default; -log-format json switches
// to JSON lines for machine ingestion.
//
// With -llm sim (the default) every session uses the deterministic simulated
// LLM; with -llm http, sessions share an OpenAI-compatible endpoint
// configured by -base-url/-model and $CLARIFY_API_KEY, with retry/backoff
// handled by llm.HTTPClient.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		workers         = flag.Int("workers", 8, "pipeline worker count")
		queue           = flag.Int("queue", 0, "submission queue bound (default 2×workers)")
		maxSessions     = flag.Int("max-sessions", 1024, "live session cap")
		idleTTL         = flag.Duration("idle-ttl", 30*time.Minute, "evict sessions idle this long")
		questionTimeout = flag.Duration("question-timeout", time.Minute, "abort updates whose question goes unanswered this long")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight updates")
		llmKind         = flag.String("llm", "sim", "LLM backend: sim or http")
		baseURL         = flag.String("base-url", "https://api.openai.com/v1", "OpenAI-compatible API root (http backend)")
		model           = flag.String("model", "gpt-4", "model identifier (http backend)")
		retries         = flag.Int("llm-retries", 3, "HTTP LLM retry budget for 429/5xx (http backend)")
		traceBuf        = flag.Int("trace-buffer", server.DefaultTraceBufferSize, "recent traces retained for /debug/traces")
		logFormat       = flag.String("log-format", "text", "log output format: text or json")
		pprofOn         = flag.Bool("pprof", false, "expose the Go profiler at /debug/pprof/")
		quiet           = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *maxSessions, *idleTTL, *questionTimeout,
		*drainTimeout, *llmKind, *baseURL, *model, *retries, *traceBuf, *logFormat, *pprofOn, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "clarifyd:", err)
		os.Exit(1)
	}
}

// newLogger builds the process-wide structured logger.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func run(addr string, workers, queue, maxSessions int, idleTTL, questionTimeout,
	drainTimeout time.Duration, llmKind, baseURL, model string, retries, traceBuf int,
	logFormat string, pprofOn, quiet bool) error {
	logger, err := newLogger(logFormat)
	if err != nil {
		return err
	}

	var newClient func() llm.Client
	switch llmKind {
	case "sim":
		newClient = func() llm.Client { return llm.NewSimLLM() }
	case "http":
		// One shared client: it is stateless and safe for concurrent use,
		// and its retry/backoff absorbs transient endpoint failures.
		shared := &llm.HTTPClient{
			BaseURL:    baseURL,
			Model:      model,
			APIKey:     os.Getenv("CLARIFY_API_KEY"),
			MaxRetries: retries,
		}
		newClient = func() llm.Client { return shared }
	default:
		return fmt.Errorf("unknown -llm backend %q", llmKind)
	}

	opts := server.Options{
		Workers:         workers,
		QueueSize:       queue,
		MaxSessions:     maxSessions,
		IdleTTL:         idleTTL,
		QuestionTimeout: questionTimeout,
		NewClient:       newClient,
		TraceBufferSize: traceBuf,
	}
	if !quiet {
		// The server's per-request log line flows through the structured
		// logger at info level.
		opts.Logger = slog.NewLogLogger(logger.Handler(), slog.LevelInfo)
	}
	srv := server.New(opts)

	handler := http.Handler(srv)
	if pprofOn {
		// Mount the profiler next to the API. The API mux never registers
		// /debug/pprof/, so the wrapper only diverts profiler traffic.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "workers", workers, "llm", llmKind, "pprof", pprofOn)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting HTTP first so no new submissions arrive, then drain
	// the worker pool; Shutdown force-cancels parked questions once the
	// budget expires.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete; in-flight updates cancelled", "err", err)
	} else {
		logger.Info("drained cleanly")
	}
	return nil
}
