// Command clarifyd serves the Clarify pipeline (Figure 1 of the paper) as a
// concurrent JSON HTTP API: many sessions, each owning one configuration,
// with intent submissions scheduled on a bounded worker pool and
// disambiguation questions answered asynchronously over HTTP.
//
// Usage:
//
//	clarifyd [-addr :8080] [-workers 8] [-queue 32] [-llm sim|http] [flags]
//
// Endpoints (see the server package for the wire types):
//
//	POST   /v1/sessions                     create a session from a config
//	GET    /v1/sessions                     list sessions
//	GET    /v1/sessions/{id}                session info
//	DELETE /v1/sessions/{id}                delete a session
//	POST   /v1/sessions/{id}/updates        submit an intent (?async=1 to poll)
//	GET    /v1/sessions/{id}/updates/{uid}  poll an update
//	GET    /v1/sessions/{id}/question       pending disambiguation question
//	POST   /v1/sessions/{id}/answer         answer it (OPTION 1 or 2)
//	GET    /v1/sessions/{id}/config         current configuration text
//	GET    /v1/sessions/{id}/stats          per-session pipeline counters
//	GET    /healthz                         liveness (503 only while draining;
//	                                        200 "degraded" on the fallback LLM)
//	GET    /readyz                          readiness (503 while draining or
//	                                        when no LLM backend can serve)
//	GET    /metrics                         JSON metrics (?format=prometheus
//	                                        or ?format=openmetrics, the latter
//	                                        with trace exemplars under -exemplars)
//	GET    /debug/traces                    recent pipeline traces (?kept=1 for
//	                                        the tail-retention ring)
//	GET    /debug/traces/{id}               one trace's full span tree
//	GET    /debug/incidents                 profile-on-fire capture index
//	GET    /debug/pprof/...                 Go profiler (with -pprof)
//
// Logs are structured (log/slog), text by default; -log-format json switches
// to JSON lines for machine ingestion.
//
// With -llm sim (the default) every session uses the deterministic simulated
// LLM; with -llm http, sessions share an OpenAI-compatible endpoint
// configured by -base-url/-model and $CLARIFY_API_KEY. The http backend runs
// behind the resilience layer: retry/backoff (llm.HTTPClient), a circuit
// breaker (-breaker-* flags), and — with -fallback-sim — a degraded-mode
// fallback onto the simulated LLM, so a down endpoint stops hurting updates
// instead of failing them. -chaos injects deterministic transport faults
// (see chaoshttp.ParsePlan) for resilience drills against a live daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/clarifynet/clarify/chaoshttp"
	"github.com/clarifynet/clarify/incident"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/snapshot"
	"github.com/clarifynet/clarify/tenant"
)

// daemonConfig collects every flag so run() stays testable and the flag list
// can grow without threading another positional parameter through.
type daemonConfig struct {
	addr            string
	workers         int
	queue           int
	maxSessions     int
	idleTTL         time.Duration
	questionTimeout time.Duration
	updateTimeout   time.Duration
	drainTimeout    time.Duration

	llmKind     string
	baseURL     string
	model       string
	retries     int
	fallbackSim bool
	chaosSpec   string

	breakerFailureRate float64
	breakerMinRequests int
	breakerWindow      time.Duration
	breakerCooldown    time.Duration

	traceBuf  int
	traceKeep int
	exemplars bool
	logFormat string
	pprofOn   bool
	quiet     bool

	incidentDir      string
	incidentCooldown time.Duration
	incidentCPU      time.Duration

	journalDir      string
	journalMaxBytes int64
	journalSegments int
	journalFsync    string

	sloObjectives string
	sloWindows    string
	latencyBucket string

	snapshotDir string
	handoffPeer string
	pidFile     string

	tenantSpec    string
	tenantDefault string
	shedTarget    time.Duration
	shedInterval  time.Duration
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 8, "pipeline worker count")
	flag.IntVar(&cfg.queue, "queue", 0, "submission queue bound (default 2×workers)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 1024, "live session cap")
	flag.DurationVar(&cfg.idleTTL, "idle-ttl", 30*time.Minute, "evict sessions idle this long")
	flag.DurationVar(&cfg.questionTimeout, "question-timeout", time.Minute, "abort updates whose question goes unanswered this long")
	flag.DurationVar(&cfg.updateTimeout, "update-timeout", server.DefaultUpdateTimeout, "per-update wall-clock budget once a worker picks it up (negative disables)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight updates")
	flag.StringVar(&cfg.llmKind, "llm", "sim", "LLM backend: sim or http")
	flag.StringVar(&cfg.baseURL, "base-url", "https://api.openai.com/v1", "OpenAI-compatible API root (http backend)")
	flag.StringVar(&cfg.model, "model", "gpt-4", "model identifier (http backend)")
	flag.IntVar(&cfg.retries, "llm-retries", 3, "HTTP LLM retry budget for 429/5xx (http backend)")
	flag.BoolVar(&cfg.fallbackSim, "fallback-sim", false, "serve completions from the simulated LLM when the http backend fails (degraded mode)")
	flag.StringVar(&cfg.chaosSpec, "chaos", "", "inject transport faults into the http backend, e.g. \"seed=42,reset=0.2,429=0.1\" or \"down\"")
	flag.Float64Var(&cfg.breakerFailureRate, "breaker-failure-rate", 0.5, "rolling-window failure fraction that opens the circuit breaker (http backend)")
	flag.IntVar(&cfg.breakerMinRequests, "breaker-min-requests", 5, "minimum window sample size before the breaker evaluates the rate")
	flag.DurationVar(&cfg.breakerWindow, "breaker-window", 30*time.Second, "rolling failure-rate window")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", 10*time.Second, "how long an open breaker rejects calls before probing")
	flag.IntVar(&cfg.traceBuf, "trace-buffer", server.DefaultTraceBufferSize, "recent traces retained for /debug/traces")
	flag.IntVar(&cfg.traceKeep, "trace-keep", server.DefaultTraceKeepSize, "evicted error/degraded/slow traces kept by tail retention (negative disables)")
	flag.BoolVar(&cfg.exemplars, "exemplars", false, "attach trace-ID exemplars to OpenMetrics histograms (/metrics?format=openmetrics)")
	flag.StringVar(&cfg.incidentDir, "incident-dir", "", "profile-on-fire directory: when an SLO alert starts firing, capture CPU+heap profiles and recent traces here")
	flag.DurationVar(&cfg.incidentCooldown, "incident-cooldown", 0, "minimum spacing between incident captures (default 10m)")
	flag.DurationVar(&cfg.incidentCPU, "incident-cpu-duration", 0, "CPU profile length inside an incident capture (default 2s)")
	flag.StringVar(&cfg.journalDir, "journal", "", "flight-recorder directory: append one durable record per update (replayable with clarify-replay)")
	flag.Int64Var(&cfg.journalMaxBytes, "journal-max-bytes", 0, "rotate journal segments over this size (default 8 MiB)")
	flag.IntVar(&cfg.journalSegments, "journal-segments", 0, "prune journal segments beyond this count (0 keeps all)")
	flag.StringVar(&cfg.journalFsync, "journal-fsync", "interval", "journal durability policy: never, interval, or always")
	flag.StringVar(&cfg.tenantSpec, "tenants", "", "tenant profiles \"name:weight:rate:burst:concurrent,...\", e.g. \"teamA:4,mallory:1:2:4:2\" (unset fields inherit -tenant-default)")
	flag.StringVar(&cfg.tenantDefault, "tenant-default", "", "default tenant profile \"weight:rate:burst:concurrent\" for tenants without an explicit entry")
	flag.DurationVar(&cfg.shedTarget, "shed-target", 0, "acceptable bulk queue sojourn before adaptive shedding arms (default 200ms; negative disables)")
	flag.DurationVar(&cfg.shedInterval, "shed-interval", 0, "how long sojourn must stay above -shed-target before shedding trips (default 2s)")
	flag.StringVar(&cfg.sloObjectives, "slo-objectives", "", "SLO spec \"name:goal[:latency-ms],...\", e.g. \"availability:0.999,latency:0.99:500\" (default built-ins)")
	flag.StringVar(&cfg.sloWindows, "slo-windows", "", "burn-rate alert windows \"long:short:burn:severity,...\", e.g. \"1h:5m:14.4:page\" (default built-ins)")
	flag.StringVar(&cfg.latencyBucket, "latency-buckets-ms", "", "comma-separated ascending histogram bounds in ms (default built-in table)")
	flag.StringVar(&cfg.snapshotDir, "snapshot-dir", "", "session snapshot directory: rehydrate sessions from it at startup, write surviving sessions to it on SIGTERM")
	flag.StringVar(&cfg.handoffPeer, "handoff-peer", "", "hand sessions off to this base URL on SIGTERM (a peer replica or a clarify-lb front) before falling back to -snapshot-dir")
	flag.StringVar(&cfg.pidFile, "pidfile", "", "write the daemon pid here on startup (rolling-restart supervisors read it)")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	flag.BoolVar(&cfg.pprofOn, "pprof", false, "expose the Go profiler at /debug/pprof/")
	flag.BoolVar(&cfg.quiet, "quiet", false, "disable request logging")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "clarifyd:", err)
		os.Exit(1)
	}
}

// newLogger builds the process-wide structured logger.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// buildLLM assembles the LLM backend path: the session client factory and,
// for the http backend, the resilience stack the server reports on.
func buildLLM(cfg daemonConfig, logger *slog.Logger) (func() llm.Client, *resilience.Stack, error) {
	switch cfg.llmKind {
	case "sim":
		if cfg.chaosSpec != "" || cfg.fallbackSim {
			return nil, nil, fmt.Errorf("-chaos and -fallback-sim require -llm http")
		}
		return func() llm.Client { return llm.NewSimLLM() }, nil, nil
	case "http":
		var transport http.RoundTripper
		if cfg.chaosSpec != "" {
			plan, err := chaoshttp.ParsePlan(cfg.chaosSpec)
			if err != nil {
				return nil, nil, fmt.Errorf("-chaos: %w", err)
			}
			logger.Warn("chaos transport active", "plan", cfg.chaosSpec, "fault-budget", plan.FaultBudget())
			transport = chaoshttp.New(plan, nil)
		}
		// One shared client: it is stateless and safe for concurrent use,
		// and its retry/backoff absorbs transient endpoint failures.
		primary := &llm.HTTPClient{
			BaseURL:    cfg.baseURL,
			Model:      cfg.model,
			APIKey:     os.Getenv("CLARIFY_API_KEY"),
			MaxRetries: cfg.retries,
		}
		if transport != nil {
			primary.HTTP = &http.Client{Transport: transport, Timeout: 60 * time.Second}
		}
		var fallback llm.Client
		if cfg.fallbackSim {
			fallback = llm.NewSimLLM()
		}
		stack := resilience.NewStack(primary, "http", resilience.BreakerConfig{
			FailureRate: cfg.breakerFailureRate,
			MinRequests: cfg.breakerMinRequests,
			Window:      cfg.breakerWindow,
			Cooldown:    cfg.breakerCooldown,
			OnStateChange: func(from, to resilience.State) {
				logger.Warn("llm circuit breaker transition", "from", from.String(), "to", to.String())
			},
		}, fallback, "sim")
		return func() llm.Client { return stack.Client() }, stack, nil
	default:
		return nil, nil, fmt.Errorf("unknown -llm backend %q", cfg.llmKind)
	}
}

// parseObjectives turns the -slo-objectives spec ("name:goal[:latency-ms]")
// into objective records; empty input selects the package defaults.
func parseObjectives(spec string) ([]slo.Objective, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []slo.Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("objective %q: want name:goal or name:goal:latency-ms", part)
		}
		goal, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("objective %q: goal: %w", part, err)
		}
		o := slo.Objective{Name: fields[0], Goal: goal}
		if len(fields) == 3 {
			thr, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("objective %q: latency threshold: %w", part, err)
			}
			o.LatencyThresholdMs = thr
		}
		out = append(out, o)
	}
	return out, nil
}

// parseBuckets turns "1,5,25,100" into histogram bounds.
func parseBuckets(spec string) ([]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bucket %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(cfg daemonConfig) error {
	logger, err := newLogger(cfg.logFormat)
	if err != nil {
		return err
	}
	newClient, stack, err := buildLLM(cfg, logger)
	if err != nil {
		return err
	}

	var jnl *journal.Journal
	if cfg.journalDir != "" {
		jnl, err = journal.Open(journal.Options{
			Dir:             cfg.journalDir,
			MaxSegmentBytes: cfg.journalMaxBytes,
			MaxSegments:     cfg.journalSegments,
			Fsync:           journal.FsyncPolicy(cfg.journalFsync),
		})
		if err != nil {
			return err
		}
		defer jnl.Close()
		logger.Info("flight recorder active", "dir", cfg.journalDir, "fsync", cfg.journalFsync)
	}

	objectives, err := parseObjectives(cfg.sloObjectives)
	if err != nil {
		return fmt.Errorf("-slo-objectives: %w", err)
	}
	var windows []slo.Window
	if cfg.sloWindows != "" {
		windows, err = slo.ParseWindows(cfg.sloWindows)
		if err != nil {
			return fmt.Errorf("-slo-windows: %w", err)
		}
	}
	slos, err := slo.New(slo.Config{Objectives: objectives, Windows: windows})
	if err != nil {
		return err
	}
	buckets, err := parseBuckets(cfg.latencyBucket)
	if err != nil {
		return fmt.Errorf("-latency-buckets-ms: %w", err)
	}

	opts := server.Options{
		Workers:          cfg.workers,
		QueueSize:        cfg.queue,
		MaxSessions:      cfg.maxSessions,
		IdleTTL:          cfg.idleTTL,
		QuestionTimeout:  cfg.questionTimeout,
		UpdateTimeout:    cfg.updateTimeout,
		NewClient:        newClient,
		Resilience:       stack,
		TraceBufferSize:  cfg.traceBuf,
		TraceKeepSize:    cfg.traceKeep,
		Exemplars:        cfg.exemplars,
		Journal:          jnl,
		SLO:              slos,
		LatencyBucketsMs: buckets,
		Shed:             tenant.ShedConfig{Target: cfg.shedTarget, Interval: cfg.shedInterval},
	}
	if cfg.tenantSpec != "" || cfg.tenantDefault != "" {
		def := tenant.Profile{}
		if cfg.tenantDefault != "" {
			var err error
			if def, err = tenant.ParseProfile(cfg.tenantDefault); err != nil {
				return fmt.Errorf("-tenant-default: %w", err)
			}
		}
		var profiles []tenant.Profile
		if cfg.tenantSpec != "" {
			var err error
			if profiles, err = tenant.ParseProfiles(cfg.tenantSpec, def); err != nil {
				return fmt.Errorf("-tenants: %w", err)
			}
		}
		opts.Tenants = tenant.NewRegistry(tenant.RegistryConfig{Default: def, Profiles: profiles})
	}
	if cfg.incidentDir != "" {
		opts.Incidents = incident.NewRecorder(incident.Options{
			Dir:         cfg.incidentDir,
			Cooldown:    cfg.incidentCooldown,
			CPUDuration: cfg.incidentCPU,
		})
		logger.Info("profile-on-fire active", "dir", cfg.incidentDir)
	}
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("-latency-buckets-ms: %w", err)
	}
	if !cfg.quiet {
		// The server's per-request log line flows through the structured
		// logger at info level.
		opts.Logger = slog.NewLogLogger(logger.Handler(), slog.LevelInfo)
	}
	srv := server.New(opts)

	handler := http.Handler(srv)
	if cfg.pprofOn {
		// Mount the profiler next to the API. The API mux never registers
		// /debug/pprof/, so the wrapper only diverts profiler traffic.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}

	node, _ := os.Hostname()
	if node == "" {
		node = "clarifyd"
	}
	node += cfg.addr

	if cfg.pidFile != "" {
		if err := os.WriteFile(cfg.pidFile, []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
			return fmt.Errorf("-pidfile: %w", err)
		}
		defer os.Remove(cfg.pidFile)
	}

	// Rehydrate before the listener opens: sessions a previous process left
	// in the snapshot directory come back under their original IDs, parked
	// questions re-parking as their updates re-execute.
	if cfg.snapshotDir != "" {
		restoreFromDir(srv, cfg.snapshotDir, logger)
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr, "workers", cfg.workers,
			"llm", cfg.llmKind, "fallback-sim", cfg.fallbackSim, "pprof", cfg.pprofOn)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", cfg.drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()

	if cfg.snapshotDir != "" || cfg.handoffPeer != "" {
		// Handoff mode: quiesce running updates to parked questions, capture
		// every session, and ship the captures to a peer (or disk). Local
		// copies of the parked updates are then force-cancelled quickly — the
		// handed-off copies are the live ones now.
		handoffSessions(ctx, srv, cfg, node, logger)
		// Close the listener BEFORE force-cancelling the local copies: a
		// client poll must never observe a handed-off update flipping to
		// "failed" here — the copy on the peer is the live one.
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		defer scancel()
		if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("http shutdown", "err", err)
		}
		srv.Shutdown(sctx)
		return nil
	}

	// Drain the pipeline BEFORE closing the listener: srv.Shutdown flips
	// /readyz to 503 "draining" (a fronting clarify-lb sees it and stops
	// placing new sessions here) while the listener stays up so parked
	// disambiguation questions can still be answered over HTTP. Only once
	// in-flight updates finish — or the budget force-cancels them — does the
	// listener close.
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete; in-flight updates cancelled", "err", err)
	} else {
		logger.Info("drained cleanly")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	return nil
}

// restoreFromDir rehydrates every readable snapshot file in dir, consuming
// files whose sessions were all offered to the server. Files from a newer
// schema (or plain garbage) are left on disk for a newer build.
func restoreFromDir(srv *server.Server, dir string, logger *slog.Logger) {
	loads, err := snapshot.Load(dir)
	if err != nil {
		logger.Error("snapshot restore: read dir", "dir", dir, "err", err)
		return
	}
	for _, l := range loads {
		if l.Err != nil {
			logger.Warn("snapshot file unreadable; leaving on disk", "path", l.Path, "err", l.Err)
			continue
		}
		restored := 0
		for _, sn := range l.File.Sessions {
			if err := srv.RestoreSession(sn); err != nil {
				logger.Warn("session restore rejected", "session", sn.ID, "err", err)
				continue
			}
			restored++
		}
		logger.Info("snapshot restored", "path", l.Path,
			"sessions", restored, "of", len(l.File.Sessions), "from", l.File.Node)
		if err := snapshot.Consume(l.Path); err != nil {
			logger.Warn("snapshot consume", "path", l.Path, "err", err)
		}
	}
}

// handoffSessions drains to quiescence, captures every session, and hands
// the captures to -handoff-peer (per-session retries; a 409 means the peer
// already holds it). Captures the peer would not take — or all of them,
// with no peer — are written to -snapshot-dir for the next process.
func handoffSessions(ctx context.Context, srv *server.Server, cfg daemonConfig, node string, logger *slog.Logger) {
	if err := srv.DrainForHandoff(ctx); err != nil {
		logger.Warn("handoff drain incomplete; snapshotting anyway", "err", err)
	}
	snaps := srv.SnapshotSessions(node)
	if len(snaps) == 0 {
		logger.Info("handoff: no sessions to move")
		return
	}
	leftover := snaps
	if cfg.handoffPeer != "" {
		c := &server.Client{BaseURL: cfg.handoffPeer}
		leftover = leftover[:0]
		for _, sn := range snaps {
			if err := putRestoreWithRetry(ctx, c, sn); err != nil {
				logger.Warn("handoff rejected; keeping for snapshot file", "session", sn.ID, "err", err)
				leftover = append(leftover, sn)
				continue
			}
			logger.Info("session handed off", "session", sn.ID, "peer", cfg.handoffPeer)
		}
	}
	if len(leftover) == 0 {
		return
	}
	if cfg.snapshotDir == "" {
		logger.Error("sessions LOST: handoff failed and no -snapshot-dir", "count", len(leftover))
		return
	}
	path, err := snapshot.Write(cfg.snapshotDir, &snapshot.File{
		Time:     time.Now(),
		Node:     node,
		Sessions: leftover,
	})
	if err != nil {
		logger.Error("sessions LOST: snapshot write failed", "count", len(leftover), "err", err)
		return
	}
	logger.Info("sessions snapshotted", "path", path, "count", len(leftover))
}

// putRestoreWithRetry PUTs one session snapshot, riding out the window where
// the peer (often a clarify-lb) has not yet noticed this replica draining.
func putRestoreWithRetry(ctx context.Context, c *server.Client, sn *snapshot.Session) error {
	backoff := 250 * time.Millisecond
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		var apiErr *server.APIError
		if _, err = c.RestoreSession(ctx, sn); err == nil {
			return nil
		} else if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict {
			return nil // the peer already holds this session
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
	return err
}
