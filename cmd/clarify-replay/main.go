// Command clarify-replay re-executes a flight-recorder journal offline and
// reports whether the pipeline still reproduces every recorded update —
// byte-identical final configurations, identical span-tree stage shapes,
// identical terminal errors. Use it for postmortems ("what exactly happened
// in update X?") and regression bisection ("which commit changed what the
// pipeline does with last Tuesday's traffic?").
//
// Usage:
//
//	clarify-replay -journal DIR [-out report.json] [-quiet]
//
// The report is JSON: a summary plus one verdict per record. Exit status is
// 0 when every replayed record matches, 1 on any mismatch or bad record,
// 2 on operational errors. Crash-truncated journal tails are skipped,
// counted, and reported in the summary's read stats — never fatal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/clarifynet/clarify/replay"
	"github.com/clarifynet/clarify/symbolic"
)

func main() {
	dir := flag.String("journal", "", "journal directory to replay (required)")
	outPath := flag.String("out", "", "write the JSON report here instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress the per-record progress lines on stderr")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "clarify-replay: -journal is required")
		os.Exit(2)
	}

	sum, err := replay.Dir(context.Background(), *dir, replay.Options{
		SpaceCache: symbolic.NewSpaceCache(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clarify-replay:", err)
		os.Exit(2)
	}
	if !*quiet {
		for _, o := range sum.Outcomes {
			line := fmt.Sprintf("record %d [%s] %s", o.Index, o.Target, o.Status)
			if o.Detail != "" {
				line += ": " + o.Detail
			}
			fmt.Fprintln(os.Stderr, line)
		}
		fmt.Fprintf(os.Stderr, "replayed %d: %d match, %d mismatch, %d skipped, %d bad; ledgers %d checked, %d diverged; %d corrupt line(s), %d skipped-unknown-version in journal\n",
			sum.Replayed, sum.Matches, sum.Mismatches, sum.Skipped, sum.BadRecords, sum.LedgersChecked, sum.LedgerDivergence, sum.Read.Skipped, sum.Read.SkippedUnknownVersion)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-replay:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "clarify-replay:", err)
		os.Exit(2)
	}
	if !sum.Ok() {
		os.Exit(1)
	}
}
