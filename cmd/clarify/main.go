// Command clarify is the interactive front end of the Clarify pipeline
// (Figure 1 of the paper): it loads an existing configuration, reads
// natural-language intents, synthesizes and verifies configuration snippets
// with an LLM, and interactively disambiguates where each new rule belongs.
//
// Usage:
//
//	clarify -config isp.cfg -target ISP_OUT [-llm sim|http] [flags] < intents.txt
//
// With -llm sim (the default) the deterministic simulated LLM is used and no
// network access is needed. With -llm http, -base-url and -model select an
// OpenAI-compatible endpoint; the API key is read from $CLARIFY_API_KEY.
// -fallback-sim degrades to the simulated LLM when the endpoint fails
// (updates that used it are flagged), and -chaos injects deterministic
// transport faults for resilience drills.
//
// With -remote http://host:port the pipeline runs inside a clarifyd daemon
// instead of in-process: the CLI creates a remote session from the config,
// submits each intent over HTTP, and relays the daemon's disambiguation
// questions to the interactive prompt.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/chaoshttp"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/server"
)

// cliOptions collects the in-process run's configuration.
type cliOptions struct {
	configPath string
	target     string
	llmKind    string
	baseURL    string
	model      string
	outPath    string
	// trace receives the legacy line-per-step rendering (-v).
	trace io.Writer
	// traceJSON, when non-empty, is a file that receives one JSON span tree
	// per update (JSONL).
	traceJSON string
	// simFaults is a comma-separated fault plan for the simulated LLM, e.g.
	// "wrong-value,syntax" — each synthesis call consumes one entry.
	simFaults string
	// chaosSpec is a chaoshttp fault plan applied to the http backend's
	// transport (resilience drills).
	chaosSpec string
	// fallbackSim degrades http-backend failures onto the simulated LLM.
	fallbackSim bool
	// journalDir, when non-empty, appends one flight-recorder record per
	// update there (see the journal package and cmd/clarify-replay).
	journalDir string
}

func main() {
	var (
		configPath = flag.String("config", "", "path to the existing IOS configuration (required)")
		target     = flag.String("target", "", "route-map or ACL name to update (required)")
		llmKind    = flag.String("llm", "sim", "LLM backend: sim or http")
		baseURL    = flag.String("base-url", "https://api.openai.com/v1", "OpenAI-compatible API root (http backend)")
		model      = flag.String("model", "gpt-4", "model identifier (http backend)")
		outPath    = flag.String("o", "", "write the updated configuration here (default: stdout)")
		remote     = flag.String("remote", "", "drive a running clarifyd at this base URL instead of an in-process session")
		traceJSON  = flag.String("trace-json", "", "append one JSON span tree per update to this file")
		simFaults  = flag.String("sim-faults", "", "comma-separated fault plan for the sim LLM (wrong-value, widen-mask, drop-match, flip-action, syntax, none)")
		chaosSpec  = flag.String("chaos", "", "inject transport faults into the http backend, e.g. \"seed=42,reset=0.2\" or \"down\"")
		fbSim      = flag.Bool("fallback-sim", false, "degrade to the simulated LLM when the http backend fails")
		journalDir = flag.String("journal", "", "append one flight-recorder record per update to this directory (replayable with clarify-replay)")
		verbose    = flag.Bool("v", false, "trace pipeline steps to stderr")
	)
	flag.Parse()
	if *configPath == "" || *target == "" {
		flag.Usage()
		os.Exit(2)
	}
	var trace io.Writer
	if *verbose {
		trace = os.Stderr
	}
	var err error
	if *remote != "" {
		err = runRemote(*remote, *configPath, *target, *outPath, os.Stdin, os.Stdout)
	} else {
		err = run(cliOptions{
			configPath:  *configPath,
			target:      *target,
			llmKind:     *llmKind,
			baseURL:     *baseURL,
			model:       *model,
			outPath:     *outPath,
			trace:       trace,
			traceJSON:   *traceJSON,
			simFaults:   *simFaults,
			chaosSpec:   *chaosSpec,
			fallbackSim: *fbSim,
			journalDir:  *journalDir,
		}, os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clarify:", err)
		os.Exit(1)
	}
}

func run(opts cliOptions, stdin io.Reader, out io.Writer) error {
	data, err := os.ReadFile(opts.configPath)
	if err != nil {
		return err
	}
	cfg, err := ios.Parse(string(data))
	if err != nil {
		return err
	}
	faults, err := llm.ParseFaultPlan(opts.simFaults)
	if err != nil {
		return fmt.Errorf("-sim-faults: %w", err)
	}

	var client llm.Client
	var stack *resilience.Stack
	switch opts.llmKind {
	case "sim":
		if opts.chaosSpec != "" || opts.fallbackSim {
			return fmt.Errorf("-chaos and -fallback-sim require -llm http")
		}
		client = llm.NewSimLLM(faults...)
	case "http":
		primary := &llm.HTTPClient{BaseURL: opts.baseURL, Model: opts.model, APIKey: os.Getenv("CLARIFY_API_KEY")}
		if opts.chaosSpec != "" {
			plan, err := chaoshttp.ParsePlan(opts.chaosSpec)
			if err != nil {
				return fmt.Errorf("-chaos: %w", err)
			}
			primary.HTTP = &http.Client{Transport: chaoshttp.New(plan, nil), Timeout: 60 * time.Second}
		}
		var fallback llm.Client
		if opts.fallbackSim {
			fallback = llm.NewSimLLM(faults...)
		}
		stack = resilience.NewStack(primary, "http", resilience.BreakerConfig{}, fallback, "sim")
		client = stack.Client()
	default:
		return fmt.Errorf("unknown -llm backend %q", opts.llmKind)
	}

	var observer obs.Sink
	if opts.traceJSON != "" {
		f, err := os.OpenFile(opts.traceJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		observer = obs.NewJSONWriter(f)
	}

	var jnl *journal.Journal
	if opts.journalDir != "" {
		jnl, err = journal.Open(journal.Options{Dir: opts.journalDir})
		if err != nil {
			return err
		}
		defer jnl.Close()
	}

	in := bufio.NewScanner(stdin)
	oracle := &consoleOracle{in: in, out: out}
	session := &clarify.Session{
		Client:         client,
		Config:         cfg,
		RouteOracle:    oracle,
		ACLOracle:      oracle,
		Trace:          opts.trace,
		Observer:       observer,
		Journal:        jnl,
		JournalSession: "cli",
	}

	fmt.Fprintln(out, "Enter one intent per line (empty line to finish):")
	for {
		fmt.Fprint(out, "> ")
		if !in.Scan() {
			break
		}
		text := strings.TrimSpace(in.Text())
		if text == "" {
			break
		}
		uctx, flags := resilience.WithFlags(context.Background())
		res, err := session.Submit(uctx, text, opts.target)
		if err != nil {
			fmt.Fprintln(out, "  error:", err)
			continue
		}
		if flags.Degraded() {
			fmt.Fprintf(out, "\n  note: served in degraded mode by the %q fallback backend\n", flags.Backend())
		}
		fmt.Fprintf(out, "\nSynthesized snippet (%d attempt(s)):\n%s\n", res.Attempts, indent(res.SnippetText))
		fmt.Fprintf(out, "Behavioural specification:\n%s\n\n", indent(res.SpecJSON))
		if res.RouteInsert != nil {
			fmt.Fprintf(out, "Inserted at position %d after %d question(s).\n\n",
				res.RouteInsert.Position, len(res.RouteInsert.Questions))
		}
		if res.ACLInsert != nil {
			fmt.Fprintf(out, "Inserted at position %d after %d question(s).\n\n",
				res.ACLInsert.Position, len(res.ACLInsert.Questions))
		}
		if opts.trace != nil {
			st := session.Stats()
			fmt.Fprintf(opts.trace, "clarify: stats so far: %d LLM calls, %d disambiguations, %d retries, %d punts, %d updates\n",
				st.LLMCalls, st.Disambiguations, st.Retries, st.Punts, st.Updates)
		}
	}

	final := session.Config.Print()
	if opts.outPath != "" {
		if err := os.WriteFile(opts.outPath, []byte(final), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "Updated configuration written to %s\n", opts.outPath)
	} else {
		fmt.Fprintf(out, "\nFinal configuration:\n%s", final)
	}
	st := session.Stats()
	fmt.Fprintf(out, "\nSession: %d LLM calls, %d disambiguation questions, %d retries, %d punts, %d updates\n",
		st.LLMCalls, st.Disambiguations, st.Retries, st.Punts, st.Updates)
	return nil
}

// consoleOracle renders differential examples in the paper's OPTION 1 /
// OPTION 2 style and reads the user's choice from stdin.
type consoleOracle struct {
	in  *bufio.Scanner
	out io.Writer
}

func (o *consoleOracle) ChooseRoute(q disambig.RouteQuestion) (bool, error) {
	fmt.Fprintf(o.out, "\n%s\n", q)
	return o.ask()
}

func (o *consoleOracle) ChooseACL(q disambig.ACLQuestion) (bool, error) {
	fmt.Fprintf(o.out, "\n%s\n", q)
	return o.ask()
}

func (o *consoleOracle) ask() (bool, error) {
	for {
		fmt.Fprint(o.out, "Choose behaviour [1/2]: ")
		if !o.in.Scan() {
			return false, fmt.Errorf("input closed during disambiguation")
		}
		switch strings.TrimSpace(o.in.Text()) {
		case "1":
			return true, nil
		case "2":
			return false, nil
		}
		fmt.Fprintln(o.out, "Please answer 1 (new rule applies) or 2 (keep existing behaviour).")
	}
}

// runRemote drives a running clarifyd through the server client package,
// keeping the same interactive intent and question/answer loop as the
// in-process mode.
func runRemote(remoteURL, configPath, target, outPath string, stdin io.Reader, out io.Writer) error {
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	ctx := context.Background()
	client := &server.Client{BaseURL: strings.TrimRight(remoteURL, "/")}
	sid, err := client.CreateSession(ctx, server.CreateSessionRequest{Config: string(data)})
	if err != nil {
		return err
	}
	defer client.DeleteSession(ctx, sid)
	fmt.Fprintf(out, "Connected to %s (session %s).\n", remoteURL, sid)

	in := bufio.NewScanner(stdin)
	answer := func(q server.Question) (int, error) {
		fmt.Fprintf(out, "\n%s\n", q.Text)
		for {
			fmt.Fprint(out, "Choose behaviour [1/2]: ")
			if !in.Scan() {
				return 0, fmt.Errorf("input closed during disambiguation")
			}
			switch strings.TrimSpace(in.Text()) {
			case "1":
				return 1, nil
			case "2":
				return 2, nil
			}
			fmt.Fprintln(out, "Please answer 1 (new rule applies) or 2 (keep existing behaviour).")
		}
	}

	fmt.Fprintln(out, "Enter one intent per line (empty line to finish):")
	for {
		fmt.Fprint(out, "> ")
		if !in.Scan() {
			break
		}
		text := strings.TrimSpace(in.Text())
		if text == "" {
			break
		}
		// Each update gets its own fleet trace context, injected as a
		// traceparent header by the client: the update's spans on the daemon
		// (and, behind a clarify-lb, the balancer's proxy spans) stitch under
		// this trace ID, resolvable at /debug/traces/{id}.
		tp := obs.TraceParent{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
		uctx := obs.ContextWithTraceParent(ctx, tp)
		fmt.Fprintf(out, "  trace: %s\n", tp.TraceID)
		res, err := client.RunUpdate(uctx, sid, text, target, answer)
		if err != nil {
			fmt.Fprintln(out, "  error:", err)
			continue
		}
		if res.Status != server.StatusDone {
			fmt.Fprintln(out, "  error:", res.Error)
			continue
		}
		if res.Degraded {
			fmt.Fprintln(out, "\n  note: served in degraded mode by a fallback LLM backend")
		}
		fmt.Fprintf(out, "\nSynthesized snippet (%d attempt(s)):\n%s\n", res.Result.Attempts, indent(res.Result.SnippetText))
		fmt.Fprintf(out, "Behavioural specification:\n%s\n\n", indent(res.Result.SpecJSON))
		fmt.Fprintf(out, "Inserted at position %d after %d question(s).\n\n",
			res.Result.Position, res.Result.Questions)
	}

	final, err := client.Config(ctx, sid)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(final), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "Updated configuration written to %s\n", outPath)
	} else {
		fmt.Fprintf(out, "\nFinal configuration:\n%s", final)
	}
	st, err := client.Stats(ctx, sid)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nSession: %d LLM calls, %d disambiguation questions, %d retries, %d punts, %d updates\n",
		st.LLMCalls, st.Disambiguations, st.Retries, st.Punts, st.Updates)
	return nil
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
