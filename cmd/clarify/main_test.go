package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/clarifynet/clarify/server"
)

const testConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

func TestInteractiveSession(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.cfg")

	// Scripted session: the paper's prompt, then OPTION 1 for both
	// questions, then an empty line to finish.
	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"1",
		"1",
		"",
	}, "\n") + "\n"

	var out strings.Builder
	err := run(cfgPath, "ISP_OUT", "sim", "", "", outPath, strings.NewReader(script), &out, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"OPTION 1", "OPTION 2", "route-map SET_METRIC permit 10",
		`"metric": 55`, "Inserted at position 0 after 2 question(s)",
		"3 LLM calls, 2 disambiguation questions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	final, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ip community-list expanded D2 permit _300:3_", "ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23"} {
		if !strings.Contains(string(final), want) {
			t.Errorf("final config missing %q:\n%s", want, final)
		}
	}
}

func TestInteractiveSessionAnswerValidation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	// An invalid answer ("x") must be re-asked, then "2" accepted.
	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"x",
		"2",
		"2",
		"",
	}, "\n") + "\n"
	var out strings.Builder
	if err := run(cfgPath, "ISP_OUT", "sim", "", "", "", strings.NewReader(script), &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Please answer 1") {
		t.Error("invalid answer not re-prompted")
	}
	if !strings.Contains(out.String(), "Inserted at position 3") {
		t.Errorf("keep-existing answers should land at the bottom:\n%s", out.String())
	}
}

// TestRemoteSession replays the interactive walkthrough against a clarifyd
// served in-process, through the -remote client path.
func TestRemoteSession(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.cfg")

	srv := server.New(server.Options{Workers: 2})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"1",
		"1",
		"",
	}, "\n") + "\n"

	var out strings.Builder
	if err := runRemote(hs.URL, cfgPath, "ISP_OUT", outPath, strings.NewReader(script), &out); err != nil {
		t.Fatalf("runRemote: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"OPTION 1", "OPTION 2", "route-map SET_METRIC permit 10",
		`"metric": 55`, "Inserted at position 0 after 2 question(s)",
		"3 LLM calls, 2 disambiguation questions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	final, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ip community-list expanded D2 permit _300:3_", "ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23"} {
		if !strings.Contains(string(final), want) {
			t.Errorf("final config missing %q:\n%s", want, final)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run("/nonexistent.cfg", "X", "sim", "", "", "", strings.NewReader(""), &out, nil); err == nil {
		t.Error("missing config file should fail")
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "bad.cfg")
	_ = os.WriteFile(cfgPath, []byte("frobnicate\n"), 0o644)
	if err := run(cfgPath, "X", "sim", "", "", "", strings.NewReader(""), &out, nil); err == nil {
		t.Error("unparseable config should fail")
	}
	good := filepath.Join(dir, "good.cfg")
	_ = os.WriteFile(good, []byte(testConfig), 0o644)
	if err := run(good, "ISP_OUT", "martian", "", "", "", strings.NewReader(""), &out, nil); err == nil {
		t.Error("unknown backend should fail")
	}
}
