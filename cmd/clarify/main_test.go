package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/server"
)

const testConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

func TestInteractiveSession(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.cfg")

	// Scripted session: the paper's prompt, then OPTION 1 for both
	// questions, then an empty line to finish.
	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"1",
		"1",
		"",
	}, "\n") + "\n"

	var out strings.Builder
	err := run(cliOptions{configPath: cfgPath, target: "ISP_OUT", llmKind: "sim", outPath: outPath, trace: &out}, strings.NewReader(script), &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"OPTION 1", "OPTION 2", "route-map SET_METRIC permit 10",
		`"metric": 55`, "Inserted at position 0 after 2 question(s)",
		"3 LLM calls, 2 disambiguation questions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	final, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ip community-list expanded D2 permit _300:3_", "ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23"} {
		if !strings.Contains(string(final), want) {
			t.Errorf("final config missing %q:\n%s", want, final)
		}
	}
}

func TestInteractiveSessionAnswerValidation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	// An invalid answer ("x") must be re-asked, then "2" accepted.
	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"x",
		"2",
		"2",
		"",
	}, "\n") + "\n"
	var out strings.Builder
	if err := run(cliOptions{configPath: cfgPath, target: "ISP_OUT", llmKind: "sim"}, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Please answer 1") {
		t.Error("invalid answer not re-prompted")
	}
	if !strings.Contains(out.String(), "Inserted at position 3") {
		t.Errorf("keep-existing answers should land at the bottom:\n%s", out.String())
	}
}

// TestRemoteSession replays the interactive walkthrough against a clarifyd
// served in-process, through the -remote client path.
func TestRemoteSession(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.cfg")

	srv := server.New(server.Options{Workers: 2})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"1",
		"1",
		"",
	}, "\n") + "\n"

	var out strings.Builder
	if err := runRemote(hs.URL, cfgPath, "ISP_OUT", outPath, strings.NewReader(script), &out); err != nil {
		t.Fatalf("runRemote: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"OPTION 1", "OPTION 2", "route-map SET_METRIC permit 10",
		`"metric": 55`, "Inserted at position 0 after 2 question(s)",
		"3 LLM calls, 2 disambiguation questions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	final, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ip community-list expanded D2 permit _300:3_", "ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23"} {
		if !strings.Contains(string(final), want) {
			t.Errorf("final config missing %q:\n%s", want, final)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(cliOptions{configPath: "/nonexistent.cfg", target: "X", llmKind: "sim"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing config file should fail")
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "bad.cfg")
	_ = os.WriteFile(cfgPath, []byte("frobnicate\n"), 0o644)
	if err := run(cliOptions{configPath: cfgPath, target: "X", llmKind: "sim"}, strings.NewReader(""), &out); err == nil {
		t.Error("unparseable config should fail")
	}
	good := filepath.Join(dir, "good.cfg")
	_ = os.WriteFile(good, []byte(testConfig), 0o644)
	if err := run(cliOptions{configPath: good, target: "ISP_OUT", llmKind: "martian"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown backend should fail")
	}
}

// TestTraceJSON replays the paper walkthrough with one injected synthesis
// fault and checks the emitted span tree: a single trace whose stages cover
// classification, two synthesis attempts (the first rejected by the
// verifier), verification, and disambiguation, all with non-zero durations
// and BDD workload counters attributed to the symbolic stages.
func TestTraceJSON(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "isp.cfg")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.jsonl")

	script := strings.Join([]string{
		"Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.",
		"1",
		"1",
		"",
	}, "\n") + "\n"

	var out strings.Builder
	err := run(cliOptions{
		configPath: cfgPath, target: "ISP_OUT", llmKind: "sim",
		traceJSON: tracePath, simFaults: "wrong-value",
	}, strings.NewReader(script), &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 trace line, got %d", len(lines))
	}
	var tr obs.Trace
	if err := json.Unmarshal([]byte(lines[0]), &tr); err != nil {
		t.Fatalf("trace line is not valid JSON: %v", err)
	}
	if tr.ID == "" || tr.Root == nil || tr.Root.Name != "update" {
		t.Fatalf("malformed trace root: %+v", tr)
	}

	spans := map[string]*obs.Span{}
	tr.Walk(func(sp *obs.Span, _ int) { spans[sp.Name] = sp })
	for _, name := range []string{"classify", "synthesize-attempt-1", "synthesize-attempt-2", "verify", "disambiguate", "question-wait", "insert"} {
		sp, ok := spans[name]
		if !ok {
			t.Errorf("trace missing span %q", name)
			continue
		}
		if sp.Duration <= 0 {
			t.Errorf("span %q has non-positive duration %v", name, sp.Duration)
		}
	}
	if t.Failed() {
		t.Logf("trace:\n%s", lines[0])
		t.FailNow()
	}
	if a, ok := spans["synthesize-attempt-1"].Attr("fault-feedback"); !ok || a.Str == "" {
		t.Error("first attempt should carry the verifier's fault feedback")
	}
	if _, ok := spans["synthesize-attempt-2"].Attr("verified"); !ok {
		t.Error("second attempt should be marked verified")
	}
	// The verify and disambiguate stages do symbolic work: their BDD
	// counters must be attributed.
	for _, name := range []string{"verify", "disambiguate"} {
		a, ok := spans[name].Attr("bdd-ite-calls")
		if !ok || a.Int <= 0 {
			t.Errorf("span %q missing positive bdd-ite-calls counter (got %+v, ok=%v)", name, a, ok)
		}
	}
	if a, ok := spans["classify"].Attr("llm-ms"); !ok || a.Dur <= 0 {
		t.Errorf("classify span missing llm-ms latency (got %+v, ok=%v)", a, ok)
	}
}
