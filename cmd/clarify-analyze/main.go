// Command clarify-analyze reads a flight-recorder journal offline and
// reports the disambiguation loop's information-theoretic efficiency: how
// many bits of candidate-space ambiguity updates started with, how many
// bits each clarifying question resolved, and how much ambiguity remained
// when configurations were accepted — broken down per insertion strategy
// and per intent category (route-map vs acl).
//
// It is the third leg of the telemetry agreement: the same ledgers the live
// daemon aggregates at /debug/ambiguity (and clarify-lb merges fleet-wide)
// are persisted in the journal, so analyzing a replica's journal after a
// run must reproduce the live rollup.
//
// Usage:
//
//	clarify-analyze -journal DIR [-out report.json] [-quiet]
//	                [-min-updates N] [-min-bits-per-question X]
//	                [-max-mean-residual-bits X] [-require-strategies a,b]
//
// The JSON report goes to stdout (or -out); the human-readable tables go to
// stderr. Exit status is 0 when every configured gate passes, 1 when a gate
// fails, 2 on operational errors. Crash-truncated journal tails and
// newer-schema records are skipped and counted, never fatal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/journal"
)

// Report is the JSON document clarify-analyze emits.
type Report struct {
	// Dir is the analyzed journal directory.
	Dir string `json:"dir"`
	// Records counts records scanned; Updates the update-kind records among
	// them; Metered those carrying an ambiguity ledger; Failed those that
	// ended in a pipeline error.
	Records int `json:"records"`
	Updates int `json:"updates"`
	Metered int `json:"metered"`
	Failed  int `json:"failed"`
	// Read carries the scanner's low-level stats (segments, corrupt lines,
	// skipped newer-schema records).
	Read journal.ReadStats `json:"read"`
	// Rollup aggregates every ledger: totals plus the per-strategy and
	// per-kind (intent category) tables.
	Rollup *ambiguity.Rollup `json:"rollup"`
	// Gates lists each configured threshold with its measured value.
	Gates []GateResult `json:"gates,omitempty"`
	// Pass is false when any gate failed.
	Pass bool `json:"pass"`
}

// GateResult is one exit-code gate's evaluation.
type GateResult struct {
	Name      string  `json:"name"`
	Threshold float64 `json:"threshold"`
	Value     float64 `json:"value"`
	Pass      bool    `json:"pass"`
}

func main() {
	dir := flag.String("journal", "", "journal directory to analyze (required)")
	outPath := flag.String("out", "", "write the JSON report here instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress the tables on stderr")
	minUpdates := flag.Int("min-updates", 0, "fail unless at least this many metered updates were found")
	minBitsPerQ := flag.Float64("min-bits-per-question", -1, "fail when the aggregate bits resolved per question is below this (-1 disables)")
	maxResidual := flag.Float64("max-mean-residual-bits", -1, "fail when the mean residual ambiguity per metered update exceeds this (-1 disables)")
	requireStrategies := flag.String("require-strategies", "", "comma-separated strategy names that must appear with at least one metered update each")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "clarify-analyze: -journal is required")
		os.Exit(2)
	}

	rep := &Report{Dir: *dir, Rollup: ambiguity.NewRollup(), Pass: true}
	stats, err := journal.Scan(*dir, func(rec *journal.Record) error {
		rep.Records++
		if rec.Kind != journal.KindUpdate {
			return nil
		}
		rep.Updates++
		if rec.Error != "" {
			rep.Failed++
		}
		if rec.Ambiguity != nil {
			rep.Metered++
			rep.Rollup.Add(rec.Ambiguity)
		}
		return nil
	})
	rep.Read = stats
	if err != nil {
		fmt.Fprintln(os.Stderr, "clarify-analyze:", err)
		os.Exit(2)
	}

	gate := func(name string, threshold, value float64, pass bool) {
		rep.Gates = append(rep.Gates, GateResult{Name: name, Threshold: threshold, Value: value, Pass: pass})
		if !pass {
			rep.Pass = false
		}
	}
	if *minUpdates > 0 {
		gate("min-updates", float64(*minUpdates), float64(rep.Metered), rep.Metered >= *minUpdates)
	}
	if *minBitsPerQ >= 0 {
		v := rep.Rollup.Total.BitsPerQuestion()
		gate("min-bits-per-question", *minBitsPerQ, v, rep.Rollup.Total.Questions == 0 || v >= *minBitsPerQ)
	}
	if *maxResidual >= 0 {
		mean := 0.0
		if rep.Metered > 0 {
			mean = rep.Rollup.Total.ResidualBits / float64(rep.Metered)
		}
		gate("max-mean-residual-bits", *maxResidual, mean, mean <= *maxResidual)
	}
	if *requireStrategies != "" {
		for _, name := range strings.Split(*requireStrategies, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			st := rep.Rollup.Strategies[name]
			n := 0
			if st != nil {
				n = st.Updates
			}
			gate("require-strategy:"+name, 1, float64(n), n >= 1)
		}
	}

	if !*quiet {
		printTables(os.Stderr, rep)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clarify-analyze:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "clarify-analyze:", err)
		os.Exit(2)
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

// printTables renders the per-strategy and per-kind efficiency tables.
func printTables(w *os.File, rep *Report) {
	fmt.Fprintf(w, "clarify-analyze: %d record(s): %d update(s), %d metered, %d failed; %d corrupt line(s), %d skipped-unknown-version\n",
		rep.Records, rep.Updates, rep.Metered, rep.Failed, rep.Read.Skipped, rep.Read.SkippedUnknownVersion)
	printTable(w, "strategy", rep.Rollup.StrategyNames(), rep.Rollup.Strategies, rep.Rollup.Total)
	printTable(w, "kind", rep.Rollup.KindNames(), rep.Rollup.Kinds, rep.Rollup.Total)
	for _, g := range rep.Gates {
		verdict := "pass"
		if !g.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "gate %-26s threshold %8.2f  value %8.2f  %s\n", g.Name, g.Threshold, g.Value, verdict)
	}
}

// printTable renders one breakdown table plus the shared total row.
func printTable(w *os.File, label string, names []string, rows map[string]*ambiguity.StrategyStats, total ambiguity.StrategyStats) {
	fmt.Fprintf(w, "\n%-12s %8s %10s %9s %10s %10s %10s %8s\n",
		label, "updates", "questions", "q/update", "initial", "resolved", "residual", "bits/q")
	for _, name := range names {
		printRow(w, name, rows[name])
	}
	printRow(w, "total", &total)
}

func printRow(w *os.File, name string, s *ambiguity.StrategyStats) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "%-12s %8d %10d %9.2f %10.1f %10.1f %10.1f %8.2f\n",
		name, s.Updates, s.Questions, s.MeanQuestions(),
		s.InitialBits, s.ResolvedBits, s.ResidualBits, s.BitsPerQuestion())
}
