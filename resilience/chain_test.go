package resilience

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
)

func TestChainPrimaryServes(t *testing.T) {
	ch := NewChain([]llm.Client{okClient{content: "primary"}, okClient{content: "fallback"}}, "http", "sim")
	ctx, flags := WithFlags(context.Background())
	resp, err := ch.Complete(ctx, llm.Request{})
	if err != nil || resp.Content != "primary" {
		t.Fatalf("Complete = %q, %v; want primary", resp.Content, err)
	}
	if flags.Degraded() || ch.Degraded() {
		t.Error("primary success must not mark degraded")
	}
	st := ch.Stats()
	if st.Backends[0].Served != 1 || st.Fallbacks != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChainFallsBackAndMarksDegraded(t *testing.T) {
	ch := NewChain([]llm.Client{errClient{err: errors.New("down")}, okClient{content: "fallback"}}, "http", "sim")
	ctx, flags := WithFlags(context.Background())
	resp, err := ch.Complete(ctx, llm.Request{})
	if err != nil || resp.Content != "fallback" {
		t.Fatalf("Complete = %q, %v; want fallback", resp.Content, err)
	}
	if !flags.Degraded() {
		t.Error("fallback completion must mark the update degraded")
	}
	if flags.Backend() != "sim" {
		t.Errorf("flags backend = %q, want sim", flags.Backend())
	}
	if !ch.Degraded() {
		t.Error("chain must latch degraded")
	}
	st := ch.Stats()
	if st.Fallbacks != 1 || st.Backends[0].Failures != 1 || st.Backends[1].Served != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChainRecoveryClearsDegraded(t *testing.T) {
	primary := &flippableClient{err: errors.New("down")}
	ch := NewChain([]llm.Client{primary, okClient{content: "fallback"}})
	ch.Complete(context.Background(), llm.Request{})
	if !ch.Degraded() {
		t.Fatal("expected degraded after fallback")
	}
	primary.setErr(nil)
	ch.Complete(context.Background(), llm.Request{})
	if ch.Degraded() {
		t.Error("primary success must clear degraded")
	}
}

// flippableClient fails until its error is cleared.
type flippableClient struct {
	mu  sync.Mutex
	err error
}

func (c *flippableClient) setErr(err error) {
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
}

func (c *flippableClient) Complete(context.Context, llm.Request) (llm.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return llm.Response{}, c.err
	}
	return llm.Response{Content: "primary"}, nil
}

func TestChainExhausted(t *testing.T) {
	ch := NewChain([]llm.Client{errClient{err: errors.New("a")}, errClient{err: errors.New("b")}}, "x", "y")
	_, err := ch.Complete(context.Background(), llm.Request{})
	if err == nil {
		t.Fatal("want error when every backend fails")
	}
	if !strings.Contains(err.Error(), "all 2 backend(s) failed") {
		t.Errorf("error = %v", err)
	}
	if got := ch.Stats().Exhausted; got != 1 {
		t.Errorf("exhausted = %d, want 1", got)
	}
}

func TestChainAbortsOnCallerCancellation(t *testing.T) {
	fallbackCalls := 0
	ch := NewChain([]llm.Client{
		errClient{err: errors.New("down")},
		countingClient{calls: &fallbackCalls, err: errors.New("unused")},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ch.Complete(ctx, llm.Request{})
	if err == nil {
		t.Fatal("want error on cancelled context")
	}
	if fallbackCalls != 0 {
		t.Errorf("fallback called %d times on a cancelled update, want 0", fallbackCalls)
	}
}

func TestChainRecordsSpanAttributes(t *testing.T) {
	ch := NewChain([]llm.Client{errClient{err: errors.New("down")}, okClient{content: "ok"}}, "http", "sim")
	tr := obs.NewTrace("update")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root)
	if _, err := ch.Complete(ctx, llm.Request{}); err != nil {
		t.Fatal(err)
	}
	if a, ok := tr.Root.Attr("llm-backend"); !ok || a.Str != "sim" {
		t.Errorf("llm-backend attr = %+v, %v", a, ok)
	}
	if a, ok := tr.Root.Attr("llm-fallback"); !ok || !a.Bool {
		t.Errorf("llm-fallback attr = %+v, %v", a, ok)
	}
}

func TestStackShortCircuitsPrimaryAfterTrip(t *testing.T) {
	primaryCalls := 0
	stack := NewStack(
		countingClient{calls: &primaryCalls, err: errors.New("down")}, "http",
		BreakerConfig{FailureRate: 0.5, MinRequests: 3, Window: time.Minute, Cooldown: time.Minute},
		okClient{content: "sim"}, "sim",
	)
	for i := 0; i < 20; i++ {
		resp, err := stack.Client().Complete(context.Background(), llm.Request{})
		if err != nil || resp.Content != "sim" {
			t.Fatalf("call %d: %q, %v", i, resp.Content, err)
		}
	}
	if primaryCalls != 3 {
		t.Errorf("primary calls = %d, want 3 (breaker trips, rest short-circuit)", primaryCalls)
	}
	if !stack.Degraded() {
		t.Error("stack must report degraded while serving via fallback")
	}
	if stack.CanServe() != true {
		t.Error("stack with a fallback can always serve")
	}
	st := stack.Stats()
	if st == nil || st.Breaker == nil || st.Breaker.State != "open" {
		t.Fatalf("stats = %+v, want open breaker", st)
	}
	if st.Chain.Fallbacks != 20 {
		t.Errorf("fallbacks = %d, want 20", st.Chain.Fallbacks)
	}
}

func TestStackNoFallbackCannotServeWhenOpen(t *testing.T) {
	stack := NewStack(
		errClient{err: errors.New("down")}, "http",
		BreakerConfig{FailureRate: 0.5, MinRequests: 2, Window: time.Minute, Cooldown: time.Minute},
		nil, "",
	)
	for i := 0; i < 4; i++ {
		stack.Client().Complete(context.Background(), llm.Request{})
	}
	if stack.CanServe() {
		t.Error("open breaker with no fallback cannot serve")
	}
	if !stack.Degraded() {
		t.Error("open breaker is degraded")
	}
}

func TestStackRecovers(t *testing.T) {
	primary := &flippableClient{err: errors.New("down")}
	stack := NewStack(primary, "http",
		BreakerConfig{FailureRate: 0.5, MinRequests: 2, Window: time.Minute, Cooldown: time.Millisecond},
		okClient{content: "sim"}, "sim")
	for i := 0; i < 4; i++ {
		stack.Client().Complete(context.Background(), llm.Request{})
	}
	if !stack.Degraded() {
		t.Fatal("expected degraded during outage")
	}
	primary.setErr(nil)
	time.Sleep(5 * time.Millisecond) // past the cooldown
	resp, err := stack.Client().Complete(context.Background(), llm.Request{})
	if err != nil || resp.Content != "primary" {
		t.Fatalf("post-recovery call = %q, %v; want primary", resp.Content, err)
	}
	if stack.Degraded() {
		t.Error("recovered stack must clear degraded")
	}
	if st := stack.Stats(); st.Breaker.State != "closed" {
		t.Errorf("breaker state = %s, want closed", st.Breaker.State)
	}
}
