package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
)

// ErrOpen is returned (without touching the backend) while the circuit
// breaker is open: the primary endpoint has been failing and calls are
// short-circuited until the cooldown elapses.
var ErrOpen = errors.New("resilience: circuit breaker is open")

// State is a circuit breaker state.
type State int32

// Breaker states. Closed passes calls through, Open short-circuits them,
// HalfOpen lets a single probe through to test recovery.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults noted
// on each field.
type BreakerConfig struct {
	// FailureRate is the failure fraction of the rolling window that trips
	// the breaker (default 0.5).
	FailureRate float64
	// MinRequests is the minimum window sample size before the rate is
	// evaluated (default 5), so one failed call out of one cannot trip it.
	MinRequests int
	// Window is the rolling failure-rate window (default 30s), divided into
	// Buckets (default 10) that expire individually.
	Window  time.Duration
	Buckets int
	// Cooldown is how long an open breaker rejects calls before allowing a
	// half-open probe (default 10s).
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive probe successes required
	// to close again (default 1).
	HalfOpenProbes int
	// OnStateChange, when non-nil, is called (outside the breaker lock is
	// NOT guaranteed; keep it fast) on every transition.
	OnStateChange func(from, to State)

	// now overrides the clock in tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 5
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// bucket is one time slice of the rolling window.
type bucket struct {
	successes int64
	failures  int64
}

// Breaker is a circuit breaker over an unreliable dependency. Callers pair
// every successful Allow with exactly one Record (or RecordCanceled); the
// BreakerClient wrapper does this for llm.Client. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg        BreakerConfig
	bucketSpan time.Duration

	mu          sync.Mutex
	state       State
	buckets     []bucket
	bucketIdx   int
	bucketStart time.Time
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	probeOKs    int

	opens         int64
	shortCircuits int64
	probes        int64
	probeFails    int64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{
		cfg:        cfg,
		bucketSpan: cfg.Window / time.Duration(cfg.Buckets),
		buckets:    make([]bucket, cfg.Buckets),
	}
	b.bucketStart = cfg.now()
	return b
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(b.cfg.now())
	return b.state
}

// Allow reports whether a call may proceed. It returns nil when the call is
// admitted (possibly as the half-open probe) and ErrOpen when it must be
// short-circuited. Every nil return must be matched by one Record or
// RecordCanceled.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	b.advanceLocked(now)
	switch b.state {
	case Closed:
		return nil
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.shortCircuits++
			return ErrOpen
		}
		b.transitionLocked(HalfOpen)
		b.probing = true
		b.probeOKs = 0
		b.probes++
		return nil
	default: // HalfOpen
		if b.probing {
			b.shortCircuits++
			return ErrOpen
		}
		b.probing = true
		b.probes++
		return nil
	}
}

// Record reports the outcome of an admitted call and drives transitions:
// closed trips open at the failure-rate threshold, a half-open probe success
// closes the breaker (after HalfOpenProbes successes) and a probe failure
// reopens it.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.now()
	b.advanceLocked(now)
	switch b.state {
	case Closed:
		bk := &b.buckets[b.bucketIdx]
		if success {
			bk.successes++
		} else {
			bk.failures++
			if succ, fail := b.windowLocked(); succ+fail >= int64(b.cfg.MinRequests) &&
				float64(fail)/float64(succ+fail) >= b.cfg.FailureRate {
				b.tripLocked(now)
			}
		}
	case HalfOpen:
		b.probing = false
		if !success {
			b.probeFails++
			b.tripLocked(now)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			b.resetLocked(now)
			b.transitionLocked(Closed)
		}
	case Open:
		// A call admitted before the trip finished after it; the window is
		// no longer consulted, so the outcome only matters for stats.
		if !success {
			b.buckets[b.bucketIdx].failures++
		} else {
			b.buckets[b.bucketIdx].successes++
		}
	}
}

// RecordCanceled releases an admitted call whose outcome says nothing about
// the backend (the caller's context was cancelled mid-call): it frees the
// half-open probe slot without counting a success or failure.
func (b *Breaker) RecordCanceled() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// tripLocked moves to Open and stamps the cooldown clock.
func (b *Breaker) tripLocked(now time.Time) {
	b.openedAt = now
	b.opens++
	b.transitionLocked(Open)
}

// resetLocked clears the rolling window (a freshly closed breaker starts
// from a clean slate).
func (b *Breaker) resetLocked(now time.Time) {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
	b.bucketIdx = 0
	b.bucketStart = now
}

// transitionLocked changes state and fires the hook.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// advanceLocked rotates the rolling window up to now, zeroing buckets that
// fell out of it.
func (b *Breaker) advanceLocked(now time.Time) {
	elapsed := now.Sub(b.bucketStart)
	if elapsed < b.bucketSpan {
		return
	}
	steps := int(elapsed / b.bucketSpan)
	if steps > len(b.buckets) {
		steps = len(b.buckets)
	}
	for i := 0; i < steps; i++ {
		b.bucketIdx = (b.bucketIdx + 1) % len(b.buckets)
		b.buckets[b.bucketIdx] = bucket{}
	}
	b.bucketStart = b.bucketStart.Add(elapsed / b.bucketSpan * b.bucketSpan)
}

// windowLocked sums the rolling window.
func (b *Breaker) windowLocked() (successes, failures int64) {
	for _, bk := range b.buckets {
		successes += bk.successes
		failures += bk.failures
	}
	return successes, failures
}

// BreakerStats is the breaker's /metrics snapshot.
type BreakerStats struct {
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Opens counts closed→open and half-open→open transitions.
	Opens int64 `json:"opens"`
	// ShortCircuits counts calls rejected with ErrOpen.
	ShortCircuits int64 `json:"shortCircuits"`
	// Probes counts half-open probe calls admitted.
	Probes int64 `json:"probes"`
	// ProbeFailures counts probes that reopened the breaker.
	ProbeFailures int64 `json:"probeFailures"`
	// WindowRequests / WindowFailures describe the current rolling window.
	WindowRequests int64 `json:"windowRequests"`
	WindowFailures int64 `json:"windowFailures"`
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(b.cfg.now())
	succ, fail := b.windowLocked()
	return BreakerStats{
		State:          b.state.String(),
		Opens:          b.opens,
		ShortCircuits:  b.shortCircuits,
		Probes:         b.probes,
		ProbeFailures:  b.probeFails,
		WindowRequests: succ + fail,
		WindowFailures: fail,
	}
}

// BreakerClient wraps an llm.Client with a Breaker: calls are
// short-circuited with ErrOpen while the breaker is open, and outcomes feed
// the rolling window. Failures caused by the caller's own context
// (cancellation, deadline) are not charged to the backend. Transitions
// observed around a call are recorded on the active obs span.
type BreakerClient struct {
	Inner llm.Client
	B     *Breaker
}

// Complete implements llm.Client.
func (c *BreakerClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	sp := obs.SpanFromContext(ctx)
	if err := c.B.Allow(); err != nil {
		sp.SetBool("breaker-short-circuit", true)
		return llm.Response{}, err
	}
	before := c.B.State()
	resp, err := c.Inner.Complete(ctx, req)
	if err != nil && ctx.Err() != nil {
		// The caller gave up; the backend may be fine.
		c.B.RecordCanceled()
		return resp, err
	}
	c.B.Record(err == nil)
	if after := c.B.State(); after != before {
		sp.SetStr("breaker-transition", before.String()+"->"+after.String())
	}
	return resp, err
}

var _ llm.Client = (*BreakerClient)(nil)
