package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/clarifynet/clarify/llm"
)

// fakeClock is a manually advanced clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// step is one scripted breaker interaction.
type step struct {
	// advance moves the clock before acting.
	advance time.Duration
	// call performs Allow+Record(success); wantAllow is whether Allow must
	// admit it.
	call      bool
	success   bool
	wantAllow bool
	// wantState is checked after the step.
	wantState State
}

func TestBreakerTransitions(t *testing.T) {
	cfg := func(clk *fakeClock) BreakerConfig {
		return BreakerConfig{
			FailureRate:    0.5,
			MinRequests:    4,
			Window:         10 * time.Second,
			Buckets:        5,
			Cooldown:       5 * time.Second,
			HalfOpenProbes: 1,
			now:            clk.now,
		}
	}
	fail := func(st State) step { return step{call: true, success: false, wantAllow: true, wantState: st} }
	ok := func(st State) step { return step{call: true, success: true, wantAllow: true, wantState: st} }

	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "closed-to-open-at-threshold",
			steps: []step{
				ok(Closed), fail(Closed), fail(Closed),
				// 4th sample: 3/4 failures >= 0.5 trips it.
				fail(Open),
			},
		},
		{
			name: "below-min-requests-stays-closed",
			steps: []step{
				fail(Closed), fail(Closed), fail(Closed), // only 3 < MinRequests samples
			},
		},
		{
			name: "low-failure-rate-stays-closed",
			steps: []step{
				ok(Closed), ok(Closed), ok(Closed), ok(Closed), ok(Closed), ok(Closed), ok(Closed),
				fail(Closed), fail(Closed), fail(Closed), // 3/10 < 0.5
			},
		},
		{
			name: "open-shorts-during-cooldown-then-half-open",
			steps: []step{
				fail(Closed), fail(Closed), fail(Closed), fail(Open),
				{call: true, wantAllow: false, wantState: Open},
				{advance: 4 * time.Second, call: true, wantAllow: false, wantState: Open},
				// Past the cooldown the next call is the half-open probe.
				{advance: 2 * time.Second, call: true, success: true, wantAllow: true, wantState: Closed},
			},
		},
		{
			name: "half-open-probe-failure-reopens",
			steps: []step{
				fail(Closed), fail(Closed), fail(Closed), fail(Open),
				{advance: 6 * time.Second, call: true, success: false, wantAllow: true, wantState: Open},
				// Reopened: cooldown restarts, calls shed again.
				{call: true, wantAllow: false, wantState: Open},
			},
		},
		{
			name: "window-expiry-forgives-old-failures",
			steps: []step{
				fail(Closed), fail(Closed), fail(Closed),
				// The window (10s) rotates fully: old failures vanish, so the
				// next failure is 1 sample, below MinRequests.
				{advance: 11 * time.Second, call: true, success: false, wantAllow: true, wantState: Closed},
			},
		},
		{
			name: "closed-after-recovery-starts-clean",
			steps: []step{
				fail(Closed), fail(Closed), fail(Closed), fail(Open),
				{advance: 6 * time.Second, call: true, success: true, wantAllow: true, wantState: Closed},
				// A single failure right after closing must not re-trip: the
				// window was reset on close.
				fail(Closed), fail(Closed), fail(Closed),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := NewBreaker(cfg(clk))
			for i, st := range tc.steps {
				clk.advance(st.advance)
				if st.call {
					err := b.Allow()
					if got := err == nil; got != st.wantAllow {
						t.Fatalf("step %d: Allow() err=%v, want allow=%v", i, err, st.wantAllow)
					}
					if err == nil {
						b.Record(st.success)
					} else if !errors.Is(err, ErrOpen) {
						t.Fatalf("step %d: Allow() = %v, want ErrOpen", i, err)
					}
				}
				if got := b.State(); got != st.wantState {
					t.Fatalf("step %d: state = %v, want %v", i, got, st.wantState)
				}
			}
		})
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureRate: 0.5, MinRequests: 2, Window: 10 * time.Second,
		Cooldown: time.Second, now: clk.now,
	})
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	// While the probe is in flight, further calls are shed.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second half-open call: err = %v, want ErrOpen", err)
	}
	// A cancelled probe frees the slot without deciding anything.
	b.RecordCanceled()
	if b.State() != HalfOpen {
		t.Fatalf("state after cancelled probe = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot not released: %v", err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerMultiProbeClose(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureRate: 0.5, MinRequests: 2, Window: 10 * time.Second,
		Cooldown: time.Second, HalfOpenProbes: 3, now: clk.now,
	})
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	clk.advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("probe %d not admitted: %v", i+1, err)
		}
		b.Record(true)
		want := HalfOpen
		if i == 2 {
			want = Closed
		}
		if got := b.State(); got != want {
			t.Fatalf("after probe %d: state = %v, want %v", i+1, got, want)
		}
	}
}

func TestBreakerStateChangeHook(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		FailureRate: 0.5, MinRequests: 2, Window: 10 * time.Second, Cooldown: time.Second,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
		now: clk.now,
	})
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	clk.advance(2 * time.Second)
	b.Allow()
	b.Record(true)
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	st := b.Stats()
	if st.Opens != 1 || st.Probes != 1 {
		t.Errorf("stats = %+v, want 1 open and 1 probe", st)
	}
}

// TestBreakerConcurrentHammer drives one breaker from many goroutines under
// -race: the invariant checked is that it never deadlocks, never panics, and
// lands in a legal state with consistent counters.
func TestBreakerConcurrentHammer(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		FailureRate: 0.5, MinRequests: 5,
		Window: 50 * time.Millisecond, Buckets: 5, Cooldown: 5 * time.Millisecond,
	})
	const goroutines = 16
	const opsPer = 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				if err := b.Allow(); err != nil {
					continue
				}
				switch rng.Intn(10) {
				case 0:
					b.RecordCanceled()
				case 1, 2, 3, 4:
					b.Record(false)
				default:
					b.Record(true)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := b.Stats()
	if st.State != "closed" && st.State != "open" && st.State != "half-open" {
		t.Fatalf("illegal final state %q", st.State)
	}
	if st.Opens < 0 || st.ShortCircuits < 0 || st.Probes < st.ProbeFailures {
		t.Fatalf("inconsistent counters: %+v", st)
	}
	// The breaker must still be operable after the storm.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if err := b.Allow(); err == nil {
			b.Record(true)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("breaker never admitted a call after the hammer")
}

// errClient always fails; okClient always succeeds.
type errClient struct{ err error }

func (c errClient) Complete(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{}, c.err
}

type okClient struct{ content string }

func (c okClient) Complete(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{Content: c.content}, nil
}

func TestBreakerClientShortCircuits(t *testing.T) {
	clk := newFakeClock()
	calls := 0
	inner := countingClient{calls: &calls, err: errors.New("down")}
	b := NewBreaker(BreakerConfig{
		FailureRate: 0.5, MinRequests: 3, Window: 10 * time.Second,
		Cooldown: time.Minute, now: clk.now,
	})
	c := &BreakerClient{Inner: inner, B: b}
	for i := 0; i < 10; i++ {
		c.Complete(context.Background(), llm.Request{})
	}
	if calls != 3 {
		t.Errorf("inner calls = %d, want 3 (rest short-circuited)", calls)
	}
	if got := b.Stats().ShortCircuits; got != 7 {
		t.Errorf("short circuits = %d, want 7", got)
	}
}

// countingClient counts calls then fails.
type countingClient struct {
	calls *int
	err   error
}

func (c countingClient) Complete(context.Context, llm.Request) (llm.Response, error) {
	*c.calls++
	return llm.Response{}, c.err
}

func TestBreakerClientIgnoresCallerCancellation(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureRate: 0.5, MinRequests: 2, Window: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &BreakerClient{Inner: errClient{err: context.Canceled}, B: b}
	for i := 0; i < 10; i++ {
		c.Complete(ctx, llm.Request{})
	}
	st := b.Stats()
	if st.State != "closed" || st.WindowRequests != 0 {
		t.Errorf("cancelled calls charged to the backend: %+v", st)
	}
}
