// Package resilience contains the failure-containment layer between the
// Clarify pipeline and an unreliable LLM endpoint: a circuit breaker that
// stops hammering a down backend (Breaker), a fallback chain that degrades
// to the next backend — typically the deterministic SimLLM — instead of
// failing updates (Chain), and a Stack that bundles both behind one
// llm.Client for the daemon to serve with.
//
// The paper's verify-and-retry loop (Figure 1, steps 3–5) already tolerates
// *wrong* LLM output; this package makes the serving layer tolerate an
// *absent* one. Every decision the layer takes — a short-circuited call, a
// breaker transition, a completion served by a fallback backend — is
// recorded on the active obs span and in counters the server exposes via
// /metrics.
package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flags is the per-update resilience record threaded through the pipeline by
// context: the chain marks it when a completion is served by a non-primary
// backend, and the serving layer reads it back to stamp the update's
// degraded flag. All methods are safe on a nil receiver and for concurrent
// use.
type Flags struct {
	degraded atomic.Bool
	mu       sync.Mutex
	backend  string
}

// MarkDegraded records that backend (a non-primary client) served a
// completion for this update.
func (f *Flags) MarkDegraded(backend string) {
	if f == nil {
		return
	}
	f.degraded.Store(true)
	f.mu.Lock()
	f.backend = backend
	f.mu.Unlock()
}

// Degraded reports whether any completion of this update came from a
// fallback backend.
func (f *Flags) Degraded() bool {
	if f == nil {
		return false
	}
	return f.degraded.Load()
}

// Backend returns the last fallback backend that served a completion, or "".
func (f *Flags) Backend() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.backend
}

// flagsKey is the context key for the per-update Flags.
type flagsKey struct{}

// WithFlags returns ctx carrying a fresh Flags record for one update.
func WithFlags(ctx context.Context) (context.Context, *Flags) {
	f := &Flags{}
	return context.WithValue(ctx, flagsKey{}, f), f
}

// FlagsFromContext returns the Flags carried by ctx, or nil (whose methods
// no-op).
func FlagsFromContext(ctx context.Context) *Flags {
	f, _ := ctx.Value(flagsKey{}).(*Flags)
	return f
}

// Stats is the snapshot of a Stack's resilience state, embedded in the
// daemon's /metrics body.
type Stats struct {
	// Degraded reports whether the stack is currently serving through a
	// fallback backend (or the primary breaker is open).
	Degraded bool `json:"degraded"`
	// Breaker is the primary backend's circuit breaker, nil when no breaker
	// is configured.
	Breaker *BreakerStats `json:"breaker,omitempty"`
	// Chain is the fallback chain, nil when the stack serves one backend.
	Chain *ChainStats `json:"chain,omitempty"`
}
