package resilience

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
)

// Chain is a fallback chain of LLM backends: a completion is tried against
// each client in order until one succeeds. The first client is the primary;
// any completion served by a later client marks the update (via the context
// Flags) and the chain (via the degraded latch) as running in degraded mode.
// A caller-side context error aborts the chain immediately — a cancelled
// update must not burn the fallback budget too.
//
// Chain is stateless per call apart from counters and is safe for
// concurrent use, so one chain can serve every session of a daemon.
type Chain struct {
	clients []llm.Client
	names   []string

	served    []atomic.Int64 // completions served per backend
	failures  []atomic.Int64 // failed attempts per backend
	fallbacks atomic.Int64   // completions served by a non-primary backend
	exhausted atomic.Int64   // completions where every backend failed
	degraded  atomic.Bool    // latched by outcomes: set on fallback, cleared on primary success
}

// NewChain builds a fallback chain over clients, in priority order. names
// label the backends in metrics and span attributes; missing names default
// to "backend-N". Panics on an empty chain.
func NewChain(clients []llm.Client, names ...string) *Chain {
	if len(clients) == 0 {
		panic("resilience: NewChain needs at least one client")
	}
	c := &Chain{
		clients:  clients,
		served:   make([]atomic.Int64, len(clients)),
		failures: make([]atomic.Int64, len(clients)),
	}
	c.names = make([]string, len(clients))
	for i := range clients {
		if i < len(names) && names[i] != "" {
			c.names[i] = names[i]
		} else {
			c.names[i] = fmt.Sprintf("backend-%d", i)
		}
	}
	return c
}

// Len is the number of backends in the chain.
func (c *Chain) Len() int { return len(c.clients) }

// Degraded reports whether the most recent completed call was served by a
// fallback backend (cleared when the primary serves again).
func (c *Chain) Degraded() bool { return c.degraded.Load() }

// Complete implements llm.Client.
func (c *Chain) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	sp := obs.SpanFromContext(ctx)
	var lastErr error
	for i, cl := range c.clients {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return llm.Response{}, fmt.Errorf("resilience: update cancelled before backend %q: %w", c.names[i], lastErr)
		}
		resp, err := cl.Complete(ctx, req)
		if err == nil {
			c.served[i].Add(1)
			if i > 0 {
				c.fallbacks.Add(1)
				c.degraded.Store(true)
				sp.SetStr("llm-backend", c.names[i])
				sp.SetBool("llm-fallback", true)
				FlagsFromContext(ctx).MarkDegraded(c.names[i])
			} else {
				c.degraded.Store(false)
			}
			return resp, nil
		}
		c.failures[i].Add(1)
		lastErr = fmt.Errorf("%s: %w", c.names[i], err)
	}
	c.exhausted.Add(1)
	sp.SetBool("llm-chain-exhausted", true)
	return llm.Response{}, fmt.Errorf("resilience: all %d backend(s) failed: %w", len(c.clients), lastErr)
}

// BackendStats is one backend's view in ChainStats.
type BackendStats struct {
	Name string `json:"name"`
	// Served counts completions this backend returned successfully.
	Served int64 `json:"served"`
	// Failures counts attempts against this backend that errored (including
	// breaker short-circuits on a wrapped primary).
	Failures int64 `json:"failures"`
}

// ChainStats is the chain's /metrics snapshot.
type ChainStats struct {
	Backends []BackendStats `json:"backends"`
	// Fallbacks counts completions served by a non-primary backend.
	Fallbacks int64 `json:"fallbacks"`
	// Exhausted counts completions where every backend failed.
	Exhausted int64 `json:"exhausted"`
}

// Stats snapshots the chain counters.
func (c *Chain) Stats() ChainStats {
	out := ChainStats{
		Backends:  make([]BackendStats, len(c.clients)),
		Fallbacks: c.fallbacks.Load(),
		Exhausted: c.exhausted.Load(),
	}
	for i := range c.clients {
		out.Backends[i] = BackendStats{
			Name:     c.names[i],
			Served:   c.served[i].Load(),
			Failures: c.failures[i].Load(),
		}
	}
	return out
}

// Stack bundles the resilience layer the daemon serves with: the primary
// backend wrapped in a circuit breaker, chained onto optional fallbacks.
// Client() is what sessions complete against; Degraded()/Stats() are what
// /healthz and /metrics surface.
type Stack struct {
	chain   *Chain
	breaker *Breaker // nil when the primary is not breaker-wrapped
}

// NewStack wraps primary in a breaker (cfg) and chains fallback behind it
// when fallback is non-nil. primaryName/fallbackName label the backends.
func NewStack(primary llm.Client, primaryName string, cfg BreakerConfig, fallback llm.Client, fallbackName string) *Stack {
	b := NewBreaker(cfg)
	wrapped := &BreakerClient{Inner: primary, B: b}
	clients := []llm.Client{llm.Client(wrapped)}
	names := []string{primaryName}
	if fallback != nil {
		clients = append(clients, fallback)
		names = append(names, fallbackName)
	}
	return &Stack{chain: NewChain(clients, names...), breaker: b}
}

// NewStackFromChain builds a stack around an existing chain with no breaker
// (useful in tests and ablations).
func NewStackFromChain(c *Chain) *Stack { return &Stack{chain: c} }

// Client returns the llm.Client sessions should complete against.
func (s *Stack) Client() llm.Client { return s.chain }

// Breaker exposes the primary backend's breaker, or nil.
func (s *Stack) Breaker() *Breaker { return s.breaker }

// Chain exposes the fallback chain.
func (s *Stack) Chain() *Chain { return s.chain }

// Degraded reports whether the stack is serving in degraded mode: the last
// completion came from a fallback backend, or the primary breaker is open.
func (s *Stack) Degraded() bool {
	if s == nil {
		return false
	}
	if s.chain.Degraded() {
		return true
	}
	return s.breaker != nil && s.breaker.State() == Open
}

// CanServe reports whether any backend can currently take a completion:
// false only when the breaker is open and there is no fallback behind it.
func (s *Stack) CanServe() bool {
	if s == nil {
		return true
	}
	if s.chain.Len() > 1 {
		return true
	}
	return s.breaker == nil || s.breaker.State() != Open
}

// Stats snapshots the stack for /metrics.
func (s *Stack) Stats() *Stats {
	if s == nil {
		return nil
	}
	out := &Stats{Degraded: s.Degraded()}
	if s.breaker != nil {
		bs := s.breaker.Stats()
		out.Breaker = &bs
	}
	cs := s.chain.Stats()
	out.Chain = &cs
	return out
}

var _ llm.Client = (*Chain)(nil)
