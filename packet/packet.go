// Package packet models IPv4 packet headers: the inputs over which access
// control lists are evaluated, compared and disambiguated.
package packet

import (
	"fmt"
	"net/netip"
)

// Well-known IP protocol numbers used by the IOS ACL dialect.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Packet is an IPv4 header five-tuple plus the TCP "established" bit that
// Cisco extended ACLs can match on.
type Packet struct {
	Src, Dst         netip.Addr
	Protocol         uint8
	SrcPort, DstPort uint16
	Established      bool
	// ICMPType and ICMPCode are meaningful when Protocol is ProtoICMP.
	ICMPType, ICMPCode uint8
}

// New returns a packet with the given addresses and protocol and zero ports.
func New(src, dst string, proto uint8) Packet {
	return Packet{
		Src:      netip.MustParseAddr(src),
		Dst:      netip.MustParseAddr(dst),
		Protocol: proto,
	}
}

// ProtocolName renders the protocol in IOS keyword form.
func ProtocolName(p uint8) string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("%d", p)
	}
}

// String renders the packet compactly for witnesses and logs.
func (p Packet) String() string {
	if p.Protocol == ProtoICMP {
		return fmt.Sprintf("icmp %s -> %s type %d code %d", p.Src, p.Dst, p.ICMPType, p.ICMPCode)
	}
	s := fmt.Sprintf("%s %s:%d -> %s:%d", ProtocolName(p.Protocol), p.Src, p.SrcPort, p.Dst, p.DstPort)
	if p.Established {
		s += " established"
	}
	return s
}
