package packet

import "testing"

func TestNewAndString(t *testing.T) {
	p := New("1.1.1.1", "2.2.2.2", ProtoTCP)
	p.DstPort = 80
	if got := p.String(); got != "tcp 1.1.1.1:0 -> 2.2.2.2:80" {
		t.Errorf("String = %q", got)
	}
	p.Established = true
	if got := p.String(); got != "tcp 1.1.1.1:0 -> 2.2.2.2:80 established" {
		t.Errorf("String = %q", got)
	}
}

func TestProtocolName(t *testing.T) {
	cases := map[uint8]string{1: "icmp", 6: "tcp", 17: "udp", 47: "47"}
	for p, want := range cases {
		if got := ProtocolName(p); got != want {
			t.Errorf("ProtocolName(%d) = %q, want %q", p, got, want)
		}
	}
}
