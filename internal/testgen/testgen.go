// Package testgen provides seeded random generators for routes, packets and
// configurations, shared by the property-based tests that assert the
// concrete evaluator and the symbolic encoder agree.
package testgen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/route"
)

// Pools of attribute values chosen to collide with the patterns the random
// configs use, so random routes regularly hit every code path.
var (
	asns        = []uint32{32, 100, 200, 300, 65000, 7}
	communities = []string{"300:3", "100:1", "100:2", "9:9", "65000:100"}
	prefixCIDRs = []string{
		"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "20.0.0.0/16",
		"1.0.0.0/20", "1.0.1.0/24", "100.0.0.0/16", "100.0.0.0/20",
		"192.168.0.0/16", "0.0.0.0/0",
	}
	localPrefs = []uint32{100, 200, 300}
	meds       = []uint32{0, 55, 100}
)

// Route draws a random route biased toward the shared attribute pools.
func Route(rng *rand.Rand) route.Route {
	r := route.New(prefixCIDRs[rng.Intn(len(prefixCIDRs))])
	n := rng.Intn(4)
	path := make([]uint32, n)
	for i := range path {
		path[i] = asns[rng.Intn(len(asns))]
	}
	if n > 0 {
		r = r.WithASPath(path...)
	}
	var comms []string
	for _, c := range communities {
		if rng.Intn(3) == 0 {
			comms = append(comms, c)
		}
	}
	if len(comms) > 0 {
		r = r.WithCommunities(comms...)
	}
	r.LocalPref = localPrefs[rng.Intn(len(localPrefs))]
	r.MED = meds[rng.Intn(len(meds))]
	r.Tag = uint32(rng.Intn(4))
	r.Weight = uint16(rng.Intn(3) * 10)
	r.NextHop = netip.MustParseAddr([]string{"0.0.0.1", "10.0.0.9", "192.0.2.1", "10.1.2.3"}[rng.Intn(4)])
	return r
}

// Packet draws a random packet biased toward small address/port pools so ACL
// entries overlap frequently.
func Packet(rng *rand.Rand) packet.Packet {
	addrPool := []string{"1.1.1.1", "2.2.2.2", "10.0.0.5", "10.0.1.5", "192.168.1.1", "8.8.8.8"}
	protoPool := []uint8{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
	portPool := []uint16{0, 22, 80, 179, 443, 1024, 5050, 65535}
	p := packet.Packet{
		Src:      netip.MustParseAddr(addrPool[rng.Intn(len(addrPool))]),
		Dst:      netip.MustParseAddr(addrPool[rng.Intn(len(addrPool))]),
		Protocol: protoPool[rng.Intn(len(protoPool))],
	}
	if p.Protocol != packet.ProtoICMP {
		p.SrcPort = portPool[rng.Intn(len(portPool))]
		p.DstPort = portPool[rng.Intn(len(portPool))]
		p.Established = p.Protocol == packet.ProtoTCP && rng.Intn(2) == 0
	} else {
		p.ICMPType = []uint8{0, 3, 8, 11}[rng.Intn(4)]
		p.ICMPCode = uint8(rng.Intn(2))
	}
	return p
}

// Config builds a random configuration with nLists ancillary lists and one
// route-map of nStanzas stanzas referencing them.
func Config(rng *rand.Rand, mapName string, nStanzas int) *ios.Config {
	cfg := ios.NewConfig()
	pathRegexes := []string{"_32$", "_100_", "^65000_", "_7_", "^$"}
	commRegexes := []string{"_300:3_", "^100:[0-9]+$", "_9:9_"}

	// A few ancillary lists drawn from the pools.
	for i := 0; i < 3; i++ {
		cfg.AddASPathList(fmt.Sprintf("AS%d", i),
			ios.ASPathEntry{Permit: rng.Intn(4) != 0, Regex: pathRegexes[rng.Intn(len(pathRegexes))]})
	}
	for i := 0; i < 3; i++ {
		pfx := netip.MustParsePrefix(prefixCIDRs[rng.Intn(len(prefixCIDRs))])
		e := ios.PrefixListEntry{Seq: 10, Permit: true, Prefix: pfx.Masked()}
		if rng.Intn(2) == 0 {
			le := pfx.Bits() + rng.Intn(33-pfx.Bits())
			if le > pfx.Bits() {
				e.Le = le
			}
		}
		cfg.AddPrefixList(fmt.Sprintf("PL%d", i), e)
	}
	for i := 0; i < 2; i++ {
		cfg.AddCommunityList(fmt.Sprintf("CE%d", i), true,
			ios.CommunityListEntry{Permit: true, Values: []string{commRegexes[rng.Intn(len(commRegexes))]}})
	}
	cfg.AddCommunityList("CS0", false,
		ios.CommunityListEntry{Permit: true, Values: []string{communities[rng.Intn(len(communities))]}})

	rm := cfg.AddRouteMap(mapName)
	for i := 0; i < nStanzas; i++ {
		st := &ios.Stanza{Seq: (i + 1) * 10, Permit: rng.Intn(3) != 0}
		for _, m := range randomMatches(rng) {
			st.Matches = append(st.Matches, m)
		}
		if st.Permit {
			st.Sets = randomSets(rng)
		}
		rm.Stanzas = append(rm.Stanzas, st)
	}
	return cfg
}

func randomMatches(rng *rand.Rand) []ios.Match {
	var out []ios.Match
	if rng.Intn(3) == 0 {
		out = append(out, ios.MatchASPath{List: fmt.Sprintf("AS%d", rng.Intn(3))})
	}
	if rng.Intn(2) == 0 {
		out = append(out, ios.MatchPrefixList{List: fmt.Sprintf("PL%d", rng.Intn(3))})
	}
	if rng.Intn(5) == 0 {
		out = append(out, ios.MatchNextHop{List: fmt.Sprintf("PL%d", rng.Intn(3))})
	}
	if rng.Intn(3) == 0 {
		if rng.Intn(3) == 0 {
			out = append(out, ios.MatchCommunity{List: "CS0"})
		} else {
			out = append(out, ios.MatchCommunity{List: fmt.Sprintf("CE%d", rng.Intn(2))})
		}
	}
	if rng.Intn(4) == 0 {
		out = append(out, ios.MatchLocalPref{Value: localPrefs[rng.Intn(len(localPrefs))]})
	}
	if rng.Intn(5) == 0 {
		out = append(out, ios.MatchMetric{Value: meds[rng.Intn(len(meds))]})
	}
	if rng.Intn(6) == 0 {
		out = append(out, ios.MatchTag{Value: uint32(rng.Intn(4))})
	}
	return out
}

func randomSets(rng *rand.Rand) []ios.SetClause {
	var out []ios.SetClause
	if rng.Intn(2) == 0 {
		out = append(out, ios.SetMetric{Value: meds[rng.Intn(len(meds))]})
	}
	if rng.Intn(3) == 0 {
		out = append(out, ios.SetLocalPref{Value: localPrefs[rng.Intn(len(localPrefs))]})
	}
	if rng.Intn(3) == 0 {
		out = append(out, ios.SetCommunity{
			Communities: []string{communities[rng.Intn(len(communities))]},
			Additive:    rng.Intn(2) == 0,
		})
	}
	if rng.Intn(4) == 0 {
		out = append(out, ios.SetWeight{Value: uint16(rng.Intn(100))})
	}
	if rng.Intn(4) == 0 {
		out = append(out, ios.SetTag{Value: uint32(rng.Intn(4))})
	}
	return out
}

// ACL builds a random ACL with n entries over small address/port pools.
func ACL(rng *rand.Rand, name string, n int) *ios.Config {
	cfg := ios.NewConfig()
	acl := cfg.AddACL(name)
	for i := 0; i < n; i++ {
		acl.Entries = append(acl.Entries, RandomACE(rng, (i+1)*10))
	}
	return cfg
}

// RandomACE draws one access-control entry.
func RandomACE(rng *rand.Rand, seq int) *ios.ACE {
	protos := []ios.ProtoSpec{{Any: true}, {Value: 6}, {Value: 17}, {Value: 1}}
	e := &ios.ACE{
		Seq:      seq,
		Permit:   rng.Intn(2) == 0,
		Protocol: protos[rng.Intn(len(protos))],
		Src:      randomAddrSpec(rng),
		Dst:      randomAddrSpec(rng),
	}
	if !e.Protocol.Any && (e.Protocol.Value == 6 || e.Protocol.Value == 17) {
		e.SrcPort = randomPortSpec(rng)
		e.DstPort = randomPortSpec(rng)
		if e.Protocol.Value == 6 && rng.Intn(5) == 0 {
			e.Established = true
		}
	}
	if !e.Protocol.Any && e.Protocol.Value == 1 && rng.Intn(2) == 0 {
		spec := &ios.ICMPSpec{Type: []uint8{0, 3, 8, 11}[rng.Intn(4)]}
		if rng.Intn(2) == 0 {
			spec.HasCode = true
			spec.Code = uint8(rng.Intn(2))
		}
		e.ICMP = spec
	}
	return e
}

func randomAddrSpec(rng *rand.Rand) ios.AddrSpec {
	switch rng.Intn(4) {
	case 0:
		return ios.AddrSpec{Any: true}
	case 1:
		return ios.AddrSpec{Addr: netip.MustParseAddr([]string{"1.1.1.1", "2.2.2.2", "10.0.0.5"}[rng.Intn(3)])}
	default:
		base := []string{"10.0.0.0", "10.0.1.0", "192.168.0.0"}[rng.Intn(3)]
		wild := []uint32{0xFF, 0xFFFF, 0x00FF00FF}[rng.Intn(3)]
		return ios.AddrSpec{Addr: netip.MustParseAddr(base), Wildcard: wild}
	}
}

func randomPortSpec(rng *rand.Rand) ios.PortSpec {
	ports := []uint16{0, 22, 80, 179, 1024, 65535}
	switch rng.Intn(6) {
	case 0:
		return ios.PortSpec{}
	case 1:
		return ios.PortSpec{Op: ios.PortEq, Lo: ports[rng.Intn(len(ports))]}
	case 2:
		return ios.PortSpec{Op: ios.PortNeq, Lo: ports[rng.Intn(len(ports))]}
	case 3:
		return ios.PortSpec{Op: ios.PortLt, Lo: ports[rng.Intn(len(ports))]}
	case 4:
		return ios.PortSpec{Op: ios.PortGt, Lo: ports[rng.Intn(len(ports))]}
	default:
		lo := ports[rng.Intn(3)]
		return ios.PortSpec{Op: ios.PortRange, Lo: lo, Hi: lo + uint16(rng.Intn(1000))}
	}
}
