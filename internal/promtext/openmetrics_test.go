package promtext

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterClassicFormat(t *testing.T) {
	var buf bytes.Buffer
	p := &Writer{W: &buf}
	p.Counter("x_requests_total", "Requests.", 3)
	p.Histogram("x_latency_ms", "stage", "update", []float64{1, 5}, []int64{2, 1}, 4, 12.5,
		[]*Exemplar{{TraceID: "abc", Value: 0.5}})
	p.EOF()
	out := buf.String()
	if strings.Contains(out, "# EOF") {
		t.Fatalf("classic format must not emit # EOF:\n%s", out)
	}
	if strings.Contains(out, "trace_id") {
		t.Fatalf("classic format must not emit exemplars:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE x_requests_total counter") {
		t.Fatalf("classic counter family keeps _total in TYPE:\n%s", out)
	}
	if !strings.Contains(out, `x_latency_ms_bucket{stage="update",le="+Inf"} 4`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestWriterOpenMetricsFormat(t *testing.T) {
	var buf bytes.Buffer
	p := &Writer{W: &buf, OpenMetrics: true}
	p.Counter("x_requests_total", "Requests.", 3)
	p.Gauge("x_depth", "Depth.", 1)
	p.Header("x_latency_ms", "histogram", "Latency.")
	p.Histogram("x_latency_ms", "stage", "update", []float64{1, 5}, []int64{2, 1}, 4, 12.5,
		[]*Exemplar{{TraceID: "abc123", Value: 0.5, Ts: 1700000000}, nil, {TraceID: "def456", Value: 99}})
	p.EOF()
	out := buf.String()
	if !strings.Contains(out, "# TYPE x_requests counter") {
		t.Fatalf("OpenMetrics counter family must drop _total in TYPE:\n%s", out)
	}
	if !strings.Contains(out, "x_requests_total 3") {
		t.Fatalf("OpenMetrics counter sample keeps _total:\n%s", out)
	}
	if !strings.Contains(out, `x_latency_ms_bucket{stage="update",le="1"} 2 # {trace_id="abc123"} 0.5 1700000000`) {
		t.Fatalf("missing bucket exemplar:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"} 4 # {trace_id="def456"} 99`) {
		t.Fatalf("missing +Inf exemplar:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics document must end with # EOF:\n%s", out)
	}
	if err := ValidateOpenMetrics(buf.Bytes()); err != nil {
		t.Fatalf("writer output does not validate: %v", err)
	}
}

func TestContentType(t *testing.T) {
	if got := (&Writer{}).ContentType(); !strings.Contains(got, "version=0.0.4") {
		t.Fatalf("classic content type = %q", got)
	}
	if got := (&Writer{OpenMetrics: true}).ContentType(); !strings.Contains(got, "openmetrics-text") {
		t.Fatalf("openmetrics content type = %q", got)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no EOF", "# TYPE a gauge\na 1\n"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\na 2\n"},
		{"empty line", "# TYPE a gauge\n\na 1\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a counter\n# EOF\n"},
		{"unknown type", "# TYPE a widget\n# EOF\n"},
		{"bad value", "# TYPE a gauge\na one\n# EOF\n"},
		{"counter sample without _total", "# TYPE a counter\na 1\n# EOF\n"},
		{"histogram sample with bare name", "# TYPE a histogram\na 1\n# EOF\n"},
		{"exemplar on gauge", "# TYPE a gauge\na 1 # {trace_id=\"x\"} 1\n# EOF\n"},
		{"unterminated labels", "# TYPE a gauge\na{x=\"y 1\n# EOF\n"},
		{"bad exemplar", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 1 # nope\n# EOF\n"},
		{"bad metric name", "# TYPE a gauge\n1a 1\n# EOF\n"},
	}
	for _, tc := range cases {
		if err := ValidateOpenMetrics([]byte(tc.doc)); err == nil {
			t.Errorf("%s: validated but should not:\n%s", tc.name, tc.doc)
		}
	}
}

func TestValidateOpenMetricsAccepts(t *testing.T) {
	doc := "# HELP a_total Things.\n# TYPE a counter\na_total 1 # {trace_id=\"t1\"} 2 3\n" +
		"# TYPE b histogram\nb_bucket{x=\"y\",le=\"+Inf\"} 1 # {trace_id=\"t2\"} 0.5\nb_sum{x=\"y\"} 0.5\nb_count{x=\"y\"} 1\n" +
		"# TYPE c gauge\nc{v=\"esc\\\"aped\"} +Inf\n# EOF\n"
	if err := ValidateOpenMetrics([]byte(doc)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}
