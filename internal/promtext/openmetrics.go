package promtext

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exemplar is one OpenMetrics exemplar: a trace reference attached to a
// histogram bucket (or counter) sample, rendered as
// "# {trace_id=\"...\"} value ts". Zero Ts omits the timestamp.
type Exemplar struct {
	// TraceID links the sample to a retained trace at /debug/traces/{id}.
	TraceID string
	// Value is the exemplared observation (milliseconds for latency series).
	Value float64
	// Ts is the observation time in unix seconds; 0 omits it.
	Ts float64
}

// Writer renders one exposition document in either the Prometheus text
// format (version 0.0.4) or OpenMetrics 1.0. The two differ where it
// matters for scrapers: OpenMetrics declares a counter family by its base
// name (samples keep the _total suffix), allows exemplars on histogram
// bucket lines, and terminates the document with "# EOF". The classic
// format ignores exemplars so 0.0.4 consumers never see the richer syntax.
type Writer struct {
	W           io.Writer
	OpenMetrics bool
}

// Header writes the # HELP / # TYPE preamble for one metric family. In
// OpenMetrics mode a counter family named x_total is declared as family x.
func (p *Writer) Header(name, kind, help string) {
	fam := name
	if p.OpenMetrics && kind == "counter" {
		fam = strings.TrimSuffix(name, "_total")
	}
	fmt.Fprintf(p.W, "# HELP %s %s\n# TYPE %s %s\n", fam, help, fam, kind)
}

// Counter writes a single unlabelled counter sample with its preamble.
func (p *Writer) Counter(name, help string, v float64) {
	p.Header(name, "counter", help)
	fmt.Fprintf(p.W, "%s %s\n", name, FormatFloat(v))
}

// Gauge writes a single unlabelled gauge sample with its preamble.
func (p *Writer) Gauge(name, help string, v float64) {
	p.Header(name, "gauge", help)
	fmt.Fprintf(p.W, "%s %s\n", name, FormatFloat(v))
}

// Sample writes one labelled sample line (no preamble); pass the label set
// preformatted, e.g. `backend="b0"`.
func (p *Writer) Sample(name, labels string, v float64) {
	Sample(p.W, name, labels, v)
}

// Histogram writes one labelled histogram series: cumulative le buckets, an
// explicit +Inf bucket, then _sum and _count. exemplars, when non-nil, holds
// one optional exemplar per bucket (len(bucketsMs)+1, the last for +Inf) and
// is rendered only in OpenMetrics mode.
func (p *Writer) Histogram(name, labelKey, labelVal string, bucketsMs []float64, counts []int64, total int64, sumMs float64, exemplars []*Exemplar) {
	label := labelKey + "=" + QuoteLabel(labelVal)
	var cum int64
	for i, ub := range bucketsMs {
		cum += counts[i]
		fmt.Fprintf(p.W, "%s_bucket{%s,le=%s} %d%s\n",
			name, label, QuoteLabel(FormatFloat(ub)), cum, p.exemplarSuffix(exemplars, i))
	}
	fmt.Fprintf(p.W, "%s_bucket{%s,le=\"+Inf\"} %d%s\n",
		name, label, total, p.exemplarSuffix(exemplars, len(bucketsMs)))
	fmt.Fprintf(p.W, "%s_sum{%s} %s\n", name, label, FormatFloat(sumMs))
	fmt.Fprintf(p.W, "%s_count{%s} %d\n", name, label, total)
}

// exemplarSuffix renders the " # {...} value ts" tail for bucket i, or "".
func (p *Writer) exemplarSuffix(exemplars []*Exemplar, i int) string {
	if !p.OpenMetrics || i >= len(exemplars) || exemplars[i] == nil || exemplars[i].TraceID == "" {
		return ""
	}
	e := exemplars[i]
	s := " # {trace_id=" + QuoteLabel(e.TraceID) + "} " + FormatFloat(e.Value)
	if e.Ts > 0 {
		s += " " + FormatFloat(e.Ts)
	}
	return s
}

// EOF terminates an OpenMetrics document; a no-op in 0.0.4 mode.
func (p *Writer) EOF() {
	if p.OpenMetrics {
		io.WriteString(p.W, "# EOF\n")
	}
}

// ContentType is the response Content-Type for the writer's format.
func (p *Writer) ContentType() string {
	if p.OpenMetrics {
		return "application/openmetrics-text; version=1.0.0; charset=utf-8"
	}
	return "text/plain; version=0.0.4; charset=utf-8"
}

// ValidateOpenMetrics checks an exposition document against the OpenMetrics
// constraints this repo relies on: a final "# EOF" line with nothing after
// it, well-formed HELP/TYPE comments, one TYPE per family, sample names
// consistent with their family's declared type (counter samples carry
// _total, histogram samples _bucket/_sum/_count), parseable values, and
// exemplar syntax only on bucket or counter lines. It is the CI gate that
// keeps the exemplar-enriched output scrapable.
func ValidateOpenMetrics(data []byte) error {
	text := string(data)
	if !strings.HasSuffix(text, "# EOF\n") {
		return fmt.Errorf("promtext: document must end with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	types := map[string]string{} // family -> type
	for n, line := range lines {
		lineNo := n + 1
		if line == "" {
			return fmt.Errorf("promtext: line %d: empty line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				if lineNo != len(lines) {
					return fmt.Errorf("promtext: line %d: # EOF before end of document", lineNo)
				}
				continue
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return fmt.Errorf("promtext: line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("promtext: line %d: TYPE needs a family and a type", lineNo)
				}
				fam, typ := fields[2], fields[3]
				if _, dup := types[fam]; dup {
					return fmt.Errorf("promtext: line %d: duplicate TYPE for %s", lineNo, fam)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "unknown", "info", "stateset", "gaugehistogram":
				default:
					return fmt.Errorf("promtext: line %d: unknown type %q", lineNo, typ)
				}
				types[fam] = typ
			case "HELP", "UNIT":
			default:
				return fmt.Errorf("promtext: line %d: unknown comment keyword %q", lineNo, fields[1])
			}
			continue
		}
		if err := validateSample(line, types); err != nil {
			return fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
	}
	return nil
}

// validateSample checks one metric line "name[{labels}] value [ts] [# {...} v [ts]]".
func validateSample(line string, types map[string]string) error {
	name := line
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name = line[:i]
	}
	if name == "" || !isMetricName(name) {
		return fmt.Errorf("bad metric name in %q", line)
	}
	rest := line[len(name):]
	if strings.HasPrefix(rest, "{") {
		end := labelSetEnd(rest)
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	valuePart := rest
	var exemplarPart string
	if i := strings.Index(rest, " # "); i >= 0 {
		valuePart, exemplarPart = rest[:i], rest[i+3:]
	}
	valueFields := strings.Fields(valuePart)
	if len(valueFields) < 1 || len(valueFields) > 2 {
		return fmt.Errorf("want value [timestamp], got %q", valuePart)
	}
	for _, f := range valueFields {
		if !isValidValue(f) {
			return fmt.Errorf("bad number %q", f)
		}
	}
	fam, suffix := familyOf(name, types)
	if typ, ok := types[fam]; ok {
		if err := checkSuffix(typ, suffix); err != nil {
			return err
		}
	}
	if exemplarPart != "" {
		if suffix != "_bucket" && suffix != "_total" {
			return fmt.Errorf("exemplar on non-bucket/counter sample %q", name)
		}
		if err := validateExemplar(exemplarPart); err != nil {
			return err
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family plus the suffix the
// sample carries relative to it ("" for a bare match).
func familyOf(name string, types map[string]string) (string, string) {
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count", "_created"} {
		if fam, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[fam]; declared {
				return fam, suf
			}
		}
	}
	return name, ""
}

// checkSuffix enforces the sample-name shape each family type allows.
func checkSuffix(typ, suffix string) error {
	ok := false
	switch typ {
	case "counter":
		ok = suffix == "_total" || suffix == "_created"
	case "histogram":
		ok = suffix == "_bucket" || suffix == "_sum" || suffix == "_count" || suffix == "_created"
	default:
		ok = suffix == ""
	}
	if !ok {
		return fmt.Errorf("sample suffix %q invalid for %s family", suffix, typ)
	}
	return nil
}

// validateExemplar checks the "{labels} value [ts]" tail after "# ".
func validateExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar must start with a label set, got %q", s)
	}
	end := labelSetEnd(s)
	if end < 0 {
		return fmt.Errorf("unterminated exemplar label set in %q", s)
	}
	fields := strings.Fields(s[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar wants value [timestamp], got %q", s[end:])
	}
	for _, f := range fields {
		if !isValidValue(f) {
			return fmt.Errorf("bad exemplar number %q", f)
		}
	}
	return nil
}

// labelSetEnd returns the index just past the closing '}' of a label set
// starting at s[0] == '{', honouring quoted values with escapes; -1 if
// unterminated.
func labelSetEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i + 1
			}
		}
	}
	return -1
}

func isMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func isValidValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
