// Package promtext writes the Prometheus text exposition format (version
// 0.0.4). It carries the conventions shared by every exposition surface in
// this repo — clarifyd's /metrics and clarify-lb's /metrics — so the two
// daemons render identically-shaped series: durations in milliseconds with
// an explicit _ms suffix, histograms as cumulative le buckets plus +Inf,
// _sum and _count, and label values escaped per the format.
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Header writes the # HELP / # TYPE preamble for one metric family.
func Header(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// Counter writes a single unlabelled counter sample with its preamble.
func Counter(w io.Writer, name, help string, v float64) {
	Header(w, name, "counter", help)
	fmt.Fprintf(w, "%s %s\n", name, FormatFloat(v))
}

// Gauge writes a single unlabelled gauge sample with its preamble.
func Gauge(w io.Writer, name, help string, v float64) {
	Header(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %s\n", name, FormatFloat(v))
}

// Sample writes one labelled sample line (no preamble); pass the label set
// preformatted, e.g. `backend="b0"`.
func Sample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, FormatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, FormatFloat(v))
}

// Histogram writes one labelled histogram series: cumulative le buckets, an
// explicit +Inf bucket, then _sum and _count. bucketsMs holds the upper
// bounds; counts has one entry per bound (the +Inf remainder is derived from
// total).
func Histogram(w io.Writer, name, labelKey, labelVal string, bucketsMs []float64, counts []int64, total int64, sumMs float64) {
	(&Writer{W: w}).Histogram(name, labelKey, labelVal, bucketsMs, counts, total, sumMs, nil)
}

// FormatFloat renders a sample value the way Prometheus expects: no
// exponent for typical magnitudes, no trailing zeros.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// QuoteLabel escapes a label value per the exposition format.
func QuoteLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// SortedKeys returns a map's keys in sorted order, for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
