package atoms

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/clarifynet/clarify/ciscorx"
	"github.com/clarifynet/clarify/rx"
)

func buildPath(t *testing.T, patterns ...string) *Universe {
	t.Helper()
	u, err := Build(patterns, ciscorx.CompilePath, ciscorx.ValidPath())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSinglePattern(t *testing.T) {
	u := buildPath(t, "_32$")
	if len(u.Patterns) != 1 {
		t.Fatalf("patterns = %v", u.Patterns)
	}
	// Two atoms: inside and outside _32$.
	if u.NumAtoms() != 2 {
		t.Fatalf("atoms = %d, want 2", u.NumAtoms())
	}
	in := u.MatchingAtoms(0)
	if len(in) != 1 {
		t.Fatalf("matching atoms = %v", in)
	}
	if got := u.Atoms[in[0]].Witness; got != "^32$" {
		t.Errorf("witness = %q", got)
	}
}

func TestDisjointAndOverlappingPatterns(t *testing.T) {
	// _10_ and _20_ overlap (a path can contain both).
	u := buildPath(t, "_10_", "_20_")
	// Regions: both, only-10, only-20, neither → 4.
	if u.NumAtoms() != 4 {
		t.Fatalf("atoms = %d, want 4", u.NumAtoms())
	}
	// Classification of concrete paths.
	cases := []struct {
		subject string
		in10    bool
		in20    bool
	}{
		{ciscorx.PathSubject([]uint32{10}), true, false},
		{ciscorx.PathSubject([]uint32{20}), false, true},
		{ciscorx.PathSubject([]uint32{10, 20}), true, true},
		{ciscorx.PathSubject([]uint32{30}), false, false},
	}
	for _, c := range cases {
		ai := u.Classify(c.subject)
		if ai < 0 {
			t.Fatalf("Classify(%q) = -1", c.subject)
		}
		a := u.Atoms[ai]
		if a.InLang[0] != c.in10 || a.InLang[1] != c.in20 {
			t.Errorf("Classify(%q): sig %v, want (%v,%v)", c.subject, a.InLang, c.in10, c.in20)
		}
	}
}

func TestDuplicatePatternsDeduplicated(t *testing.T) {
	u := buildPath(t, "_5$", "_5$", "_5$")
	if len(u.Patterns) != 1 || u.NumAtoms() != 2 {
		t.Fatalf("dedup failed: %d patterns, %d atoms", len(u.Patterns), u.NumAtoms())
	}
	if u.PatternIndex("_5$") != 0 || u.PatternIndex("_6$") != -1 {
		t.Error("PatternIndex wrong")
	}
}

func TestEmptyPatternSet(t *testing.T) {
	u := buildPath(t)
	if u.NumAtoms() != 1 {
		t.Fatalf("empty pattern set should yield the single universal atom, got %d", u.NumAtoms())
	}
	if u.Classify("^1 2$") != 0 {
		t.Error("every valid subject should classify into the universal atom")
	}
	if u.Classify("garbage") != -1 {
		t.Error("invalid subject should classify to -1")
	}
}

func TestSubsetPatterns(t *testing.T) {
	// ^32$ ⊂ _32$: expect atoms {^32$}, {_32$ minus ^32$}, {rest}.
	u := buildPath(t, "_32$", "^32$")
	if u.NumAtoms() != 3 {
		t.Fatalf("atoms = %d, want 3", u.NumAtoms())
	}
	exactIdx := u.Classify("^32$")
	a := u.Atoms[exactIdx]
	if !a.InLang[0] || !a.InLang[1] {
		t.Error("^32$ should be inside both patterns")
	}
	longIdx := u.Classify("^7 32$")
	b := u.Atoms[longIdx]
	if !b.InLang[0] || b.InLang[1] {
		t.Error("^7 32$ should be inside _32$ only")
	}
}

func TestCommunityUniverse(t *testing.T) {
	u, err := Build([]string{"_300:3_", "^100:[0-9]+$"}, ciscorx.CompileCommunity, ciscorx.ValidCommunity())
	if err != nil {
		t.Fatal(err)
	}
	// The two community languages are disjoint → 3 atoms.
	if u.NumAtoms() != 3 {
		t.Fatalf("atoms = %d, want 3", u.NumAtoms())
	}
	if ai := u.Classify(ciscorx.CommunitySubject("300:3")); !u.Atoms[ai].InLang[0] || u.Atoms[ai].InLang[1] {
		t.Error("300:3 classification wrong")
	}
	if ai := u.Classify(ciscorx.CommunitySubject("100:77")); u.Atoms[ai].InLang[0] || !u.Atoms[ai].InLang[1] {
		t.Error("100:77 classification wrong")
	}
}

// TestQuickPartitionProperties: atoms form a partition — every valid subject
// classifies into exactly one atom, and that atom's signature agrees with
// direct pattern matching.
func TestQuickPartitionProperties(t *testing.T) {
	patterns := []string{"_10_", "_20_", "^10_", "_30$"}
	u := buildPath(t, patterns...)
	dfas := make([]*rx.DFA, len(patterns))
	for i, p := range patterns {
		d, err := ciscorx.CompilePath(p)
		if err != nil {
			t.Fatal(err)
		}
		dfas[i] = d
	}
	rng := rand.New(rand.NewSource(17))
	check := func() bool {
		// Random path of 0..4 ASNs drawn from a small pool to force overlaps.
		n := rng.Intn(5)
		asns := make([]uint32, n)
		var parts []string
		for i := range asns {
			asns[i] = []uint32{10, 20, 30, 5}[rng.Intn(4)]
			parts = append(parts, subjectNum(asns[i]))
		}
		subject := "^" + strings.Join(parts, " ") + "$"
		ai := u.Classify(subject)
		if ai < 0 {
			return false
		}
		// Exactly one atom contains the subject.
		count := 0
		for _, a := range u.Atoms {
			if a.dfa.Matches(subject) {
				count++
			}
		}
		if count != 1 {
			return false
		}
		// Signature agreement.
		for i, d := range dfas {
			if u.Atoms[ai].InLang[i] != d.Matches(subject) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func subjectNum(v uint32) string { return itoa(v) }

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestQuickWitnessMembership: every atom's witness matches exactly the
// patterns its signature claims.
func TestQuickWitnessMembership(t *testing.T) {
	u := buildPath(t, "_10_", "_20_", "_10 20_")
	for ai, a := range u.Atoms {
		for pi, pat := range u.Patterns {
			d, err := ciscorx.CompilePath(pat)
			if err != nil {
				t.Fatal(err)
			}
			if d.Matches(a.Witness) != a.InLang[pi] {
				t.Errorf("atom %d witness %q: pattern %q mismatch", ai, a.Witness, pat)
			}
		}
	}
}

func TestWitnessWhere(t *testing.T) {
	u := buildPath(t, "^1(0)*$")
	in := u.MatchingAtoms(0)[0]
	// Require a witness of length ≥ 5 ("^100$" ...), forcing enumeration past
	// the shortest string "^1$".
	w, ok := u.WitnessWhere(in, 10, func(s string) bool { return len(s) >= 5 })
	if !ok || !strings.HasPrefix(w, "^10") {
		t.Errorf("WitnessWhere = %q, %v", w, ok)
	}
	if _, ok := u.WitnessWhere(in, 3, func(s string) bool { return false }); ok {
		t.Error("unsatisfiable accept should fail")
	}
}
