// Package atoms computes atomic predicates over a set of regular expressions:
// the coarsest partition of a (regular) universe such that every input regex
// is a union of partition classes.
//
// This is the construction Batfish-style symbolic route analysis uses to
// reason about community and AS-path matching with boolean variables: each
// atom gets one BDD variable, a concrete attribute value falls in exactly one
// atom, and "value matches regex R" becomes the disjunction of the atoms
// contained in L(R).
package atoms

import (
	"fmt"

	"github.com/clarifynet/clarify/rx"
)

// Atom is one non-empty equivalence class of the partition.
type Atom struct {
	// InLang[i] reports whether the atom is contained in L(Patterns[i]).
	InLang []bool
	// Witness is a shortest member of the atom, used to decode symbolic
	// models into concrete attribute values.
	Witness string

	dfa *rx.DFA
}

// Universe is the atomic-predicate partition for one pattern set.
type Universe struct {
	// Patterns are the distinct input regexes, in first-seen order.
	Patterns []string
	// Atoms are the non-empty classes. Every string of the valid universe
	// belongs to exactly one atom.
	Atoms []Atom

	index map[string]int // pattern → position in Patterns
}

// Build computes the partition of the language of valid under the given
// patterns. compile maps each pattern to its automaton (already restricted to
// valid subjects, as ciscorx does). Duplicate patterns are deduplicated.
//
// The construction is iterative refinement: starting from {valid}, each
// pattern splits every current region into the part inside and the part
// outside its language; empty parts are dropped. The region count is bounded
// by 2^n but is small in practice because route-policy regexes overlap
// little.
func Build(patterns []string, compile func(string) (*rx.DFA, error), valid *rx.DFA) (*Universe, error) {
	u := &Universe{index: map[string]int{}}
	var dfas []*rx.DFA
	for _, p := range patterns {
		if _, dup := u.index[p]; dup {
			continue
		}
		d, err := compile(p)
		if err != nil {
			return nil, fmt.Errorf("atoms: %w", err)
		}
		u.index[p] = len(u.Patterns)
		u.Patterns = append(u.Patterns, p)
		dfas = append(dfas, d)
	}

	type region struct {
		dfa *rx.DFA
		sig []bool
	}
	regions := []region{{dfa: valid, sig: nil}}
	for i, d := range dfas {
		next := make([]region, 0, len(regions)*2)
		for _, r := range regions {
			in := r.dfa.Intersect(d)
			out := r.dfa.Minus(d)
			if !in.IsEmpty() {
				next = append(next, region{dfa: in, sig: appendSig(r.sig, i, true)})
			}
			if !out.IsEmpty() {
				next = append(next, region{dfa: out, sig: appendSig(r.sig, i, false)})
			}
		}
		regions = next
	}
	for _, r := range regions {
		w, ok := r.dfa.ShortestString()
		if !ok {
			continue // unreachable: empty regions were dropped
		}
		sig := r.sig
		if sig == nil {
			sig = []bool{}
		}
		u.Atoms = append(u.Atoms, Atom{InLang: sig, Witness: w, dfa: r.dfa})
	}
	return u, nil
}

func appendSig(sig []bool, i int, v bool) []bool {
	out := make([]bool, i+1)
	copy(out, sig)
	out[i] = v
	return out
}

// NumAtoms reports the partition size.
func (u *Universe) NumAtoms() int { return len(u.Atoms) }

// PatternIndex returns the position of pattern, or -1 if it was not supplied
// to Build.
func (u *Universe) PatternIndex(pattern string) int {
	if i, ok := u.index[pattern]; ok {
		return i
	}
	return -1
}

// MatchingAtoms returns the indices of the atoms contained in
// L(Patterns[patternIdx]) — the disjuncts of the pattern's boolean encoding.
func (u *Universe) MatchingAtoms(patternIdx int) []int {
	var out []int
	for ai, a := range u.Atoms {
		if a.InLang[patternIdx] {
			out = append(out, ai)
		}
	}
	return out
}

// Classify returns the index of the atom containing subject, or -1 when the
// subject lies outside the valid universe.
func (u *Universe) Classify(subject string) int {
	for ai, a := range u.Atoms {
		if a.dfa.Matches(subject) {
			return ai
		}
	}
	return -1
}

// WitnessWhere returns a member of atom ai satisfying accept, trying the
// stored shortest witness first and then enumerating members up to maxLen.
// It is used when decoded values carry side conditions the automaton does
// not encode (e.g. numeric overflow of five-digit tokens).
func (u *Universe) WitnessWhere(ai int, maxLen int, accept func(string) bool) (string, bool) {
	a := u.Atoms[ai]
	if accept(a.Witness) {
		return a.Witness, true
	}
	var found string
	ok := false
	a.dfa.EnumerateStrings(maxLen, func(s string) bool {
		if accept(s) {
			found, ok = s, true
			return false
		}
		return true
	})
	return found, ok
}
