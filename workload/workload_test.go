package workload

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
)

func TestCorpusSizes(t *testing.T) {
	c := Cloud(1, 50, 60)
	if len(c.ACLConfigs) != 50 || len(c.RouteMapConfigs) != 60 {
		t.Fatalf("cloud sizes = %d/%d", len(c.ACLConfigs), len(c.RouteMapConfigs))
	}
	k := Campus(1, 70, 30)
	if len(k.ACLConfigs) != 70 || len(k.RouteMapConfigs) != 30 {
		t.Fatalf("campus sizes = %d/%d", len(k.ACLConfigs), len(k.RouteMapConfigs))
	}
	if k.Devices != CampusDeviceCount {
		t.Errorf("campus devices = %d", k.Devices)
	}
}

func TestGeneratedConfigsRoundTrip(t *testing.T) {
	// Every generated config prints to valid IOS that reparses equal.
	c := Cloud(3, 20, 20)
	all := append(append([]*ios.Config{}, c.ACLConfigs...), c.RouteMapConfigs...)
	k := Campus(3, 20, 10)
	all = append(append(all, k.ACLConfigs...), k.RouteMapConfigs...)
	for i, cfg := range all {
		text := cfg.Print()
		back, err := ios.Parse(text)
		if err != nil {
			t.Fatalf("config %d does not reparse: %v\n%s", i, err, text)
		}
		if back.Print() != text {
			t.Fatalf("config %d not round-trip stable", i)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", i, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Cloud(42, 15, 15)
	b := Cloud(42, 15, 15)
	for i := range a.ACLConfigs {
		if a.ACLConfigs[i].Print() != b.ACLConfigs[i].Print() {
			t.Fatalf("ACL %d differs across runs with the same seed", i)
		}
	}
	for i := range a.RouteMapConfigs {
		if a.RouteMapConfigs[i].Print() != b.RouteMapConfigs[i].Print() {
			t.Fatalf("route-map %d differs across runs with the same seed", i)
		}
	}
}

func TestArchetypeProperties(t *testing.T) {
	space := symbolic.NewACLSpace()
	// messy: non-trivial conflicts, quadratic-ish.
	messy := messyACL(nil, "M", 12)
	st := analysis.AnalyzeACL(space, messy.ACLs["M"])
	if st.NonTrivial == 0 || st.NonTrivial != st.Conflicting {
		t.Errorf("messy: %+v, want all conflicts non-trivial", st)
	}
	if st.Conflicting <= 20 {
		t.Errorf("messy(12) conflicts = %d, want > 20", st.Conflicting)
	}
	// guarded: conflicts are all proper-subset pairs.
	g := guardedACL(newRng(), "G", 10)
	st = analysis.AnalyzeACL(space, g.ACLs["G"])
	if st.Conflicting == 0 || st.NonTrivial != 0 {
		t.Errorf("guarded: %+v, want subset-only conflicts", st)
	}
	// clean: no overlaps at all.
	cl := cleanACL(newRng(), "C")
	st = analysis.AnalyzeACL(space, cl.ACLs["C"])
	if st.Overlaps != 0 {
		t.Errorf("clean: %+v, want no overlaps", st)
	}
}

func TestRouteMapArchetypes(t *testing.T) {
	heavy := communityHeavyRouteMap(newRng(), "H", 8)
	space, err := symbolic.NewRouteSpace(heavy)
	if err != nil {
		t.Fatal(err)
	}
	st, err := analysis.AnalyzeRouteMap(space, heavy, heavy.RouteMaps["H"])
	if err != nil {
		t.Fatal(err)
	}
	if st.Overlaps != 8*7/2 {
		t.Errorf("heavy overlaps = %d, want %d", st.Overlaps, 8*7/2)
	}

	clean := cleanRouteMap(newRng(), "C", 4)
	space2, err := symbolic.NewRouteSpace(clean)
	if err != nil {
		t.Fatal(err)
	}
	st, err = analysis.AnalyzeRouteMap(space2, clean, clean.RouteMaps["C"])
	if err != nil {
		t.Fatal(err)
	}
	if st.Overlaps != 0 {
		t.Errorf("clean overlaps = %d", st.Overlaps)
	}

	trip := campusTriplet("T")
	space3, err := symbolic.NewRouteSpace(trip)
	if err != nil {
		t.Fatal(err)
	}
	st, err = analysis.AnalyzeRouteMap(space3, trip, trip.RouteMaps["T"])
	if err != nil {
		t.Fatal(err)
	}
	if st.Overlaps != 3 || st.Conflicting != 2 {
		t.Errorf("triplet = %+v, want 3 pairs / 2 conflicting", st)
	}

	pair := campusPair("P")
	space4, err := symbolic.NewRouteSpace(pair)
	if err != nil {
		t.Fatal(err)
	}
	st, err = analysis.AnalyzeRouteMap(space4, pair, pair.RouteMaps["P"])
	if err != nil {
		t.Fatal(err)
	}
	if st.Overlaps != 1 || st.Conflicting != 0 {
		t.Errorf("pair = %+v, want 1 pair / 0 conflicting", st)
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewSource(1)) }
