// Package workload generates the synthetic configuration corpora standing in
// for the proprietary networks of the paper's Section 3 (a large cloud WAN
// and a university campus). The generators are seeded and deterministic, and
// their archetype mix is calibrated so the overlap analyzer reproduces the
// aggregate shape the paper reports:
//
//	cloud:  237 ACLs — 69 with a conflicting overlap, 48 of those with >20,
//	        one edge ACL with >100 overlapping pairs; 800 route-maps — 140
//	        with overlaps, 3 with >20.
//	campus: 11,088 ACLs — 37.7% with conflicting overlaps (27% of those
//	        >20); 18.6% non-trivial after discarding proper-subset pairs
//	        (16.3% of those >20); 169 route-maps — 2 with overlapping
//	        stanzas, one with 3 overlapping pairs of which 2 conflict.
//
// Corpus sizes scale: pass the paper's full counts to regenerate §3, or
// smaller counts for tests and benchmarks; the archetype fractions are
// preserved under scaling.
package workload

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/clarifynet/clarify/ios"
)

// Corpus is one generated network's analyzable configuration set. Each ACL
// and each route-map lives in its own Config so analyses are independent.
type Corpus struct {
	Name    string
	Devices int // informational: the paper's device count for the network
	// ACLConfigs each contain exactly one ACL named "ACL<i>".
	ACLConfigs []*ios.Config
	// RouteMapConfigs each contain exactly one route-map named "RM<i>" plus
	// its ancillary lists.
	RouteMapConfigs []*ios.Config
}

// Paper-reported corpus sizes (§3.1, §3.2).
const (
	CloudACLCount       = 237
	CloudRouteMapCount  = 800
	CampusACLCount      = 11088
	CampusRouteMapCount = 169
	CampusDeviceCount   = 1421
)

// Cloud generates the cloud-WAN corpus at the given scale.
func Cloud(seed int64, nACLs, nRouteMaps int) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{Name: "cloud", Devices: 0}

	// ACL archetypes: one giant edge ACL (>100 overlapping pairs), heavy
	// (>20), light (1..20), clean. Fractions from 237/69/48.
	nHeavy := scale(nACLs, 48, CloudACLCount)
	nLight := scale(nACLs, 69, CloudACLCount) - nHeavy
	giant := 0
	if nACLs >= 10 {
		giant = 1
		if nHeavy > 0 {
			nHeavy--
		}
	}
	idx := 0
	for i := 0; i < giant; i++ {
		c.ACLConfigs = append(c.ACLConfigs, messyACL(rng, aclName(&idx), 32)) // ~2×(k/2)² ≈ 250 pairs
	}
	for i := 0; i < nHeavy; i++ {
		c.ACLConfigs = append(c.ACLConfigs, messyACL(rng, aclName(&idx), 12+rng.Intn(6)))
	}
	for i := 0; i < nLight; i++ {
		c.ACLConfigs = append(c.ACLConfigs, lightOverlapACL(rng, aclName(&idx)))
	}
	for len(c.ACLConfigs) < nACLs {
		c.ACLConfigs = append(c.ACLConfigs, cleanACL(rng, aclName(&idx)))
	}

	// Route maps: 3 heavy (>20 overlaps), (140-3) moderate, rest clean.
	rmHeavy := scale(nRouteMaps, 3, CloudRouteMapCount)
	if nRouteMaps >= 20 && rmHeavy == 0 {
		rmHeavy = 1
	}
	rmModerate := scale(nRouteMaps, 140, CloudRouteMapCount) - rmHeavy
	ridx := 0
	for i := 0; i < rmHeavy; i++ {
		c.RouteMapConfigs = append(c.RouteMapConfigs, communityHeavyRouteMap(rng, rmName(&ridx), 8+rng.Intn(3)))
	}
	for i := 0; i < rmModerate; i++ {
		c.RouteMapConfigs = append(c.RouteMapConfigs, moderateRouteMap(rng, rmName(&ridx)))
	}
	for len(c.RouteMapConfigs) < nRouteMaps {
		c.RouteMapConfigs = append(c.RouteMapConfigs, cleanRouteMap(rng, rmName(&ridx), 2+rng.Intn(4)))
	}
	return c
}

// Campus generates the university-campus corpus at the given scale.
func Campus(seed int64, nACLs, nRouteMaps int) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{Name: "campus", Devices: CampusDeviceCount}

	// From the paper: 37.7% conflicting; 18.6% non-trivial; 27% of
	// conflicting >20 conflicts; 16.3% of non-trivial >20.
	nNonTrivial := scale(nACLs, 186, 1000)
	nNonTrivialLarge := scale(nNonTrivial, 163, 1000)
	nConflicting := scale(nACLs, 377, 1000)
	nConflictingLarge := scale(nConflicting, 270, 1000)
	nGuardLarge := maxInt(0, nConflictingLarge-nNonTrivialLarge)
	nGuardSmall := maxInt(0, nConflicting-nNonTrivial-nGuardLarge)

	idx := 0
	for i := 0; i < nNonTrivialLarge; i++ {
		c.ACLConfigs = append(c.ACLConfigs, messyACL(rng, aclName(&idx), 12+rng.Intn(4)))
	}
	for i := 0; i < nNonTrivial-nNonTrivialLarge; i++ {
		c.ACLConfigs = append(c.ACLConfigs, smallMessyACL(rng, aclName(&idx)))
	}
	for i := 0; i < nGuardLarge; i++ {
		c.ACLConfigs = append(c.ACLConfigs, guardedACL(rng, aclName(&idx), 22+rng.Intn(8)))
	}
	for i := 0; i < nGuardSmall; i++ {
		c.ACLConfigs = append(c.ACLConfigs, guardedACL(rng, aclName(&idx), 2+rng.Intn(8)))
	}
	for len(c.ACLConfigs) < nACLs {
		c.ACLConfigs = append(c.ACLConfigs, cleanACL(rng, aclName(&idx)))
	}

	// Route maps: two special overlapping maps, the rest clean.
	ridx := 0
	if nRouteMaps >= 2 {
		c.RouteMapConfigs = append(c.RouteMapConfigs, campusTriplet(rmName(&ridx)))
		c.RouteMapConfigs = append(c.RouteMapConfigs, campusPair(rmName(&ridx)))
	}
	for len(c.RouteMapConfigs) < nRouteMaps {
		c.RouteMapConfigs = append(c.RouteMapConfigs, cleanRouteMap(rng, rmName(&ridx), 1+rng.Intn(3)))
	}
	return c
}

func aclName(i *int) string { n := fmt.Sprintf("ACL%d", *i); *i++; return n }
func rmName(i *int) string  { n := fmt.Sprintf("RM%d", *i); *i++; return n }

func scale(n, num, den int) int { return (n*num + den/2) / den }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------- ACL archetypes ----------

// messyACL produces quadratically many non-trivial conflicting overlaps:
// alternating permit/deny entries whose destination port ranges partially
// overlap pairwise (neither contains the other).
func messyACL(rng *rand.Rand, name string, k int) *ios.Config {
	cfg := ios.NewConfig()
	acl := cfg.AddACL(name)
	for i := 0; i < k; i++ {
		lo := uint16(i * 10)
		span := uint16(500)
		e := &ios.ACE{
			Seq:      (i + 1) * 10,
			Permit:   i%2 == 0,
			Protocol: ios.ProtoSpec{Value: 6},
			Src:      ios.AddrSpec{Any: true},
			Dst:      ios.AddrSpec{Any: true},
			DstPort:  ios.PortSpec{Op: ios.PortRange, Lo: lo + uint16(i%2)*5, Hi: lo + span + uint16(i%2)*5},
		}
		acl.Entries = append(acl.Entries, e)
	}
	_ = rng
	return cfg
}

// smallMessyACL yields a handful (1..20) of non-trivial conflicts.
func smallMessyACL(rng *rand.Rand, name string) *ios.Config {
	cfg := ios.NewConfig()
	acl := cfg.AddACL(name)
	k := 3 + rng.Intn(4)
	// One destination block per ACL so adjacent port ranges genuinely share
	// packets.
	dst := ios.AddrSpec{Addr: netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), 0, 0}), Wildcard: 0xFFFF}
	for i := 0; i < k; i++ {
		lo := uint16(i * 200)
		e := &ios.ACE{
			Seq:      (i + 1) * 10,
			Permit:   i%2 == 0,
			Protocol: ios.ProtoSpec{Value: 17},
			Src:      ios.AddrSpec{Any: true},
			Dst:      dst,
			DstPort:  ios.PortSpec{Op: ios.PortRange, Lo: lo, Hi: lo + 300},
		}
		acl.Entries = append(acl.Entries, e)
	}
	return cfg
}

// guardedACL is the "trivial overlap" archetype: k-1 specific permits under
// a final deny ip any any; every conflict is a proper-subset pair.
func guardedACL(rng *rand.Rand, name string, k int) *ios.Config {
	cfg := ios.NewConfig()
	acl := cfg.AddACL(name)
	for i := 0; i < k-1; i++ {
		e := &ios.ACE{
			Seq:      (i + 1) * 10,
			Permit:   true,
			Protocol: ios.ProtoSpec{Value: 6},
			Src:      ios.AddrSpec{Addr: netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 1})},
			Dst:      ios.AddrSpec{Addr: netip.AddrFrom4([4]byte{192, 168, byte(i % 250), byte(rng.Intn(250))})},
			DstPort:  ios.PortSpec{Op: ios.PortEq, Lo: uint16(1000 + i)},
		}
		acl.Entries = append(acl.Entries, e)
	}
	acl.Entries = append(acl.Entries, &ios.ACE{
		Seq: k * 10, Permit: false,
		Protocol: ios.ProtoSpec{Any: true},
		Src:      ios.AddrSpec{Any: true},
		Dst:      ios.AddrSpec{Any: true},
	})
	return cfg
}

// lightOverlapACL has a small number (1..20) of conflicts of mixed kinds.
func lightOverlapACL(rng *rand.Rand, name string) *ios.Config {
	if rng.Intn(2) == 0 {
		return guardedACL(rng, name, 2+rng.Intn(10))
	}
	return smallMessyACL(rng, name)
}

// cleanACL has no overlapping entries at all: disjoint host/port pairs with
// a uniform action.
func cleanACL(rng *rand.Rand, name string) *ios.Config {
	cfg := ios.NewConfig()
	acl := cfg.AddACL(name)
	k := 2 + rng.Intn(6)
	base := rng.Intn(120)
	for i := 0; i < k; i++ {
		e := &ios.ACE{
			Seq:      (i + 1) * 10,
			Permit:   true,
			Protocol: ios.ProtoSpec{Value: 6},
			Src:      ios.AddrSpec{Addr: netip.AddrFrom4([4]byte{10, byte(base), byte(i), 1})},
			Dst:      ios.AddrSpec{Addr: netip.AddrFrom4([4]byte{10, byte(base), byte(i), 2})},
			DstPort:  ios.PortSpec{Op: ios.PortEq, Lo: uint16(2000 + i)},
		}
		acl.Entries = append(acl.Entries, e)
	}
	return cfg
}

// ---------- Route-map archetypes ----------

// communityHeavyRouteMap models the cloud's complex external policies: k
// stanzas each matching a different community list. Any route can carry
// several communities, so every stanza pair overlaps: k(k-1)/2 pairs.
func communityHeavyRouteMap(rng *rand.Rand, name string, k int) *ios.Config {
	cfg := ios.NewConfig()
	rm := cfg.AddRouteMap(name)
	for i := 0; i < k; i++ {
		list := fmt.Sprintf("%s_C%d", name, i)
		cfg.AddCommunityList(list, true, ios.CommunityListEntry{
			Permit: true, Values: []string{fmt.Sprintf("_65000:%d_", 100+i)},
		})
		st := &ios.Stanza{
			Seq:     (i + 1) * 10,
			Permit:  rng.Intn(3) != 0,
			Matches: []ios.Match{ios.MatchCommunity{List: list}},
		}
		if st.Permit && rng.Intn(2) == 0 {
			st.Sets = []ios.SetClause{ios.SetLocalPref{Value: uint32(100 + 10*i)}}
		}
		rm.Stanzas = append(rm.Stanzas, st)
	}
	return cfg
}

// moderateRouteMap has a handful of stanzas of which exactly one pair
// overlaps (an as-path stanza and a community stanza, both unconstrained in
// prefix space).
func moderateRouteMap(rng *rand.Rand, name string) *ios.Config {
	cfg := ios.NewConfig()
	rm := cfg.AddRouteMap(name)
	asList := name + "_AS"
	cfg.AddASPathList(asList, ios.ASPathEntry{Permit: true, Regex: fmt.Sprintf("_%d$", 64500+rng.Intn(100))})
	commList := name + "_C"
	cfg.AddCommunityList(commList, true, ios.CommunityListEntry{
		Permit: true, Values: []string{fmt.Sprintf("_65000:%d_", rng.Intn(100))},
	})
	rm.Stanzas = append(rm.Stanzas,
		&ios.Stanza{Seq: 10, Permit: false, Matches: []ios.Match{ios.MatchASPath{List: asList}}},
		&ios.Stanza{Seq: 20, Permit: true, Matches: []ios.Match{ios.MatchCommunity{List: commList}},
			Sets: []ios.SetClause{ios.SetMetric{Value: uint32(rng.Intn(100))}}},
	)
	// Plus disjoint prefix stanzas that overlap nothing.
	appendDisjointPrefixStanzas(cfg, rm, name, 1+rng.Intn(3), rng)
	return cfg
}

// cleanRouteMap's stanzas match pairwise-disjoint prefix spaces.
func cleanRouteMap(rng *rand.Rand, name string, k int) *ios.Config {
	cfg := ios.NewConfig()
	rm := cfg.AddRouteMap(name)
	appendDisjointPrefixStanzas(cfg, rm, name, k, rng)
	return cfg
}

func appendDisjointPrefixStanzas(cfg *ios.Config, rm *ios.RouteMap, name string, k int, rng *rand.Rand) {
	start := len(rm.Stanzas)
	for i := 0; i < k; i++ {
		list := fmt.Sprintf("%s_P%d", name, i)
		// Disjoint /16s under distinct /8s.
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + i), byte(rng.Intn(250)), 0, 0}), 16)
		cfg.AddPrefixList(list, ios.PrefixListEntry{Seq: 10, Permit: true, Prefix: pfx, Le: 24})
		rm.Stanzas = append(rm.Stanzas, &ios.Stanza{
			Seq:     (start + i + 1) * 10,
			Permit:  rng.Intn(4) != 0,
			Matches: []ios.Match{ios.MatchPrefixList{List: list}},
		})
	}
}

// campusTriplet is the paper's special campus route-map: three overlapping
// stanza pairs, two of them conflicting (permit, permit, deny over one
// shared prefix space).
func campusTriplet(name string) *ios.Config {
	cfg := ios.MustParse(fmt.Sprintf(`ip prefix-list %[1]s_P seq 10 permit 172.16.0.0/12 le 24
route-map %[1]s permit 10
 match ip address prefix-list %[1]s_P
route-map %[1]s permit 20
 match ip address prefix-list %[1]s_P
 set local-preference 200
route-map %[1]s deny 30
 match ip address prefix-list %[1]s_P
`, name))
	return cfg
}

// campusPair has exactly one overlapping (non-conflicting) stanza pair.
func campusPair(name string) *ios.Config {
	return ios.MustParse(fmt.Sprintf(`ip prefix-list %[1]s_A seq 10 permit 10.10.0.0/16 le 24
ip prefix-list %[1]s_B seq 10 permit 10.10.0.0/16 le 20
route-map %[1]s permit 10
 match ip address prefix-list %[1]s_A
route-map %[1]s permit 20
 match ip address prefix-list %[1]s_B
 set metric 50
`, name))
}
