// Package clarify is the end-to-end workflow engine of Figure 1: classify
// the user's intent, retrieve prompts, synthesize a snippet with the LLM,
// extract and verify a behavioural specification, iterate on verification
// feedback, then disambiguate the insertion point and update the
// configuration.
package clarify

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/intent"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/spec"
	"github.com/clarifynet/clarify/symbolic"
)

// DefaultMaxAttempts is the synthesis retry threshold before punting to the
// user (Figure 1, step 5).
const DefaultMaxAttempts = 3

// ErrPunt is returned when synthesis keeps failing verification and the tool
// gives up, per the paper: "we reach a threshold and punt to the user who
// starts over or provides more information."
var ErrPunt = errors.New("clarify: synthesis failed verification repeatedly; please rephrase or refine the intent")

// Session drives incremental updates against one configuration.
type Session struct {
	// Client is the language model; use llm.NewSimLLM() offline.
	Client llm.Client
	// Store is the prompt database; nil selects the built-in store.
	Store *llm.PromptStore
	// Config is the configuration being updated; Submit replaces it on
	// success. It is never mutated in place. Submit reads and writes this
	// field under the session mutex; concurrent callers should use
	// CurrentConfig / SetConfig rather than touching it directly.
	Config *ios.Config
	// RouteOracle and ACLOracle answer disambiguation questions.
	RouteOracle disambig.RouteOracle
	ACLOracle   disambig.ACLOracle
	// MaxAttempts bounds synthesis retries; 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// SkipVerification disables the verifier (ablation only).
	SkipVerification bool
	// Strategy selects the disambiguation algorithm (default binary search).
	Strategy disambig.Strategy
	// EnableReuse caches verified snippets by intent text: repeated intents
	// (the paper's "some route-maps were reused" case) skip every LLM call
	// and go straight to disambiguation.
	EnableReuse bool
	// SpaceCache, when non-nil, reuses symbolic route universes across
	// verification and disambiguation calls whose regex/community inputs are
	// unchanged (the steady state for repeated updates to one config). It is
	// safe to share one cache across many sessions.
	SpaceCache *symbolic.SpaceCache
	// Trace, when non-nil, receives a line per pipeline step (classification
	// outcome, synthesis attempts, verification feedback, disambiguation
	// summary) — the workflow's legacy observability hook, preserved as a
	// live rendering of the span tree's Logf events.
	Trace io.Writer
	// Observer, when non-nil, receives the completed obs.Trace for every
	// Submit call, successful or not. When Observer, Trace, and Journal are
	// all nil no spans are created at all: every stage runs against a nil
	// *obs.Span, whose methods are allocation-free no-ops.
	Observer obs.Sink
	// Journal, when non-nil, appends one flight-recorder record per Submit
	// call — intent, config snapshot and fingerprint, oracle transcript,
	// SimLLM fault plan, config diff, and the full span tree — durable raw
	// material for postmortems and deterministic replay (cmd/clarify-replay).
	// Journaling forces span collection even with Observer and Trace nil.
	Journal *journal.Journal
	// JournalSession labels this session's journal records (e.g. the daemon
	// session ID); empty is fine for single-session CLIs.
	JournalSession string

	mu    sync.Mutex
	stats Stats
	reuse map[string]*reuseEntry
}

// reuseEntry is one cached verified synthesis.
type reuseEntry struct {
	kind        intent.Kind
	snippetText string
	specJSON    string
	snippet     *ios.Config
	name        string
}

// Stats aggregates the counters reported in the paper's Figure 4. The JSON
// tags are the wire form used by the clarifyd /metrics and /sessions
// endpoints.
type Stats struct {
	// LLMCalls counts completions requested (classification + synthesis +
	// spec extraction + retries).
	LLMCalls int `json:"llmCalls"`
	// Disambiguations counts questions answered by the user.
	Disambiguations int `json:"disambiguations"`
	// Retries counts synthesis attempts beyond the first.
	Retries int `json:"retries"`
	// Punts counts updates abandoned at the retry threshold.
	Punts int `json:"punts"`
	// Updates counts successful insertions.
	Updates int `json:"updates"`
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RestoreStats seeds the session counters from externalized state (session
// snapshot/restore); subsequent updates accumulate on top, so a session's
// lifetime totals survive a daemon handoff.
func (s *Session) RestoreStats(st Stats) {
	s.mu.Lock()
	s.stats = st
	s.mu.Unlock()
}

// UpdateResult reports one successful incremental update.
type UpdateResult struct {
	Kind intent.Kind
	// SnippetText is the final verified LLM output.
	SnippetText string
	// SpecJSON is the behavioural specification shown to the user.
	SpecJSON string
	// Attempts is the number of synthesis calls used.
	Attempts int
	// RouteInsert / ACLInsert carry the disambiguation outcome.
	RouteInsert *disambig.RouteResult
	ACLInsert   *disambig.ACLResult
	// Config is the updated configuration (also stored on the session).
	Config *ios.Config
}

// CurrentConfig returns the session's configuration under the session mutex.
func (s *Session) CurrentConfig() *ios.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Config
}

// SetConfig replaces the session's configuration under the session mutex.
func (s *Session) SetConfig(cfg *ios.Config) {
	s.mu.Lock()
	s.Config = cfg
	s.mu.Unlock()
}

func (s *Session) store() *llm.PromptStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Store == nil {
		s.Store = llm.NewPromptStore()
	}
	return s.Store
}

func (s *Session) maxAttempts() int {
	if s.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return s.MaxAttempts
}

// beginTrace starts the span tree for one Submit call, or returns nil when
// observability is disabled (Observer, Trace, and Journal all nil) — every
// obs.Span method no-ops on a nil receiver, so the disabled pipeline pays
// nothing. When ctx carries a propagated W3C trace context (extracted from a
// clarify-lb or clarify -remote traceparent header), the trace adopts the
// fleet trace ID and records the caller's span as its remote parent, so the
// update tree stitches under the upstream proxy span.
func (s *Session) beginTrace(ctx context.Context) *obs.Trace {
	if s.Observer == nil && s.Trace == nil && s.Journal == nil {
		return nil
	}
	var t *obs.Trace
	if tp, ok := obs.TraceParentFromContext(ctx); ok {
		t = obs.NewTraceWith("update", tp)
	} else {
		t = obs.NewTrace("update")
	}
	t.LineWriter = s.Trace
	t.LinePrefix = "clarify: "
	return t
}

// endTrace closes the trace, stamps a terminal error if any, and hands the
// finished tree to the Observer. Safe on a nil trace.
func (s *Session) endTrace(t *obs.Trace, errp *error) {
	if t == nil {
		return
	}
	if *errp != nil {
		t.Root.SetStr("error", (*errp).Error())
	}
	t.Finish()
	if s.Observer != nil {
		s.Observer.TraceDone(t)
	}
}

// complete issues one LLM call, charging its latency to sp and exposing sp
// through the context so transport-level retries can annotate it.
func (s *Session) complete(ctx context.Context, sp *obs.Span, req llm.Request) (llm.Response, error) {
	s.mu.Lock()
	s.stats.LLMCalls++
	s.mu.Unlock()
	if sp == nil {
		return s.Client.Complete(ctx, req)
	}
	ctx = obs.ContextWithSpan(ctx, sp)
	start := time.Now()
	resp, err := s.Client.Complete(ctx, req)
	sp.SetDur("llm-ms", time.Since(start))
	return resp, err
}

// Submit runs the full pipeline for one natural-language intent against the
// named route-map or ACL in the session's configuration. Submit is safe for
// concurrent use: each call works against a snapshot of the configuration
// taken at entry and installs its result when it completes (last writer
// wins, as with any concurrent updates against one config).
func (s *Session) Submit(ctx context.Context, intentText, targetName string) (res *UpdateResult, err error) {
	cfg := s.CurrentConfig()
	if cfg == nil {
		return nil, fmt.Errorf("clarify: session has no configuration")
	}
	tr := s.beginTrace(ctx)
	// The oracles the pipeline will consult for this update. When journaling,
	// wrap them so every answered question lands in the record's transcript —
	// the transcript is what lets clarify-replay re-run the update without an
	// operator. Defers run LIFO: endTrace (registered last) finishes the span
	// tree first, then endJournal records it.
	routeOracle, aclOracle := s.RouteOracle, s.ACLOracle
	if s.Journal != nil {
		rec := &answerRecorder{}
		routeOracle = recordingRouteOracle{inner: routeOracle, rec: rec}
		aclOracle = recordingACLOracle{inner: aclOracle, rec: rec}
		defer func() { s.endJournal(ctx, tr, cfg, intentText, targetName, rec, res, err) }()
	}
	defer s.endTrace(tr, &err)
	var root *obs.Span
	if tr != nil {
		root = tr.Root
		root.SetStr("target", targetName)
	}
	if s.EnableReuse {
		s.mu.Lock()
		entry := s.reuse[intentText]
		s.mu.Unlock()
		if entry != nil {
			root.Logf("reusing verified snippet for identical intent (0 LLM calls)")
			root.SetBool("reused", true)
			switch entry.kind {
			case intent.KindRouteMap:
				return s.insertRouteSnippet(root, cfg, entry.snippet, entry.name, targetName, entry.snippetText, entry.specJSON, 0, routeOracle)
			case intent.KindACL:
				return s.insertACLSnippet(root, cfg, entry.snippet, entry.name, targetName, entry.snippetText, entry.specJSON, 0, aclOracle)
			}
		}
	}
	// Step 1: classification call.
	csp := root.Child("classify")
	resp, err := s.complete(ctx, csp, s.store().BuildRequest(llm.TaskClassify,
		llm.Message{Role: llm.RoleUser, Content: intentText}))
	if err != nil {
		csp.End()
		return nil, fmt.Errorf("clarify: classification: %w", err)
	}
	kind := strings.TrimSpace(resp.Content)
	csp.SetStr("kind", kind)
	csp.End()
	root.Logf("classified intent as %s", kind)
	switch kind {
	case "acl":
		return s.submitACL(ctx, root, cfg, intentText, targetName, aclOracle)
	case "route-map":
		return s.submitRouteMap(ctx, root, cfg, intentText, targetName, routeOracle)
	default:
		return nil, fmt.Errorf("clarify: classifier returned %q", kind)
	}
}

// answerRecorder accumulates the oracle Q&A transcript for one journaled
// update. Its own lock keeps it safe even if a disambiguation strategy ever
// asks questions concurrently.
type answerRecorder struct {
	mu      sync.Mutex
	answers []journal.Answer
}

func (r *answerRecorder) add(a journal.Answer) {
	r.mu.Lock()
	r.answers = append(r.answers, a)
	r.mu.Unlock()
}

func (r *answerRecorder) list() []journal.Answer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]journal.Answer(nil), r.answers...)
}

// recordingRouteOracle forwards to the real oracle and transcribes the
// rendered question plus the chosen option.
type recordingRouteOracle struct {
	inner disambig.RouteOracle
	rec   *answerRecorder
}

// ChooseRoute implements disambig.RouteOracle.
func (o recordingRouteOracle) ChooseRoute(q disambig.RouteQuestion) (bool, error) {
	preferNew, err := o.inner.ChooseRoute(q)
	if err == nil {
		o.rec.add(journal.Answer{Kind: "route-map", Question: q.String(), PreferNew: preferNew})
	}
	return preferNew, err
}

// recordingACLOracle is the ACL analogue of recordingRouteOracle.
type recordingACLOracle struct {
	inner disambig.ACLOracle
	rec   *answerRecorder
}

// ChooseACL implements disambig.ACLOracle.
func (o recordingACLOracle) ChooseACL(q disambig.ACLQuestion) (bool, error) {
	preferNew, err := o.inner.ChooseACL(q)
	if err == nil {
		o.rec.add(journal.Answer{Kind: "acl", Question: q.String(), PreferNew: preferNew})
	}
	return preferNew, err
}

// endJournal assembles and appends the flight-recorder record for one Submit
// call. It runs after endTrace, so tr is finished and carries the terminal
// error attribute; append failures are counted by the journal itself rather
// than failing the update.
func (s *Session) endJournal(ctx context.Context, tr *obs.Trace, base *ios.Config, intentText, targetName string, rec *answerRecorder, res *UpdateResult, err error) {
	baseText := base.Print()
	r := &journal.Record{
		Time:              time.Now(),
		Session:           s.JournalSession,
		Intent:            intentText,
		Target:            targetName,
		BaseConfig:        baseText,
		ConfigFingerprint: symbolic.Fingerprint(base),
		MaxAttempts:       s.MaxAttempts,
		SkipVerification:  s.SkipVerification,
		Answers:           rec.list(),
		Degraded:          resilience.FlagsFromContext(ctx).Degraded(),
		Trace:             tr,
	}
	if tr != nil {
		r.TraceID = tr.ID
		r.DurationMs = float64(tr.Duration()) / float64(time.Millisecond)
		if a, ok := tr.Root.Attr("reused"); ok {
			r.Reused = a.Bool
		}
		r.SimFaults = simFaults(tr)
	}
	if err != nil {
		r.Error = err.Error()
	}
	if res != nil {
		r.Attempts = res.Attempts
		if res.RouteInsert != nil {
			r.Ambiguity = res.RouteInsert.Ambiguity
		}
		if res.ACLInsert != nil {
			r.Ambiguity = res.ACLInsert.Ambiguity
		}
		if res.Config != nil {
			r.FinalConfig = res.Config.Print()
			r.ConfigDiff = journal.Diff(baseText, r.FinalConfig)
		}
	}
	_ = s.Journal.Append(r)
}

// simFaults recovers the SimLLM fault plan an update consumed from its span
// tree: synthesis-attempt spans carry a "sim-fault" attribute for injected
// faults and none for clean calls. Walk order is depth-first, i.e. call
// order. Updates served by a non-simulated LLM yield all-"none" plans, which
// are reported as nil (no plan to re-seed).
func simFaults(tr *obs.Trace) []string {
	var faults []string
	injected := false
	tr.Walk(func(sp *obs.Span, _ int) {
		if obs.CanonicalStage(sp.Name) != "synthesize-attempt" {
			return
		}
		if a, ok := sp.Attr("sim-fault"); ok {
			faults = append(faults, a.Str)
			injected = true
		} else {
			faults = append(faults, "none")
		}
	})
	if !injected {
		return nil
	}
	return faults
}

// submitRouteMap is the route-map pipeline: synthesize → spec → verify loop
// → disambiguate. cfg is the configuration snapshot the update applies to;
// oracle is the (possibly journal-recording) disambiguation oracle for this
// update.
func (s *Session) submitRouteMap(ctx context.Context, root *obs.Span, cfg *ios.Config, intentText, mapName string, oracle disambig.RouteOracle) (*UpdateResult, error) {
	store := s.store()

	// Step 3 (second half): one spec-extraction call; the spec is stable
	// across retries because it is derived from the unchanged intent.
	ssp := root.Child("spec-extract")
	specResp, err := s.complete(ctx, ssp, store.BuildRequest(llm.TaskSpecRouteMap,
		llm.Message{Role: llm.RoleUser, Content: intentText}))
	ssp.End()
	if err != nil {
		return nil, fmt.Errorf("clarify: spec extraction: %w", err)
	}
	rmSpec, err := spec.ParseRouteMapSpec([]byte(specResp.Content))
	if err != nil {
		return nil, fmt.Errorf("clarify: spec extraction produced invalid JSON: %w", err)
	}

	turns := []llm.Message{{Role: llm.RoleUser, Content: intentText}}
	var snippet *ios.Config
	var snippetMap, snippetText string
	attempts := 0
	for {
		// The per-update deadline budget must stop the verify-and-retry loop
		// between attempts, not just inside LLM calls — a wedged update can
		// otherwise hold a worker across many local retries.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("clarify: update cancelled: %w", err)
		}
		if attempts >= s.maxAttempts() {
			s.mu.Lock()
			s.stats.Punts++
			s.mu.Unlock()
			root.SetBool("punted", true)
			return nil, ErrPunt
		}
		attempts++
		if attempts > 1 {
			s.mu.Lock()
			s.stats.Retries++
			s.mu.Unlock()
		}
		asp := root.ChildN("synthesize-attempt", attempts)
		asp.SetInt("attempt", int64(attempts))
		resp, err := s.complete(ctx, asp, store.BuildRequest(llm.TaskSynthRouteMap, turns...))
		if err != nil {
			asp.End()
			return nil, fmt.Errorf("clarify: synthesis: %w", err)
		}
		snippetText = resp.Content
		feedback := ""
		psp := asp.Child("parse")
		parsed, perr := ios.Parse(snippetText)
		psp.End()
		if perr != nil {
			feedback = fmt.Sprintf("The previous output was not valid Cisco IOS syntax: %v.", perr)
		} else if name, err2 := soleRouteMap(parsed); err2 != nil {
			feedback = fmt.Sprintf("The previous output was malformed: %v.", err2)
		} else if err3 := parsed.Validate(); err3 != nil {
			feedback = fmt.Sprintf("The previous output references undefined data structures: %v.", err3)
		} else if !s.SkipVerification {
			vsp := asp.Child("verify")
			violations, err4 := spec.VerifyRouteMapSnippetTraced(s.SpaceCache, parsed, name, rmSpec, vsp)
			if err4 != nil {
				vsp.End()
				asp.End()
				return nil, fmt.Errorf("clarify: verification: %w", err4)
			}
			vsp.SetInt("violations", int64(len(violations)))
			vsp.End()
			if len(violations) > 0 {
				feedback = "The previous stanza does not meet the specification: " + describeViolations(violations)
			} else {
				snippet, snippetMap = parsed, name
			}
		} else {
			snippet, snippetMap = parsed, name
		}
		if snippet != nil {
			asp.SetBool("verified", true)
			asp.End()
			root.Logf("attempt %d verified", attempts)
			break
		}
		asp.SetStr("fault-feedback", feedback)
		asp.End()
		root.Logf("attempt %d rejected: %s", attempts, feedback)
		turns = append(turns,
			llm.Message{Role: llm.RoleAssistant, Content: snippetText},
			llm.Message{Role: llm.RoleUser, Content: feedback + llm.FeedbackIntentMarker + intentText},
		)
	}

	if s.EnableReuse {
		s.mu.Lock()
		if s.reuse == nil {
			s.reuse = map[string]*reuseEntry{}
		}
		s.reuse[intentText] = &reuseEntry{
			kind: intent.KindRouteMap, snippetText: snippetText,
			specJSON: specResp.Content, snippet: snippet, name: snippetMap,
		}
		s.mu.Unlock()
	}
	root.SetInt("attempts", int64(attempts))
	return s.insertRouteSnippet(root, cfg, snippet, snippetMap, mapName, snippetText, specResp.Content, attempts, oracle)
}

// insertRouteSnippet is step 6 for route maps: disambiguation and insertion
// of an already-verified snippet into the cfg snapshot.
func (s *Session) insertRouteSnippet(root *obs.Span, cfg, snippet *ios.Config, snippetMap, mapName, snippetText, specJSON string, attempts int, oracle disambig.RouteOracle) (*UpdateResult, error) {
	dsp := root.Child("disambiguate")
	res, err := disambig.InsertRouteMapStanzaStrategyTraced(s.Strategy, s.SpaceCache, cfg, mapName, snippet, snippetMap, oracle, dsp)
	if err != nil {
		dsp.End()
		return nil, err
	}
	dsp.SetInt("overlaps", int64(len(res.Overlaps)))
	dsp.SetInt("questions", int64(len(res.Questions)))
	dsp.SetInt("position", int64(res.Position))
	dsp.End()
	root.Logf("disambiguated %s: %d distinguishing overlap(s), %d question(s), inserted at position %d",
		mapName, len(res.Overlaps), len(res.Questions), res.Position)
	if led := res.Ambiguity; led != nil {
		root.Logf("ambiguity: %.1f bits before, %.1f resolved by %d question(s), %.1f residual",
			led.InitialBits, led.ResolvedBits(), led.QuestionCount(), led.ResidualBits)
	}
	s.mu.Lock()
	s.stats.Disambiguations += len(res.Questions)
	s.stats.Updates++
	s.Config = res.Config
	s.mu.Unlock()
	return &UpdateResult{
		Kind:        intent.KindRouteMap,
		SnippetText: snippetText,
		SpecJSON:    specJSON,
		Attempts:    attempts,
		RouteInsert: res,
		Config:      res.Config,
	}, nil
}

// submitACL is the ACL pipeline. cfg is the configuration snapshot the
// update applies to; oracle is this update's disambiguation oracle.
func (s *Session) submitACL(ctx context.Context, root *obs.Span, cfg *ios.Config, intentText, aclName string, oracle disambig.ACLOracle) (*UpdateResult, error) {
	store := s.store()
	ssp := root.Child("spec-extract")
	specResp, err := s.complete(ctx, ssp, store.BuildRequest(llm.TaskSpecACL,
		llm.Message{Role: llm.RoleUser, Content: intentText}))
	ssp.End()
	if err != nil {
		return nil, fmt.Errorf("clarify: spec extraction: %w", err)
	}
	aclSpec, err := spec.ParseACLSpec([]byte(specResp.Content))
	if err != nil {
		return nil, fmt.Errorf("clarify: spec extraction produced invalid JSON: %w", err)
	}

	turns := []llm.Message{{Role: llm.RoleUser, Content: intentText}}
	var snippet *ios.Config
	var snippetACL, snippetText string
	attempts := 0
	for {
		// See submitRouteMap: honor the per-update deadline between attempts.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("clarify: update cancelled: %w", err)
		}
		if attempts >= s.maxAttempts() {
			s.mu.Lock()
			s.stats.Punts++
			s.mu.Unlock()
			root.SetBool("punted", true)
			return nil, ErrPunt
		}
		attempts++
		if attempts > 1 {
			s.mu.Lock()
			s.stats.Retries++
			s.mu.Unlock()
		}
		asp := root.ChildN("synthesize-attempt", attempts)
		asp.SetInt("attempt", int64(attempts))
		resp, err := s.complete(ctx, asp, store.BuildRequest(llm.TaskSynthACL, turns...))
		if err != nil {
			asp.End()
			return nil, fmt.Errorf("clarify: synthesis: %w", err)
		}
		snippetText = resp.Content
		feedback := ""
		psp := asp.Child("parse")
		parsed, perr := ios.Parse(snippetText)
		psp.End()
		if perr != nil {
			feedback = fmt.Sprintf("The previous output was not valid Cisco IOS syntax: %v.", perr)
		} else if name, err2 := soleACL(parsed); err2 != nil {
			feedback = fmt.Sprintf("The previous output was malformed: %v.", err2)
		} else if !s.SkipVerification {
			vsp := asp.Child("verify")
			violations, err3 := spec.VerifyACLSnippetTraced(parsed, name, aclSpec, vsp)
			if err3 != nil {
				vsp.End()
				asp.End()
				return nil, fmt.Errorf("clarify: verification: %w", err3)
			}
			vsp.SetInt("violations", int64(len(violations)))
			vsp.End()
			if len(violations) > 0 {
				feedback = "The previous entry does not meet the specification: " + describeViolations(violations)
			} else {
				snippet, snippetACL = parsed, name
			}
		} else {
			snippet, snippetACL = parsed, name
		}
		if snippet != nil {
			asp.SetBool("verified", true)
			asp.End()
			root.Logf("attempt %d verified", attempts)
			break
		}
		asp.SetStr("fault-feedback", feedback)
		asp.End()
		root.Logf("attempt %d rejected: %s", attempts, feedback)
		turns = append(turns,
			llm.Message{Role: llm.RoleAssistant, Content: snippetText},
			llm.Message{Role: llm.RoleUser, Content: feedback + llm.FeedbackIntentMarker + intentText},
		)
	}

	if s.EnableReuse {
		s.mu.Lock()
		if s.reuse == nil {
			s.reuse = map[string]*reuseEntry{}
		}
		s.reuse[intentText] = &reuseEntry{
			kind: intent.KindACL, snippetText: snippetText,
			specJSON: specResp.Content, snippet: snippet, name: snippetACL,
		}
		s.mu.Unlock()
	}
	root.SetInt("attempts", int64(attempts))
	return s.insertACLSnippet(root, cfg, snippet, snippetACL, aclName, snippetText, specResp.Content, attempts, oracle)
}

// insertACLSnippet is step 6 for ACLs, against the cfg snapshot. (ACL spaces
// are fixed-shape and cheap to build, so no symbolic cache is involved.)
func (s *Session) insertACLSnippet(root *obs.Span, cfg, snippet *ios.Config, snippetACL, aclName, snippetText, specJSON string, attempts int, oracle disambig.ACLOracle) (*UpdateResult, error) {
	dsp := root.Child("disambiguate")
	res, err := disambig.InsertACLEntryTraced(cfg, aclName, snippet, snippetACL, oracle, dsp)
	if err != nil {
		dsp.End()
		return nil, err
	}
	dsp.SetInt("overlaps", int64(len(res.Overlaps)))
	dsp.SetInt("questions", int64(len(res.Questions)))
	dsp.SetInt("position", int64(res.Position))
	dsp.End()
	root.Logf("disambiguated %s: %d distinguishing overlap(s), %d question(s), inserted at position %d",
		aclName, len(res.Overlaps), len(res.Questions), res.Position)
	if led := res.Ambiguity; led != nil {
		root.Logf("ambiguity: %.1f bits before, %.1f resolved by %d question(s), %.1f residual",
			led.InitialBits, led.ResolvedBits(), led.QuestionCount(), led.ResidualBits)
	}
	s.mu.Lock()
	s.stats.Disambiguations += len(res.Questions)
	s.stats.Updates++
	s.Config = res.Config
	s.mu.Unlock()
	return &UpdateResult{
		Kind:        intent.KindACL,
		SnippetText: snippetText,
		SpecJSON:    specJSON,
		Attempts:    attempts,
		ACLInsert:   res,
		Config:      res.Config,
	}, nil
}

func soleRouteMap(cfg *ios.Config) (string, error) {
	if len(cfg.RouteMaps) != 1 {
		return "", fmt.Errorf("want exactly one route-map, got %d", len(cfg.RouteMaps))
	}
	var name string
	var rm *ios.RouteMap
	for name, rm = range cfg.RouteMaps {
	}
	if len(rm.Stanzas) != 1 {
		return "", fmt.Errorf("want exactly one stanza, got %d", len(rm.Stanzas))
	}
	return name, nil
}

func soleACL(cfg *ios.Config) (string, error) {
	if len(cfg.ACLs) != 1 {
		return "", fmt.Errorf("want exactly one access-list, got %d", len(cfg.ACLs))
	}
	var name string
	var acl *ios.ACL
	for name, acl = range cfg.ACLs {
	}
	if len(acl.Entries) != 1 {
		return "", fmt.Errorf("want exactly one entry, got %d", len(acl.Entries))
	}
	return name, nil
}

func describeViolations(vs []spec.Violation) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("[%s] %s", v.Kind, v.Details)
	}
	return strings.Join(parts, "; ")
}

// NewRouteMap starts an empty route-map in the session's configuration so
// incremental synthesis can build it from scratch (the §5 workflow).
func (s *Session) NewRouteMap(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := ios.NewConfig()
	if s.Config != nil {
		cfg = s.Config.Clone()
	}
	if _, exists := cfg.RouteMaps[name]; exists {
		return fmt.Errorf("clarify: route-map %q already exists", name)
	}
	cfg.AddRouteMap(name)
	s.Config = cfg
	return nil
}

// NewACL starts an empty ACL in the session's configuration.
func (s *Session) NewACL(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := ios.NewConfig()
	if s.Config != nil {
		cfg = s.Config.Clone()
	}
	if _, exists := cfg.ACLs[name]; exists {
		return fmt.Errorf("clarify: ACL %q already exists", name)
	}
	cfg.AddACL(name)
	s.Config = cfg
	return nil
}
