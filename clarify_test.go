package clarify

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/intent"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/symbolic"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const paperPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

// figure2a is the target semantics for the paper walkthrough (new stanza on
// top).
func figure2a(t *testing.T) *ios.Config {
	t.Helper()
	cfg := ios.MustParse(paperISPOut + `ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
`)
	st := &ios.Stanza{
		Permit:  true,
		Matches: []ios.Match{ios.MatchCommunity{List: "D2"}, ios.MatchPrefixList{List: "D3"}},
		Sets:    []ios.SetClause{ios.SetMetric{Value: 55}},
	}
	cfg.RouteMaps["ISP_OUT"].InsertStanza(0, st)
	return cfg
}

func newPaperSession(t *testing.T, client llm.Client) *Session {
	t.Helper()
	target := figure2a(t)
	return &Session{
		Client:      client,
		Config:      ios.MustParse(paperISPOut),
		RouteOracle: disambig.NewSimUserRouteMap(target, "ISP_OUT"),
	}
}

func TestPaperWalkthroughEndToEnd(t *testing.T) {
	sim := llm.NewSimLLM()
	s := newPaperSession(t, sim)
	res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != intent.KindRouteMap || res.Attempts != 1 {
		t.Errorf("kind=%v attempts=%d", res.Kind, res.Attempts)
	}
	// The snippet is the paper's SET_METRIC output.
	for _, want := range []string{"route-map SET_METRIC permit 10", "match community COM_LIST", "set metric 55"} {
		if !strings.Contains(res.SnippetText, want) {
			t.Errorf("snippet missing %q:\n%s", want, res.SnippetText)
		}
	}
	// The spec is the paper's JSON shape.
	for _, want := range []string{`"permit": true`, `"100.0.0.0/16:16-23"`, `"metric": 55`} {
		if !strings.Contains(res.SpecJSON, want) {
			t.Errorf("spec missing %q:\n%s", want, res.SpecJSON)
		}
	}
	// Insertion: top, D2/D3 renames, two questions.
	ri := res.RouteInsert
	if ri.Position != 0 || ri.Renames["COM_LIST"] != "D2" || ri.Renames["PREFIX_100"] != "D3" {
		t.Errorf("insert = pos %d renames %v", ri.Position, ri.Renames)
	}
	if len(ri.Questions) != 2 {
		t.Errorf("questions = %d", len(ri.Questions))
	}
	// Session stats: 3 LLM calls (classify, spec, synth), 2 disambiguations.
	st := s.Stats()
	if st.LLMCalls != 3 || st.Disambiguations != 2 || st.Updates != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Final semantics equals Figure 2(a).
	target := figure2a(t)
	space, err := symbolic.NewRouteSpace(res.Config, target)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := analysis.EquivalentRouteMaps(space, res.Config, res.Config.RouteMaps["ISP_OUT"], target, target.RouteMaps["ISP_OUT"])
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("final config differs from Figure 2(a):\n%s", res.Config.Print())
	}
}

func TestVerificationLoopRecoversFromFaults(t *testing.T) {
	for _, fault := range []llm.Fault{llm.FaultWrongValue, llm.FaultWidenMask, llm.FaultDropMatch, llm.FaultFlipAction, llm.FaultSyntax} {
		sim := llm.NewSimLLM(fault)
		s := newPaperSession(t, sim)
		res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
		if err != nil {
			t.Fatalf("fault %v: %v", fault, err)
		}
		if res.Attempts != 2 {
			t.Errorf("fault %v: attempts = %d, want 2", fault, res.Attempts)
		}
		st := s.Stats()
		if st.Retries != 1 {
			t.Errorf("fault %v: retries = %d", fault, st.Retries)
		}
	}
}

func TestPuntAfterRepeatedFailures(t *testing.T) {
	sim := llm.NewSimLLM(llm.FaultWrongValue, llm.FaultWrongValue, llm.FaultWrongValue, llm.FaultWrongValue)
	s := newPaperSession(t, sim)
	_, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
	if !errors.Is(err, ErrPunt) {
		t.Fatalf("err = %v, want ErrPunt", err)
	}
	if s.Stats().Punts != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestSkipVerificationShipsWrongStanza(t *testing.T) {
	// Ablation: with the verifier off, a faulty synthesis lands in the
	// config unchallenged.
	sim := llm.NewSimLLM(llm.FaultWrongValue)
	target := figure2a(t)
	s := &Session{
		Client:           sim,
		Config:           ios.MustParse(paperISPOut),
		RouteOracle:      disambig.NewSimUserRouteMap(target, "ISP_OUT"),
		SkipVerification: true,
	}
	res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
	if err != nil {
		// The simulated user may reject both options when the wrong stanza
		// changes behaviour beyond its intent — also a detection, but the
		// dangerous case is silent success, checked below.
		return
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	// The shipped stanza sets metric 56, not 55.
	if !strings.Contains(res.SnippetText, "set metric 56") {
		t.Errorf("expected the faulty stanza to ship:\n%s", res.SnippetText)
	}
}

func TestACLPipelineEndToEnd(t *testing.T) {
	base := `ip access-list extended EDGE
 deny tcp any any eq 22
 permit tcp any any established
 deny ip any any
`
	orig := ios.MustParse(base)
	// Target: the new entry above the ssh deny.
	snip := ios.MustParse("ip access-list extended N\n permit tcp 10.0.0.0 0.0.0.255 any eq 22\n")
	target := orig.Clone()
	target.ACLs["EDGE"].InsertEntry(0, snip.ACLs["N"].Entries[0].Clone())

	sim := llm.NewSimLLM()
	s := &Session{
		Client:    sim,
		Config:    orig,
		ACLOracle: disambig.NewSimUserACL(target, "EDGE"),
	}
	res, err := s.Submit(context.Background(),
		"Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 22.", "EDGE")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != intent.KindACL || res.ACLInsert == nil {
		t.Fatalf("res = %+v", res)
	}
	if res.ACLInsert.Position != 0 {
		t.Errorf("position = %d", res.ACLInsert.Position)
	}
	sp := symbolic.NewACLSpace()
	if sp.PermitSet(res.Config.ACLs["EDGE"]) != sp.PermitSet(target.ACLs["EDGE"]) {
		t.Error("final ACL differs from target")
	}
}

func TestSessionAccumulatesAcrossUpdates(t *testing.T) {
	sim := llm.NewSimLLM()
	target := figure2a(t)
	s := &Session{
		Client:      sim,
		Config:      ios.MustParse(paperISPOut),
		RouteOracle: disambig.NewSimUserRouteMap(target, "ISP_OUT"),
	}
	if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
		t.Fatal(err)
	}
	// Second update against the grown config: deny routes through AS 666
	// everywhere (its own intent); target = result of inserting at top.
	// Build the expected target dynamically by running the insertion on a
	// fixed position via a scripted oracle that always prefers the new rule.
	s.RouteOracle = disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil })
	res, err := s.Submit(context.Background(), "Write a route-map stanza that denies routes passing through AS 666.", "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteInsert.Position != 0 {
		t.Errorf("always-prefer-new oracle should land on top, got %d", res.RouteInsert.Position)
	}
	if len(s.Config.RouteMaps["ISP_OUT"].Stanzas) != 5 {
		t.Errorf("stanzas = %d, want 5", len(s.Config.RouteMaps["ISP_OUT"].Stanzas))
	}
	if s.Stats().Updates != 2 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestNewRouteMapAndACL(t *testing.T) {
	s := &Session{}
	if err := s.NewRouteMap("RM"); err != nil {
		t.Fatal(err)
	}
	if err := s.NewRouteMap("RM"); err == nil {
		t.Error("duplicate route-map should fail")
	}
	if err := s.NewACL("A"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Config.RouteMaps["RM"]; !ok {
		t.Error("route-map lost after NewACL")
	}
}

func TestSubmitWithoutConfig(t *testing.T) {
	s := &Session{Client: llm.NewSimLLM()}
	if _, err := s.Submit(context.Background(), paperPrompt, "X"); err == nil {
		t.Fatal("missing config should fail")
	}
}

func TestICMPPipelineEndToEnd(t *testing.T) {
	orig := ios.MustParse(`ip access-list extended EDGE
 deny icmp any any echo
 permit ip any any
`)
	target := orig.Clone()
	snip := ios.MustParse("ip access-list extended N\n permit icmp 10.0.0.0 0.0.0.255 any echo\n")
	target.ACLs["EDGE"].InsertEntry(0, snip.ACLs["N"].Entries[0].Clone())
	s := &Session{
		Client:    llm.NewSimLLM(),
		Config:    orig,
		ACLOracle: disambig.NewSimUserACL(target, "EDGE"),
	}
	res, err := s.Submit(context.Background(),
		"Write an ACL entry that permits ping traffic from 10.0.0.0/24 to any host.", "EDGE")
	if err != nil {
		t.Fatal(err)
	}
	if res.ACLInsert.Position != 0 {
		t.Errorf("position = %d, want 0 (above the echo deny)", res.ACLInsert.Position)
	}
	if !strings.Contains(res.SnippetText, "permit icmp 10.0.0.0 0.0.0.255 any echo") {
		t.Errorf("snippet:\n%s", res.SnippetText)
	}
	if !strings.Contains(res.SpecJSON, `"icmp": "echo"`) {
		t.Errorf("spec:\n%s", res.SpecJSON)
	}
}
