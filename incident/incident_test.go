package incident

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/clarifynet/clarify/obs"
)

func sampleTraces(n int) []*obs.Trace {
	out := make([]*obs.Trace, 0, n)
	for i := 0; i < n; i++ {
		tr := obs.NewTrace("update")
		tr.Root.SetStr("error", "degraded")
		tr.Finish()
		out = append(out, tr)
	}
	return out
}

func TestCaptureWritesBundle(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(Options{Dir: dir, Cooldown: time.Hour, CPUDuration: 50 * time.Millisecond})

	c, ok := r.Capture([]string{"availability/page"}, sampleTraces(3))
	if !ok {
		t.Fatal("first capture suppressed")
	}
	if c.Err != "" {
		t.Fatalf("capture degraded: %s", c.Err)
	}
	if c.Traces != 3 {
		t.Fatalf("Traces = %d, want 3", c.Traces)
	}
	bundle := filepath.Join(dir, c.ID)
	for _, f := range []string{"cpu.pprof", "heap.pprof", "traces.jsonl", "meta.json"} {
		st, err := os.Stat(filepath.Join(bundle, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if st.Size() == 0 && f != "traces.jsonl" {
			t.Fatalf("bundle file %s is empty", f)
		}
	}

	// traces.jsonl is one JSON trace per line, each with the finished spans.
	f, err := os.Open(filepath.Join(bundle, "traces.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var tr obs.Trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("traces.jsonl line %d: %v", lines+1, err)
		}
		if tr.Root == nil || tr.Root.Name != "update" {
			t.Fatalf("traces.jsonl line %d: unexpected root %+v", lines+1, tr.Root)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("traces.jsonl has %d traces, want 3", lines)
	}

	var meta Capture
	raw, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.ID != c.ID || len(meta.Alerts) != 1 || meta.Alerts[0] != "availability/page" {
		t.Fatalf("meta.json = %+v", meta)
	}
}

func TestCooldownSuppresses(t *testing.T) {
	r := NewRecorder(Options{Dir: t.TempDir(), Cooldown: time.Hour, CPUDuration: 20 * time.Millisecond})
	if _, ok := r.Capture([]string{"latency/ticket"}, nil); !ok {
		t.Fatal("first capture suppressed")
	}
	for i := 0; i < 3; i++ {
		if _, ok := r.Capture([]string{"latency/ticket"}, nil); ok {
			t.Fatalf("capture %d not suppressed inside cooldown", i+2)
		}
	}
	st := r.Stats()
	if st.Captures != 1 || st.Suppressed != 3 {
		t.Fatalf("Stats = %+v, want 1 capture / 3 suppressed", st)
	}
	if st.LastCapture == "" {
		t.Fatal("Stats.LastCapture empty after capture")
	}
	if got := r.List(); len(got) != 1 || got[0].ID != st.LastCapture {
		t.Fatalf("List = %+v", got)
	}
}

func TestMaxTracesBound(t *testing.T) {
	r := NewRecorder(Options{Dir: t.TempDir(), Cooldown: time.Hour, CPUDuration: 20 * time.Millisecond, MaxTraces: 2})
	c, ok := r.Capture(nil, sampleTraces(5))
	if !ok {
		t.Fatal("capture suppressed")
	}
	if c.Traces != 2 {
		t.Fatalf("Traces = %d, want bound of 2", c.Traces)
	}
}
