// Package incident implements profile-on-fire: when a burn-rate alert
// transitions from quiet to firing, the daemon captures a bounded CPU
// profile, a heap profile, and the most recent retained traces into a
// timestamped incident directory — the forensic bundle an operator needs
// before the anomaly fades. Captures are rate-limited so a flapping alert
// cannot fill the disk or keep the CPU profiler pinned.
package incident

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"github.com/clarifynet/clarify/obs"
)

// DefaultCooldown is the minimum spacing between captures when
// Options.Cooldown is zero.
const DefaultCooldown = 10 * time.Minute

// DefaultCPUDuration bounds the CPU profile when Options.CPUDuration is
// zero. It is short on purpose: the point is a sample of the firing state,
// not a full profiling session.
const DefaultCPUDuration = 2 * time.Second

// DefaultMaxTraces bounds the trace bundle when Options.MaxTraces is zero.
const DefaultMaxTraces = 32

// Options configures a Recorder.
type Options struct {
	// Dir is the directory incident bundles are created under. Required; it
	// is created on first capture if missing.
	Dir string
	// Cooldown is the minimum time between captures; alert transitions
	// inside the window are counted as suppressed, not captured.
	Cooldown time.Duration
	// CPUDuration bounds the CPU profile (default DefaultCPUDuration).
	CPUDuration time.Duration
	// MaxTraces bounds the number of traces written into the bundle.
	MaxTraces int
}

// Capture is one incident bundle's index entry.
type Capture struct {
	// ID is the bundle directory's basename, incident-<UTC timestamp>.
	ID string `json:"id"`
	// At is the capture time.
	At time.Time `json:"at"`
	// Alerts names the burn-rate alerts that fired ("objective/severity").
	Alerts []string `json:"alerts"`
	// Files lists the bundle's contents relative to its directory.
	Files []string `json:"files"`
	// Traces is the number of traces included in traces.jsonl.
	Traces int `json:"traces"`
	// Err records a partial capture (e.g. CPU profiler already running).
	Err string `json:"error,omitempty"`
}

// Stats summarizes recorder activity for /metrics.
type Stats struct {
	// Captures counts completed incident bundles.
	Captures int64 `json:"captures"`
	// Suppressed counts firing transitions skipped by the cooldown.
	Suppressed int64 `json:"suppressed"`
	// LastCapture is the most recent bundle's ID, empty before the first.
	LastCapture string `json:"lastCapture,omitempty"`
}

// Recorder captures incident bundles, at most one per cooldown window. All
// methods are safe for concurrent use; Capture runs the bounded CPU profile
// synchronously and should be called off the request path.
type Recorder struct {
	opts Options

	mu         sync.Mutex
	last       time.Time
	capturing  bool
	captures   []Capture
	suppressed int64
}

// NewRecorder returns a recorder writing bundles under opts.Dir.
func NewRecorder(opts Options) *Recorder {
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = DefaultCPUDuration
	}
	if opts.MaxTraces <= 0 {
		opts.MaxTraces = DefaultMaxTraces
	}
	return &Recorder{opts: opts}
}

// Capture records one incident bundle for the named firing alerts, unless a
// capture ran within the cooldown window (or is running right now), in which
// case it reports suppressed=true. traces is the evidence to bundle — the
// caller passes its retained tail (errors, outliers) plus recent traces.
func (r *Recorder) Capture(alerts []string, traces []*obs.Trace) (Capture, bool) {
	now := time.Now()
	r.mu.Lock()
	if r.capturing || (!r.last.IsZero() && now.Sub(r.last) < r.opts.Cooldown) {
		r.suppressed++
		r.mu.Unlock()
		return Capture{}, false
	}
	r.capturing = true
	r.last = now
	r.mu.Unlock()

	c := r.capture(now, alerts, traces)

	r.mu.Lock()
	r.captures = append(r.captures, c)
	r.capturing = false
	r.mu.Unlock()
	return c, true
}

// capture writes the bundle; errors degrade the bundle rather than abort it,
// because a partial profile during an incident beats none.
func (r *Recorder) capture(now time.Time, alerts []string, traces []*obs.Trace) Capture {
	if len(traces) > r.opts.MaxTraces {
		traces = traces[:r.opts.MaxTraces]
	}
	c := Capture{
		ID:     "incident-" + now.UTC().Format("20060102T150405.000Z"),
		At:     now,
		Alerts: append([]string(nil), alerts...),
		Traces: len(traces),
	}
	dir := filepath.Join(r.opts.Dir, c.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.Err = err.Error()
		return c
	}
	fail := func(err error) {
		if c.Err == "" {
			c.Err = err.Error()
		}
	}

	// CPU profile first: it is the only time-bounded piece, and the firing
	// condition is most observable right now.
	if err := r.cpuProfile(filepath.Join(dir, "cpu.pprof")); err != nil {
		fail(fmt.Errorf("cpu profile: %w", err))
	} else {
		c.Files = append(c.Files, "cpu.pprof")
	}
	if err := writeHeap(filepath.Join(dir, "heap.pprof")); err != nil {
		fail(fmt.Errorf("heap profile: %w", err))
	} else {
		c.Files = append(c.Files, "heap.pprof")
	}
	if err := writeTraces(filepath.Join(dir, "traces.jsonl"), traces); err != nil {
		fail(fmt.Errorf("traces: %w", err))
	} else {
		c.Files = append(c.Files, "traces.jsonl")
	}

	// meta.json last, so its presence marks a finished bundle.
	meta, _ := json.MarshalIndent(c, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(meta, '\n'), 0o644); err != nil {
		fail(fmt.Errorf("meta: %w", err))
	} else {
		c.Files = append(c.Files, "meta.json")
	}
	return c
}

func (r *Recorder) cpuProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler (e.g. an operator at /debug/pprof/profile) is
		// running; skip rather than wait.
		return err
	}
	time.Sleep(r.opts.CPUDuration)
	pprof.StopCPUProfile()
	return nil
}

func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

func writeTraces(path string, traces []*obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, t := range traces {
		if t == nil {
			continue
		}
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// List snapshots the capture index, newest first — the body of
// GET /debug/incidents.
func (r *Recorder) List() []Capture {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Capture(nil), r.captures...)
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Captures: int64(len(r.captures)), Suppressed: r.suppressed}
	if n := len(r.captures); n > 0 {
		st.LastCapture = r.captures[n-1].ID
	}
	return st
}
