package obs

import (
	"sync"
	"testing"
)

func mkTrace(name string) *Trace {
	tr := NewTrace(name)
	tr.Finish()
	return tr
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := mkTrace("update")
		ids = append(ids, tr.ID)
		r.Add(tr)
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d, want 3", len(list))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if list[i].ID != want {
			t.Fatalf("List[%d] = %s, want %s", i, list[i].ID, want)
		}
	}
	// Evicted traces are unresolvable without a retention policy.
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("evicted trace still resolvable")
	}
	if _, ok := r.Get(ids[4]); !ok {
		t.Fatal("recent trace not resolvable")
	}
}

// TestRingTailRetention checks that evicted traces matching the keep policy
// move into the kept ring, stay resolvable by ID, and age out of the kept
// ring FIFO when it fills.
func TestRingTailRetention(t *testing.T) {
	r := NewRing(2)
	r.SetRetention(2, func(tr *Trace) bool {
		_, isErr := tr.Root.Attr("error")
		return isErr
	})

	bad1 := mkTrace("update")
	bad1.Root.SetStr("error", "boom-1")
	r.Add(bad1)
	// Flood with healthy traces: bad1 gets evicted from the main ring but
	// must survive in the kept ring.
	var healthy []string
	for i := 0; i < 4; i++ {
		tr := mkTrace("update")
		healthy = append(healthy, tr.ID)
		r.Add(tr)
	}
	if _, ok := r.Get(bad1.ID); !ok {
		t.Fatal("error trace must survive eviction via tail retention")
	}
	if _, ok := r.Get(healthy[0]); ok {
		t.Fatal("healthy evicted trace must be dropped")
	}
	kept := r.Kept()
	if len(kept) != 1 || kept[0].ID != bad1.ID {
		t.Fatalf("Kept = %v", kept)
	}
	if r.KeptTotal() != 1 {
		t.Fatalf("KeptTotal = %d, want 1", r.KeptTotal())
	}

	// Two more error traces cycle through: the kept ring holds 2, the oldest
	// kept trace ages out.
	bad2 := mkTrace("update")
	bad2.Root.SetStr("error", "boom-2")
	bad3 := mkTrace("update")
	bad3.Root.SetStr("error", "boom-3")
	for _, tr := range []*Trace{bad2, bad3} {
		r.Add(tr)
		r.Add(mkTrace("update"))
		r.Add(mkTrace("update"))
	}
	if _, ok := r.Get(bad1.ID); ok {
		t.Fatal("oldest kept trace must age out of a full kept ring")
	}
	for _, tr := range []*Trace{bad2, bad3} {
		if _, ok := r.Get(tr.ID); !ok {
			t.Fatalf("kept trace %s lost", tr.ID)
		}
	}
	if got := r.KeptTotal(); got != 3 {
		t.Fatalf("KeptTotal = %d, want 3", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	r.SetRetention(8, func(tr *Trace) bool {
		_, isErr := tr.Root.Attr("error")
		return isErr
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := mkTrace("update")
				if i%5 == 0 {
					tr.Root.SetStr("error", "x")
				}
				r.Add(tr)
				r.Get(tr.ID)
				r.List()
				r.Kept()
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 400 {
		t.Fatalf("Total = %d, want 400", r.Total())
	}
}
