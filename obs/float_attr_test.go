package obs

import (
	"encoding/json"
	"testing"
)

// TestFloatAttrRoundTrip: the ambiguity ledger annotates spans with
// floating-point bit counts; the typed attr must survive the JSON wire form
// (journal records embed whole traces).
func TestFloatAttrRoundTrip(t *testing.T) {
	tr := NewTrace("update")
	sp := tr.Root.Child("disambiguate")
	sp.SetFloat("ambiguity.before_bits", 12.75)
	sp.SetFloat("ambiguity.after_bits", 0)
	sp.End()
	tr.Finish()

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	d := back.Find("disambiguate")
	if d == nil {
		t.Fatal("round trip lost the disambiguate span")
	}
	a, ok := d.Attr("ambiguity.before_bits")
	if !ok || a.Kind != AttrFloat || a.Float != 12.75 {
		t.Fatalf("before_bits attr = %+v ok=%v, want float 12.75", a, ok)
	}
	// A zero float is still a float attr, not a dropped field.
	z, ok := d.Attr("ambiguity.after_bits")
	if !ok || z.Kind != AttrFloat || z.Float != 0 {
		t.Fatalf("after_bits attr = %+v ok=%v, want float 0", z, ok)
	}
}

func TestSetFloatNilSafety(t *testing.T) {
	var sp *Span
	sp.SetFloat("x", 1) // must not panic
}
