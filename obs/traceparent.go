package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mrand "math/rand/v2"
)

// TraceParentHeader is the W3C Trace Context header name carrying a
// TraceParent between processes (clarify-lb → clarifyd, clarify → clarifyd).
const TraceParentHeader = "traceparent"

// FlagSampled is the traceparent flag bit marking a request whose trace is
// being recorded upstream.
const FlagSampled byte = 0x01

// TraceParent is a parsed W3C traceparent value: the fleet-wide trace ID,
// the caller's span ID (which becomes the remote parent of the local root
// span), and the trace flags. The zero value is invalid.
type TraceParent struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
	Flags   byte
}

// Valid reports whether the TraceParent carries well-formed, non-zero IDs.
func (tp TraceParent) Valid() bool {
	return isHexID(tp.TraceID, 32) && isHexID(tp.SpanID, 16)
}

// Sampled reports whether the sampled flag bit is set.
func (tp TraceParent) Sampled() bool { return tp.Flags&FlagSampled != 0 }

// String renders the version-00 wire form "00-<trace-id>-<span-id>-<flags>".
func (tp TraceParent) String() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = append(b, tp.TraceID...)
	b = append(b, '-')
	b = append(b, tp.SpanID...)
	b = append(b, '-')
	b = append(b, hexDigit(tp.Flags>>4), hexDigit(tp.Flags&0x0f))
	return string(b)
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}

// ParseTraceParent parses a W3C traceparent header value. It accepts any
// version except the reserved "ff" (per the spec, unknown future versions
// are parsed for their first four fields), and rejects malformed lengths,
// non-hex digits, and all-zero trace or span IDs.
func ParseTraceParent(s string) (TraceParent, bool) {
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2) [rest]
	if len(s) < 55 {
		return TraceParent{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceParent{}, false
	}
	ver := s[0:2]
	if !isHex(ver) || ver == "ff" {
		return TraceParent{}, false
	}
	if ver == "00" && len(s) != 55 {
		return TraceParent{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return TraceParent{}, false
	}
	tp := TraceParent{TraceID: s[3:35], SpanID: s[36:52]}
	if !tp.Valid() {
		return TraceParent{}, false
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return TraceParent{}, false
	}
	tp.Flags = flags
	return tp, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isHexID reports whether s is exactly n lowercase hex digits and not all
// zeros (all-zero IDs are invalid per the W3C spec).
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

func hexByte(hi, lo byte) (byte, bool) {
	h, okH := unhex(hi)
	l, okL := unhex(lo)
	return h<<4 | l, okH && okL
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// NewTraceID returns a fresh random 32-hex-digit W3C trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable; fall back to the fast PRNG
		// so IDs stay distinct and the pipeline keeps running.
		return NewSpanID() + NewSpanID()
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-digit span ID. Span IDs are allocated on
// every span when tracing is on, so this uses the cheap goroutine-safe PRNG
// rather than crypto/rand; trace IDs remain cryptographically random.
func NewSpanID() string {
	v := mrand.Uint64()
	for v == 0 {
		v = mrand.Uint64()
	}
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return hex.EncodeToString(b[:])
}

// tpKey is the context key for a propagated TraceParent.
type tpKey struct{}

// ContextWithTraceParent returns ctx carrying tp, so a server handler can
// hand the extracted W3C context to the pipeline (which adopts the trace ID
// and remote parent in beginTrace) and an HTTP client can inject it on
// outbound requests. An invalid tp returns ctx unchanged.
func ContextWithTraceParent(ctx context.Context, tp TraceParent) context.Context {
	if !tp.Valid() {
		return ctx
	}
	return context.WithValue(ctx, tpKey{}, tp)
}

// TraceParentFromContext returns the TraceParent carried by ctx, if any.
func TraceParentFromContext(ctx context.Context) (TraceParent, bool) {
	tp, ok := ctx.Value(tpKey{}).(TraceParent)
	return tp, ok
}
