package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tp := TraceParent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	if !tp.Valid() || !tp.Sampled() {
		t.Fatalf("fresh traceparent invalid: %+v", tp)
	}
	s := tp.String()
	if !strings.HasPrefix(s, "00-") || len(s) != 55 {
		t.Fatalf("wire form = %q", s)
	}
	back, ok := ParseTraceParent(s)
	if !ok || back != tp {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", s, back, ok, tp)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc-def-01", // too short
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // version 00 with trailing data
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // all-zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // all-zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad delimiter
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",       // bad flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",      // junk tail
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // non-hex version
	} {
		if _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", bad)
		}
	}
	// A future version with trailing fields parses its known prefix.
	tp, ok := ParseTraceParent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-09-future")
	if !ok || tp.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tp.SpanID != "00f067aa0ba902b7" || tp.Flags != 0x09 {
		t.Fatalf("future version parse: %+v ok=%v", tp, ok)
	}
}

func TestNewTraceWithAdoptsContext(t *testing.T) {
	tp := TraceParent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	tr := NewTraceWith("update", tp)
	if tr.ID != tp.TraceID || tr.ParentSpanID != tp.SpanID {
		t.Fatalf("trace did not adopt context: id=%q parent=%q", tr.ID, tr.ParentSpanID)
	}
	if tr.Root.SpanID == "" || tr.Root.SpanID == tp.SpanID {
		t.Fatalf("root span must get a fresh local span ID, got %q", tr.Root.SpanID)
	}
	// Invalid context falls back to a locally rooted trace.
	tr2 := NewTraceWith("update", TraceParent{})
	if tr2.ParentSpanID != "" || !isHexID(tr2.ID, 32) {
		t.Fatalf("invalid context must root locally: %+v", tr2)
	}
}

func TestTraceParentForInjection(t *testing.T) {
	tr := NewTrace("lb-proxy")
	fwd := tr.Root.Child("forward")
	tp := tr.TraceParentFor(fwd)
	if !tp.Valid() || tp.TraceID != tr.ID || tp.SpanID != fwd.SpanID || !tp.Sampled() {
		t.Fatalf("TraceParentFor = %+v", tp)
	}
	var nilTrace *Trace
	if nilTrace.TraceParentFor(nil).Valid() {
		t.Fatal("nil trace must yield an invalid traceparent")
	}
	if tr.FindSpanID(fwd.SpanID) != fwd {
		t.Fatal("FindSpanID did not locate the forward span")
	}
	if tr.FindSpanID("") != nil || tr.FindSpanID("ffffffffffffffff") != nil {
		t.Fatal("FindSpanID must miss on empty/unknown IDs")
	}
}

func TestContextTraceParent(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceParentFromContext(ctx); ok {
		t.Fatal("empty context carries no traceparent")
	}
	if ContextWithTraceParent(ctx, TraceParent{}) != ctx {
		t.Fatal("invalid traceparent must not wrap the context")
	}
	tp := TraceParent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	got, ok := TraceParentFromContext(ContextWithTraceParent(ctx, tp))
	if !ok || got != tp {
		t.Fatalf("context round trip: %+v ok=%v", got, ok)
	}
}
