package obs

import "sync"

// Ring retains the most recent completed traces for debug endpoints. It is a
// fixed-size ring: the oldest trace is evicted when a new one arrives at
// capacity. An optional tail-retention policy (SetRetention) gives evicted
// traces a second life: traces the keep function flags — errors, degraded
// runs, latency outliers — move into a separate kept ring instead of
// vanishing, so the interesting tail survives a flood of healthy traffic.
// Shared by the server's per-replica ring and clarify-lb's fleet view.
// All methods are safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []*Trace // circular, len == capacity
	next  int      // slot the next trace lands in
	byID  map[string]*Trace
	total int64 // traces ever recorded

	keep    func(*Trace) bool
	kept    []*Trace // circular, len == kept capacity; nil when no retention
	keptN   int      // slot the next kept trace lands in
	keptTot int64    // traces ever retained by the keep policy
}

// NewRing returns a trace ring holding up to capacity traces. A non-positive
// capacity panics — callers choose the default.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{
		buf:  make([]*Trace, capacity),
		byID: map[string]*Trace{},
	}
}

// SetRetention installs the tail-retention policy: when the main ring evicts
// a trace for which keep returns true, the trace moves into a secondary ring
// of the given capacity (and stays resolvable by ID) instead of being
// dropped. Call before the ring is in use; a nil keep disables retention.
func (r *Ring) SetRetention(capacity int, keep func(*Trace) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity <= 0 || keep == nil {
		r.kept, r.keep, r.keptN = nil, nil, 0
		return
	}
	r.keep = keep
	r.kept = make([]*Trace, capacity)
	r.keptN = 0
}

// Add records a completed trace, evicting (or retaining) the oldest at
// capacity.
func (r *Ring) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		r.evict(old)
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// evict applies the retention policy to a trace leaving the main ring.
// Callers hold the mutex.
func (r *Ring) evict(old *Trace) {
	if r.keep != nil && r.keep(old) {
		if prev := r.kept[r.keptN]; prev != nil {
			r.unindex(prev)
		}
		r.kept[r.keptN] = old
		r.keptN = (r.keptN + 1) % len(r.kept)
		r.keptTot++
		return // still resolvable by ID
	}
	r.unindex(old)
}

// unindex drops a trace from the ID index — unless a newer trace with the
// same ID has taken the slot (several proxied requests continuing one
// propagated trace context legitimately share an ID). Callers hold the mutex.
func (r *Ring) unindex(t *Trace) {
	if cur, ok := r.byID[t.ID]; ok && cur == t {
		delete(r.byID, t.ID)
	}
}

// Get resolves a retained trace by ID, searching both rings.
func (r *Ring) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Total is the number of traces ever recorded.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// KeptTotal is the number of evicted traces rescued by the retention policy.
func (r *Ring) KeptTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.keptTot
}

// List snapshots the traces in the main ring, newest first.
func (r *Ring) List() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return listRing(r.buf, r.next)
}

// Kept snapshots the tail-retained traces, newest first.
func (r *Ring) Kept() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.kept == nil {
		return nil
	}
	return listRing(r.kept, r.keptN)
}

// listRing walks a circular buffer backwards from the most recently filled
// slot, skipping empty slots.
func listRing(buf []*Trace, next int) []*Trace {
	out := make([]*Trace, 0, len(buf))
	for i := 0; i < len(buf); i++ {
		idx := (next - 1 - i + 2*len(buf)) % len(buf)
		if t := buf[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}
