// Package obs provides structured, span-based tracing for the Clarify
// pipeline: one Trace per update, holding a tree of Spans (classify,
// synthesize-attempt-N, parse, spec-extract, verify, disambiguate,
// question-wait, insert), each with a start time, a duration, typed
// attributes (attempt numbers, fault feedback, LLM latency and retries,
// BDD workload counters) and free-text event lines.
//
// The package is deliberately dependency-free so every layer of the
// repository — bdd, symbolic, llm, spec, disambig, clarify, server — can
// annotate spans without import cycles.
//
// Nil-safety is the core contract: every method on a nil *Trace or nil
// *Span is a no-op, so instrumented code needs no "is tracing enabled?"
// branches and pays nothing (no allocations, no locks) when tracing is off.
// A Trace is owned by the goroutine running its pipeline until Finish; after
// it has been handed to a Sink it must be treated as read-only.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AttrKind discriminates the typed value carried by an Attr.
type AttrKind uint8

// Attribute kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrDuration
	AttrBool
	AttrFloat
)

// Attr is one typed span attribute. Exactly one of the value fields is
// meaningful, selected by Kind.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Dur   time.Duration
	Bool  bool
	Float float64
}

// attrJSON is the wire form of an Attr: the key plus exactly one value field.
type attrJSON struct {
	Key   string   `json:"key"`
	Str   *string  `json:"str,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	DurMs *float64 `json:"durMs,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
	Float *float64 `json:"float,omitempty"`
}

// MarshalJSON renders the attribute with only its typed value present.
func (a Attr) MarshalJSON() ([]byte, error) {
	out := attrJSON{Key: a.Key}
	switch a.Kind {
	case AttrString:
		out.Str = &a.Str
	case AttrInt:
		out.Int = &a.Int
	case AttrDuration:
		ms := float64(a.Dur) / float64(time.Millisecond)
		out.DurMs = &ms
	case AttrBool:
		out.Bool = &a.Bool
	case AttrFloat:
		out.Float = &a.Float
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores an attribute from its wire form.
func (a *Attr) UnmarshalJSON(data []byte) error {
	var in attrJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	a.Key = in.Key
	switch {
	case in.Str != nil:
		a.Kind, a.Str = AttrString, *in.Str
	case in.Int != nil:
		a.Kind, a.Int = AttrInt, *in.Int
	case in.DurMs != nil:
		a.Kind, a.Dur = AttrDuration, time.Duration(*in.DurMs*float64(time.Millisecond))
	case in.Bool != nil:
		a.Kind, a.Bool = AttrBool, *in.Bool
	case in.Float != nil:
		a.Kind, a.Float = AttrFloat, *in.Float
	}
	return nil
}

// Span is one timed stage of a pipeline run. Spans form a tree under the
// owning Trace's Root. All methods are safe on a nil receiver.
type Span struct {
	Name string `json:"name"`
	// SpanID is the span's W3C-style 16-hex-digit ID, allocated at creation.
	// It is what a traceparent injected from this span carries, and what a
	// downstream process's trace records as its remote parent — the joint
	// the fleet trace view stitches on.
	SpanID   string        `json:"spanId,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	// Events are free-text log lines attached to the span, in order (the
	// legacy clarify trace lines).
	Events   []string `json:"events,omitempty"`
	Children []*Span  `json:"children,omitempty"`

	trace *Trace
}

// spanJSON adds the duration in fractional milliseconds to the wire form.
type spanJSON struct {
	Name     string    `json:"name"`
	SpanID   string    `json:"spanId,omitempty"`
	Start    time.Time `json:"start"`
	DurMs    float64   `json:"durMs"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Events   []string  `json:"events,omitempty"`
	Children []*Span   `json:"children,omitempty"`
}

// MarshalJSON renders the span with durMs instead of nanoseconds.
func (sp *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{
		Name:     sp.Name,
		SpanID:   sp.SpanID,
		Start:    sp.Start,
		DurMs:    float64(sp.Duration) / float64(time.Millisecond),
		Attrs:    sp.Attrs,
		Events:   sp.Events,
		Children: sp.Children,
	})
}

// UnmarshalJSON restores a span from its wire form.
func (sp *Span) UnmarshalJSON(data []byte) error {
	var in spanJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	sp.Name = in.Name
	sp.SpanID = in.SpanID
	sp.Start = in.Start
	sp.Duration = time.Duration(in.DurMs * float64(time.Millisecond))
	sp.Attrs = in.Attrs
	sp.Events = in.Events
	sp.Children = in.Children
	return nil
}

// Child starts a new child span. It returns nil on a nil receiver, so whole
// instrumented call chains collapse to no-ops when tracing is disabled.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{Name: name, SpanID: NewSpanID(), Start: time.Now(), trace: sp.trace}
	sp.Children = append(sp.Children, c)
	return c
}

// ChildN starts a child span named prefix + "-" + n (e.g.
// "synthesize-attempt-2") without allocating the name when tracing is off.
func (sp *Span) ChildN(prefix string, n int) *Span {
	if sp == nil {
		return nil
	}
	return sp.Child(prefix + "-" + strconv.Itoa(n))
}

// End records the span's duration. Idempotent: the first call wins.
func (sp *Span) End() {
	if sp == nil || sp.Duration != 0 {
		return
	}
	sp.Duration = time.Since(sp.Start)
	if sp.Duration == 0 {
		sp.Duration = 1 // clamp so "ended" is distinguishable on coarse clocks
	}
}

// SetStr attaches a string attribute.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Kind: AttrString, Str: v})
}

// SetInt attaches an integer attribute.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Kind: AttrInt, Int: v})
}

// SetDur attaches a duration attribute.
func (sp *Span) SetDur(key string, v time.Duration) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Kind: AttrDuration, Dur: v})
}

// SetBool attaches a boolean attribute.
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Kind: AttrBool, Bool: v})
}

// SetFloat attaches a floating-point attribute (bits of ambiguity, scores).
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Kind: AttrFloat, Float: v})
}

// Attr returns the attribute with the given key and whether it exists.
func (sp *Span) Attr(key string) (Attr, bool) {
	if sp == nil {
		return Attr{}, false
	}
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Logf attaches a formatted event line to the span. When the owning trace
// has a LineWriter, the line is also streamed to it immediately as
// "<LinePrefix><line>\n" — the adapter preserving the legacy clarify
// free-text trace format.
func (sp *Span) Logf(format string, args ...interface{}) {
	if sp == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	sp.Events = append(sp.Events, line)
	if t := sp.trace; t != nil && t.LineWriter != nil {
		fmt.Fprintf(t.LineWriter, "%s%s\n", t.LinePrefix, line)
	}
}

// Trace is one pipeline run's span tree. All methods are safe on a nil
// receiver.
type Trace struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	Root  *Span     `json:"root"`
	// ParentSpanID is the remote parent's span ID when this trace continues
	// a W3C context propagated from another process (the clarify-lb forward
	// span, or a clarify -remote invocation). Empty for locally rooted
	// traces. The fleet trace view grafts this trace's root under the
	// upstream span whose SpanID matches.
	ParentSpanID string `json:"parentSpanId,omitempty"`

	// LineWriter, when non-nil, receives every Logf line as it is logged,
	// prefixed with LinePrefix — the live adapter onto the legacy io.Writer
	// trace format.
	LineWriter io.Writer `json:"-"`
	LinePrefix string    `json:"-"`
}

// NewTrace starts a trace with a fresh random ID and a started root span.
func NewTrace(rootName string) *Trace {
	t := &Trace{ID: NewTraceID(), Start: time.Now()}
	t.Root = &Span{Name: rootName, SpanID: NewSpanID(), Start: t.Start, trace: t}
	return t
}

// NewTraceWith starts a trace that continues a propagated W3C context: the
// trace adopts tp's trace ID and records tp's span ID as its remote parent,
// so the fleet view can stitch this process's spans under the caller's. An
// invalid tp falls back to a locally rooted NewTrace.
func NewTraceWith(rootName string, tp TraceParent) *Trace {
	if !tp.Valid() {
		return NewTrace(rootName)
	}
	t := NewTrace(rootName)
	t.ID = tp.TraceID
	t.ParentSpanID = tp.SpanID
	return t
}

// TraceParentFor returns the traceparent to inject downstream of sp: the
// trace's ID, sp's span ID, and the sampled flag (this process is recording).
// A nil trace or span returns an invalid zero TraceParent.
func (t *Trace) TraceParentFor(sp *Span) TraceParent {
	if t == nil || sp == nil {
		return TraceParent{}
	}
	return TraceParent{TraceID: t.ID, SpanID: sp.SpanID, Flags: FlagSampled}
}

// FindSpanID returns the span with the given SpanID (depth-first), or nil.
func (t *Trace) FindSpanID(id string) *Span {
	if id == "" {
		return nil
	}
	var found *Span
	t.Walk(func(sp *Span, _ int) {
		if found == nil && sp.SpanID == id {
			found = sp
		}
	})
	return found
}

// Finish ends the root span. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// Duration is the root span's duration (zero until Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil || t.Root == nil {
		return 0
	}
	return t.Root.Duration
}

// Walk visits every span depth-first, parents before children.
func (t *Trace) Walk(fn func(sp *Span, depth int)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
}

// Find returns the first span (depth-first) whose name equals name, or nil.
func (t *Trace) Find(name string) *Span {
	var found *Span
	t.Walk(func(sp *Span, _ int) {
		if found == nil && sp.Name == name {
			found = sp
		}
	})
	return found
}

// SpanCount is the number of spans in the tree, including the root.
func (t *Trace) SpanCount() int {
	n := 0
	t.Walk(func(*Span, int) { n++ })
	return n
}

// CanonicalStage maps a span name onto its metrics stage: a trailing
// "-<number>" is stripped, so every "synthesize-attempt-N" aggregates into
// one "synthesize-attempt" histogram.
func CanonicalStage(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Sink consumes completed traces. Implementations shared across sessions
// must be safe for concurrent use.
type Sink interface {
	// TraceDone is called exactly once per trace, after Finish; the trace
	// must be treated as read-only.
	TraceDone(t *Trace)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Trace)

// TraceDone implements Sink.
func (f SinkFunc) TraceDone(t *Trace) { f(t) }

// JSONWriter is a Sink that appends each completed trace as one JSON line
// (JSONL), for offline analysis of eval runs. It is safe for concurrent use.
type JSONWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONWriter returns a JSONL trace sink writing to w.
func NewJSONWriter(w io.Writer) *JSONWriter { return &JSONWriter{w: w} }

// TraceDone implements Sink.
func (j *JSONWriter) TraceDone(t *Trace) {
	data, err := json.Marshal(t)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Write(data)
	io.WriteString(j.w, "\n")
}

// MultiSink fans completed traces out to several sinks.
func MultiSink(sinks ...Sink) Sink {
	return SinkFunc(func(t *Trace) {
		for _, s := range sinks {
			if s != nil {
				s.TraceDone(t)
			}
		}
	})
}

// ctxKey is the context key for the active span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp, so layers below a pipeline stage
// (e.g. the LLM client's retry loop) can annotate the stage's span. A nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
