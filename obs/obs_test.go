package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilSafety exercises every method on nil receivers: the disabled-tracing
// fast path must never panic and must propagate nil through child chains.
func TestNilSafety(t *testing.T) {
	var sp *Span
	c := sp.Child("x")
	if c != nil {
		t.Fatal("nil span's Child must be nil")
	}
	if cn := sp.ChildN("attempt", 3); cn != nil {
		t.Fatal("nil span's ChildN must be nil")
	}
	// Chains through nil collapse entirely.
	sp.Child("a").Child("b").End()
	sp.End()
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetDur("k", time.Second)
	sp.SetBool("k", true)
	sp.Logf("ignored %d", 42)
	if _, ok := sp.Attr("k"); ok {
		t.Fatal("nil span has no attributes")
	}

	var tr *Trace
	tr.Finish()
	if tr.Duration() != 0 {
		t.Fatal("nil trace has no duration")
	}
	tr.Walk(func(*Span, int) { t.Fatal("nil trace walks no spans") })
	if tr.Find("x") != nil {
		t.Fatal("nil trace finds nothing")
	}
	if tr.SpanCount() != 0 {
		t.Fatal("nil trace has no spans")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTrace("update")
	if !isHexID(tr.ID, 32) {
		t.Fatalf("want 32-hex W3C trace ID, got %q", tr.ID)
	}
	if !isHexID(tr.Root.SpanID, 16) {
		t.Fatalf("want 16-hex root span ID, got %q", tr.Root.SpanID)
	}
	a := tr.Root.ChildN("synthesize-attempt", 1)
	if a.Name != "synthesize-attempt-1" {
		t.Fatalf("ChildN name = %q", a.Name)
	}
	v := a.Child("verify")
	v.SetInt("violations", 2)
	v.End()
	a.End()
	tr.Finish()

	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	if tr.Find("verify") != v {
		t.Fatal("Find did not locate the verify span")
	}
	attr, ok := v.Attr("violations")
	if !ok || attr.Kind != AttrInt || attr.Int != 2 {
		t.Fatalf("violations attr = %+v, ok=%v", attr, ok)
	}
	if v.Duration <= 0 || a.Duration <= 0 || tr.Duration() <= 0 {
		t.Fatal("ended spans must have positive durations")
	}
	// End is idempotent.
	d := v.Duration
	v.End()
	if v.Duration != d {
		t.Fatal("second End must not change the duration")
	}
	// Depth-first walk order, parents first.
	var names []string
	tr.Walk(func(sp *Span, depth int) { names = append(names, sp.Name) })
	want := []string{"update", "synthesize-attempt-1", "verify"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", names, want)
		}
	}
}

// TestJSONRoundTrip checks that a marshalled trace restores with the same
// shape, durations (to millisecond precision) and typed attributes.
func TestJSONRoundTrip(t *testing.T) {
	tr := NewTrace("update")
	sp := tr.Root.Child("classify")
	sp.SetStr("kind", "route-map")
	sp.SetInt("n", 7)
	sp.SetDur("llm-ms", 1500*time.Microsecond)
	sp.SetBool("ok", true)
	sp.Logf("classified intent as %s", "route-map")
	sp.End()
	tr.Finish()

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "LineWriter") {
		t.Fatal("adapter fields must not leak into the wire form")
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tr.ID || back.SpanCount() != 2 {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	c := back.Find("classify")
	if c == nil {
		t.Fatal("round trip lost the classify span")
	}
	for _, tc := range []struct {
		key  string
		kind AttrKind
	}{{"kind", AttrString}, {"n", AttrInt}, {"llm-ms", AttrDuration}, {"ok", AttrBool}} {
		a, ok := c.Attr(tc.key)
		if !ok || a.Kind != tc.kind {
			t.Errorf("attr %q: got %+v ok=%v, want kind %d", tc.key, a, ok, tc.kind)
		}
	}
	if a, _ := c.Attr("llm-ms"); a.Dur != 1500*time.Microsecond {
		t.Errorf("duration attr = %v, want 1.5ms", a.Dur)
	}
	if len(c.Events) != 1 || c.Events[0] != "classified intent as route-map" {
		t.Errorf("events = %v", c.Events)
	}
}

// TestLineWriterAdapter checks the legacy io.Writer format: each Logf line
// streams immediately as "<prefix><line>\n", in order, from any span depth.
func TestLineWriterAdapter(t *testing.T) {
	var buf strings.Builder
	tr := NewTrace("update")
	tr.LineWriter = &buf
	tr.LinePrefix = "clarify: "
	tr.Root.Logf("classified intent as %s", "route-map")
	child := tr.Root.Child("synthesize-attempt-1")
	child.Logf("attempt %d rejected", 1)
	want := "clarify: classified intent as route-map\nclarify: attempt 1 rejected\n"
	if buf.String() != want {
		t.Fatalf("adapter output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestCanonicalStage(t *testing.T) {
	for in, want := range map[string]string{
		"synthesize-attempt-1":  "synthesize-attempt",
		"synthesize-attempt-12": "synthesize-attempt",
		"classify":              "classify",
		"question-wait":         "question-wait",
		"update":                "update",
		"v2":                    "v2",
	} {
		if got := CanonicalStage(in); got != want {
			t.Errorf("CanonicalStage(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestContextSpan(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries no span")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil span must not wrap the context")
	}
	tr := NewTrace("update")
	sp := tr.Root.Child("classify")
	if got := SpanFromContext(ContextWithSpan(ctx, sp)); got != sp {
		t.Fatalf("SpanFromContext = %v, want %v", got, sp)
	}
}

func TestSinks(t *testing.T) {
	var buf strings.Builder
	jw := NewJSONWriter(&buf)
	var calls int
	multi := MultiSink(jw, nil, SinkFunc(func(*Trace) { calls++ }))

	t1 := NewTrace("update")
	t1.Finish()
	t2 := NewTrace("update")
	t2.Finish()
	multi.TraceDone(t1)
	multi.TraceDone(t2)

	if calls != 2 {
		t.Fatalf("func sink called %d times, want 2", calls)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL sink wrote %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var tr Trace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
}
