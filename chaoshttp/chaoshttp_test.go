package chaoshttp

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// backend is a healthy endpoint returning a fixed JSON body.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"choices":[{"message":{"role":"assistant","content":"ok"}}]}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,reset=0.2,429=0.1,503=0.1,garbage=0.05,truncate=0.05,stall=0.02,latency=0.3,latency-delay=100ms,stall-delay=2s,retry-after=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Reset != 0.2 || p.HTTP429 != 0.1 || p.HTTP503 != 0.1 ||
		p.Garbage != 0.05 || p.Truncate != 0.05 || p.Stall != 0.02 ||
		p.Latency != 0.3 || p.LatencyDelay != 100*time.Millisecond ||
		p.StallDelay != 2*time.Second || p.RetryAfterSeconds != 1 {
		t.Errorf("parsed plan = %+v", p)
	}
	if b := p.FaultBudget(); b < 0.51 || b > 0.53 {
		t.Errorf("fault budget = %v, want 0.52", b)
	}
}

func TestParsePlanDownShorthand(t *testing.T) {
	p, err := ParsePlan("down,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Reset != 1 || p.Seed != 7 {
		t.Errorf("plan = %+v, want reset=1 seed=7", p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus-key=0.5",
		"reset=notanumber",
		"reset",
		"reset=0.7,503=0.7", // sums over 1
		"reset=-0.1",
		"seed=xyz",
		"latency-delay=fast",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", spec)
		}
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	plan := Plan{Seed: 99, Reset: 0.3, HTTP503: 0.3, Garbage: 0.2}
	srv := backend(t)
	run := func() Counts {
		rt := New(plan, nil)
		client := &http.Client{Transport: rt, Timeout: 5 * time.Second}
		for i := 0; i < 200; i++ {
			resp, err := get(t, client, srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return rt.Counts()
	}
	a, b := run(), run()
	if a.Total != 200 || b.Total != 200 {
		t.Fatalf("totals = %d, %d", a.Total, b.Total)
	}
	if a.Passed != b.Passed {
		t.Errorf("passed differ: %d vs %d", a.Passed, b.Passed)
	}
	for k, v := range a.Injected {
		if b.Injected[k] != v {
			t.Errorf("fault %s: %d vs %d", k, v, b.Injected[k])
		}
	}
	// Sanity: with a 0.8 budget over 200 requests, injections must dominate.
	if a.Passed > 100 {
		t.Errorf("passed = %d, implausibly high for budget 0.8", a.Passed)
	}
}

func TestResetFault(t *testing.T) {
	rt := New(Plan{Reset: 1}, nil)
	client := &http.Client{Transport: rt}
	_, err := get(t, client, "http://unreachable.invalid/x")
	if err == nil {
		t.Fatal("want transport error")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("error = %v, want ECONNRESET", err)
	}
}

func TestHTTP429CarriesRetryAfter(t *testing.T) {
	rt := New(Plan{HTTP429: 1, RetryAfterSeconds: 3}, nil)
	client := &http.Client{Transport: rt}
	resp, err := get(t, client, "http://unreachable.invalid/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
}

func TestHTTP503(t *testing.T) {
	rt := New(Plan{HTTP503: 1}, nil)
	client := &http.Client{Transport: rt}
	resp, err := get(t, client, "http://unreachable.invalid/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestGarbageBodyIsNotJSON(t *testing.T) {
	rt := New(Plan{Garbage: 1}, nil)
	client := &http.Client{Transport: rt}
	resp, err := get(t, client, "http://unreachable.invalid/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if strings.HasPrefix(strings.TrimSpace(string(body)), "{") {
		t.Errorf("garbage body looks like JSON: %q", body)
	}
}

func TestTruncateCutsRealBody(t *testing.T) {
	srv := backend(t)
	rt := New(Plan{Truncate: 1}, nil)
	client := &http.Client{Transport: rt}
	resp, err := get(t, client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	full := `{"choices":[{"message":{"role":"assistant","content":"ok"}}]}`
	if len(body) != len(full)/2 {
		t.Errorf("truncated body length = %d, want %d", len(body), len(full)/2)
	}
}

func TestStallRespectsContext(t *testing.T) {
	rt := New(Plan{Stall: 1, StallDelay: 10 * time.Second}, nil)
	client := &http.Client{Transport: rt}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://unreachable.invalid/x", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("want error from stalled request")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stall ignored context: took %v", elapsed)
	}
}

func TestStallElapsesWithoutContext(t *testing.T) {
	rt := New(Plan{Stall: 1, StallDelay: 10 * time.Millisecond}, nil)
	client := &http.Client{Transport: rt}
	_, err := get(t, client, "http://unreachable.invalid/x")
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("error = %v, want stall->ECONNRESET", err)
	}
}

func TestLatencyDelaysPassingRequests(t *testing.T) {
	srv := backend(t)
	rt := New(Plan{Latency: 1, LatencyDelay: 40 * time.Millisecond}, nil)
	client := &http.Client{Transport: rt}
	start := time.Now()
	resp, err := get(t, client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("latency spike not applied: %v", elapsed)
	}
	c := rt.Counts()
	if c.LatencySpikes != 1 || c.Passed != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestSetPlanHeals(t *testing.T) {
	srv := backend(t)
	rt := New(Plan{Reset: 1}, nil)
	client := &http.Client{Transport: rt}
	if _, err := get(t, client, srv.URL); err == nil {
		t.Fatal("want reset before healing")
	}
	rt.SetPlan(Plan{})
	resp, err := get(t, client, srv.URL)
	if err != nil {
		t.Fatalf("healed transport failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

func TestCountsString(t *testing.T) {
	rt := New(Plan{Reset: 1}, nil)
	client := &http.Client{Transport: rt}
	get(t, client, "http://unreachable.invalid/x")
	s := rt.Counts().String()
	if !strings.Contains(s, "total=1") || !strings.Contains(s, "reset=1") {
		t.Errorf("counts string = %q", s)
	}
}
