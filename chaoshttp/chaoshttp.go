// Package chaoshttp is a deterministic fault-injection harness for HTTP
// clients: a seeded RoundTripper that perturbs requests with the failure
// modes real LLM endpoints exhibit — connection resets, 429/503 bursts,
// garbage and truncated JSON bodies, latency spikes, and stalls.
//
// The same Plan drives both the repository's chaos tests (the -race soak in
// the server package) and live fault injection via the clarifyd/clarify
// -chaos flag, so the failure behaviour proven in CI is the behaviour
// operators can reproduce against a running daemon.
//
// Determinism: fault draws come from one seeded math/rand source consumed
// in request order, so a single-threaded request sequence sees an identical
// fault sequence for a given seed. Under concurrency the interleaving
// assigns draws to requests nondeterministically, but the multiset of
// injected faults over N requests is still reproducible.
package chaoshttp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fault is one injectable failure mode.
type Fault int

// Fault kinds, in evaluation order.
const (
	// FaultReset drops the request with a connection-reset transport error.
	FaultReset Fault = iota
	// FaultHTTP429 synthesizes a 429 Too Many Requests response carrying a
	// Retry-After header.
	FaultHTTP429
	// FaultHTTP503 synthesizes a 503 Service Unavailable response.
	FaultHTTP503
	// FaultGarbage synthesizes a 200 response whose body is not JSON.
	FaultGarbage
	// FaultTruncate forwards the request but cuts the response body in half
	// mid-JSON.
	FaultTruncate
	// FaultStall hangs the request for StallDelay (bounded by the request
	// context) and then fails it with a transport error.
	FaultStall
)

func (f Fault) String() string {
	switch f {
	case FaultReset:
		return "reset"
	case FaultHTTP429:
		return "http429"
	case FaultHTTP503:
		return "http503"
	case FaultGarbage:
		return "garbage"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	default:
		return "unknown"
	}
}

// faults lists every kind, in evaluation order.
var faults = []Fault{FaultReset, FaultHTTP429, FaultHTTP503, FaultGarbage, FaultTruncate, FaultStall}

// Plan is a fault plan: independent per-request probabilities for each fault
// (at most one fault fires per request, evaluated cumulatively in the order
// above) plus an orthogonal latency spike probability applied to requests
// that pass.
type Plan struct {
	// Seed seeds the deterministic fault sequence.
	Seed int64
	// Probability of each fault, each in [0,1]; their sum must be <= 1.
	Reset, HTTP429, HTTP503, Garbage, Truncate, Stall float64
	// Latency is the probability that a passing request is delayed by
	// LatencyDelay (default 50ms) before being forwarded.
	Latency      float64
	LatencyDelay time.Duration
	// StallDelay bounds how long a stalled request hangs before failing
	// (default 5s); the request context can cut it shorter.
	StallDelay time.Duration
	// RetryAfterSeconds is advertised on injected 429 responses (0 means
	// "retry immediately", which keeps chaos tests fast).
	RetryAfterSeconds int
}

// prob returns the plan probability for one fault kind.
func (p Plan) prob(f Fault) float64 {
	switch f {
	case FaultReset:
		return p.Reset
	case FaultHTTP429:
		return p.HTTP429
	case FaultHTTP503:
		return p.HTTP503
	case FaultGarbage:
		return p.Garbage
	case FaultTruncate:
		return p.Truncate
	case FaultStall:
		return p.Stall
	default:
		return 0
	}
}

// FaultBudget is the total per-request fault probability.
func (p Plan) FaultBudget() float64 {
	total := 0.0
	for _, f := range faults {
		total += p.prob(f)
	}
	return total
}

// Validate rejects out-of-range probabilities.
func (p Plan) Validate() error {
	for _, f := range faults {
		if pr := p.prob(f); pr < 0 || pr > 1 {
			return fmt.Errorf("chaoshttp: %s probability %v out of [0,1]", f, pr)
		}
	}
	if p.Latency < 0 || p.Latency > 1 {
		return fmt.Errorf("chaoshttp: latency probability %v out of [0,1]", p.Latency)
	}
	if total := p.FaultBudget(); total > 1+1e-9 {
		return fmt.Errorf("chaoshttp: fault probabilities sum to %v > 1", total)
	}
	return nil
}

// ParsePlan parses the comma-separated key=value plan spec used by the
// -chaos flags, e.g.
//
//	"seed=42,reset=0.2,429=0.1,503=0.1,garbage=0.1,truncate=0.05,stall=0.05,latency=0.3,latency-delay=100ms"
//
// The shorthand "down" expands to reset=1 (a hard-down endpoint). Numeric
// keys 429/503 alias http429/http503.
func ParsePlan(spec string) (Plan, error) {
	p := Plan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if field == "down" {
			p.Reset = 1
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaoshttp: bad plan field %q (want key=value)", field)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaoshttp: bad seed %q: %v", v, err)
			}
			p.Seed = n
		case "retry-after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("chaoshttp: bad retry-after %q", v)
			}
			p.RetryAfterSeconds = n
		case "latency-delay", "stall-delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Plan{}, fmt.Errorf("chaoshttp: bad %s %q: %v", k, v, err)
			}
			if k == "latency-delay" {
				p.LatencyDelay = d
			} else {
				p.StallDelay = d
			}
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaoshttp: bad probability %q for %q: %v", v, k, err)
			}
			switch k {
			case "reset":
				p.Reset = f
			case "429", "http429":
				p.HTTP429 = f
			case "503", "http503":
				p.HTTP503 = f
			case "garbage":
				p.Garbage = f
			case "truncate":
				p.Truncate = f
			case "stall":
				p.Stall = f
			case "latency":
				p.Latency = f
			default:
				return Plan{}, fmt.Errorf("chaoshttp: unknown plan key %q", k)
			}
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Counts reports what a RoundTripper has injected so far.
type Counts struct {
	// Total is the number of requests seen.
	Total int64 `json:"total"`
	// Passed is the number forwarded unperturbed (latency spikes count as
	// passed).
	Passed int64 `json:"passed"`
	// Injected maps fault name to injection count.
	Injected map[string]int64 `json:"injected"`
	// LatencySpikes counts passing requests that were delayed.
	LatencySpikes int64 `json:"latencySpikes"`
}

// String renders counts compactly for logs: "total=N passed=N reset=N ...".
func (c Counts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d passed=%d", c.Total, c.Passed)
	keys := make([]string, 0, len(c.Injected))
	for k := range c.Injected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, c.Injected[k])
	}
	if c.LatencySpikes > 0 {
		fmt.Fprintf(&b, " latency=%d", c.LatencySpikes)
	}
	return b.String()
}

// RoundTripper injects Plan faults in front of a real transport. It is safe
// for concurrent use; SetPlan swaps the plan at runtime (e.g. to heal the
// endpoint mid-soak and watch the breaker close).
type RoundTripper struct {
	next http.RoundTripper

	mu     sync.Mutex
	plan   Plan
	rng    *rand.Rand
	counts Counts
}

// New builds a fault-injecting RoundTripper around next (nil selects
// http.DefaultTransport).
func New(plan Plan, next http.RoundTripper) *RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &RoundTripper{
		next:   next,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		counts: Counts{Injected: map[string]int64{}},
	}
}

// SetPlan replaces the fault plan (the random sequence continues; pass a
// zero Plan to heal the endpoint).
func (rt *RoundTripper) SetPlan(p Plan) {
	rt.mu.Lock()
	rt.plan = p
	rt.mu.Unlock()
}

// Counts snapshots the injection counters.
func (rt *RoundTripper) Counts() Counts {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := rt.counts
	out.Injected = make(map[string]int64, len(rt.counts.Injected))
	for k, v := range rt.counts.Injected {
		out.Injected[k] = v
	}
	return out
}

// draw picks this request's fate under the lock: the fault to inject (or -1
// to pass) and whether to add latency.
func (rt *RoundTripper) draw() (fault Fault, inject, latency bool, plan Plan) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	plan = rt.plan
	rt.counts.Total++
	r := rt.rng.Float64()
	cum := 0.0
	for _, f := range faults {
		cum += plan.prob(f)
		if r < cum {
			rt.counts.Injected[f.String()]++
			return f, true, false, plan
		}
	}
	rt.counts.Passed++
	if plan.Latency > 0 && rt.rng.Float64() < plan.Latency {
		rt.counts.LatencySpikes++
		return 0, false, true, plan
	}
	return 0, false, false, plan
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	fault, inject, latency, plan := rt.draw()
	if !inject {
		if latency {
			delay := plan.LatencyDelay
			if delay <= 0 {
				delay = 50 * time.Millisecond
			}
			if err := sleepCtx(req.Context(), delay); err != nil {
				closeBody(req)
				return nil, err
			}
		}
		return rt.next.RoundTrip(req)
	}
	switch fault {
	case FaultReset:
		closeBody(req)
		return nil, fmt.Errorf("chaoshttp: injected reset: %w", syscall.ECONNRESET)
	case FaultHTTP429:
		closeBody(req)
		resp := synthesize(req, http.StatusTooManyRequests, `{"error":{"message":"chaoshttp: injected rate limit"}}`)
		resp.Header.Set("Retry-After", strconv.Itoa(plan.RetryAfterSeconds))
		return resp, nil
	case FaultHTTP503:
		closeBody(req)
		return synthesize(req, http.StatusServiceUnavailable, `{"error":{"message":"chaoshttp: injected overload"}}`), nil
	case FaultGarbage:
		closeBody(req)
		return synthesize(req, http.StatusOK, "<<<chaoshttp: this is not JSON>>>"), nil
	case FaultTruncate:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, fmt.Errorf("chaoshttp: truncate read: %w", rerr)
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(strings.NewReader(string(cut)))
		resp.ContentLength = int64(len(cut))
		resp.Header.Del("Content-Length")
		return resp, nil
	case FaultStall:
		closeBody(req)
		delay := plan.StallDelay
		if delay <= 0 {
			delay = 5 * time.Second
		}
		if err := sleepCtx(req.Context(), delay); err != nil {
			return nil, fmt.Errorf("chaoshttp: stalled until cancellation: %w", err)
		}
		return nil, fmt.Errorf("chaoshttp: injected stall elapsed: %w", syscall.ECONNRESET)
	default:
		return rt.next.RoundTrip(req)
	}
}

// synthesize fabricates a minimal JSON-ish response for an injected status.
func synthesize(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// closeBody releases the request body when the transport short-circuits
// without forwarding (the RoundTripper contract).
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ http.RoundTripper = (*RoundTripper)(nil)
