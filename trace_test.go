package clarify

import (
	"context"
	"strings"
	"testing"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

func TestTraceRecordsPipelineSteps(t *testing.T) {
	var trace strings.Builder
	s := &Session{
		Client: llm.NewSimLLM(llm.FaultWrongValue),
		Config: ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return true, nil
		}),
		Trace: &trace,
	}
	if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
		t.Fatal(err)
	}
	text := trace.String()
	for _, want := range []string{
		"classified intent as route-map",
		"attempt 1 rejected",
		"attempt 2 verified",
		"disambiguated ISP_OUT: 2 distinguishing overlap(s), 2 question(s), inserted at position 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
}

func TestTraceRecordsReuse(t *testing.T) {
	var trace strings.Builder
	s := &Session{
		Client:      llm.NewSimLLM(),
		Config:      ios.MustParse("route-map A permit 10\nroute-map B permit 10\n"),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
		EnableReuse: true,
		Trace:       &trace,
	}
	const text = "Write a route-map stanza that denies routes passing through AS 666."
	if _, err := s.Submit(context.Background(), text, "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), text, "B"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "reusing verified snippet") {
		t.Errorf("trace missing reuse line:\n%s", trace.String())
	}
}

func TestNoTraceByDefault(t *testing.T) {
	s := &Session{
		Client:      llm.NewSimLLM(),
		Config:      ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
	}
	// Just exercising the nil-Trace path; must not panic.
	if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
		t.Fatal(err)
	}
}
