package replay_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/replay"
	"github.com/clarifynet/clarify/symbolic"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const paperPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

// record journals one live §2.1 walkthrough into dir and returns the journal
// directory. Faults seed the SimLLM; routeAnswer scripts the operator.
func record(t *testing.T, dir string, faults []llm.Fault, routeAnswer bool, intent, target string) {
	t.Helper()
	jnl, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s := &clarify.Session{
		Client: llm.NewSimLLM(faults...),
		Config: ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return routeAnswer, nil
		}),
		Journal:        jnl,
		JournalSession: "test",
	}
	// Errors are a legitimate journaled outcome (the unknown-target case
	// below); the journal must capture them rather than the test failing.
	_, _ = s.Submit(context.Background(), intent, target)
}

// TestReplayDeterminism is the PR's acceptance walkthrough: journal the
// paper's §2.1 example with one injected synthesis fault (so the record
// carries a non-trivial fault plan AND a Q&A transcript), then replay it
// from the journal alone. The replay must land on the byte-identical final
// configuration and an identical span-tree stage shape.
func TestReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, []llm.Fault{llm.FaultWrongValue}, true, paperPrompt, "ISP_OUT")

	recs, stats, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.Skipped != 0 {
		t.Fatalf("journal holds %d records (%d skipped), want 1 clean", len(recs), stats.Skipped)
	}
	rec := recs[0]
	if rec.Error != "" {
		t.Fatalf("recorded update failed: %s", rec.Error)
	}
	if len(rec.SimFaults) == 0 || rec.SimFaults[0] != llm.FaultWrongValue.String() {
		t.Fatalf("SimFaults = %v, want the injected %s first", rec.SimFaults, llm.FaultWrongValue)
	}
	if len(rec.Answers) == 0 {
		t.Fatal("record has no Q&A transcript; disambiguation was not transcribed")
	}
	for _, a := range rec.Answers {
		if a.Kind != "route-map" || !a.PreferNew || a.Question == "" {
			t.Fatalf("answer = %+v, want rendered route-map question with PreferNew", a)
		}
	}
	if rec.FinalConfig == "" || rec.ConfigDiff == "" || rec.Trace == nil {
		t.Fatal("record is not self-contained: missing final config, diff, or trace")
	}
	if !strings.Contains(rec.ConfigDiff, "+ ") {
		t.Fatalf("ConfigDiff shows no added lines:\n%s", rec.ConfigDiff)
	}
	if rec.ConfigFingerprint == "" {
		t.Fatal("record lacks the symbolic-space fingerprint")
	}

	// The faulted walkthrough takes two synthesis attempts; the shape must
	// show both.
	shape := replay.Shape(rec.Trace.Root)
	for _, stage := range []string{"classify", "spec-extract", "synthesize-attempt-1", "synthesize-attempt-2", "disambiguate"} {
		if !strings.Contains(shape, stage) {
			t.Fatalf("recorded shape %s missing stage %s", shape, stage)
		}
	}

	sum, err := replay.Dir(context.Background(), dir, replay.Options{SpaceCache: symbolic.NewSpaceCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Replayed != 1 || sum.Matches != 1 {
		t.Fatalf("replay summary = %+v, want 1 clean match", sum)
	}

	// Belt and braces for the byte-identity claim: replay the record by hand
	// and compare the configuration text directly.
	out := replay.Record(context.Background(), rec, 0, replay.Options{})
	if out.Status != replay.StatusMatch {
		t.Fatalf("Record outcome = %+v, want match", out)
	}
}

// TestReplayErrorRecordsMatch journals a failing update (unknown target) and
// checks the replay reproduces the same terminal error.
func TestReplayErrorRecordsMatch(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "NO_SUCH_MAP")

	recs, _, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Error == "" {
		t.Fatalf("want one record with a captured error, got %+v", recs)
	}
	sum, err := replay.Dir(context.Background(), dir, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Matches != 1 {
		t.Fatalf("summary = %+v, want the error outcome to replay as a match", sum)
	}
}

// TestReplayDetectsTampering corrupts a recorded final config and checks the
// replay flags the divergence instead of matching.
func TestReplayDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	recs, _, err := journal.ReadAll(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
	rec := recs[0]
	rec.FinalConfig = strings.Replace(rec.FinalConfig, "set metric 55", "set metric 56", 1)
	out := replay.Record(context.Background(), rec, 0, replay.Options{})
	if out.Status != replay.StatusConfigMismatch {
		t.Fatalf("outcome = %+v, want config-mismatch on tampered record", out)
	}
	if !strings.Contains(out.Detail, "metric") {
		t.Errorf("detail %q should locate the diverging line", out.Detail)
	}
}

// TestReplayBadTranscript truncates the Q&A transcript: the replayed
// pipeline asks more questions than the recording holds, which must surface
// as a bad record, not a hang or a panic.
func TestReplayBadTranscript(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	recs, _, err := journal.ReadAll(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
	rec := recs[0]
	if len(rec.Answers) == 0 {
		t.Fatal("walkthrough asked no questions; cannot truncate transcript")
	}
	rec.Answers = nil
	out := replay.Record(context.Background(), rec, 0, replay.Options{})
	if out.Status != replay.StatusBadRecord {
		t.Fatalf("outcome = %+v, want bad-record on truncated transcript", out)
	}
}

// TestReplaySkipsReusedRecords: reuse-path records carry no LLM calls and
// must be skipped, not failed.
func TestReplaySkipsReusedRecords(t *testing.T) {
	out := replay.Record(context.Background(), &journal.Record{Reused: true}, 0, replay.Options{})
	if out.Status != replay.StatusSkipped {
		t.Fatalf("outcome = %+v, want skipped", out)
	}
}

// TestReplaySurvivesCrashTail replays a directory whose last record was
// truncated mid-write: the intact records replay, the torn one is counted.
func TestReplaySurvivesCrashTail(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	segs, err := journal.Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("Segments = %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Append a second, torn record (half of the first one's bytes, no
	// newline) — a crash mid-append.
	torn := append(append([]byte{}, data...), data[:len(data)/2]...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := replay.Dir(context.Background(), dir, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Matches != 1 {
		t.Fatalf("summary = %+v, want the intact record to match", sum)
	}
	if sum.Read.Skipped != 1 {
		t.Fatalf("Read.Skipped = %d, want the torn tail counted", sum.Read.Skipped)
	}
}

// TestReplayLifecycleRecords: session-snapshot and session-restore records
// replay as a consistency check — the config must parse and match its
// recorded symbolic fingerprint, the same invariant the restore endpoint
// enforces. A tampered config pattern flags bad-record; an unknown kind
// from a newer writer is skipped, never fatal.
func TestReplayLifecycleRecords(t *testing.T) {
	cfg := ios.MustParse(paperISPOut)
	good := &journal.Record{
		Kind:              journal.KindSessionSnapshot,
		BaseConfig:        paperISPOut,
		ConfigFingerprint: symbolic.Fingerprint(cfg),
	}
	if out := replay.Record(context.Background(), good, 0, replay.Options{}); out.Status != replay.StatusMatch {
		t.Fatalf("snapshot record outcome = %+v, want match", out)
	}
	restored := &journal.Record{
		Kind:              journal.KindSessionRestore,
		BaseConfig:        paperISPOut,
		ConfigFingerprint: symbolic.Fingerprint(cfg),
	}
	if out := replay.Record(context.Background(), restored, 1, replay.Options{}); out.Status != replay.StatusMatch {
		t.Fatalf("restore record outcome = %+v, want match", out)
	}

	// Tamper with the pattern universe: the fingerprint no longer matches.
	tampered := &journal.Record{
		Kind:              journal.KindSessionSnapshot,
		BaseConfig:        paperISPOut + "ip as-path access-list EVIL permit _666_\n",
		ConfigFingerprint: symbolic.Fingerprint(cfg),
	}
	if out := replay.Record(context.Background(), tampered, 2, replay.Options{}); out.Status != replay.StatusBadRecord {
		t.Fatalf("tampered record outcome = %+v, want bad-record", out)
	}

	// A garbage config is equally a bad record.
	garbage := &journal.Record{Kind: journal.KindSessionRestore, BaseConfig: "route-map"}
	if out := replay.Record(context.Background(), garbage, 3, replay.Options{}); out.Status != replay.StatusBadRecord {
		t.Fatalf("garbage record outcome = %+v, want bad-record", out)
	}

	// Kinds this build has never heard of are future writers' business.
	future := &journal.Record{Kind: "hologram-export"}
	if out := replay.Record(context.Background(), future, 4, replay.Options{}); out.Status != replay.StatusSkipped {
		t.Fatalf("unknown-kind outcome = %+v, want skipped", out)
	}
}

// TestReplayDirWithLifecycleRecords runs a mixed journal end to end: one
// real update plus the snapshot/restore lifecycle pair a handoff writes.
func TestReplayDirWithLifecycleRecords(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	jnl, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fp := symbolic.Fingerprint(ios.MustParse(paperISPOut))
	for _, kind := range []string{journal.KindSessionSnapshot, journal.KindSessionRestore} {
		if err := jnl.Append(&journal.Record{Kind: kind, Session: "s1",
			BaseConfig: paperISPOut, ConfigFingerprint: fp}); err != nil {
			t.Fatal(err)
		}
	}
	jnl.Close()

	sum, err := replay.Dir(context.Background(), dir, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Matches != 3 {
		t.Fatalf("summary = %+v, want 3 clean matches (update + lifecycle pair)", sum)
	}
}
