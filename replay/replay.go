// Package replay re-executes journaled Clarify updates offline, for
// postmortems and regression bisection: every journal record carries the
// intent, the base configuration, the SimLLM fault plan its synthesis calls
// consumed, and the oracle Q&A transcript — everything the pipeline needs
// to run again without a network or an operator. Replay runs each record
// against a freshly seeded SimLLM and a scripted oracle, then diffs what
// happened against what the recording says happened: final configuration
// bytes, span-tree stage shape, and the terminal error.
//
// A matching replay is strong evidence the pipeline is still the pipeline
// that served the update; a mismatch pinpoints which stage diverged.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/symbolic"
)

// Status classifies one record's replay.
type Status string

// Replay statuses.
const (
	// StatusMatch: the replay reproduced the recorded outcome exactly.
	StatusMatch Status = "match"
	// StatusConfigMismatch: the replay succeeded but produced a different
	// final configuration.
	StatusConfigMismatch Status = "config-mismatch"
	// StatusShapeMismatch: configs agree but the span trees ran through
	// different stages.
	StatusShapeMismatch Status = "shape-mismatch"
	// StatusErrorMismatch: the recorded and replayed terminal errors differ
	// (including error vs success either way).
	StatusErrorMismatch Status = "error-mismatch"
	// StatusLedgerMismatch: configs and shape agree but the replayed
	// ambiguity ledger is not byte-identical to the recorded one — the
	// symbolic candidate space or the information-gain accounting drifted.
	StatusLedgerMismatch Status = "ledger-mismatch"
	// StatusSkipped: the record cannot be replayed standalone (reuse-path
	// records carry no LLM calls to re-run).
	StatusSkipped Status = "skipped"
	// StatusBadRecord: the record is self-inconsistent (unparseable base
	// config, unknown fault name, transcript exhausted early, ...).
	StatusBadRecord Status = "bad-record"
)

// Outcome is one record's replay verdict.
type Outcome struct {
	// Index is the record's position in the scan (0-based).
	Index int `json:"index"`
	// TraceID and Target echo the record for cross-referencing.
	TraceID string `json:"traceId,omitempty"`
	Target  string `json:"target,omitempty"`
	Status  Status `json:"status"`
	// Detail explains any non-match (first diff line, shape pair, ...).
	Detail string `json:"detail,omitempty"`
	// LedgerChecked reports that the record carried an ambiguity ledger
	// (schema ≥ 3) and the replayed ledger was byte-compared against it.
	LedgerChecked bool `json:"ledgerChecked,omitempty"`
}

// Summary aggregates a replay run, emitted as cmd/clarify-replay's report.
type Summary struct {
	// Read reports what the journal scan itself encountered, including
	// crash-truncated records that were skipped.
	Read journal.ReadStats `json:"read"`
	// Replayed counts records actually re-executed.
	Replayed int `json:"replayed"`
	// Matches counts replays that reproduced the recording exactly.
	Matches int `json:"matches"`
	// Mismatches counts config/shape/error divergences.
	Mismatches int `json:"mismatches"`
	// Skipped counts records not replayable standalone.
	Skipped int `json:"skipped"`
	// BadRecords counts self-inconsistent records.
	BadRecords int `json:"badRecords"`
	// LedgersChecked counts records whose recorded ambiguity ledger was
	// byte-compared against the replay's; LedgerDivergence counts the
	// comparisons that failed (also included in Mismatches).
	LedgersChecked   int `json:"ledgersChecked"`
	LedgerDivergence int `json:"ledgerDivergence"`
	// Outcomes lists every record's verdict in scan order.
	Outcomes []Outcome `json:"outcomes"`
}

// Ok reports whether every replayed record matched its recording.
func (s Summary) Ok() bool { return s.Mismatches == 0 && s.BadRecords == 0 }

// scriptedOracle replays a recorded Q&A transcript: each question pops the
// next recorded answer. The pipeline is deterministic, so questions arrive
// in recording order; running out of transcript or crossing kinds means the
// replayed pipeline diverged before disambiguation finished.
type scriptedOracle struct {
	answers []journal.Answer
	next    int
	err     error
}

func (o *scriptedOracle) pop(kind string) (journal.Answer, error) {
	if o.next >= len(o.answers) {
		err := fmt.Errorf("replay: transcript exhausted: pipeline asked question %d of a %d-answer recording", o.next+1, len(o.answers))
		o.err = err
		return journal.Answer{}, err
	}
	a := o.answers[o.next]
	if a.Kind != kind {
		err := fmt.Errorf("replay: transcript diverged: question %d is %s, recording has %s", o.next+1, kind, a.Kind)
		o.err = err
		return journal.Answer{}, err
	}
	o.next++
	return a, nil
}

// ChooseRoute implements disambig.RouteOracle.
func (o *scriptedOracle) ChooseRoute(disambig.RouteQuestion) (bool, error) {
	a, err := o.pop("route-map")
	return a.PreferNew, err
}

// ChooseACL implements disambig.ACLOracle.
func (o *scriptedOracle) ChooseACL(disambig.ACLQuestion) (bool, error) {
	a, err := o.pop("acl")
	return a.PreferNew, err
}

// Shape renders a span tree's stage structure as a canonical string:
// "name(child,child(grandchild))". Durations, attributes, and events are
// deliberately excluded — two runs of the same pipeline match on Shape even
// though every timing differs.
func Shape(sp *obs.Span) string {
	if sp == nil {
		return ""
	}
	if len(sp.Children) == 0 {
		return sp.Name
	}
	parts := make([]string, len(sp.Children))
	for i, c := range sp.Children {
		parts[i] = Shape(c)
	}
	return sp.Name + "(" + strings.Join(parts, ",") + ")"
}

// Options configures a replay run.
type Options struct {
	// SpaceCache, when non-nil, is shared across replays (same win as in the
	// live pipeline when many records target one config).
	SpaceCache *symbolic.SpaceCache
	// Journal, when non-nil, records the replayed updates themselves — a
	// replay journal a second replay can be checked against.
	Journal *journal.Journal
}

// Record replays one journal record and reports the verdict. The index is
// echoed into the outcome.
func Record(ctx context.Context, rec *journal.Record, idx int, opts Options) Outcome {
	out := Outcome{Index: idx, TraceID: rec.TraceID, Target: rec.Target}
	switch rec.Kind {
	case journal.KindUpdate:
		// An ordinary update record: falls through to re-execution below.
	case journal.KindSessionSnapshot, journal.KindSessionRestore:
		// Lifecycle records carry no pipeline work to re-run, but they do
		// carry a config and its symbolic fingerprint — check the pair is
		// internally consistent, the same check the restore path enforces.
		cfg, err := ios.Parse(rec.BaseConfig)
		if err != nil {
			out.Status = StatusBadRecord
			out.Detail = rec.Kind + " config does not parse: " + err.Error()
			return out
		}
		if fp := symbolic.Fingerprint(cfg); fp != rec.ConfigFingerprint {
			out.Status = StatusBadRecord
			out.Detail = fmt.Sprintf("%s fingerprint %s does not match config (computed %s)", rec.Kind, rec.ConfigFingerprint, fp)
			return out
		}
		out.Status = StatusMatch
		out.Detail = rec.Kind + ": config/fingerprint consistent"
		return out
	default:
		// A kind this build does not know — from a newer writer. Skip, never
		// fail: the rest of the journal is still checkable.
		out.Status = StatusSkipped
		out.Detail = "unknown record kind " + rec.Kind
		return out
	}
	if rec.Reused {
		out.Status = StatusSkipped
		out.Detail = "reuse-path record: no LLM calls to replay standalone"
		return out
	}
	base, err := ios.Parse(rec.BaseConfig)
	if err != nil {
		out.Status = StatusBadRecord
		out.Detail = "base config does not parse: " + err.Error()
		return out
	}
	var faults []llm.Fault
	for _, name := range rec.SimFaults {
		f, err := llm.ParseFault(name)
		if err != nil {
			out.Status = StatusBadRecord
			out.Detail = err.Error()
			return out
		}
		faults = append(faults, f)
	}
	oracle := &scriptedOracle{answers: rec.Answers}
	var replayed *obs.Trace
	sess := &clarify.Session{
		Client:           llm.NewSimLLM(faults...),
		Config:           base,
		RouteOracle:      oracle,
		ACLOracle:        oracle,
		MaxAttempts:      rec.MaxAttempts,
		SkipVerification: rec.SkipVerification,
		SpaceCache:       opts.SpaceCache,
		Observer:         obs.SinkFunc(func(t *obs.Trace) { replayed = t }),
		Journal:          opts.Journal,
		JournalSession:   "replay",
	}
	res, rerr := sess.Submit(ctx, rec.Intent, rec.Target)
	if oracle.err != nil {
		out.Status = StatusBadRecord
		out.Detail = oracle.err.Error()
		return out
	}

	// Error outcomes must agree before anything else is comparable.
	replayErr := ""
	if rerr != nil {
		replayErr = rerr.Error()
	}
	if replayErr != rec.Error {
		out.Status = StatusErrorMismatch
		out.Detail = fmt.Sprintf("recorded error %q, replay error %q", rec.Error, replayErr)
		return out
	}
	// Successful updates must land on byte-identical configurations.
	if rerr == nil {
		finalText := ""
		if res != nil && res.Config != nil {
			finalText = res.Config.Print()
		}
		if finalText != rec.FinalConfig {
			out.Status = StatusConfigMismatch
			out.Detail = firstDiffLine(rec.FinalConfig, finalText)
			return out
		}
	}
	// And the pipelines must have run through the same stages.
	if rec.Trace != nil && replayed != nil {
		want, got := Shape(rec.Trace.Root), Shape(replayed.Root)
		if want != got {
			out.Status = StatusShapeMismatch
			out.Detail = fmt.Sprintf("recorded shape %s, replay shape %s", want, got)
			return out
		}
	}
	// Schema-3 records carry the ambiguity ledger; the replay (always
	// traced, so always metered) must reproduce it byte for byte — model
	// counting over the candidate space is as deterministic as the configs.
	// Records without a ledger (v2 journals, ledger-off recordings) are not
	// comparable and pass.
	if rec.Ambiguity != nil {
		out.LedgerChecked = true
		var led *ambiguity.Ledger
		if res != nil {
			if res.RouteInsert != nil {
				led = res.RouteInsert.Ambiguity
			}
			if res.ACLInsert != nil {
				led = res.ACLInsert.Ambiguity
			}
		}
		want, werr := json.Marshal(rec.Ambiguity)
		got, gerr := json.Marshal(led)
		if werr != nil || gerr != nil || led == nil || !bytes.Equal(want, got) {
			out.Status = StatusLedgerMismatch
			out.Detail = fmt.Sprintf("recorded ledger %s, replay ledger %s", want, got)
			return out
		}
	}
	out.Status = StatusMatch
	return out
}

// firstDiffLine locates the first line where two texts diverge.
func firstDiffLine(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d: recorded %q, replay %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("recorded %d line(s), replay %d line(s)", len(wl), len(gl))
}

// Dir replays every record in a journal directory in write order.
func Dir(ctx context.Context, dir string, opts Options) (Summary, error) {
	var sum Summary
	idx := 0
	stats, err := journal.Scan(dir, func(rec *journal.Record) error {
		out := Record(ctx, rec, idx, opts)
		idx++
		sum.Outcomes = append(sum.Outcomes, out)
		if out.LedgerChecked {
			sum.LedgersChecked++
		}
		switch out.Status {
		case StatusSkipped:
			sum.Skipped++
		case StatusBadRecord:
			sum.BadRecords++
			sum.Replayed++
		case StatusMatch:
			sum.Matches++
			sum.Replayed++
		case StatusLedgerMismatch:
			sum.LedgerDivergence++
			sum.Mismatches++
			sum.Replayed++
		default:
			sum.Mismatches++
			sum.Replayed++
		}
		return nil
	})
	sum.Read = stats
	return sum, err
}
