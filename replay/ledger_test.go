package replay_test

import (
	"context"
	"testing"

	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/replay"
)

// TestReplayChecksLedgers: a journaled walkthrough carries the ambiguity
// ledger (journaled runs are always metered), and the replay byte-compares
// it — the summary must say so.
func TestReplayChecksLedgers(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, []llm.Fault{llm.FaultWrongValue}, true, paperPrompt, "ISP_OUT")

	recs, _, err := journal.ReadAll(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
	led := recs[0].Ambiguity
	if led == nil {
		t.Fatal("journaled walkthrough has no ambiguity ledger; journaled runs must be metered")
	}
	if led.Kind != "route-map" || led.Strategy != "binary" {
		t.Errorf("ledger = %s/%s, want route-map/binary", led.Kind, led.Strategy)
	}
	if led.InitialBits <= 0 || led.QuestionCount() == 0 {
		t.Errorf("ledger = %+v, want positive initial bits and at least one question", led)
	}

	sum, err := replay.Dir(context.Background(), dir, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.LedgersChecked != 1 || sum.LedgerDivergence != 0 {
		t.Fatalf("summary = %+v, want 1 ledger checked, 0 diverged", sum)
	}
}

// TestReplayDetectsLedgerTampering corrupts one recorded bit count: configs
// and span shape still match, so only the ledger comparison can catch it.
func TestReplayDetectsLedgerTampering(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	recs, _, err := journal.ReadAll(dir)
	if err != nil || len(recs) != 1 || recs[0].Ambiguity == nil {
		t.Fatalf("want one metered record, got %d recs (err %v)", len(recs), err)
	}
	rec := recs[0]
	rec.Ambiguity.InitialBits += 1.0
	out := replay.Record(context.Background(), rec, 0, replay.Options{})
	if out.Status != replay.StatusLedgerMismatch {
		t.Fatalf("outcome = %+v, want ledger-mismatch on tampered bits", out)
	}
	if !out.LedgerChecked {
		t.Error("outcome must mark the ledger as checked")
	}
}

// TestReplayPassesLedgerlessRecords: v2 records (and ledger-off recordings)
// carry no ledger; the replay must not manufacture a comparison.
func TestReplayPassesLedgerlessRecords(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, nil, true, paperPrompt, "ISP_OUT")
	recs, _, err := journal.ReadAll(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
	rec := recs[0]
	rec.Ambiguity = nil // simulate a pre-v3 record
	out := replay.Record(context.Background(), rec, 0, replay.Options{})
	if out.Status != replay.StatusMatch || out.LedgerChecked {
		t.Fatalf("outcome = %+v, want a plain match with no ledger check", out)
	}
}
