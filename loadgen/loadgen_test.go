package loadgen_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/clarifynet/clarify/chaoshttp"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/llm/llmtest"
	"github.com/clarifynet/clarify/loadgen"
	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/slo"
)

// startDaemon runs a clarifyd behind httptest and returns its base URL.
func startDaemon(t *testing.T, opts server.Options) string {
	t.Helper()
	srv := server.New(opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	})
	return hs.URL
}

// TestLoadSmoke is the CI smoke run: a short clarify-load burst against an
// in-process daemon must complete without failures, produce a parseable
// report, and leave the error budget intact.
func TestLoadSmoke(t *testing.T) {
	url := startDaemon(t, server.Options{Workers: 4})
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     url,
		Workers:     4,
		MaxUpdates:  8,
		Duration:    2 * time.Minute, // bounded by MaxUpdates, not time
		ACLFraction: 0.5,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Updates != 8 || rep.Failures != 0 {
		t.Fatalf("updates/failures = %d/%d, want 8/0; errors: %v",
			rep.Updates, rep.Failures, rep.Errors)
	}
	if rep.Throughput <= 0 || rep.Latency.Count != 8 || rep.Latency.P50Ms <= 0 {
		t.Fatalf("report lacks throughput/latency: %+v", rep)
	}
	if rep.Latency.P99Ms < rep.Latency.P50Ms || rep.Latency.MaxMs < rep.Latency.P99Ms {
		t.Errorf("percentiles unordered: %+v", rep.Latency)
	}

	// The report must round-trip as JSON (CI parses it with a script).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back loadgen.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Updates != rep.Updates {
		t.Fatalf("JSON round trip lost updates: %d != %d", back.Updates, rep.Updates)
	}

	// Error budget respected on both the client's and the daemon's view.
	if rep.ClientSLO.Firing() {
		t.Error("client-side SLO alert firing on a clean run")
	}
	for _, o := range rep.ClientSLO.Objectives {
		if o.Bad != 0 {
			t.Errorf("client objective %s counted %d bad on a clean run", o.Objective.Name, o.Bad)
		}
	}
	if rep.DaemonSLO == nil {
		t.Fatal("report is missing the daemon's /debug/slo snapshot")
	}
	if rep.DaemonSLO.Firing() {
		t.Error("daemon SLO alert firing on a clean run")
	}
	for _, o := range rep.DaemonSLO.Objectives {
		if o.Objective.Name == "availability" && o.Good < 8 {
			t.Errorf("daemon availability good = %d, want >= 8", o.Good)
		}
	}
}

// TestIntentDeterminism: identical seeds must generate identical traffic, so
// a load run is reproducible.
func TestIntentDeterminism(t *testing.T) {
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		acl := i%2 == 0
		ia, ib := loadgen.Intent(a, acl), loadgen.Intent(b, acl)
		if ia != ib {
			t.Fatalf("intent %d diverged:\n%s\n%s", i, ia, ib)
		}
	}
}

// TestLoadChaosBurnRate is the acceptance run: clarify-load against a daemon
// whose LLM endpoint is hard down must record the downtime as firing
// burn-rate alerts on both the daemon's SLO monitor and the client's.
func TestLoadChaosBurnRate(t *testing.T) {
	// A real llmtest endpoint behind a 100%-reset chaos transport: every
	// completion dies, every update fails.
	endpoint := httptest.NewServer(llmtest.NewHandler(llm.NewSimLLM()))
	t.Cleanup(endpoint.Close)
	rt := chaoshttp.New(chaoshttp.Plan{Seed: 1, Reset: 1}, endpoint.Client().Transport)

	// Tight windows so a seconds-long test outage registers: burn 2 over
	// 30s/2s windows with 1% budget fires on any sustained failure burst.
	windows := []slo.Window{{Long: 30 * time.Second, Short: 2 * time.Second, Burn: 2, Severity: "page"}}
	daemonSLO, err := slo.New(slo.Config{Windows: windows})
	if err != nil {
		t.Fatal(err)
	}
	url := startDaemon(t, server.Options{
		Workers: 4,
		SLO:     daemonSLO,
		NewClient: func() llm.Client {
			return &llm.HTTPClient{
				BaseURL: endpoint.URL,
				Model:   "sim",
				HTTP:    &http.Client{Transport: rt, Timeout: 5 * time.Second},
			}
		},
	})

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    url,
		Workers:    2,
		MaxUpdates: 8,
		Duration:   time.Minute,
		Seed:       1,
		SLO:        &slo.Config{Windows: windows},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatalf("no failures under a hard-down LLM endpoint: %+v", rep)
	}
	if !rep.ClientSLO.Firing() {
		t.Errorf("client-side burn-rate alert not firing after %d/%d failures: %+v",
			rep.Failures, rep.Updates, rep.ClientSLO)
	}
	if rep.DaemonSLO == nil || !rep.DaemonSLO.Firing() {
		t.Errorf("daemon burn-rate alert not firing; snapshot: %+v", rep.DaemonSLO)
	}
	// The outage must show as spent error budget, not just a transient alert.
	for _, o := range rep.ClientSLO.Objectives {
		if o.Objective.Name == "availability" && o.ErrorBudgetRemaining > 0.5 {
			t.Errorf("availability budget remaining = %v after total outage, want heavily spent",
				o.ErrorBudgetRemaining)
		}
	}
}
