// Package loadgen drives a running clarifyd with synthetic intent traffic
// and reports latency, throughput, and SLO compliance — the measurement half
// of the flight-recorder story: journal + replay explain what the daemon
// did, loadgen establishes what it can sustain.
//
// The generator reuses the workload package's paper-shaped corpora for base
// configurations and emits intents in the restricted-English grammar the
// simulated LLM understands, so runs are deterministic per seed and work
// against a daemon in any backend mode. Each worker owns one daemon session
// (concurrent submits to one session are rejected with 409 by design) and
// runs closed-loop, optionally paced to a target arrival rate.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/workload"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the clarifyd root, e.g. "http://127.0.0.1:8080".
	BaseURL string `json:"baseUrl"`
	// Workers is the number of concurrent closed-loop workers; each owns one
	// daemon session (default 4).
	Workers int `json:"workers"`
	// Rate, when positive, paces submissions to this many updates/second
	// across all workers (open-ish loop); zero runs flat out.
	Rate float64 `json:"rate,omitempty"`
	// Duration bounds the run's wall-clock time (default 10s).
	Duration time.Duration `json:"-"`
	// MaxUpdates, when positive, stops the run after this many updates even
	// if Duration remains.
	MaxUpdates int `json:"maxUpdates,omitempty"`
	// ACLFraction is the fraction of workers driving ACL sessions instead of
	// route-map sessions (default 0.25).
	ACLFraction float64 `json:"aclFraction"`
	// Corpus selects the workload generator: "cloud" (default) or "campus".
	Corpus string `json:"corpus"`
	// Seed makes the intent stream and answer choices deterministic.
	Seed int64 `json:"seed"`
	// UpdateTimeout bounds each update end to end, including question
	// round-trips and backpressure retries (default 60s).
	UpdateTimeout time.Duration `json:"-"`
	// SLO, when non-nil, overrides the objectives the report evaluates
	// client-side; nil uses the slo package defaults.
	SLO *slo.Config `json:"-"`
	// Failover makes workers survive the loss of a replica behind a
	// balancer: when an update fails because the session's backend is
	// draining, ejected, or gone (404/502/503/504 or a transport error),
	// the worker abandons the session, creates a fresh one — which the
	// balancer places on a surviving replica — and retries the intent
	// there. The retried update's latency covers the whole disruption, so
	// the client-side SLO still sees failover time; only updates that
	// exhaust their retries count as failures.
	Failover bool `json:"failover,omitempty"`
	// Tenants, when non-empty, turns the run into a multi-tenant mix: each
	// entry contributes its own workers submitting under its
	// X-Clarify-Tenant header, paced by its own rate, and evaluated against
	// its own client-side SLO rings. Noisy entries are the aggressors of a
	// noisy-neighbor drill: their workers count 429 sheds instead of
	// retrying them, and their outcomes are excluded from the aggregate
	// ClientSLO (the run's verdict belongs to the victims). When set,
	// Workers and Rate are ignored in favor of the per-tenant values.
	Tenants []TenantMix `json:"tenants,omitempty"`
	// Rolling, when non-empty, turns the run into a rolling-restart drill:
	// a restarter goroutine SIGTERMs each listed replica in turn (evenly
	// staggered across the run) and waits for its supervisor to bring a new
	// process up. Workers switch from abandon-and-recreate to
	// resume-same-session: an update interrupted by a handoff is polled
	// under its original session and update ID until it finishes on
	// whichever replica the session landed on. A session that stays gone is
	// counted in Report.LostSessions — the number a zero-downtime rollout
	// must hold at zero.
	Rolling []RollingTarget `json:"rolling,omitempty"`
}

// RollingTarget identifies one replica the rolling driver restarts: its
// direct base URL (health checks bypass the balancer) and the pidfile its
// supervisor rewrites on every start.
type RollingTarget struct {
	BaseURL string `json:"baseUrl"`
	PIDFile string `json:"pidFile"`
}

// ParseRolling parses a -rolling flag value: comma-separated url=pidfile
// pairs, e.g. "http://127.0.0.1:8081=/tmp/a.pid,http://127.0.0.1:8082=/tmp/b.pid".
func ParseRolling(spec string) ([]RollingTarget, error) {
	var out []RollingTarget
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, pidfile, ok := strings.Cut(part, "=")
		if !ok || url == "" || pidfile == "" {
			return nil, fmt.Errorf("loadgen: bad -rolling entry %q (want url=pidfile)", part)
		}
		out = append(out, RollingTarget{BaseURL: url, PIDFile: pidfile})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: -rolling spec %q names no replicas", spec)
	}
	return out, nil
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 4
	}
	return c.Workers
}

func (c Config) duration() time.Duration {
	if c.Duration <= 0 {
		return 10 * time.Second
	}
	return c.Duration
}

func (c Config) updateTimeout() time.Duration {
	if c.UpdateTimeout <= 0 {
		return 60 * time.Second
	}
	return c.UpdateTimeout
}

func (c Config) aclFraction() float64 {
	if c.ACLFraction < 0 {
		return 0
	}
	if c.ACLFraction > 1 {
		return 1
	}
	if c.ACLFraction == 0 {
		return 0.25
	}
	return c.ACLFraction
}

// LatencySummary aggregates observed update latencies in milliseconds.
// Percentiles here are exact (computed from every sample), unlike the
// bucket-interpolated estimates in the daemon's /metrics.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// Report is the JSON document cmd/clarify-load emits.
type Report struct {
	Config Config `json:"config"`
	// DurationSeconds is the measured run length.
	DurationSeconds float64 `json:"durationSeconds"`
	// Updates counts terminal updates; Failures those that ended in error
	// (including timeouts); Degraded those served by a fallback backend.
	Updates  int `json:"updates"`
	Failures int `json:"failures"`
	Degraded int `json:"degraded"`
	// Disruptions counts mid-update replica losses survived by failover
	// (session re-created on another replica and the intent retried).
	Disruptions int `json:"disruptions,omitempty"`
	// Restarts counts replicas the rolling driver cycled (SIGTERM, old
	// process gone, new process healthy); LostSessions counts sessions that
	// did not survive a handoff and had to be re-created. A clean rolling
	// restart reports Restarts == len(Config.Rolling) and LostSessions == 0.
	Restarts     int `json:"restarts,omitempty"`
	LostSessions int `json:"lostSessions,omitempty"`
	// Throughput is successful updates per second.
	Throughput float64 `json:"throughput"`
	// Latency summarizes per-update latency as measured by the client.
	Latency LatencySummary `json:"latency"`
	// Questions summarizes clarifying questions per successful update as
	// observed client-side (exact percentiles, noisy tenants excluded) — the
	// interaction cost the disambiguation dialogue imposed on operators.
	Questions QuestionsSummary `json:"questions"`
	// Errors histograms failure messages (bounded).
	Errors map[string]int `json:"errors,omitempty"`
	// ClientSLO evaluates the configured objectives against the client-side
	// outcome stream. In a multi-tenant run, noisy tenants' outcomes are
	// excluded: this is the victims' verdict.
	ClientSLO slo.Snapshot `json:"clientSlo"`
	// Tenants breaks a multi-tenant run down per tenant; nil for
	// single-tenant runs.
	Tenants map[string]*TenantReport `json:"tenants,omitempty"`
	// DaemonSLO is the daemon's own GET /debug/slo state at run end, when
	// reachable — the server-side view of the same traffic, including any
	// burn-rate alerts the run induced.
	DaemonSLO *slo.Snapshot `json:"daemonSlo,omitempty"`
	// DaemonAmbiguity is the daemon's (or, through clarify-lb, the fleet's)
	// GET /debug/ambiguity rollup at run end, when reachable: information
	// gained per question, per strategy and per tenant, for the run's
	// traffic.
	DaemonAmbiguity *server.AmbiguitySnapshot `json:"daemonAmbiguity,omitempty"`
}

// QuestionsSummary aggregates questions-per-update counts. Percentiles are
// exact, computed from every successful update's question count.
type QuestionsSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// summarizeQuestions folds per-update question counts (sorted in place).
func summarizeQuestions(counts []float64) QuestionsSummary {
	if len(counts) == 0 {
		return QuestionsSummary{}
	}
	sort.Float64s(counts)
	var sum float64
	for _, c := range counts {
		sum += c
	}
	return QuestionsSummary{
		Count: len(counts),
		Mean:  sum / float64(len(counts)),
		P50:   percentile(counts, 0.50),
		P95:   percentile(counts, 0.95),
		P99:   percentile(counts, 0.99),
		Max:   counts[len(counts)-1],
	}
}

const maxErrorKinds = 16

// Run executes one load run against a live daemon.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Config.BaseURL is required")
	}
	if cfg.Corpus == "" {
		cfg.Corpus = "cloud"
	}
	workers := cfg.workers()
	if len(cfg.Tenants) > 0 {
		workers = 0
		for _, m := range cfg.Tenants {
			workers += m.Workers
		}
		if workers == 0 {
			return nil, fmt.Errorf("loadgen: Config.Tenants names no workers")
		}
	}
	nACL := int(float64(workers)*cfg.aclFraction() + 0.5)
	if nACL > workers {
		nACL = workers
	}
	nRM := workers - nACL

	// Corpus configs are deterministic per seed; generate exactly as many as
	// the workers need. Every config holds one "ACL<i>"/"RM<i>" target.
	var corpus *workload.Corpus
	switch cfg.Corpus {
	case "cloud":
		corpus = workload.Cloud(cfg.Seed, nACL, nRM)
	case "campus":
		corpus = workload.Campus(cfg.Seed, nACL, nRM)
	default:
		return nil, fmt.Errorf("loadgen: unknown corpus %q (want cloud or campus)", cfg.Corpus)
	}

	sloCfg := slo.Config{}
	if cfg.SLO != nil {
		sloCfg = *cfg.SLO
	}
	clientSLO, err := slo.New(sloCfg)
	if err != nil {
		return nil, err
	}

	client := &server.Client{BaseURL: cfg.BaseURL}
	runCtx, cancel := context.WithTimeout(ctx, cfg.duration())
	defer cancel()

	// Tenant groups: each gets its own header-stamped client, its own
	// client-side SLO rings, and its own pacing. A single-tenant run is one
	// anonymous group sharing the aggregate SLO set.
	type runGroup struct {
		mix    TenantMix
		client *server.Client
		slo    *slo.Set
		pace   time.Duration
		sheds  int64 // guarded by mu
	}
	// Per-worker pacing: a worker sleeps group-workers/rate between
	// submissions so each group approximates its target arrival rate.
	paceFor := func(m TenantMix) time.Duration {
		if m.Rate <= 0 {
			return 0
		}
		return time.Duration(float64(m.Workers) / m.Rate * float64(time.Second))
	}
	var groups []*runGroup
	if len(cfg.Tenants) > 0 {
		for _, m := range cfg.Tenants {
			gslo, err := slo.New(sloCfg)
			if err != nil {
				return nil, err
			}
			groups = append(groups, &runGroup{
				mix:    m,
				client: &server.Client{BaseURL: cfg.BaseURL, Tenant: m.Name},
				slo:    gslo,
				pace:   paceFor(m),
			})
		}
	} else {
		m := TenantMix{Workers: workers, Rate: cfg.Rate}
		groups = []*runGroup{{mix: m, client: client, slo: clientSLO, pace: paceFor(m)}}
	}

	type sample struct {
		group     int
		ms        float64
		failed    bool
		degraded  bool
		questions int
		errMsg    string
	}
	var (
		mu           sync.Mutex
		samples      []sample
		total        int
		disruptions  int
		lostSessions int
		rollingErrs  []string
	)
	rolling := len(cfg.Rolling) > 0
	budgetLeft := func() bool {
		if cfg.MaxUpdates <= 0 {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if total >= cfg.MaxUpdates {
			return false
		}
		total++
		return true
	}

	var wg sync.WaitGroup
	start := time.Now()

	// The restarter runs on the caller's context, not runCtx: the last
	// replica's recovery may straddle the run's end, and a drill that leaves
	// a replica down is a failed drill.
	var restarts int
	restarterDone := make(chan struct{})
	if rolling {
		go func() {
			defer close(restarterDone)
			rollingRestart(ctx, cfg.Rolling, start, cfg.duration(),
				func() { mu.Lock(); restarts++; mu.Unlock() },
				func(msg string) { mu.Lock(); rollingErrs = append(rollingErrs, msg); mu.Unlock() })
		}()
	} else {
		close(restarterDone)
	}

	w := 0
	for gi, g := range groups {
		for gw := 0; gw < g.mix.Workers; gw++ {
			isACL := w < nACL
			var cfgIdx int
			if isACL {
				cfgIdx = w
			} else {
				cfgIdx = w - nACL
			}
			var baseCfg = corpus.RouteMapConfigs
			target := fmt.Sprintf("RM%d", cfgIdx)
			if isACL {
				baseCfg = corpus.ACLConfigs
				target = fmt.Sprintf("ACL%d", cfgIdx)
			}
			w++
			if cfgIdx >= len(baseCfg) {
				continue // corpus generated fewer configs than asked; skip worker
			}
			configText := baseCfg[cfgIdx].Print()

			wg.Add(1)
			go func(w, gi int, g *runGroup, configText, target string, isACL bool) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
				sid, err := g.client.CreateSession(runCtx, server.CreateSessionRequest{Config: configText})
				if err != nil {
					mu.Lock()
					samples = append(samples, sample{group: gi, failed: true, errMsg: "create session: " + trimErr(err)})
					mu.Unlock()
					return
				}
				defer func() { g.client.DeleteSession(context.Background(), sid) }()
				answer := func(q server.Question) (int, error) {
					return 1 + rng.Intn(2), nil
				}
				for runCtx.Err() == nil && budgetLeft() {
					intentText := Intent(rng, isACL)
					t0 := time.Now()
					var u server.UpdateInfo
					var err error
					for attempt := 0; ; attempt++ {
						uctx, ucancel := context.WithTimeout(runCtx, cfg.updateTimeout())
						switch {
						case g.mix.Noisy:
							u, err = shedRunUpdate(uctx, g.client, sid, intentText, target, answer)
						case rolling:
							u, err = resumeUpdate(uctx, g.client, sid, intentText, target, answer)
						default:
							u, err = g.client.RunUpdate(uctx, sid, intentText, target, answer)
						}
						ucancel()
						if err == nil || errors.Is(err, errShed) || attempt >= maxFailovers || runCtx.Err() != nil {
							break
						}
						if rolling && errors.Is(err, errSessionLost) {
							// The session did not survive the handoff. That is the
							// failure a rolling drill exists to count; the worker
							// re-homes so the rest of the run still produces load.
							newSid, cerr := recreateSession(runCtx, g.client, configText)
							if cerr != nil {
								break
							}
							mu.Lock()
							lostSessions++
							mu.Unlock()
							sid = newSid
							continue
						}
						if !cfg.Failover || !failoverable(err) {
							break
						}
						// The replica holding the session is draining, ejected, or
						// gone. Abandon the session, create a fresh one (the
						// balancer places it on a survivor), and retry the intent.
						newSid, cerr := recreateSession(runCtx, g.client, configText)
						if cerr != nil {
							break
						}
						mu.Lock()
						disruptions++
						mu.Unlock()
						sid = newSid
					}
					if errors.Is(err, errShed) {
						// Admission control pushed back: count the shed and keep
						// the pressure on. Not a failure, not a latency sample.
						mu.Lock()
						g.sheds++
						mu.Unlock()
						select {
						case <-time.After(shedBackoff):
						case <-runCtx.Done():
						}
						continue
					}
					elapsed := time.Since(t0)
					sm := sample{group: gi, ms: float64(elapsed) / float64(time.Millisecond)}
					switch {
					case err != nil:
						if runCtx.Err() != nil {
							break // run ended mid-update; don't count the partial
						}
						sm.failed = true
						sm.errMsg = trimErr(err)
					case u.Status != server.StatusDone:
						sm.failed = true
						sm.errMsg = u.Error
					default:
						sm.degraded = u.Degraded
						if u.Result != nil {
							sm.questions = u.Result.Questions
						}
					}
					if runCtx.Err() != nil && err != nil {
						break
					}
					g.slo.Observe(elapsed, sm.failed)
					if g.slo != clientSLO && !g.mix.Noisy {
						clientSLO.Observe(elapsed, sm.failed)
					}
					mu.Lock()
					samples = append(samples, sm)
					mu.Unlock()
					if g.pace > 0 {
						select {
						case <-time.After(g.pace):
						case <-runCtx.Done():
						}
					}
				}
			}(w-1, gi, g, configText, target, isACL)
		}
	}
	wg.Wait()
	<-restarterDone
	elapsed := time.Since(start)

	rep := &Report{
		Config:          cfg,
		DurationSeconds: elapsed.Seconds(),
		Disruptions:     disruptions,
		Restarts:        restarts,
		LostSessions:    lostSessions,
		Errors:          map[string]int{},
		ClientSLO:       clientSLO.Snapshot(),
	}
	for _, msg := range rollingErrs {
		if len(rep.Errors) < maxErrorKinds || rep.Errors[msg] > 0 {
			rep.Errors[msg]++
		}
	}
	// Aggregate counters exclude noisy tenants: the headline verdict is the
	// victims'. Per-group accumulators feed the per-tenant breakdown.
	type acc struct {
		updates, failures, degraded int
		lat                         []float64
		sumMs                       float64
	}
	accs := make([]acc, len(groups))
	var lat []float64
	var sumMs float64
	var qcounts []float64
	for _, sm := range samples {
		a := &accs[sm.group]
		noisy := groups[sm.group].mix.Noisy
		a.updates++
		if !noisy {
			rep.Updates++
		}
		if sm.failed {
			a.failures++
			if !noisy {
				rep.Failures++
				if len(rep.Errors) < maxErrorKinds || rep.Errors[sm.errMsg] > 0 {
					rep.Errors[sm.errMsg]++
				}
			}
			continue
		}
		if sm.degraded {
			a.degraded++
			if !noisy {
				rep.Degraded++
			}
		}
		a.lat = append(a.lat, sm.ms)
		a.sumMs += sm.ms
		if !noisy {
			lat = append(lat, sm.ms)
			sumMs += sm.ms
			qcounts = append(qcounts, float64(sm.questions))
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(lat)) / elapsed.Seconds()
	}
	rep.Latency = summarize(lat, sumMs)
	rep.Questions = summarizeQuestions(qcounts)
	if len(cfg.Tenants) > 0 {
		rep.Tenants = make(map[string]*TenantReport, len(groups))
		for gi, g := range groups {
			a := accs[gi]
			tr := &TenantReport{
				Noisy:    g.mix.Noisy,
				Workers:  g.mix.Workers,
				Updates:  a.updates,
				Failures: a.failures,
				Degraded: a.degraded,
				Sheds:    g.sheds,
				Latency:  summarize(a.lat, a.sumMs),
				SLO:      g.slo.Snapshot(),
				Verdict:  "green",
			}
			if elapsed > 0 {
				tr.Throughput = float64(len(a.lat)) / elapsed.Seconds()
			}
			if tr.SLO.Firing() {
				tr.Verdict = "firing"
			}
			rep.Tenants[g.mix.Name] = tr
		}
	}
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	// Fetch the daemon's own SLO and ambiguity views with a fresh context:
	// runCtx is spent.
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if snap, err := client.SLO(sctx); err == nil {
		rep.DaemonSLO = &snap
	}
	if amb, err := client.Ambiguity(sctx); err == nil {
		rep.DaemonAmbiguity = &amb
		// The server attributes ledgers by tenant; surface each tenant's
		// question-efficiency score next to its client-side counters.
		for name, tr := range rep.Tenants {
			if ta := amb.Tenants[name]; ta != nil {
				tr.BitsPerQuestion = ta.Total.BitsPerQuestion()
			}
		}
	}
	return rep, nil
}

// maxFailovers bounds session re-creations per update under Config.Failover.
const maxFailovers = 3

// failoverable classifies an update error as "the replica is lost, not the
// request": gateway-ish statuses from the balancer (backend ejected or
// draining), a vanished session, or a transport-level failure. Context
// expiry is the run ending or the update timing out — not a replica loss.
func failoverable(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusNotFound, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// recreateSession re-homes a worker after its replica died: retries session
// creation with doubling backoff until it succeeds or the run ends.
func recreateSession(ctx context.Context, client *server.Client, configText string) (string, error) {
	backoff := 100 * time.Millisecond
	for {
		cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		sid, err := client.CreateSession(cctx, server.CreateSessionRequest{Config: configText})
		cancel()
		if err == nil {
			return sid, nil
		}
		if ctx.Err() != nil {
			return "", err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return "", err
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// summarize sorts lat in place and folds it into a LatencySummary.
func summarize(lat []float64, sumMs float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(lat)
	return LatencySummary{
		Count:  len(lat),
		MeanMs: sumMs / float64(len(lat)),
		P50Ms:  percentile(lat, 0.50),
		P95Ms:  percentile(lat, 0.95),
		P99Ms:  percentile(lat, 0.99),
		MaxMs:  lat[len(lat)-1],
	}
}

// percentile reads the q-quantile from ascending samples (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

func trimErr(err error) string {
	s := err.Error()
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// Intent generates one restricted-English intent the simulated LLM can
// synthesize from: route-map intents in the §2.1 walkthrough's phrasing,
// ACL intents in the grammar's from/to/port form. Deterministic per rng.
func Intent(rng *rand.Rand, acl bool) string {
	if acl {
		proto := []string{"tcp", "udp"}[rng.Intn(2)]
		return fmt.Sprintf(
			"Add an entry that permits %s traffic from 10.%d.%d.0/24 to any host on port %d.",
			proto, rng.Intn(250), rng.Intn(250), 1024+rng.Intn(40000))
	}
	octet := 1 + rng.Intn(220)
	maskHi := 17 + rng.Intn(12)
	return fmt.Sprintf(
		"Write a route-map stanza that permits routes containing the prefix %d.%d.0.0/16 "+
			"with mask length less than or equal to %d and tagged with the community %d:%d. "+
			"Their MED value should be set to %d.",
		octet, rng.Intn(250), maskHi, 100+rng.Intn(900), rng.Intn(100), 1+rng.Intn(200))
}
