package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/clarifynet/clarify/server"
)

// errSessionLost marks a session that stayed gone through the lost-session
// grace window: the handoff did not preserve it.
var errSessionLost = errors.New("loadgen: session lost across restart")

const (
	// resumeBackoffStart / resumeBackoffCap pace retries while a replica is
	// mid-handoff. The start is deliberately short: the common blip — a 502
	// from a backend the balancer has not ejected yet — clears within one
	// probe round, and a slow first retry would push every disrupted update
	// past the latency SLO threshold. The doubling cap still protects a
	// genuinely overloaded fleet.
	resumeBackoffStart = 50 * time.Millisecond
	resumeBackoffCap   = 1 * time.Second
	// rollingPhaseTimeout bounds each half of one replica cycle: old process
	// gone, then new process healthy.
	rollingPhaseTimeout = 30 * time.Second
)

// lostGrace is how long a 404/410 must persist before the session is
// declared lost — a restore PUT is normally in flight for well under a
// second, but the balancer may also need a probe round to re-route. A
// variable so tests can shrink the window.
var lostGrace = 10 * time.Second

// resumeUpdate runs one update insisting on the SAME session surviving any
// replica handoff mid-flight: the submit is retried through transient
// errors, a conflict resolves to the session's in-flight update, and the
// poll rides out 5xx/transport blips — and even short 404 windows while a
// restore is landing — under the original session and update IDs. Only a
// session that stays gone past the grace window returns errSessionLost.
func resumeUpdate(ctx context.Context, client *server.Client, sid, intentText, target string, answer server.AnswerFunc) (server.UpdateInfo, error) {
	backoff := resumeBackoffStart
	var lostSince time.Time
	lost := func(err error) error {
		if lostSince.IsZero() {
			lostSince = time.Now()
		}
		if time.Since(lostSince) > lostGrace {
			return fmt.Errorf("%w: %v", errSessionLost, err)
		}
		return nil // still within grace: keep retrying
	}

	uid := ""
	for uid == "" {
		u, err := client.SubmitAsync(ctx, sid, intentText, target)
		switch {
		case err == nil:
			uid = u.ID
		case sessionGone(err):
			if lerr := lost(err); lerr != nil {
				return server.UpdateInfo{}, lerr
			}
		case isConflict(err):
			// The submit landed just before the disruption (or the session is
			// mid-restore with its update re-executing): resume the session's
			// latest update instead of double-submitting the intent.
			info, ierr := client.Session(ctx, sid)
			if ierr == nil && info.Updates > 0 {
				uid = fmt.Sprintf("u%d", info.Updates)
				continue
			}
			if ierr != nil && !sessionGone(ierr) && !resumable(ierr) {
				return server.UpdateInfo{}, ierr
			}
		case !resumable(err):
			return server.UpdateInfo{}, err
		}
		if uid == "" {
			if serr := sleepBackoff(ctx, &backoff); serr != nil {
				return server.UpdateInfo{}, serr
			}
		}
	}

	lostSince = time.Time{}
	backoff = resumeBackoffStart
	for {
		u, err := client.PollUpdate(ctx, sid, uid, answer)
		switch {
		case err == nil:
			return u, nil
		case sessionGone(err):
			if lerr := lost(err); lerr != nil {
				return u, lerr
			}
		case !resumable(err):
			return u, err
		default:
			lostSince = time.Time{}
		}
		if serr := sleepBackoff(ctx, &backoff); serr != nil {
			return u, err
		}
	}
}

// sessionGone matches the statuses a vanished session produces: 404 from a
// replica that never saw it, 410 from one that buried it.
func sessionGone(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusNotFound || apiErr.StatusCode == http.StatusGone
	}
	return false
}

func isConflict(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict
}

// resumable classifies an error as "the fleet is mid-handoff, try again":
// gateway-ish statuses, backpressure, or a transport failure. Context expiry
// is the update's own budget running out — never resumable.
func resumable(err error) bool {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

func sleepBackoff(ctx context.Context, backoff *time.Duration) error {
	select {
	case <-time.After(*backoff):
	case <-ctx.Done():
		return ctx.Err()
	}
	if *backoff < resumeBackoffCap {
		*backoff *= 2
	}
	return nil
}

// rollingRestart cycles each target once, evenly staggered across the run:
// target i is SIGTERMed at total*(i+1)/(n+1), then the driver waits for the
// old process to exit (graceful drain and handoff happen here) and for the
// supervisor's replacement to report healthy under a new pid. onRestart
// fires per completed cycle; onErr per failed one.
func rollingRestart(ctx context.Context, targets []RollingTarget, start time.Time, total time.Duration, onRestart func(), onErr func(string)) {
	n := len(targets)
	hc := &http.Client{Timeout: 2 * time.Second}
	for i, tgt := range targets {
		at := start.Add(total * time.Duration(i+1) / time.Duration(n+1))
		select {
		case <-time.After(time.Until(at)):
		case <-ctx.Done():
			return
		}
		if err := restartReplica(ctx, hc, tgt); err != nil {
			onErr("rolling restart " + tgt.BaseURL + ": " + trimErr(err))
			continue
		}
		onRestart()
	}
}

// restartReplica performs one SIGTERM cycle against a supervised replica.
func restartReplica(ctx context.Context, hc *http.Client, tgt RollingTarget) error {
	oldPID, err := readPID(tgt.PIDFile)
	if err != nil {
		return err
	}
	proc, err := os.FindProcess(oldPID)
	if err != nil {
		return err
	}
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM pid %d: %w", oldPID, err)
	}

	// Phase 1: the old process drains, hands its sessions off, and exits.
	deadline := time.Now().Add(rollingPhaseTimeout)
	for proc.Signal(syscall.Signal(0)) == nil {
		if time.Now().After(deadline) {
			return fmt.Errorf("pid %d still running %s after SIGTERM", oldPID, rollingPhaseTimeout)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Phase 2: the supervisor brings a replacement up — new pid in the
	// pidfile and a passing direct health check.
	deadline = time.Now().Add(rollingPhaseTimeout)
	for {
		if pid, err := readPID(tgt.PIDFile); err == nil && pid != oldPID {
			if resp, err := hc.Get(tgt.BaseURL + "/healthz"); err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s not healthy %s after restart", tgt.BaseURL, rollingPhaseTimeout)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func readPID(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 0 {
		return 0, fmt.Errorf("pidfile %s holds %q, not a pid", path, strings.TrimSpace(string(data)))
	}
	return pid, nil
}
