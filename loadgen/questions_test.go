package loadgen

import "testing"

func TestSummarizeQuestions(t *testing.T) {
	if got := summarizeQuestions(nil); got != (QuestionsSummary{}) {
		t.Fatalf("empty summary = %+v, want zero value", got)
	}
	counts := []float64{2, 0, 1, 2, 3, 0, 2, 2}
	got := summarizeQuestions(counts)
	if got.Count != 8 {
		t.Errorf("Count = %d, want 8", got.Count)
	}
	if got.Mean != 1.5 {
		t.Errorf("Mean = %v, want 1.5", got.Mean)
	}
	if got.Max != 3 {
		t.Errorf("Max = %v, want 3", got.Max)
	}
	if got.P50 != 2 {
		t.Errorf("P50 = %v, want 2", got.P50)
	}
	if got.P99 < got.P50 || got.P99 > got.Max {
		t.Errorf("P99 = %v out of [P50, Max]", got.P99)
	}
}
