package loadgen_test

import (
	"context"
	"testing"
	"time"

	"github.com/clarifynet/clarify/loadgen"
	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/tenant"
)

func TestParseTenants(t *testing.T) {
	mixes, err := loadgen.ParseTenants("victim:4,noisy:mallory:8:50")
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.TenantMix{
		{Name: "victim", Workers: 4},
		{Name: "mallory", Workers: 8, Rate: 50, Noisy: true},
	}
	if len(mixes) != len(want) {
		t.Fatalf("got %d mixes, want %d", len(mixes), len(want))
	}
	for i := range want {
		if mixes[i] != want[i] {
			t.Errorf("mix %d = %+v, want %+v", i, mixes[i], want[i])
		}
	}
	for _, bad := range []string{"", "victim", "victim:0", "victim:2,victim:3", "bad name:2", "victim:2:x"} {
		if _, err := loadgen.ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted, want error", bad)
		}
	}
}

// TestMultiTenantNoisyNeighbor is the in-process noisy-neighbor drill: a
// rate-capped aggressor hammers a daemon shared with a victim tenant. The
// victim must finish its updates cleanly (green verdict), the aggressor must
// accumulate 429 sheds, and the aggregate report must exclude the
// aggressor's outcomes.
func TestMultiTenantNoisyNeighbor(t *testing.T) {
	reg := tenant.NewRegistry(tenant.RegistryConfig{Profiles: []tenant.Profile{
		{Name: "mallory", Weight: 1, Rate: 0.5, Burst: 1, MaxConcurrent: 1},
		{Name: "victim", Weight: 4},
	}})
	url := startDaemon(t, server.Options{Workers: 4, Tenants: reg})

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  url,
		Duration: 4 * time.Second,
		Seed:     1,
		Tenants: []loadgen.TenantMix{
			{Name: "victim", Workers: 2},
			{Name: "mallory", Workers: 2, Noisy: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	vict, ok := rep.Tenants["victim"]
	if !ok {
		t.Fatalf("report has no victim tenant: %+v", rep.Tenants)
	}
	noisy, ok := rep.Tenants["mallory"]
	if !ok {
		t.Fatalf("report has no mallory tenant: %+v", rep.Tenants)
	}

	if vict.Updates == 0 || vict.Failures != 0 {
		t.Errorf("victim updates/failures = %d/%d, want >0/0", vict.Updates, vict.Failures)
	}
	if vict.Verdict != "green" {
		t.Errorf("victim verdict = %q, want green", vict.Verdict)
	}
	if noisy.Sheds == 0 {
		t.Errorf("noisy tenant recorded no sheds: %+v", noisy)
	}
	if !noisy.Noisy {
		t.Error("mallory not flagged noisy in report")
	}

	// Aggregate excludes the aggressor: it counts only victim outcomes.
	if rep.Updates != vict.Updates {
		t.Errorf("aggregate updates = %d, want victim's %d (noisy excluded)", rep.Updates, vict.Updates)
	}
	if rep.ClientSLO.Firing() {
		t.Error("aggregate (victim) SLO firing under noisy neighbor")
	}
}
