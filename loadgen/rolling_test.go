package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clarifynet/clarify/server"
)

func TestParseRolling(t *testing.T) {
	got, err := ParseRolling("http://a:1=/tmp/a.pid, http://b:2=/tmp/b.pid,")
	if err != nil {
		t.Fatal(err)
	}
	want := []RollingTarget{
		{BaseURL: "http://a:1", PIDFile: "/tmp/a.pid"},
		{BaseURL: "http://b:2", PIDFile: "/tmp/b.pid"},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseRolling = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "http://a:1", "=/tmp/a.pid", "http://a:1=", ","} {
		if _, err := ParseRolling(bad); err == nil {
			t.Errorf("ParseRolling(%q) accepted, want error", bad)
		}
	}
}

func TestReadPID(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "d.pid")
	if err := os.WriteFile(p, []byte("  4321\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if pid, err := readPID(p); err != nil || pid != 4321 {
		t.Fatalf("readPID = %d, %v, want 4321", pid, err)
	}
	os.WriteFile(p, []byte("not-a-pid"), 0o644)
	if _, err := readPID(p); err == nil {
		t.Fatal("readPID accepted garbage")
	}
	if _, err := readPID(filepath.Join(dir, "missing.pid")); err == nil {
		t.Fatal("readPID accepted a missing file")
	}
}

const rollingTestConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const rollingTestIntent = "Write a route-map stanza that permits routes containing the prefix " +
	"100.0.0.0/16 with mask length less than or equal to 23 and tagged " +
	"with the community 300:3. Their MED value should be set to 55."

func startResumeDaemon(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv := server.New(server.Options{Workers: 2})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	})
	return srv, hs.URL
}

// TestResumeUpdateRidesOutBlips: resumeUpdate must treat a short 503/502
// window — a replica mid-handoff behind a balancer — as retryable and still
// finish the update under the original session.
func TestResumeUpdateRidesOutBlips(t *testing.T) {
	srv, _ := startResumeDaemon(t)
	var hits atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 && r.URL.Path != "/v1/sessions" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"mid-handoff"}`))
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)

	client := &server.Client{BaseURL: proxy.URL, PollInterval: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sid, err := client.CreateSession(ctx, server.CreateSessionRequest{Config: rollingTestConfig})
	if err != nil {
		t.Fatal(err)
	}
	hits.Store(0) // the blip window opens now, on the submit path
	u, err := resumeUpdate(ctx, client, sid, rollingTestIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if err != nil || u.Status != server.StatusDone {
		t.Fatalf("resumeUpdate = %+v, %v, want done", u, err)
	}
}

// TestResumeUpdateResolvesConflict: when the submit finds an update already
// in flight (the pre-disruption submit landed), resumeUpdate must adopt that
// update instead of double-submitting — same session, same update ID.
func TestResumeUpdateResolvesConflict(t *testing.T) {
	_, url := startResumeDaemon(t)
	client := &server.Client{BaseURL: url, PollInterval: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sid, err := client.CreateSession(ctx, server.CreateSessionRequest{Config: rollingTestConfig})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := client.SubmitAsync(ctx, sid, rollingTestIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	// A second submit for the same session must 409; resumeUpdate adopts the
	// in-flight update and drives it to completion.
	u, err := resumeUpdate(ctx, client, sid, rollingTestIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if err != nil || u.Status != server.StatusDone {
		t.Fatalf("resumeUpdate = %+v, %v, want done", u, err)
	}
	if u.ID != prior.ID {
		t.Fatalf("resumed update %s, want the in-flight %s", u.ID, prior.ID)
	}
}

// TestResumeUpdateReportsLostSession: a session that stays gone past the
// grace window surfaces errSessionLost, the count a rolling drill must hold
// at zero.
func TestResumeUpdateReportsLostSession(t *testing.T) {
	_, url := startResumeDaemon(t)
	client := &server.Client{BaseURL: url, PollInterval: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	old := lostGrace
	lostGrace = 300 * time.Millisecond
	defer func() { lostGrace = old }()
	_, err := resumeUpdate(ctx, client, "s404-never-existed", rollingTestIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if !errors.Is(err, errSessionLost) {
		t.Fatalf("resumeUpdate on a missing session = %v, want errSessionLost", err)
	}
}
