package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/tenant"
)

// TenantMix is one tenant's slice of a multi-tenant load run: how many
// workers submit under its X-Clarify-Tenant header and how hard they push.
// A noisy tenant is the aggressor in a noisy-neighbor drill: its workers
// submit flat out without the client-side 429 retry loop, so every shed the
// daemon issues is counted instead of silently absorbed — and its outcomes
// are excluded from the run's aggregate SLO verdict, which belongs to the
// victims.
type TenantMix struct {
	// Name is sent as the X-Clarify-Tenant header on every request.
	Name string `json:"name"`
	// Workers is this tenant's closed-loop worker count.
	Workers int `json:"workers"`
	// Rate, when positive, paces this tenant's submissions to this many
	// updates/second across its workers; zero runs flat out.
	Rate float64 `json:"rate,omitempty"`
	// Noisy marks the aggressor: shed-counting submit loop, excluded from
	// the aggregate verdict.
	Noisy bool `json:"noisy,omitempty"`
}

// ParseTenants parses a -tenants flag value: comma-separated
// "[noisy:]name:workers[:rate]" entries, e.g. "victim:4,noisy:mallory:8" or
// "teamA:4:2.5,noisy:mallory:12:50".
func ParseTenants(spec string) ([]TenantMix, error) {
	var out []TenantMix
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := TenantMix{}
		if rest, ok := strings.CutPrefix(part, "noisy:"); ok {
			m.Noisy = true
			part = rest
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("loadgen: bad -tenants entry %q (want [noisy:]name:workers[:rate])", part)
		}
		m.Name = fields[0]
		if !tenant.ValidName(m.Name) {
			return nil, fmt.Errorf("loadgen: bad tenant name %q", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("loadgen: duplicate tenant %q", m.Name)
		}
		seen[m.Name] = true
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("loadgen: bad worker count in %q", part)
		}
		m.Workers = n
		if len(fields) == 3 {
			r, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("loadgen: bad rate in %q", part)
			}
			m.Rate = r
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: -tenants spec %q names no tenants", spec)
	}
	return out, nil
}

// TenantReport is one tenant's slice of the run outcome. Sheds counts 429
// admission rejections observed by this tenant's workers — only meaningful
// for noisy tenants, whose submit loop surfaces them instead of retrying.
type TenantReport struct {
	Noisy      bool           `json:"noisy,omitempty"`
	Workers    int            `json:"workers"`
	Updates    int            `json:"updates"`
	Failures   int            `json:"failures"`
	Degraded   int            `json:"degraded,omitempty"`
	Sheds      int64          `json:"sheds,omitempty"`
	Throughput float64        `json:"throughput"`
	Latency    LatencySummary `json:"latency"`
	SLO        slo.Snapshot   `json:"slo"`
	// BitsPerQuestion is the tenant's mean information gain per clarifying
	// question, read from the daemon's /debug/ambiguity rollup at run end;
	// 0 when the daemon attributed no ledgers to the tenant.
	BitsPerQuestion float64 `json:"bitsPerQuestion,omitempty"`
	// Verdict is "green" when no objective alert fired for this tenant,
	// "firing" otherwise. Noisy tenants report a verdict too, but it does
	// not gate the run.
	Verdict string `json:"verdict"`
}

// shedRunUpdate runs one update without the client's internal 429 retry: a
// shed submit returns errShed immediately so the caller can count it. An
// admitted update is polled to a terminal state with questions answered.
func shedRunUpdate(ctx context.Context, client *server.Client, sid, intentText, target string, answer server.AnswerFunc) (server.UpdateInfo, error) {
	u, err := client.SubmitAsync(ctx, sid, intentText, target)
	if err != nil {
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
			return server.UpdateInfo{}, errShed
		}
		return server.UpdateInfo{}, err
	}
	return client.PollUpdate(ctx, sid, u.ID, answer)
}

// errShed marks a submit the daemon rejected with 429: admission control
// doing its job, not a failure of the update pipeline.
var errShed = errors.New("loadgen: submit shed with 429")

// shedBackoff is how long a noisy worker sleeps after a shed before hammering
// again — short enough to keep sustained pressure on the admission layer,
// long enough to avoid a pure busy-loop against a drained token bucket.
const shedBackoff = 20 * time.Millisecond
