package clarify

import (
	"context"
	"testing"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

func TestReuseSkipsLLMCalls(t *testing.T) {
	sim := llm.NewSimLLM()
	s := &Session{
		Client:      sim,
		Config:      ios.MustParse("route-map A permit 10\nroute-map B deny 10\n"),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
		EnableReuse: true,
	}
	const text = "Write a route-map stanza that denies routes passing through AS 666."
	if _, err := s.Submit(context.Background(), text, "A"); err != nil {
		t.Fatal(err)
	}
	after1 := s.Stats().LLMCalls
	if after1 != 3 {
		t.Fatalf("first submit cost %d calls, want 3", after1)
	}
	// Same intent against a different map: the cached verified snippet is
	// reused; no new LLM calls.
	res, err := s.Submit(context.Background(), text, "B")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LLMCalls; got != after1 {
		t.Errorf("reused submit cost %d extra calls", got-after1)
	}
	if res.RouteInsert == nil {
		t.Fatal("reused submit did not insert")
	}
	if len(s.Config.RouteMaps["B"].Stanzas) != 2 {
		t.Errorf("B has %d stanzas", len(s.Config.RouteMaps["B"].Stanzas))
	}
	if s.Stats().Updates != 2 {
		t.Errorf("updates = %d", s.Stats().Updates)
	}
}

func TestReuseDisabledByDefault(t *testing.T) {
	sim := llm.NewSimLLM()
	s := &Session{
		Client:      sim,
		Config:      ios.MustParse("route-map A permit 10\n"),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
	}
	const text = "Write a route-map stanza that denies routes passing through AS 666."
	if _, err := s.Submit(context.Background(), text, "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), text, "A"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LLMCalls; got != 6 {
		t.Errorf("without reuse, two submits should cost 6 calls, got %d", got)
	}
}

func TestReuseKeepsDisambiguationPerTarget(t *testing.T) {
	// Reuse skips synthesis but never placement: inserting the same snippet
	// into a map where it conflicts still asks questions.
	sim := llm.NewSimLLM()
	questions := 0
	s := &Session{
		Client: sim,
		Config: ios.MustParse(`ip prefix-list P seq 10 permit 10.0.0.0/8 le 32
route-map EMPTY permit 10
 match ip address prefix-list P
route-map CONFLICT deny 10
`),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			questions++
			return true, nil
		}),
		EnableReuse: true,
	}
	const text = "Write a route-map stanza that permits routes with the prefix 10.0.0.0/8 with mask length less than or equal to 24 and set the community 9:9."
	if _, err := s.Submit(context.Background(), text, "EMPTY"); err != nil {
		t.Fatal(err)
	}
	q1 := questions
	if _, err := s.Submit(context.Background(), text, "CONFLICT"); err != nil {
		t.Fatal(err)
	}
	if questions <= q1 {
		t.Error("reused insertion into a conflicting map should still ask")
	}
}
