package ciscorx

import (
	"testing"
)

func pathMatch(t *testing.T, pattern string, asns ...uint32) bool {
	t.Helper()
	d, err := CompilePath(pattern)
	if err != nil {
		t.Fatalf("CompilePath(%q): %v", pattern, err)
	}
	return d.Matches(PathSubject(asns))
}

func TestPaperASPathRegex(t *testing.T) {
	// The paper's D0: "_32$" — routes originating from ASN 32.
	if !pathMatch(t, "_32$", 32) {
		t.Error("path [32] should match _32$")
	}
	if !pathMatch(t, "_32$", 100, 32) {
		t.Error("path [100 32] should match _32$")
	}
	if pathMatch(t, "_32$", 32, 100) {
		t.Error("path [32 100] should not match _32$")
	}
	if pathMatch(t, "_32$", 132) {
		t.Error("path [132] should not match _32$ (boundary)")
	}
	if pathMatch(t, "_32$", 321) {
		t.Error("path [321] should not match _32$")
	}
	if pathMatch(t, "_32$") {
		t.Error("empty path should not match _32$")
	}
}

func TestAnchorsAndEmptyPath(t *testing.T) {
	if !pathMatch(t, "^$") {
		t.Error("empty path should match ^$")
	}
	if pathMatch(t, "^$", 1) {
		t.Error("non-empty path should not match ^$")
	}
	if !pathMatch(t, "^65000_", 65000, 200) {
		t.Error("^65000_ should match path starting with 65000")
	}
	if pathMatch(t, "^65000_", 200, 65000) {
		t.Error("^65000_ must anchor at start")
	}
	// Unanchored substring: _7_ anywhere.
	if !pathMatch(t, "_7_", 1, 7, 9) || !pathMatch(t, "_7_", 7) || pathMatch(t, "_7_", 77) {
		t.Error("_7_ boundary semantics wrong")
	}
}

func TestDotAndClassesInPath(t *testing.T) {
	// ".*" matches everything.
	if !pathMatch(t, ".*") || !pathMatch(t, ".*", 1, 2, 3) {
		t.Error(".* should match any path")
	}
	// "^[1-3]$" matches single-ASN paths 1..3.
	for asn := uint32(1); asn <= 3; asn++ {
		if !pathMatch(t, "^[1-3]$", asn) {
			t.Errorf("^[1-3]$ should match [%d]", asn)
		}
	}
	if pathMatch(t, "^[1-3]$", 4) || pathMatch(t, "^[1-3]$", 12) {
		t.Error("^[1-3]$ overmatches")
	}
}

func TestPaperCommunityRegex(t *testing.T) {
	d, err := CompileCommunity("_300:3_")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Matches(CommunitySubject("300:3")) {
		t.Error("300:3 should match _300:3_")
	}
	for _, c := range []string{"1300:3", "300:33", "300:31", "3300:3"} {
		if d.Matches(CommunitySubject(c)) {
			t.Errorf("%s should not match _300:3_", c)
		}
	}
}

func TestCommunityAnchored(t *testing.T) {
	d, err := CompileCommunity("^100:[0-9]+$")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Matches(CommunitySubject("100:42")) || d.Matches(CommunitySubject("1100:42")) {
		t.Error("anchored community regex wrong")
	}
}

func TestValidityIntersection(t *testing.T) {
	// Witnesses must be decodable: shortest string of any compiled pattern is
	// a well-formed subject.
	d, err := CompilePath("_32$")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := d.ShortestString()
	if !ok {
		t.Fatal("pattern _32$ has no witness")
	}
	if s != "^32$" {
		t.Errorf("shortest witness = %q, want \"^32$\"", s)
	}
	dc, err := CompileCommunity("_300:3_")
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := dc.ShortestString()
	if !ok || sc != "^300:3$" {
		t.Errorf("community witness = %q, want \"^300:3$\"", sc)
	}
}

func TestBadPattern(t *testing.T) {
	if _, err := CompilePath("("); err == nil {
		t.Error("unbalanced pattern should fail")
	}
	if _, err := CompilePath(`\`); err == nil {
		t.Error("trailing backslash should fail")
	}
	if _, err := CompileCommunity("[z"); err == nil {
		t.Error("bad class should fail")
	}
}

func TestEnumerateWitnesses(t *testing.T) {
	d, err := CompilePath("^1(0)*$")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	d.EnumerateStrings(8, func(s string) bool {
		got = append(got, s)
		return len(got) < 3
	})
	want := []string{"^1$", "^10$", "^100$"}
	if len(got) != 3 {
		t.Fatalf("enumerated %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", got, want)
		}
	}
}
