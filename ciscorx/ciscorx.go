// Package ciscorx translates Cisco IOS as-path and expanded community-list
// regular expressions into exact automata over boundary-explicit strings.
//
// Cisco regexes are searched (substring semantics) against the textual form
// of the attribute, with three metacharacters that reference positions rather
// than characters: '^' (start), '$' (end) and '_' (a boundary: start, end, or
// the delimiter between tokens). We make boundaries first-class by rendering
// subjects with explicit sentinel characters — the AS path [32, 54] becomes
// "^32 54$", the community 300:3 becomes "^300:3$" — after which '^' and '$'
// are ordinary literals and '_' is the character class [ ^$]. Substring
// search then reduces to full-match of .*(R).* over the sentinel alphabet.
//
// The same construction is used by the concrete evaluator (internal/policy)
// and the symbolic atomic-predicate builder (internal/atoms), guaranteeing
// that both agree on every input.
package ciscorx

import (
	"fmt"
	"strings"

	"github.com/clarifynet/clarify/rx"
)

// PathAlphabet covers boundary-explicit AS-path strings.
var PathAlphabet = rx.Alphabet("0123456789 ^$")

// CommunityAlphabet covers boundary-explicit community strings.
var CommunityAlphabet = rx.Alphabet("0123456789:^$")

// digit{1,5}: up to five digits, keeping decoded numbers within uint16/uint32
// bounds for witnesses.
const numToken = "[0-9][0-9]?[0-9]?[0-9]?[0-9]?"

// validPath accepts "^$" (empty path) and "^a( b)*$" forms.
var validPath = rx.MustCompile(`\^(`+numToken+`( `+numToken+`)*)?\$`, PathAlphabet)

// validCommunity accepts "^hi:lo$" forms.
var validCommunity = rx.MustCompile(`\^`+numToken+`:`+numToken+`\$`, CommunityAlphabet)

// ValidPath returns the automaton of well-formed boundary-explicit AS-path
// strings; atomic predicates intersect against it so every region witness
// decodes to a real path.
func ValidPath() *rx.DFA { return validPath }

// ValidCommunity returns the automaton of well-formed boundary-explicit
// community strings.
func ValidCommunity() *rx.DFA { return validCommunity }

// translate rewrites Cisco metacharacters into the sentinel dialect.
func translate(pattern string) (string, error) {
	var sb strings.Builder
	inClass := false
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch {
		case c == '\\':
			if i+1 >= len(pattern) {
				return "", fmt.Errorf("ciscorx: trailing backslash in %q", pattern)
			}
			sb.WriteByte('\\')
			i++
			sb.WriteByte(pattern[i])
		case c == '[':
			inClass = true
			sb.WriteByte(c)
		case c == ']':
			inClass = false
			sb.WriteByte(c)
		case inClass:
			sb.WriteByte(c)
		case c == '_':
			sb.WriteString(`[ \^$]`)
		case c == '^':
			sb.WriteString(`\^`)
		case c == '$':
			sb.WriteString(`\$`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), nil
}

func compile(pattern string, alpha rx.Alphabet, valid *rx.DFA) (*rx.DFA, error) {
	body, err := translate(pattern)
	if err != nil {
		return nil, err
	}
	d, err := rx.Compile(".*("+body+").*", alpha)
	if err != nil {
		return nil, fmt.Errorf("ciscorx: pattern %q: %w", pattern, err)
	}
	return d.Intersect(valid), nil
}

// CompilePath compiles a Cisco as-path regex to an automaton over
// boundary-explicit path strings (already intersected with ValidPath).
func CompilePath(pattern string) (*rx.DFA, error) {
	return compile(pattern, PathAlphabet, validPath)
}

// CompileCommunity compiles a Cisco expanded community-list regex to an
// automaton over boundary-explicit community strings (already intersected
// with ValidCommunity).
func CompileCommunity(pattern string) (*rx.DFA, error) {
	return compile(pattern, CommunityAlphabet, validCommunity)
}

// PathSubject renders an ASN sequence in the boundary-explicit form matched
// by CompilePath automata.
func PathSubject(asns []uint32) string {
	var sb strings.Builder
	sb.WriteByte('^')
	for i, a := range asns {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", a)
	}
	sb.WriteByte('$')
	return sb.String()
}

// CommunitySubject renders a community string in boundary-explicit form.
func CommunitySubject(comm string) string { return "^" + comm + "$" }
