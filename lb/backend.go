package lb

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/clarifynet/clarify/server"
)

// Backend state machine (driven by the prober):
//
//	admitted ──(EjectAfter consecutive probe failures)──▶ ejected
//	ejected ──(ReadmitAfter consecutive probe successes)──▶ admitted
//
// Orthogonally, a backend whose probe payload reports draining keeps serving
// its pinned sessions (so parked Q&A can finish) but stops receiving new
// session creates; when the drained process finally exits, its probes fail
// and it is ejected like any dead backend.
const (
	StateAdmitted = "admitted"
	StateEjected  = "ejected"
)

// Backend is one clarifyd replica behind the balancer.
type Backend struct {
	// Name labels the backend in headers, metrics, and logs (host:port).
	Name string
	// URL is the replica root, e.g. http://127.0.0.1:8080.
	URL *url.URL

	mu       sync.Mutex
	ejected  bool
	draining bool
	fails    int // consecutive probe failures while admitted
	oks      int // consecutive probe successes while ejected
	load     server.HealthStatus
	probedAt time.Time
	lastErr  string

	// Serving counters.
	requests   int64
	errors5xx  int64
	transport  int64
	sheds      int64 // 429 shed responses proxied from this backend
	creates    int64
	ejections  int64
	readmits   int64
	latency    *histogram
	probeTotal int64
	probeFails int64
}

// newBackend parses one replica URL into a Backend. Backends start admitted:
// an optimistic start avoids a probe-interval blackout at LB boot, and a
// genuinely dead replica is ejected within EjectAfter probes.
func newBackend(raw string, buckets []float64) (*Backend, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("lb: backend %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("lb: backend %q: want an http(s) URL", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("lb: backend %q: missing host", raw)
	}
	return &Backend{Name: u.Host, URL: u, latency: newHistogram(buckets)}, nil
}

// Admitted reports whether the backend is in rotation (possibly draining).
func (b *Backend) Admitted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.ejected
}

// AcceptsSessions reports whether new session creates may be placed here:
// admitted and not draining.
func (b *Backend) AcceptsSessions() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.ejected && !b.draining
}

// Load returns the last probe's health payload (zero before the first probe).
func (b *Backend) Load() server.HealthStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.load
}

// loadScore orders backends for load-aware placement: queued work first
// (it directly delays a new session's updates), then live sessions.
func (b *Backend) loadScore() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.load.QueueDepth, b.load.ActiveSessions
}

// lessLoaded reports whether b carries strictly less load than o.
func (b *Backend) lessLoaded(o *Backend) bool {
	bq, bs := b.loadScore()
	oq, os := o.loadScore()
	if bq != oq {
		return bq < oq
	}
	return bs < os
}

// recordRequest folds one proxied request into the backend's counters.
// transportErr marks a failure to reach the backend at all.
func (b *Backend) recordRequest(status int, d time.Duration, transportErr bool) {
	b.recordRequestTrace(status, d, transportErr, "")
}

// recordRequestTrace is recordRequest plus an exemplar: when traceID is
// non-empty, the observation is recorded as the latency bucket's last
// exemplar for the OpenMetrics exposition.
func (b *Backend) recordRequestTrace(status int, d time.Duration, transportErr bool, traceID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.requests++
	switch {
	case transportErr:
		b.transport++
	case status >= 500:
		b.errors5xx++
	case status == http.StatusTooManyRequests:
		// The replica shed the request (quota, queue, or overload); count
		// it here so overload is visible at the balancer per backend.
		b.sheds++
	}
	if traceID != "" {
		b.latency.observeExemplar(d, traceID, float64(time.Now().UnixMilli())/1000)
	} else {
		b.latency.observe(d)
	}
}

func (b *Backend) recordCreate() {
	b.mu.Lock()
	b.creates++
	b.mu.Unlock()
}

// probeSuccess records one live probe: consecutive-failure state resets, and
// an ejected backend is re-admitted after `readmitAfter` consecutive
// successes. It returns true when this probe re-admitted the backend.
func (b *Backend) probeSuccess(load server.HealthStatus, readmitAfter int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probeTotal++
	b.probedAt = time.Now()
	b.load = load
	b.draining = load.Draining
	b.lastErr = ""
	b.fails = 0
	if !b.ejected {
		return false
	}
	b.oks++
	if b.oks < readmitAfter {
		return false
	}
	b.ejected = false
	b.oks = 0
	b.readmits++
	return true
}

// probeFailure records one failed probe and ejects the backend after
// `ejectAfter` consecutive failures. It returns true when this probe ejected
// the backend.
func (b *Backend) probeFailure(reason string, ejectAfter int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probeTotal++
	b.probeFails++
	b.probedAt = time.Now()
	b.lastErr = reason
	b.oks = 0
	if b.ejected {
		return false
	}
	b.fails++
	if b.fails < ejectAfter {
		return false
	}
	b.ejected = true
	b.fails = 0
	b.ejections++
	return true
}

// BackendSnapshot is the wire view of one backend's state and counters.
type BackendSnapshot struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	State    string `json:"state"`
	Draining bool   `json:"draining"`
	// Requests counts proxied requests; Errors5xx those answered >= 500 by
	// the backend, TransportErrors those that never reached it.
	Requests        int64 `json:"requests"`
	Errors5xx       int64 `json:"errors5xx"`
	TransportErrors int64 `json:"transportErrors"`
	// Sheds counts 429 responses proxied from this backend — a replica
	// refusing work via its admission gates (quota, queue, overload).
	Sheds int64 `json:"sheds"`
	// CreatesRouted counts sessions placed on this backend.
	CreatesRouted int64 `json:"createsRouted"`
	// Ejections / Readmissions count state-machine transitions.
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
	// Probes / ProbeFailures count health checks sent and failed.
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probeFailures"`
	// ConsecutiveFailures / ConsecutiveSuccesses expose the state machine's
	// progress toward its next transition.
	ConsecutiveFailures  int `json:"consecutiveFailures,omitempty"`
	ConsecutiveSuccesses int `json:"consecutiveSuccesses,omitempty"`
	// Load echoes the backend's last probe payload.
	Load server.HealthStatus `json:"load"`
	// ProbeAgeSeconds is the time since the last probe (-1 before any).
	ProbeAgeSeconds float64 `json:"probeAgeSeconds"`
	LastError       string  `json:"lastError,omitempty"`
	// LatencyMs is the proxied-request latency histogram.
	LatencyMs server.HistogramSnapshot `json:"latencyMs"`
}

func (b *Backend) snapshot() BackendSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BackendSnapshot{
		Name:                 b.Name,
		URL:                  b.URL.String(),
		State:                StateAdmitted,
		Draining:             b.draining,
		Requests:             b.requests,
		Errors5xx:            b.errors5xx,
		TransportErrors:      b.transport,
		Sheds:                b.sheds,
		CreatesRouted:        b.creates,
		Ejections:            b.ejections,
		Readmissions:         b.readmits,
		Probes:               b.probeTotal,
		ProbeFailures:        b.probeFails,
		ConsecutiveFailures:  b.fails,
		ConsecutiveSuccesses: b.oks,
		Load:                 b.load,
		ProbeAgeSeconds:      -1,
		LastError:            b.lastErr,
		LatencyMs:            b.latency.snapshot(),
	}
	if b.ejected {
		s.State = StateEjected
	}
	if !b.probedAt.IsZero() {
		s.ProbeAgeSeconds = time.Since(b.probedAt).Seconds()
	}
	return s
}

// histogram is a fixed-bucket latency histogram guarded by the owning
// backend's mutex; the snapshot shape is shared with clarifyd via
// server.MakeHistogramSnapshot.
type histogram struct {
	buckets []float64
	counts  []int64 // len(buckets)+1, last is +Inf
	sumMs   float64
	n       int64
	// exemplars holds each bucket's most recent traced observation; nil
	// until the first exemplar arrives, so the exemplar-off path allocates
	// nothing.
	exemplars []server.Exemplar
}

func newHistogram(buckets []float64) *histogram {
	if len(buckets) == 0 {
		buckets = server.DefaultLatencyBucketsMs()
	}
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(h.buckets, ms)
	h.counts[i]++
	h.sumMs += ms
	h.n++
}

// observeExemplar is observe plus recording the observation as its bucket's
// exemplar.
func (h *histogram) observeExemplar(d time.Duration, traceID string, ts float64) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(h.buckets, ms)
	h.counts[i]++
	h.sumMs += ms
	h.n++
	if h.exemplars == nil {
		h.exemplars = make([]server.Exemplar, len(h.counts))
	}
	h.exemplars[i] = server.Exemplar{TraceID: traceID, ValueMs: ms, Ts: ts}
}

func (h *histogram) snapshot() server.HistogramSnapshot {
	s := server.MakeHistogramSnapshot(h.buckets, h.counts, h.n, h.sumMs)
	if h.exemplars != nil {
		s.Exemplars = append([]server.Exemplar(nil), h.exemplars...)
	}
	return s
}
