package lb

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"github.com/clarifynet/clarify/server"
)

// TestFleetAmbiguityMerge runs walkthrough updates through the balancer and
// checks the fleet view at /debug/ambiguity is exactly the sum of the
// backends' rollups — the merge is pure addition over sums, so the agreement
// is bit-for-bit, not approximate.
func TestFleetAmbiguityMerge(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	c := f.client(nil)
	ctx := context.Background()

	// Several sessions so placement spreads work across both backends.
	for i := 0; i < 4; i++ {
		sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create session %d: %v", i, err)
		}
		res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q server.Question) (int, error) {
			return 1, nil
		})
		if err != nil || res.Status != server.StatusDone {
			t.Fatalf("update %d: %v %+v", i, err, res)
		}
	}

	var fleet FleetAmbiguity
	getJSON(t, f.lbSrv.URL+"/debug/ambiguity", &fleet)
	if len(fleet.BackendsReporting) != 2 {
		t.Fatalf("backendsReporting = %v, want both backends", fleet.BackendsReporting)
	}

	var sum server.AmbiguitySnapshot
	for name := range f.backends {
		var part server.AmbiguitySnapshot
		getJSON(t, "http://"+name+"/debug/ambiguity", &part)
		sum.Merge(&part)
	}
	if sum.Rollup.Total.Updates != 4 {
		t.Fatalf("backends recorded %d updates total, want 4", sum.Rollup.Total.Updates)
	}
	if got, want := fleet.Rollup.Total, sum.Rollup.Total; got != want {
		t.Errorf("fleet total %+v != backend sum %+v", got, want)
	}
	if fleet.Rollup.UpdatesWithQuestions != sum.Rollup.UpdatesWithQuestions {
		t.Errorf("fleet UpdatesWithQuestions %d != sum %d",
			fleet.Rollup.UpdatesWithQuestions, sum.Rollup.UpdatesWithQuestions)
	}
	fb, sb := fleet.Rollup.Strategies["binary"], sum.Rollup.Strategies["binary"]
	if fb == nil || sb == nil || *fb != *sb {
		t.Errorf("fleet binary row %+v != backend sum %+v", fb, sb)
	}
	if fleet.QuestionsPerUpdate.Count != sum.QuestionsPerUpdate.Count ||
		fleet.QuestionsPerUpdate.Sum != sum.QuestionsPerUpdate.Sum {
		t.Errorf("fleet questionsPerUpdate %+v != backend sum %+v",
			fleet.QuestionsPerUpdate, sum.QuestionsPerUpdate)
	}

	// The tenant filter works through the balancer too.
	resp, err := http.Get(f.lbSrv.URL + "/debug/ambiguity?tenant=ghost")
	if err != nil {
		t.Fatalf("tenant filter: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant through lb = %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
