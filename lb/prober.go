package lb

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clarifynet/clarify/server"
)

// prober actively health-checks every backend: one GET /readyz per backend
// per tick, all backends probed concurrently so a hung replica cannot delay
// the others' verdicts.
//
// Probe classification:
//
//	200/degraded       → success (alive, serving; degraded still serves)
//	503 "draining"     → success, draining: the replica is finishing its
//	                     in-flight sessions; keep routing its pinned session
//	                     traffic, stop placing new sessions on it
//	503 otherwise      → failure (unready: breaker open with no fallback)
//	transport error    → failure (process gone, port closed, timeout)
//
// EjectAfter consecutive failures eject the backend (no traffic at all,
// probes continue); ReadmitAfter consecutive successes re-admit it.
type prober struct {
	lb       *LB
	client   *http.Client
	interval time.Duration
	timeout  time.Duration
	eject    int
	readmit  int

	probes atomic.Int64 // probe rounds completed

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// Prober defaults: a dead replica is out of rotation within
// DefaultEjectAfter × DefaultProbeInterval of dying.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = time.Second
	DefaultEjectAfter    = 3
	DefaultReadmitAfter  = 2
)

func newProber(l *LB, opts Options) *prober {
	interval := opts.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	timeout := opts.ProbeTimeout
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
		if timeout > interval {
			timeout = interval
		}
	}
	eject := opts.EjectAfter
	if eject <= 0 {
		eject = DefaultEjectAfter
	}
	readmit := opts.ReadmitAfter
	if readmit <= 0 {
		readmit = DefaultReadmitAfter
	}
	return &prober{
		lb:       l,
		client:   &http.Client{Timeout: timeout, Transport: opts.Transport},
		interval: interval,
		timeout:  timeout,
		eject:    eject,
		readmit:  readmit,
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
}

func (p *prober) run() {
	defer close(p.doneCh)
	// Probe immediately at start so load payloads are populated before the
	// first create; backends start admitted either way.
	p.probeAll()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.probeAll()
		case <-p.stopCh:
			return
		}
	}
}

func (p *prober) probeAll() {
	var wg sync.WaitGroup
	for _, b := range p.lb.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.probeOne(b)
		}(b)
	}
	wg.Wait()
	p.probes.Add(1)
}

func (p *prober) probeOne(b *Backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL.String()+"/readyz", nil)
	if err != nil {
		p.onFailure(b, "build probe: "+err.Error())
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.onFailure(b, "probe: "+trimReason(err.Error()))
		return
	}
	defer resp.Body.Close()
	var load server.HealthStatus
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(body, &load) // best-effort: old replicas send fewer fields

	switch {
	case resp.StatusCode == http.StatusOK:
		p.onSuccess(b, load)
	case load.Draining || load.Status == "draining":
		// Draining is not a failure: the replica is alive and finishing its
		// in-flight sessions. AcceptsSessions() goes false via the payload.
		load.Draining = true
		p.onSuccess(b, load)
	default:
		p.onFailure(b, trimReason(load.Status+" ("+resp.Status+")"))
	}
}

func (p *prober) onSuccess(b *Backend, load server.HealthStatus) {
	if b.probeSuccess(load, p.readmit) && p.lb.opts.Logger != nil {
		p.lb.opts.Logger.Printf("lb: backend %s re-admitted after %d consecutive successful probes", b.Name, p.readmit)
	}
}

func (p *prober) onFailure(b *Backend, reason string) {
	if b.probeFailure(reason, p.eject) && p.lb.opts.Logger != nil {
		p.lb.opts.Logger.Printf("lb: backend %s ejected after %d consecutive probe failures (%s)", b.Name, p.eject, reason)
	}
}

func (p *prober) stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	<-p.doneCh
}

func trimReason(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
