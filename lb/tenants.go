package lb

import (
	"sync"

	"github.com/clarifynet/clarify/tenant"
)

// tenantOverflow is the fold-in name for tenants beyond the table's
// cardinality bound, mirroring the tenant registry's overflow label so
// balancer and replica metrics line up.
const tenantOverflow = "~overflow"

// TenantLBStats is one tenant's traffic as seen from the balancer: requests
// forwarded on its behalf and 429 sheds relayed back to it. The balancer
// attributes by the X-Clarify-Tenant request header; requests without the
// header (or with an invalid value) fold into the default tenant's row.
type TenantLBStats struct {
	Requests int64 `json:"requests"`
	Sheds    int64 `json:"sheds"`
}

// tenantTable is a bounded per-tenant counter map. The bound matters for the
// same reason as the registry's: the header is client-controlled, and an
// unbounded label set is a metrics-cardinality attack.
type tenantTable struct {
	mu  sync.Mutex
	max int
	m   map[string]*TenantLBStats
}

func newTenantTable(max int) *tenantTable {
	if max <= 0 {
		max = 256
	}
	return &tenantTable{max: max, m: make(map[string]*TenantLBStats)}
}

// record folds one proxied response into the named tenant's counters.
func (t *tenantTable) record(name string, shed bool) {
	if name == "" || !tenant.ValidName(name) {
		name = tenant.DefaultTenant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[name]
	if !ok {
		if len(t.m) >= t.max {
			name = tenantOverflow
			st = t.m[name]
		}
		if st == nil {
			st = &TenantLBStats{}
			t.m[name] = st
		}
	}
	st.Requests++
	if shed {
		st.Sheds++
	}
}

// snapshot copies the table for /metrics.
func (t *tenantTable) snapshot() map[string]TenantLBStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return nil
	}
	out := make(map[string]TenantLBStats, len(t.m))
	for name, st := range t.m {
		out[name] = *st
	}
	return out
}
