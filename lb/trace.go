package lb

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/clarifynet/clarify/obs"
)

// DefaultTraceBufferSize is the balancer's /debug/traces ring capacity when
// Options.TraceBufferSize is zero.
const DefaultTraceBufferSize = 256

// DefaultTraceKeepSize is the tail-retention ring's capacity when
// Options.TraceKeepSize is zero: evicted error traces survive here after
// healthy traffic pushes them out of the main ring.
const DefaultTraceKeepSize = 32

// proxyTrace accumulates one proxied request's trace and access-log fields.
// All span operations are nil-safe, so a balancer with tracing disabled
// (Options.TraceBufferSize < 0) pays only the struct allocation.
type proxyTrace struct {
	t     *obs.Trace
	reqID string
	start time.Time
	// placement is how the backend was chosen: pin, ring, p2c, or failover.
	placement string
	backend   string
	status    int
	errMsg    string
}

// beginProxy starts the per-request proxy trace. A client that sent its own
// W3C traceparent (clarify -remote does) is continued, not restarted: the
// proxy trace adopts the client's trace ID and records the client span as
// its remote parent. When the client sent no X-Request-Id, the minted
// request ID is the trace ID itself — one correlation namespace across the
// balancer, the replicas, and the client.
func (l *LB) beginProxy(r *http.Request) *proxyTrace {
	pt := &proxyTrace{reqID: r.Header.Get(requestIDHeader), start: time.Now()}
	if l.traces != nil {
		if tp, ok := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); ok {
			pt.t = obs.NewTraceWith("lb-proxy", tp)
		} else {
			pt.t = obs.NewTrace("lb-proxy")
		}
		pt.t.Root.SetStr("method", r.Method)
		pt.t.Root.SetStr("path", r.URL.Path)
		if pt.reqID == "" {
			pt.reqID = pt.t.ID
		}
	} else if pt.reqID == "" {
		pt.reqID = newRequestID()
	}
	return pt
}

// span starts a child of the proxy root; nil when tracing is off.
func (pt *proxyTrace) span(name string) *obs.Span {
	if pt.t == nil {
		return nil
	}
	return pt.t.Root.Child(name)
}

// fail records a balancer-originated error response (no backend reached, or
// the one reached was unusable).
func (pt *proxyTrace) fail(status int, msg string) {
	pt.status = status
	pt.errMsg = msg
}

// endProxy finalizes the request's trace into the ring and emits the access
// log line. Call via defer so every exit path is covered.
func (l *LB) endProxy(pt *proxyTrace, r *http.Request) {
	if pt.t != nil {
		if pt.backend != "" {
			pt.t.Root.SetStr("backend", pt.backend)
		}
		if pt.placement != "" {
			pt.t.Root.SetStr("placement", pt.placement)
		}
		if pt.status != 0 {
			pt.t.Root.SetInt("status", int64(pt.status))
		}
		if pt.errMsg != "" {
			pt.t.Root.SetStr("error", pt.errMsg)
		}
		pt.t.Finish()
		l.traces.Add(pt.t)
		l.tracesTotal.Add(1)
	}
	if l.opts.AccessLog == nil {
		return
	}
	level := slog.LevelInfo
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("requestId", pt.reqID),
		slog.Int("status", pt.status),
		slog.Float64("durationMs", float64(time.Since(pt.start))/float64(time.Millisecond)),
	}
	if pt.t != nil {
		attrs = append(attrs, slog.String("traceId", pt.t.ID))
	}
	if pt.backend != "" {
		attrs = append(attrs, slog.String("backend", pt.backend))
	}
	if pt.placement != "" {
		attrs = append(attrs, slog.String("placement", pt.placement))
	}
	if pt.errMsg != "" {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("error", pt.errMsg))
	}
	l.opts.AccessLog.LogAttrs(r.Context(), level, "proxied", attrs...)
}

// keepProxyTrace is the balancer ring's tail-retention policy: error traces
// (transport failures, 5xx, no-backend refusals) survive eviction.
func keepProxyTrace(t *obs.Trace) bool {
	if _, ok := t.Root.Attr("error"); ok {
		return true
	}
	if a, ok := t.Root.Attr("status"); ok && a.Int >= 500 {
		return true
	}
	return false
}

// --- fleet trace view ---

// FleetTrace is the body of GET /debug/traces/{tid}: the balancer's proxy
// trace with every replica's matching trace grafted under the forward span
// that propagated its context — one cross-process tree per trace ID.
type FleetTrace struct {
	ID string `json:"id"`
	// Trace is the stitched tree, rooted at the balancer's proxy span. When
	// the balancer's own trace was evicted but a replica still holds one,
	// Trace is the replica's tree (Partial is set).
	Trace *obs.Trace `json:"trace"`
	// Backends names the replicas that contributed spans.
	Backends []string `json:"backends,omitempty"`
	// Orphans are replica traces whose recorded parent span was not found in
	// the balancer trace (evicted mid-rotation, or propagated by another LB).
	Orphans []*obs.Trace `json:"orphans,omitempty"`
	// Related summarizes the other proxied requests recorded under the same
	// trace ID — a client propagating one traceparent across a submit and
	// its question polls produces one proxy tree per request; Trace is the
	// one carrying the replica subtree, these are its siblings.
	Related []TraceSummary `json:"related,omitempty"`
	// Partial marks a view missing its balancer root.
	Partial bool `json:"partial,omitempty"`
}

// handleDebugTraces lists the balancer's retained proxy traces, newest
// first; ?limit=N bounds the response and ?kept=1 lists the tail-retention
// ring instead. The rows carry trace IDs to feed GET /debug/traces/{tid}.
func (l *LB) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if l.traces == nil {
		writeJSON(w, http.StatusOK, []TraceSummary{})
		return
	}
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer", 0)
			return
		}
		limit = n
	}
	var traces []*obs.Trace
	if r.URL.Query().Get("kept") == "1" {
		traces = l.traces.Kept()
	} else {
		traces = l.traces.List()
	}
	if limit >= 0 && limit < len(traces) {
		traces = traces[:limit]
	}
	out := make([]TraceSummary, 0, len(traces))
	for _, t := range traces {
		out = append(out, summarizeProxy(t))
	}
	writeJSON(w, http.StatusOK, out)
}

// TraceSummary is one row of the balancer's GET /debug/traces.
type TraceSummary struct {
	ID         string  `json:"id"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"durationMs"`
	Spans      int     `json:"spans"`
	Method     string  `json:"method,omitempty"`
	Path       string  `json:"path,omitempty"`
	Backend    string  `json:"backend,omitempty"`
	Placement  string  `json:"placement,omitempty"`
	Status     int     `json:"status,omitempty"`
	Error      string  `json:"error,omitempty"`
}

func summarizeProxy(t *obs.Trace) TraceSummary {
	s := TraceSummary{
		ID:         t.ID,
		Start:      t.Start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		DurationMs: float64(t.Duration()) / 1e6,
		Spans:      t.SpanCount(),
	}
	if a, ok := t.Root.Attr("method"); ok {
		s.Method = a.Str
	}
	if a, ok := t.Root.Attr("path"); ok {
		s.Path = a.Str
	}
	if a, ok := t.Root.Attr("backend"); ok {
		s.Backend = a.Str
	}
	if a, ok := t.Root.Attr("placement"); ok {
		s.Placement = a.Str
	}
	if a, ok := t.Root.Attr("status"); ok {
		s.Status = int(a.Int)
	}
	if a, ok := t.Root.Attr("error"); ok {
		s.Error = a.Str
	}
	return s
}

// handleDebugTrace reassembles the fleet-wide trace for one ID: the
// balancer's proxy trace plus every admitted replica's trace with that ID
// (the same fan-out GET /v1/sessions uses for the session list), grafted
// under the forward span whose SpanID the replica recorded as its remote
// parent.
func (l *LB) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tid := r.PathValue("tid")
	out := FleetTrace{ID: tid}
	// All local proxy trees sharing the ID, newest first: a client that
	// propagates one traceparent across a submit and its polls records one
	// proxied-request tree per call, all under the same trace ID. Graft
	// into deep copies — the ring's traces are shared and read-only.
	var locals []*obs.Trace
	for _, t := range l.localTraces(tid) {
		if ct := copyTrace(t); ct != nil {
			locals = append(locals, ct)
		}
	}
	grafted := map[*obs.Trace]bool{}
	for _, b := range l.backends {
		if !b.Admitted() {
			continue
		}
		bt := l.fetchBackendTrace(r, b, tid)
		if bt == nil {
			continue
		}
		bt.Root.SetStr("node", b.Name)
		out.Backends = append(out.Backends, b.Name)
		placed := false
		if bt.ParentSpanID != "" {
			for _, lt := range locals {
				if sp := lt.FindSpanID(bt.ParentSpanID); sp != nil {
					sp.Children = append(sp.Children, bt.Root)
					grafted[lt] = true
					placed = true
					break
				}
			}
		}
		if !placed {
			out.Orphans = append(out.Orphans, bt)
		}
	}
	// The primary tree is the proxied request that owns a replica subtree
	// (the update submit); the siblings — question polls, answers — are
	// summarized in Related.
	for _, lt := range locals {
		if grafted[lt] {
			out.Trace = lt
			break
		}
	}
	if out.Trace == nil && len(locals) > 0 {
		out.Trace = locals[0]
	}
	for _, lt := range locals {
		if lt != out.Trace {
			out.Related = append(out.Related, summarizeProxy(lt))
		}
	}
	if out.Trace == nil {
		// The balancer's copy was evicted (or another LB minted the ID);
		// surface what the fleet still knows rather than a flat 404.
		if len(out.Orphans) == 1 && len(out.Backends) == 1 {
			out.Trace, out.Orphans = out.Orphans[0], nil
			out.Partial = true
		} else if len(out.Orphans) > 0 {
			out.Partial = true
		} else {
			writeError(w, http.StatusNotFound, "no such trace in the fleet (evicted or never recorded)", 0)
			return
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// localTraces returns every retained proxy trace with the given ID, newest
// first, searching both rings. The ID index alone is not enough: several
// proxied requests continuing one propagated trace context share an ID.
func (l *LB) localTraces(tid string) []*obs.Trace {
	if l.traces == nil {
		return nil
	}
	var out []*obs.Trace
	for _, t := range l.traces.List() {
		if t.ID == tid {
			out = append(out, t)
		}
	}
	for _, t := range l.traces.Kept() {
		if t.ID == tid {
			out = append(out, t)
		}
	}
	return out
}

// fetchBackendTrace asks one replica for its trace with the given ID; any
// failure (404 included) is simply "this replica has no spans for it".
func (l *LB) fetchBackendTrace(r *http.Request, b *Backend, tid string) *obs.Trace {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		b.URL.String()+"/debug/traces/"+tid, nil)
	if err != nil {
		return nil
	}
	resp, err := l.proxy.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	t := new(obs.Trace)
	if json.Unmarshal(data, t) != nil || t.Root == nil {
		return nil
	}
	return t
}

// copyTrace deep-copies a trace through its wire form, so grafting replica
// subtrees never mutates the ring's stored copy.
func copyTrace(t *obs.Trace) *obs.Trace {
	data, err := json.Marshal(t)
	if err != nil {
		return nil
	}
	out := new(obs.Trace)
	if json.Unmarshal(data, out) != nil {
		return nil
	}
	return out
}
