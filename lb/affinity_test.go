package lb

import (
	"testing"
	"time"
)

func TestAffinityPinLifecycle(t *testing.T) {
	fleet := testFleet(t, "a:1", "b:1")
	tab := newAffinityTable(time.Hour, time.Hour)
	defer tab.Stop()

	if got := tab.Get("s1"); got != nil {
		t.Fatalf("Get before Put = %v, want nil", got)
	}
	if tab.Misses() != 1 {
		t.Fatalf("Misses = %d, want 1", tab.Misses())
	}

	tab.Put("s1", fleet[0])
	if got := tab.Get("s1"); got != fleet[0] {
		t.Fatalf("Get = %v, want the pinned backend", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}

	tab.Remove("s1")
	if got := tab.Get("s1"); got != nil {
		t.Fatalf("Get after Remove = %v, want nil", got)
	}
}

func TestAffinitySweepEvictsIdlePins(t *testing.T) {
	fleet := testFleet(t, "a:1")
	tab := newAffinityTable(10*time.Millisecond, time.Hour)
	defer tab.Stop()

	tab.Put("old", fleet[0])
	time.Sleep(25 * time.Millisecond)
	tab.Put("fresh", fleet[0])

	if n := tab.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if tab.Get("old") != nil {
		t.Fatal("idle pin survived the sweep")
	}
	if tab.Get("fresh") == nil {
		t.Fatal("fresh pin was evicted")
	}
	if tab.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", tab.Evicted())
	}
}
