package lb

import (
	"fmt"
	"testing"
)

func testFleet(t *testing.T, hosts ...string) []*Backend {
	t.Helper()
	out := make([]*Backend, 0, len(hosts))
	for _, h := range hosts {
		b, err := newBackend("http://"+h, nil)
		if err != nil {
			t.Fatalf("newBackend(%q): %v", h, err)
		}
		out = append(out, b)
	}
	return out
}

func setEjected(b *Backend, v bool) {
	b.mu.Lock()
	b.ejected = v
	b.mu.Unlock()
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// Two rings built from the same fleet must agree on every key: that is
	// what makes the ring a usable stateless fallback across LB restarts.
	f1 := testFleet(t, "10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")
	f2 := testFleet(t, "10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")
	r1, r2 := newRing(f1, 64), newRing(f2, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%d", i)
		b1, b2 := r1.Lookup(key, nil), r2.Lookup(key, nil)
		if b1 == nil || b2 == nil || b1.Name != b2.Name {
			t.Fatalf("key %q: ring disagreement: %v vs %v", key, b1, b2)
		}
	}
}

func TestRingSpread(t *testing.T) {
	fleet := testFleet(t, "a:1", "b:1", "c:1")
	r := newRing(fleet, DefaultVirtualNodes)
	if got, want := r.Points(), 3*DefaultVirtualNodes; got != want {
		t.Fatalf("Points() = %d, want %d", got, want)
	}
	counts := map[string]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		counts[r.Lookup(fmt.Sprintf("k%d", i), nil).Name]++
	}
	for name, c := range counts {
		// fnv64a with 128 vnodes spreads within a few x of fair share; the
		// bound guards against a collapse, not perfect balance.
		if c < n/10 {
			t.Errorf("backend %s got %d/%d keys: spread too skewed", name, c, n)
		}
	}
}

func TestRingEjectionMovesOnlyOwnedKeys(t *testing.T) {
	fleet := testFleet(t, "a:1", "b:1", "c:1")
	r := newRing(fleet, DefaultVirtualNodes)
	admitted := func(b *Backend) bool { return b.Admitted() }

	const n = 2000
	before := make([]string, n)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("k%d", i), admitted).Name
	}

	setEjected(fleet[1], true) // eject "b:1"
	moved := 0
	for i := range before {
		now := r.Lookup(fmt.Sprintf("k%d", i), admitted)
		if now.Name == "b:1" {
			t.Fatalf("key k%d routed to an ejected backend", i)
		}
		if before[i] != "b:1" && now.Name != before[i] {
			t.Fatalf("key k%d moved from %s to %s though its owner stayed up",
				i, before[i], now.Name)
		}
		if before[i] == "b:1" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("ejected backend owned zero keys; test is vacuous")
	}

	// Re-admission restores every key to its original owner exactly.
	setEjected(fleet[1], false)
	for i := range before {
		if now := r.Lookup(fmt.Sprintf("k%d", i), admitted).Name; now != before[i] {
			t.Fatalf("key k%d not restored: %s != %s", i, now, before[i])
		}
	}
}

func TestRingNoneEligible(t *testing.T) {
	fleet := testFleet(t, "a:1", "b:1")
	r := newRing(fleet, 8)
	if b := r.Lookup("x", func(*Backend) bool { return false }); b != nil {
		t.Fatalf("Lookup with nothing eligible = %v, want nil", b)
	}
}
