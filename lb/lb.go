// Package lb is the horizontal scale-out front tier for a clarifyd fleet: a
// session-affinity reverse proxy that lets N replicas serve what one daemon
// served before, while keeping the disambiguation protocol's statefulness
// intact — a parked OPTION 1/2 question can only be answered on the replica
// whose pipeline goroutine is parked on it.
//
// Routing has three layers:
//
//   - Placement: POST /v1/sessions picks a backend by consistent-hashing two
//     random placement keys onto the ring and keeping the less-loaded
//     candidate (power-of-two-choices, load from each backend's /readyz
//     payload: queue depth, then active sessions). Draining and ejected
//     backends receive no new sessions.
//   - Affinity: the session ID in the create response is pinned to the
//     creating backend; every /v1/sessions/{id}/... request follows the pin,
//     so updates, question polls, and answers land on the replica that owns
//     the session. Pins die on DELETE or after an idle TTL.
//   - Fallback: a session ID with no pin (the LB restarted under live
//     traffic) routes by consistent hash of the ID itself — deterministic,
//     and stable across LB replicas sharing the same backend fleet.
//
// A background prober drives the per-backend admitted/ejected state machine
// (see prober.go) so a dead replica is out of rotation within a few probe
// intervals and re-admitted only after consecutive successful probes, and a
// draining replica finishes its in-flight sessions before removal.
//
// Every response carries X-Clarify-Backend (which replica served it — the
// replica whose /debug/traces holds the update's trace) and X-Request-Id
// (generated when the client sent none, forwarded otherwise).
package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/tenant"
)

// Options configures a balancer.
type Options struct {
	// Backends are the replica root URLs (at least one).
	Backends []string
	// VirtualNodes is the per-backend point count on the hash ring
	// (default DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval / ProbeTimeout pace the background health prober
	// (defaults DefaultProbeInterval / DefaultProbeTimeout).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter is the consecutive-probe-failure threshold that ejects a
	// backend; ReadmitAfter the consecutive-success threshold that restores
	// it (defaults DefaultEjectAfter / DefaultReadmitAfter).
	EjectAfter   int
	ReadmitAfter int
	// AffinityTTL evicts session pins idle this long (default 30m; set it
	// to at least the replicas' -idle-ttl so the LB never forgets a session
	// before its replica does).
	AffinityTTL time.Duration
	// LatencyBucketsMs overrides the per-backend latency histogram bounds
	// (default: the server package's table).
	LatencyBucketsMs []float64
	// Logger receives routing and state-transition lines; nil disables.
	Logger *log.Logger
	// AccessLog receives one structured line per proxied request (trace ID,
	// backend, placement kind, status, duration); nil disables access
	// logging.
	AccessLog *slog.Logger
	// TraceBufferSize bounds the balancer's /debug/traces ring of per-request
	// proxy traces (default DefaultTraceBufferSize; negative disables
	// tracing entirely).
	TraceBufferSize int
	// TraceKeepSize bounds the tail-retention ring holding evicted error
	// traces (default DefaultTraceKeepSize; negative disables retention).
	TraceKeepSize int
	// Exemplars attaches trace-ID exemplars to the per-backend latency
	// histograms in the OpenMetrics exposition.
	Exemplars bool
	// Transport overrides the proxy and probe transport (tests inject
	// failures); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// LB is the balancer. It implements http.Handler; wire it into an
// http.Server and call Close to stop the prober and affinity janitor.
type LB struct {
	opts     Options
	backends []*Backend
	ring     *ring
	affinity *affinityTable
	prober   *prober
	mux      *http.ServeMux
	// proxy has no overall timeout: synchronous submits legitimately run
	// for minutes; the client's request context bounds each proxied call.
	proxy *http.Client

	// traces is the per-request proxy trace ring behind GET /debug/traces;
	// nil when tracing is disabled.
	traces *obs.Ring

	// tenants attributes forwarded traffic and relayed 429 sheds to the
	// X-Clarify-Tenant principal, so noisy-neighbor pressure is visible at
	// the balancer without scraping every replica.
	tenants *tenantTable

	proxied     atomic.Int64 // requests forwarded to a backend
	noBackend   atomic.Int64 // requests refused for want of an eligible backend
	restored    atomic.Int64 // sessions re-placed via PUT .../restore
	gonePins    atomic.Int64 // affinity pins cleared by a backend's 410 Gone
	tracesTotal atomic.Int64 // proxy traces recorded
	started     time.Time
}

// New builds a balancer and starts its prober and affinity janitor.
func New(opts Options) (*LB, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("lb: at least one backend is required")
	}
	buckets := opts.LatencyBucketsMs
	backends := make([]*Backend, 0, len(opts.Backends))
	seen := map[string]bool{}
	for _, raw := range opts.Backends {
		b, err := newBackend(raw, buckets)
		if err != nil {
			return nil, err
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("lb: duplicate backend %s", b.Name)
		}
		seen[b.Name] = true
		backends = append(backends, b)
	}
	l := &LB{
		opts:     opts,
		backends: backends,
		tenants:  newTenantTable(0),
		ring:     newRing(backends, opts.VirtualNodes),
		affinity: newAffinityTable(opts.AffinityTTL, 0),
		mux:      http.NewServeMux(),
		proxy:    &http.Client{Transport: opts.Transport},
		started:  time.Now(),
	}
	if size := opts.TraceBufferSize; size >= 0 {
		if size == 0 {
			size = DefaultTraceBufferSize
		}
		l.traces = obs.NewRing(size)
		if keep := opts.TraceKeepSize; keep >= 0 {
			if keep == 0 {
				keep = DefaultTraceKeepSize
			}
			l.traces.SetRetention(keep, keepProxyTrace)
		}
	}
	l.mux.HandleFunc("GET /healthz", l.handleHealthz)
	l.mux.HandleFunc("GET /metrics", l.handleMetrics)
	l.mux.HandleFunc("GET /debug/traces", l.handleDebugTraces)
	l.mux.HandleFunc("GET /debug/ambiguity", l.handleDebugAmbiguity)
	l.mux.HandleFunc("GET /debug/traces/{tid}", l.handleDebugTrace)
	l.mux.HandleFunc("POST /v1/sessions", l.handleCreate)
	l.mux.HandleFunc("GET /v1/sessions", l.handleList)
	l.mux.HandleFunc("/v1/sessions/{id}", l.handleSession)
	l.mux.HandleFunc("/v1/sessions/{id}/{rest...}", l.handleSession)
	l.mux.HandleFunc("PUT /v1/sessions/{id}/restore", l.handleRestore)
	l.prober = newProber(l, opts)
	go l.prober.run()
	return l, nil
}

// ServeHTTP implements http.Handler.
func (l *LB) ServeHTTP(w http.ResponseWriter, r *http.Request) { l.mux.ServeHTTP(w, r) }

// Close stops the prober and the affinity janitor. In-flight proxied
// requests are unaffected (the owning http.Server drains them).
func (l *LB) Close() {
	l.prober.stop()
	l.affinity.Stop()
}

// Backends snapshots every backend's state and counters, admitted first,
// then by name, for /metrics and tests.
func (l *LB) Backends() []BackendSnapshot {
	out := make([]BackendSnapshot, 0, len(l.backends))
	for _, b := range l.backends {
		out = append(out, b.snapshot())
	}
	return out
}

// --- placement ---

// pickCreateBackend places a new session: two independent ring lookups on
// random placement keys, keeping the less-loaded candidate. With one
// eligible backend both lookups converge on it; with zero it returns nil.
func (l *LB) pickCreateBackend() *Backend {
	return l.pickCreateBackendExcluding(nil)
}

// pickCreateBackendExcluding is pickCreateBackend minus the backends a
// placement attempt has already struck out on (drained or unreachable
// faster than the prober could notice).
func (l *LB) pickCreateBackendExcluding(skip map[*Backend]bool) *Backend {
	eligible := func(b *Backend) bool { return b.AcceptsSessions() && !skip[b] }
	c1 := l.ring.Lookup(placementKey(), eligible)
	if c1 == nil {
		return nil
	}
	c2 := l.ring.Lookup(placementKey(), eligible)
	if c2 != nil && c2 != c1 && c2.lessLoaded(c1) {
		return c2
	}
	return c1
}

// placementKey is a fresh random key; math/rand/v2's top-level functions are
// goroutine-safe.
func placementKey() string {
	return strconv.FormatUint(rand.Uint64(), 36)
}

// routeSession resolves the backend owning a session: affinity pin first,
// consistent hash of the ID as the stateless fallback. The returned kind
// ("pin" or "ring") names the layer that decided, for traces and access logs.
func (l *LB) routeSession(id string) (*Backend, string) {
	if b := l.affinity.Get(id); b != nil {
		return b, "pin"
	}
	return l.ring.Lookup(id, func(b *Backend) bool { return b.Admitted() }), "ring"
}

// accepting counts backends currently accepting new sessions — the
// probe-derived state a placement decision consults.
func (l *LB) accepting() int {
	n := 0
	for _, b := range l.backends {
		if b.AcceptsSessions() {
			n++
		}
	}
	return n
}

// --- handlers ---

// placeSession forwards a session-placement request (create or restore),
// failing over across backends: a 503 — a replica mid-drain the prober has
// not caught yet — or a transport error strikes that backend from this
// attempt and retries the next-best placement, instead of bouncing a
// transient to the client. The request body is buffered once so it can be
// replayed per attempt. On success the chosen backend is returned; when no
// backend accepts, placeSession writes the error itself and returns nil.
func (l *LB) placeSession(pt *proxyTrace, w http.ResponseWriter, r *http.Request) (*http.Response, []byte, *Backend) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		pt.fail(http.StatusBadRequest, "read request")
		writeError(w, http.StatusBadRequest, "lb: read request: "+trimReason(err.Error()), 0)
		return nil, nil, nil
	}
	var skip map[*Backend]bool
	for attempt := 0; ; attempt++ {
		sp := pt.span("place")
		b := l.pickCreateBackendExcluding(skip)
		if b == nil {
			sp.SetStr("kind", "none")
			sp.End()
			break
		}
		kind := "p2c"
		if attempt > 0 {
			kind = "failover"
		}
		sp.SetStr("kind", kind)
		sp.SetStr("backend", b.Name)
		sp.SetInt("accepting", int64(l.accepting()))
		sp.End()
		pt.placement, pt.backend = kind, b.Name
		resp, body, err := l.forwardTo(pt, b, r, bytes.NewReader(payload))
		if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
			pt.status = resp.StatusCode
			return resp, body, b
		}
		if skip == nil {
			skip = make(map[*Backend]bool)
		}
		skip[b] = true
	}
	l.noBackend.Add(1)
	pt.fail(http.StatusServiceUnavailable, "no backend accepting sessions")
	writeError(w, http.StatusServiceUnavailable, "no backend accepting sessions (all ejected or draining)", 1)
	return nil, nil, nil
}

func (l *LB) handleCreate(w http.ResponseWriter, r *http.Request) {
	pt := l.beginProxy(r)
	defer l.endProxy(pt, r)
	// The create response must be inspected for the session ID, so this
	// path buffers the (bounded) body instead of streaming it.
	resp, body, b := l.placeSession(pt, w, r)
	if b == nil {
		return // placeSession already answered
	}
	if resp.StatusCode == http.StatusCreated {
		var created server.CreateSessionResponse
		if json.Unmarshal(body, &created) == nil && created.ID != "" {
			l.affinity.Put(created.ID, b)
			b.recordCreate()
		}
	}
	writeProxied(w, resp, body, b, r)
}

func (l *LB) handleSession(w http.ResponseWriter, r *http.Request) {
	pt := l.beginProxy(r)
	defer l.endProxy(pt, r)
	id := r.PathValue("id")
	sp := pt.span("route")
	b, kind := l.routeSession(id)
	if b == nil {
		sp.SetStr("kind", "none")
		sp.End()
		l.noBackend.Add(1)
		pt.fail(http.StatusServiceUnavailable, "no backend for session")
		writeError(w, http.StatusServiceUnavailable, "no backend available for session "+id, 1)
		return
	}
	sp.SetStr("kind", kind)
	sp.SetStr("backend", b.Name)
	sp.SetBool("admitted", b.Admitted())
	sp.End()
	pt.placement, pt.backend = kind, b.Name
	if !b.Admitted() {
		// The pinned replica is inside an ejection window. The session may
		// yet survive (a drain, a network blip): tell the client to retry
		// rather than silently routing to a replica that never saw it.
		l.noBackend.Add(1)
		pt.fail(http.StatusServiceUnavailable, "pinned backend ejected")
		w.Header().Set(backendHeader, b.Name)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("backend %s holding session %s is ejected; retry", b.Name, id), 1)
		return
	}
	resp, body, err := l.forward(pt, b, w, r)
	if err != nil {
		return
	}
	pt.status = resp.StatusCode
	if r.Method == http.MethodDelete && resp.StatusCode < 300 {
		l.affinity.Remove(id)
	}
	if resp.StatusCode == http.StatusGone {
		// The replica has buried the session (TTL eviction, or a handoff this
		// LB never heard about). The pin is provably stale — clear it so a
		// restored session's next request routes by ring, not to the grave.
		if l.affinity.Get(id) != nil {
			l.affinity.Remove(id)
			l.gonePins.Add(1)
		}
	}
	writeProxied(w, resp, body, b, r)
}

// handleRestore places a rehydrated session: a draining replica (or an
// operator re-seeding from a snapshot file) PUTs the session's snapshot
// through the balancer, which picks a backend exactly like a create and
// pins the session there on success — so the client's next poll follows
// the pin to the replica now holding its parked question.
func (l *LB) handleRestore(w http.ResponseWriter, r *http.Request) {
	pt := l.beginProxy(r)
	defer l.endProxy(pt, r)
	id := r.PathValue("id")
	resp, body, b := l.placeSession(pt, w, r)
	if b == nil {
		return // placeSession already answered
	}
	if resp.StatusCode < 300 {
		l.affinity.Put(id, b)
		b.recordCreate()
		l.restored.Add(1)
	}
	writeProxied(w, resp, body, b, r)
}

// handleList fans the session listing out to every admitted backend and
// merges the results — the fleet-wide view of GET /v1/sessions.
func (l *LB) handleList(w http.ResponseWriter, r *http.Request) {
	merged := make([]server.SessionInfo, 0, 16)
	for _, b := range l.backends {
		if !b.Admitted() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL.String()+"/v1/sessions", nil)
		if err != nil {
			continue
		}
		start := time.Now()
		resp, err := l.proxy.Do(req)
		if err != nil {
			b.recordRequest(0, time.Since(start), true)
			continue
		}
		var part []server.SessionInfo
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		b.recordRequest(resp.StatusCode, time.Since(start), false)
		if resp.StatusCode == http.StatusOK && json.Unmarshal(data, &part) == nil {
			merged = append(merged, part...)
		}
	}
	l.proxied.Add(1)
	writeJSON(w, http.StatusOK, merged)
}

// handleHealthz reports the balancer's own liveness: healthy while at least
// one backend is admitted.
func (l *LB) handleHealthz(w http.ResponseWriter, r *http.Request) {
	admitted, accepting := 0, 0
	for _, b := range l.backends {
		if b.Admitted() {
			admitted++
		}
		if b.AcceptsSessions() {
			accepting++
		}
	}
	status := http.StatusOK
	state := "ok"
	if admitted == 0 {
		status = http.StatusServiceUnavailable
		state = "no-backends"
	}
	writeJSON(w, status, map[string]interface{}{
		"status":             state,
		"backends":           len(l.backends),
		"admitted":           admitted,
		"accepting_sessions": accepting,
	})
}

func (l *LB) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := l.snapshot()
	switch r.URL.Query().Get("format") {
	case "prometheus":
		p := &promtext.Writer{W: w}
		w.Header().Set("Content-Type", p.ContentType())
		writePrometheus(p, snap)
		return
	case "openmetrics":
		p := &promtext.Writer{W: w, OpenMetrics: true}
		w.Header().Set("Content-Type", p.ContentType())
		writePrometheus(p, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// --- proxy mechanics ---

const (
	backendHeader   = "X-Clarify-Backend"
	requestIDHeader = "X-Request-Id"
)

// hopHeaders are the hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// forward proxies one request to b and returns the backend's response with
// its (bounded) body read. On a transport failure it answers 502 itself and
// returns an error. The caller writes the response via writeProxied.
func (l *LB) forward(pt *proxyTrace, b *Backend, w http.ResponseWriter, r *http.Request) (*http.Response, []byte, error) {
	resp, body, err := l.forwardTo(pt, b, r, io.LimitReader(r.Body, 32<<20))
	if err != nil {
		pt.fail(http.StatusBadGateway, "backend unreachable")
		w.Header().Set(backendHeader, b.Name)
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("backend %s unreachable: %s", b.Name, trimReason(err.Error())), 1)
	}
	return resp, body, err
}

// forwardTo proxies one request to b with the given body, returning the
// backend's response with its (bounded) body read. Unlike forward it never
// writes to the client — callers that can fail the request over to another
// backend (session placement) inspect the error themselves.
//
// Each attempt gets its own forward span, and that span's ID is what the
// injected traceparent carries — the replica records it as its remote
// parent, which is the joint the fleet trace view stitches on.
func (l *LB) forwardTo(pt *proxyTrace, b *Backend, r *http.Request, bodyIn io.Reader) (*http.Response, []byte, error) {
	outURL := *b.URL
	outURL.Path = r.URL.Path
	outURL.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, outURL.String(), bodyIn)
	if err != nil {
		return nil, nil, fmt.Errorf("lb: build request: %w", err)
	}
	req.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		req.Header.Del(h)
	}
	req.Header.Set(requestIDHeader, pt.reqID)
	sp := pt.span("forward")
	sp.SetStr("backend", b.Name)
	if tp := pt.t.TraceParentFor(sp); tp.Valid() {
		req.Header.Set(obs.TraceParentHeader, tp.String())
	}
	if prior := r.RemoteAddr; prior != "" {
		req.Header.Set("X-Forwarded-For", prior)
	}

	start := time.Now()
	resp, err := l.proxy.Do(req)
	if err != nil {
		sp.SetStr("error", trimReason(err.Error()))
		sp.End()
		l.recordProxied(pt, b, 0, time.Since(start), true)
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		sp.SetStr("error", trimReason(err.Error()))
		sp.End()
		l.recordProxied(pt, b, 0, time.Since(start), true)
		return nil, nil, fmt.Errorf("read response: %w", err)
	}
	sp.SetInt("status", int64(resp.StatusCode))
	sp.End()
	l.recordProxied(pt, b, resp.StatusCode, time.Since(start), false)
	l.tenants.record(r.Header.Get(tenant.HeaderTenant), resp.StatusCode == http.StatusTooManyRequests)
	// The request ID travels back on the response so the client can quote
	// it; stash it on the response for writeProxied.
	resp.Header.Set(requestIDHeader, pt.reqID)
	return resp, body, nil
}

// recordProxied folds one forward attempt into the backend's counters,
// attaching a trace-ID exemplar when exemplars are enabled and this request
// is traced.
func (l *LB) recordProxied(pt *proxyTrace, b *Backend, status int, d time.Duration, transportErr bool) {
	traceID := ""
	if l.opts.Exemplars && pt.t != nil {
		traceID = pt.t.ID
	}
	b.recordRequestTrace(status, d, transportErr, traceID)
	l.proxied.Add(1)
}

// writeProxied relays the backend's response, stamping the backend identity
// so clients and tests can correlate responses (and /debug/traces lookups)
// to the replica that served them.
func writeProxied(w http.ResponseWriter, resp *http.Response, body []byte, b *Backend, r *http.Request) {
	for k, vv := range resp.Header {
		if isHopHeader(k) {
			continue
		}
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(backendHeader, b.Name)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func isHopHeader(k string) bool {
	for _, h := range hopHeaders {
		if http.CanonicalHeaderKey(h) == http.CanonicalHeaderKey(k) {
			return true
		}
	}
	return false
}

func sinceSeconds(t time.Time) float64 { return time.Since(t).Seconds() }

// newRequestID mints a compact random request identifier.
func newRequestID() string {
	return "r" + strconv.FormatUint(rand.Uint64(), 36)
}

// --- response helpers (same wire shapes as the server package) ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, server.ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}
