package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/clarifynet/clarify/server"
	"github.com/clarifynet/clarify/tenant"
)

// TestLBRecordsShedsPerBackendAndTenant drives a rate-limited tenant through
// the balancer until the replica sheds with 429, then asserts the shed is
// visible at the balancer on every axis: relayed to the client with
// Retry-After, counted on the backend's Sheds counter, attributed to the
// tenant's row, and exported as clarify_lb_backend_sheds_total /
// clarify_lb_tenant_sheds_total Prometheus series.
func TestLBRecordsShedsPerBackendAndTenant(t *testing.T) {
	reg := tenant.NewRegistry(tenant.RegistryConfig{Profiles: []tenant.Profile{
		// One token, effectively no refill: the second submit must shed.
		{Name: "mallory", Rate: 0.0001, Burst: 1},
	}})
	f := startLBFleetWith(t, 1, fastProbeOpts(), server.Options{Workers: 2, Tenants: reg})
	ctx := context.Background()

	c := f.client(nil)
	c.Tenant = "mallory"
	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	submit := func() *http.Response {
		t.Helper()
		body, _ := json.Marshal(server.SubmitRequest{Intent: exampleIntent, Target: "ISP_OUT", Async: true})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			f.lbSrv.URL+"/v1/sessions/"+sid+"/updates?async=1", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("build submit: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(tenant.HeaderTenant, "mallory")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return resp
	}

	// First submit consumes the only token.
	resp := submit()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit = %d, want accepted", resp.StatusCode)
	}

	// Second submit must be shed by the replica and relayed verbatim.
	resp = submit()
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429: %s", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := resp.Header.Get("X-Clarify-Shed"); got != string(tenant.ReasonRate) {
		t.Errorf("X-Clarify-Shed = %q, want %q", got, tenant.ReasonRate)
	}

	// The balancer counted the shed per backend and per tenant.
	snap := f.lb.snapshot()
	var sheds int64
	for _, b := range snap.Backends {
		sheds += b.Sheds
	}
	if sheds == 0 {
		t.Error("no backend recorded a shed")
	}
	ts, ok := snap.Tenants["mallory"]
	if !ok || ts.Sheds == 0 {
		t.Errorf("tenant counters = %+v, want mallory with sheds > 0", snap.Tenants)
	}
	if ts.Requests < 2 {
		t.Errorf("mallory requests = %d, want >= 2", ts.Requests)
	}

	// The Prometheus exposition carries both series.
	mreq, _ := http.NewRequestWithContext(ctx, http.MethodGet, f.lbSrv.URL+"/metrics?format=prometheus", nil)
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"clarify_lb_backend_sheds_total", `clarify_lb_tenant_sheds_total{tenant="mallory"}`} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Answer the admitted update's questions so it finishes before the
	// harness shuts the replica down.
	waitFor(t, 10*time.Second, "admitted update to finish", func() bool {
		if q, err := c.Question(ctx, sid); err == nil && q != nil {
			c.Answer(ctx, sid, q.Seq, 1)
		}
		si, err := c.Session(ctx, sid)
		return err == nil && !si.Busy
	})
}
