package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clarifynet/clarify/server"
)

// exampleConfig / exampleIntent mirror the server package's §2.1 walkthrough
// fixtures: the intent yields exactly two disambiguation questions against
// the simulated LLM, so every test below exercises parked Q&A through the
// balancer.
const exampleConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const exampleIntent = "Write a route-map stanza that permits routes containing the prefix " +
	"100.0.0.0/16 with mask length less than or equal to 23 and tagged " +
	"with the community 300:3. Their MED value should be set to 55."

// recordingTransport captures the balancer's response headers for every
// request the client sends, so tests can assert which replica served what.
type recordingTransport struct {
	mu   sync.Mutex
	hits []recordedHit
}

type recordedHit struct {
	method, path, backend, requestID string
}

func (rt *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil {
		rt.mu.Lock()
		rt.hits = append(rt.hits, recordedHit{
			method:    req.Method,
			path:      req.URL.Path,
			backend:   resp.Header.Get(backendHeader),
			requestID: resp.Header.Get(requestIDHeader),
		})
		rt.mu.Unlock()
	}
	return resp, err
}

// backendsFor returns the distinct X-Clarify-Backend values seen on requests
// under the session's path.
func (rt *recordingTransport) backendsFor(sid string) map[string]int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := map[string]int{}
	for _, h := range rt.hits {
		if strings.Contains(h.path, "/v1/sessions/"+sid) {
			out[h.backend]++
		}
	}
	return out
}

func (rt *recordingTransport) count(method, pathSuffix, sid string) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, h := range rt.hits {
		if h.method == method && strings.Contains(h.path, sid) && strings.HasSuffix(h.path, pathSuffix) {
			n++
		}
	}
	return n
}

// lbFleet is a balancer fronting n real clarifyd servers under httptest.
type lbFleet struct {
	lb       *LB
	lbSrv    *httptest.Server
	backends map[string]*server.Server // name (host:port) -> daemon
}

func fastProbeOpts() Options {
	return Options{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	}
}

func startLBFleet(t *testing.T, n int, opts Options) *lbFleet {
	t.Helper()
	return startLBFleetWith(t, n, opts, server.Options{Workers: 2})
}

// startLBFleetWith is startLBFleet with explicit replica options (tiny idle
// TTLs, snapshot knobs).
func startLBFleetWith(t *testing.T, n int, opts Options, srvOpts server.Options) *lbFleet {
	t.Helper()
	f := &lbFleet{backends: map[string]*server.Server{}}
	for i := 0; i < n; i++ {
		srv := server.New(srvOpts)
		hs := httptest.NewServer(srv)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Close()
		})
		f.backends[strings.TrimPrefix(hs.URL, "http://")] = srv
		opts.Backends = append(opts.Backends, hs.URL)
	}
	l, err := New(opts)
	if err != nil {
		t.Fatalf("lb.New: %v", err)
	}
	f.lb = l
	f.lbSrv = httptest.NewServer(l)
	t.Cleanup(func() {
		f.lbSrv.Close()
		l.Close()
	})
	return f
}

func (f *lbFleet) client(rt http.RoundTripper) *server.Client {
	hc := &http.Client{Timeout: 30 * time.Second, Transport: rt}
	return &server.Client{BaseURL: f.lbSrv.URL, HTTP: hc, PollInterval: 2 * time.Millisecond}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func (f *lbFleet) snapshotOf(t *testing.T, name string) BackendSnapshot {
	t.Helper()
	for _, s := range f.lb.Backends() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no backend named %s", name)
	return BackendSnapshot{}
}

// TestSessionAffinityEndToEnd is the acceptance check: with two replicas
// behind the balancer, every request of a session — update submit, question
// polls, answers — lands on the replica that created it, asserted via the
// X-Clarify-Backend header on each proxied response.
func TestSessionAffinityEndToEnd(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create session %d: %v", i, err)
		}
		res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q server.Question) (int, error) {
			return 1, nil
		})
		if err != nil {
			t.Fatalf("run update %d: %v", i, err)
		}
		if res.Status != server.StatusDone || res.Result == nil || res.Result.Questions != 2 {
			t.Fatalf("update %d did not complete the walkthrough: %+v", i, res)
		}

		seen := rt.backendsFor(sid)
		if len(seen) != 1 {
			t.Fatalf("session %s was served by %d backends (%v), want exactly 1", sid, len(seen), seen)
		}
		pin := f.lb.affinity.Get(sid)
		if pin == nil {
			t.Fatalf("session %s has no affinity pin", sid)
		}
		for name := range seen {
			if name != pin.Name {
				t.Fatalf("session %s served by %s but pinned to %s", sid, name, pin.Name)
			}
		}
		if rt.count(http.MethodPost, "/answer", sid) < 2 {
			t.Fatalf("session %s: want >=2 proxied answers, got %d",
				sid, rt.count(http.MethodPost, "/answer", sid))
		}
	}
}

// TestCreatePlacementSpreads verifies new sessions land on more than one
// replica: the ring's random placement keys must not collapse onto a single
// backend.
func TestCreatePlacementSpreads(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	c := f.client(nil)
	ctx := context.Background()

	const n = 16
	for i := 0; i < n; i++ {
		if _, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig}); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if got := f.lb.affinity.Len(); got != n {
		t.Fatalf("affinity pins = %d, want %d", got, n)
	}
	var total int64
	for _, s := range f.lb.Backends() {
		if s.CreatesRouted == 0 {
			t.Errorf("backend %s received zero of %d creates: placement collapsed", s.Name, n)
		}
		total += s.CreatesRouted
	}
	if total != n {
		t.Fatalf("creates routed = %d, want %d", total, n)
	}
}

// TestDrainFinishesParkedSessions is the graceful-drain e2e: a replica with
// a parked question enters Shutdown; the balancer sees "draining" on the
// probe, keeps routing the session's Q&A there until the update finishes,
// and places every new session on the survivor.
func TestDrainFinishesParkedSessions(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	pin := f.lb.affinity.Get(sid)
	if pin == nil {
		t.Fatal("no affinity pin after create")
	}
	var other string
	for name := range f.backends {
		if name != pin.Name {
			other = name
		}
	}

	// Park an update on its first disambiguation question.
	up, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit async: %v", err)
	}
	var q *server.Question
	waitFor(t, 5*time.Second, "parked question", func() bool {
		q, err = c.Question(ctx, sid)
		return err == nil && q != nil
	})

	// Drain the replica holding the session while the question is parked.
	drainDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- f.backends[pin.Name].Shutdown(sctx)
	}()
	waitFor(t, 5*time.Second, "probe to observe draining", func() bool {
		s := f.snapshotOf(t, pin.Name)
		return s.Draining && s.State == StateAdmitted
	})

	// New sessions must all land on the survivor.
	for i := 0; i < 4; i++ {
		sid2, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create during drain: %v", err)
		}
		if pin2 := f.lb.affinity.Get(sid2); pin2 == nil || pin2.Name != other {
			t.Fatalf("session created during drain pinned to %v, want survivor %s", pin2, other)
		}
	}

	// The parked Q&A still flows through the balancer to the draining
	// replica; answering both questions completes the update.
	last := -1
	waitFor(t, 10*time.Second, "drained update to finish", func() bool {
		if u, err := c.Update(ctx, sid, up.ID); err == nil && u.Status == server.StatusDone {
			return true
		}
		if q, err := c.Question(ctx, sid); err == nil && q != nil && q.Seq != last {
			if c.Answer(ctx, sid, q.Seq, 1) == nil {
				last = q.Seq
			}
		}
		return false
	})
	if err := <-drainDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}

	// Every request of the drained session was served by its replica.
	for name, n := range rt.backendsFor(sid) {
		if name != pin.Name {
			t.Fatalf("%d requests of draining session served by %s, want %s", n, name, pin.Name)
		}
	}
}

// TestListMergesAcrossBackends checks GET /v1/sessions through the balancer
// is the fleet-wide union.
func TestListMergesAcrossBackends(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	c := f.client(nil)
	ctx := context.Background()

	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		want[sid] = true
	}
	resp, err := http.Get(f.lbSrv.URL + "/v1/sessions")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp.Body.Close()
	var infos []server.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	got := map[string]bool{}
	for _, si := range infos {
		got[si.ID] = true
	}
	for sid := range want {
		if !got[sid] {
			t.Errorf("session %s missing from merged listing", sid)
		}
	}
}

// TestRequestIDHeaders checks X-Request-Id passthrough and generation on
// proxied responses.
func TestRequestIDHeaders(t *testing.T) {
	f := startLBFleet(t, 1, fastProbeOpts())

	body := func() *bytes.Reader {
		data, _ := json.Marshal(server.CreateSessionRequest{Config: exampleConfig})
		return bytes.NewReader(data)
	}

	req, _ := http.NewRequest(http.MethodPost, f.lbSrv.URL+"/v1/sessions", body())
	req.Header.Set(requestIDHeader, "rid-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "rid-test-42" {
		t.Fatalf("X-Request-Id = %q, want the caller's rid-test-42", got)
	}
	if resp.Header.Get(backendHeader) == "" {
		t.Fatal("proxied response missing X-Clarify-Backend")
	}

	resp2, err := http.Post(f.lbSrv.URL+"/v1/sessions", "application/json", body())
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(requestIDHeader) == "" {
		t.Fatal("balancer did not mint an X-Request-Id")
	}
}

// TestBalancerHealthAndMetrics exercises the balancer's own endpoints.
func TestBalancerHealthAndMetrics(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	c := f.client(nil)
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig}); err != nil {
		t.Fatalf("create: %v", err)
	}

	resp, err := http.Get(f.lbSrv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status   string `json:"status"`
		Backends int    `json:"backends"`
		Admitted int    `json:"admitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Backends != 2 {
		t.Fatalf("healthz = %d %+v, want 200 ok with 2 backends", resp.StatusCode, health)
	}

	resp, err = http.Get(f.lbSrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp.Body.Close()
	if len(snap.Backends) != 2 || snap.Proxied == 0 || snap.RingPoints != 2*DefaultVirtualNodes {
		t.Fatalf("metrics snapshot off: backends=%d proxied=%d ringPoints=%d",
			len(snap.Backends), snap.Proxied, snap.RingPoints)
	}

	resp, err = http.Get(f.lbSrv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("prometheus metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, series := range []string{
		"clarify_lb_proxied_total",
		"clarify_lb_backend_up{backend=",
		"clarify_lb_backend_request_duration_ms_bucket",
		"clarify_lb_probe_rounds_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("prometheus exposition missing %q", series)
		}
	}
}

// --- stub-backed state machine tests ---

// stubDaemon fakes just enough of clarifyd for prober and routing tests:
// a controllable /readyz and a session-create endpoint.
type stubDaemon struct {
	healthy  atomic.Bool
	draining atomic.Bool
	creates  atomic.Int64
}

func (s *stubDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/readyz":
		h := server.HealthStatus{Status: "ready"}
		code := http.StatusOK
		switch {
		case s.draining.Load():
			h.Status, h.Draining, code = "draining", true, http.StatusServiceUnavailable
		case !s.healthy.Load():
			h.Status, code = "unready", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(h)
	case r.URL.Path == "/v1/sessions" && r.Method == http.MethodPost:
		n := s.creates.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(server.CreateSessionResponse{ID: fmt.Sprintf("stub-%p-%d", s, n)})
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}
}

func startStubFleet(t *testing.T, n int) (*LB, *httptest.Server, []*stubDaemon, []string) {
	t.Helper()
	opts := fastProbeOpts()
	var stubs []*stubDaemon
	var names []string
	for i := 0; i < n; i++ {
		sd := &stubDaemon{}
		sd.healthy.Store(true)
		hs := httptest.NewServer(sd)
		t.Cleanup(hs.Close)
		stubs = append(stubs, sd)
		names = append(names, strings.TrimPrefix(hs.URL, "http://"))
		opts.Backends = append(opts.Backends, hs.URL)
	}
	l, err := New(opts)
	if err != nil {
		t.Fatalf("lb.New: %v", err)
	}
	ls := httptest.NewServer(l)
	t.Cleanup(func() {
		ls.Close()
		l.Close()
	})
	return l, ls, stubs, names
}

func createVia(t *testing.T, lbURL string) (sid, backend string) {
	t.Helper()
	resp, err := http.Post(lbURL+"/v1/sessions", "application/json",
		strings.NewReader(`{"config":"x"}`))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer resp.Body.Close()
	var created server.CreateSessionResponse
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatalf("decode create: %v", err)
	}
	return created.ID, resp.Header.Get(backendHeader)
}

// TestEjectionAndReadmission drives the full probe state machine: a backend
// failing EjectAfter consecutive probes leaves the rotation (creates flow to
// the survivor), then ReadmitAfter consecutive successes restore it.
func TestEjectionAndReadmission(t *testing.T) {
	l, ls, stubs, names := startStubFleet(t, 2)

	waitFor(t, 5*time.Second, "first probe round", func() bool {
		return l.prober.probes.Load() >= 1
	})

	stubs[1].healthy.Store(false)
	waitFor(t, 5*time.Second, "ejection of "+names[1], func() bool {
		for _, s := range l.Backends() {
			if s.Name == names[1] {
				return s.State == StateEjected
			}
		}
		return false
	})

	for i := 0; i < 6; i++ {
		_, backend := createVia(t, ls.URL)
		if backend != names[0] {
			t.Fatalf("create %d placed on %s; only %s is admitted", i, backend, names[0])
		}
	}

	stubs[1].healthy.Store(true)
	waitFor(t, 5*time.Second, "re-admission of "+names[1], func() bool {
		for _, s := range l.Backends() {
			if s.Name == names[1] {
				return s.State == StateAdmitted
			}
		}
		return false
	})
	for _, s := range l.Backends() {
		if s.Name == names[1] {
			if s.Ejections != 1 || s.Readmissions != 1 {
				t.Fatalf("backend %s: ejections=%d readmissions=%d, want 1 and 1",
					s.Name, s.Ejections, s.Readmissions)
			}
		}
	}
}

// TestPinnedBackendEjectedReturns503 checks a session whose replica is inside
// an ejection window gets a retryable 503 naming the replica — never a
// silent reroute to a replica that has no idea the session exists.
func TestPinnedBackendEjectedReturns503(t *testing.T) {
	l, ls, stubs, names := startStubFleet(t, 2)

	sid, backend := createVia(t, ls.URL)
	var pinned *stubDaemon
	for i, name := range names {
		if name == backend {
			pinned = stubs[i]
		}
	}
	if pinned == nil {
		t.Fatalf("create served by unknown backend %q", backend)
	}

	pinned.healthy.Store(false)
	waitFor(t, 5*time.Second, "ejection of the pinned backend", func() bool {
		b := l.affinity.Get(sid)
		return b != nil && !b.Admitted()
	})

	resp, err := http.Get(ls.URL + "/v1/sessions/" + sid)
	if err != nil {
		t.Fatalf("get session: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while the pinned backend is ejected", resp.StatusCode)
	}
	if got := resp.Header.Get(backendHeader); got != backend {
		t.Fatalf("X-Clarify-Backend = %q, want the ejected %q", got, backend)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for an ejected pin must carry Retry-After")
	}
}

// TestNoBackendsLeft checks the balancer's 503 behavior once every backend
// is ejected: healthz goes unhealthy and creates are refused.
func TestNoBackendsLeft(t *testing.T) {
	l, ls, stubs, _ := startStubFleet(t, 2)
	for _, sd := range stubs {
		sd.healthy.Store(false)
	}
	waitFor(t, 5*time.Second, "everything ejected", func() bool {
		for _, s := range l.Backends() {
			if s.State != StateEjected {
				return false
			}
		}
		return true
	})

	resp, err := http.Get(ls.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with no admitted backends, want 503", resp.StatusCode)
	}

	resp, err = http.Post(ls.URL+"/v1/sessions", "application/json", strings.NewReader(`{"config":"x"}`))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create = %d with no admitted backends, want 503", resp.StatusCode)
	}
}

// TestDrainingBackendGetsNoCreates checks the drain half of the probe
// classification without a real daemon: a 503 "draining" readyz is a probe
// success that only removes the backend from placement.
func TestDrainingBackendGetsNoCreates(t *testing.T) {
	l, ls, stubs, names := startStubFleet(t, 2)
	stubs[1].draining.Store(true)
	waitFor(t, 5*time.Second, "probe to observe draining", func() bool {
		for _, s := range l.Backends() {
			if s.Name == names[1] {
				return s.Draining && s.State == StateAdmitted
			}
		}
		return false
	})
	for i := 0; i < 6; i++ {
		if _, backend := createVia(t, ls.URL); backend != names[0] {
			t.Fatalf("create %d placed on draining %s", i, backend)
		}
	}
}

// TestRestoreRePinsAffinity is the handoff e2e through the balancer: a
// replica drains with a parked question, snapshots the session, and the
// snapshot is PUT back through the LB — which places it on the survivor and
// pins the session there, so the client's next poll finds the same question
// on the new replica.
func TestRestoreRePinsAffinity(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	pin := f.lb.affinity.Get(sid)
	if pin == nil {
		t.Fatal("no affinity pin after create")
	}
	owner := f.backends[pin.Name]
	var survivor string
	for name := range f.backends {
		if name != pin.Name {
			survivor = name
		}
	}

	up, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit async: %v", err)
	}
	var parked *server.Question
	waitFor(t, 5*time.Second, "parked question", func() bool {
		parked, err = c.Question(ctx, sid)
		return err == nil && parked != nil
	})

	// Handoff time on the owner: drain to quiescence and capture the session.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := owner.DrainForHandoff(dctx); err != nil {
		t.Fatalf("DrainForHandoff: %v", err)
	}
	snaps := owner.SnapshotSessions(pin.Name)
	if len(snaps) != 1 || snaps[0].ID != sid || snaps[0].Pending == nil {
		t.Fatalf("snapshot = %+v, want the one parked session", snaps)
	}
	// The probe must see the owner draining before the restore, or the LB
	// could place the session right back on it.
	waitFor(t, 5*time.Second, "probe to observe draining", func() bool {
		return f.snapshotOf(t, pin.Name).Draining
	})

	if _, err := c.RestoreSession(ctx, snaps[0]); err != nil {
		t.Fatalf("restore through the balancer: %v", err)
	}
	pin2 := f.lb.affinity.Get(sid)
	if pin2 == nil || pin2.Name != survivor {
		t.Fatalf("post-restore pin = %v, want survivor %s", pin2, survivor)
	}
	if got := f.lb.restored.Load(); got != 1 {
		t.Fatalf("restored counter = %d, want 1", got)
	}

	// The client's next poll, through the balancer, must find the same
	// question on the survivor — and answering there finishes the update.
	var q2 *server.Question
	waitFor(t, 5*time.Second, "re-parked question on the survivor", func() bool {
		q2, err = c.Question(ctx, sid)
		return err == nil && q2 != nil
	})
	if q2.Seq != parked.Seq || q2.Text != parked.Text {
		t.Fatalf("restored question = seq %d %q, want seq %d %q", q2.Seq, q2.Text, parked.Seq, parked.Text)
	}
	res, err := c.PollUpdate(ctx, sid, up.ID, func(server.Question) (int, error) { return 1, nil })
	if err != nil || res.Status != server.StatusDone {
		t.Fatalf("restored update = %+v, %v, want done", res, err)
	}
	for name := range rt.backendsFor(sid) {
		if name != pin.Name && name != survivor {
			t.Fatalf("session touched unexpected backend %s", name)
		}
	}

	// Unpark the owner's copy so its shutdown in cleanup is prompt.
	oc := &server.Client{BaseURL: "http://" + pin.Name, PollInterval: 2 * time.Millisecond}
	if _, err := oc.PollUpdate(ctx, sid, up.ID, func(server.Question) (int, error) { return 1, nil }); err != nil {
		t.Fatalf("finish owner's parked update: %v", err)
	}
}

// TestGoneClearsAffinityPin: a backend answering 410 for a session proves
// the pin stale — the balancer must drop it (and count the drop), so a
// later restore can repin cleanly instead of routing to the grave.
func TestGoneClearsAffinityPin(t *testing.T) {
	f := startLBFleetWith(t, 1, fastProbeOpts(), server.Options{
		Workers:       2,
		IdleTTL:       40 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	c := f.client(nil)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	if f.lb.affinity.Get(sid) == nil {
		t.Fatal("no affinity pin after create")
	}

	// The janitor evicts the idle session; the proxied poll sees 410 Gone
	// and the pin dies with it. Every GET touches the session's idle clock,
	// so the probe must pause longer than the TTL between polls or it keeps
	// the session alive forever.
	cleared := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		time.Sleep(75 * time.Millisecond)
		_, err := c.Session(ctx, sid)
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGone && f.lb.affinity.Get(sid) == nil {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("timed out waiting for 410 Gone to clear the pin")
	}
	if got := f.lb.gonePins.Load(); got != 1 {
		t.Fatalf("gonePins counter = %d, want 1", got)
	}
}

// TestPlacementFailsOverDrainingBackend: a create landing on a replica that
// started draining after the last probe round must not bounce the 503 to
// the client — placement strikes the drained replica and retries the
// next-best backend. With slow probes the balancer's admission state never
// learns about the drain, so every create exercises the failover path.
func TestPlacementFailsOverDrainingBackend(t *testing.T) {
	f := startLBFleetWith(t, 2, Options{
		ProbeInterval: time.Hour, // prober never observes the drain
		ProbeTimeout:  500 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	}, server.Options{Workers: 2})
	c := f.client(nil)
	ctx := context.Background()

	var drained *server.Server
	for _, srv := range f.backends {
		drained = srv
		break
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := drained.DrainForHandoff(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Two-choice placement would route roughly half of these to the
	// draining replica; every one must land on the survivor instead.
	for i := 0; i < 10; i++ {
		sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create %d through draining fleet: %v", i, err)
		}
		if f.lb.affinity.Get(sid) == nil {
			t.Fatalf("create %d: no pin", i)
		}
	}
}
