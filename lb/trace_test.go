package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/server"
)

// syncBuffer makes a bytes.Buffer safe for the access-log handler, which
// writes from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// requestIDOf returns the X-Request-Id echoed on the first recorded hit
// matching method and path suffix.
func (rt *recordingTransport) requestIDOf(method, pathSuffix string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, h := range rt.hits {
		if h.method == method && strings.HasSuffix(h.path, pathSuffix) {
			return h.requestID
		}
	}
	return ""
}

// findSpan walks a span tree for the first span with the given name.
func findSpan(root *obs.Span, name string) *obs.Span {
	if root == nil {
		return nil
	}
	if root.Name == name {
		return root
	}
	for _, c := range root.Children {
		if sp := findSpan(c, name); sp != nil {
			return sp
		}
	}
	return nil
}

// TestFleetTraceMergedView is the distributed-tracing acceptance test: two
// replicas behind the balancer run the §2.1 walkthrough, and the single
// trace ID handed to the client (as X-Request-Id) resolves at the balancer's
// /debug/traces/{id} into one stitched tree — the lb-proxy root, its forward
// span, and the replica's update subtree grafted beneath it.
func TestFleetTraceMergedView(t *testing.T) {
	logBuf := &syncBuffer{}
	opts := fastProbeOpts()
	opts.Exemplars = true
	opts.AccessLog = slog.New(slog.NewJSONHandler(logBuf, nil))
	f := startLBFleet(t, 2, opts)
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != server.StatusDone || res.Result == nil || res.Result.Questions != 2 {
		t.Fatalf("walkthrough did not finish with 2 questions: %+v", res)
	}

	// The client sent no X-Request-Id, so the balancer minted one — the
	// submit's proxy trace ID. The replica adopted the same ID for the
	// pipeline trace via the propagated traceparent, so the finished
	// update reports it too: one identifier end to end.
	tid := rt.requestIDOf(http.MethodPost, "/updates")
	if len(tid) != 32 {
		t.Fatalf("minted X-Request-Id = %q, want a 32-hex trace ID", tid)
	}
	if res.TraceID != tid {
		t.Fatalf("update trace ID %s != proxied request ID %s", res.TraceID, tid)
	}

	resp, err := http.Get(f.lbSrv.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /debug/traces/%s = %d: %s", tid, resp.StatusCode, body)
	}
	var ft FleetTrace
	if err := json.NewDecoder(resp.Body).Decode(&ft); err != nil {
		t.Fatal(err)
	}
	if ft.Partial || ft.Trace == nil || ft.Trace.Root == nil {
		t.Fatalf("fleet trace incomplete: %+v", ft)
	}
	if ft.Trace.Root.Name != "lb-proxy" {
		t.Fatalf("fleet trace root = %q, want lb-proxy", ft.Trace.Root.Name)
	}
	if len(ft.Backends) != 1 {
		t.Fatalf("contributing backends = %v, want exactly the serving replica", ft.Backends)
	}
	if len(ft.Orphans) != 0 {
		t.Fatalf("orphans = %d, want none (replica parent span must resolve)", len(ft.Orphans))
	}
	fwd := findSpan(ft.Trace.Root, "forward")
	if fwd == nil {
		t.Fatalf("no forward span in fleet trace: %+v", ft.Trace.Root)
	}
	upd := findSpan(fwd, "update")
	if upd == nil {
		t.Fatal("replica update subtree not grafted under the forward span")
	}
	if a, ok := upd.Attr("node"); !ok || a.Str != ft.Backends[0] {
		t.Errorf("grafted subtree node attr = %+v, want %s", upd.Attrs, ft.Backends[0])
	}
	// The replica's own pipeline children rode along with the graft.
	if findSpan(upd, "synthesize") == nil && findSpan(upd, "classify") == nil {
		t.Errorf("grafted update span has no pipeline children: %+v", upd)
	}

	// Access log: the submit line carries the same correlation fields.
	var logged map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		if p, _ := rec["path"].(string); strings.HasSuffix(p, "/updates") {
			logged = rec
			break
		}
	}
	if logged == nil {
		t.Fatalf("no access-log line for the update submit:\n%s", logBuf.String())
	}
	if logged["traceId"] != tid || logged["requestId"] != tid {
		t.Errorf("access log ids = traceId %v requestId %v, want %s", logged["traceId"], logged["requestId"], tid)
	}
	if b, _ := logged["backend"].(string); b != ft.Backends[0] {
		t.Errorf("access log backend = %v, want %s", logged["backend"], ft.Backends[0])
	}
	switch logged["placement"] {
	case "pin", "ring", "p2c", "failover":
	default:
		t.Errorf("access log placement = %v, want a placement kind", logged["placement"])
	}

	// The balancer's OpenMetrics exposition validates and carries a
	// trace-ID exemplar on the per-backend latency histogram.
	mresp, err := http.Get(f.lbSrv.URL + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	om, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := promtext.ValidateOpenMetrics(om); err != nil {
		t.Fatalf("lb openmetrics exposition invalid: %v\n%s", err, om)
	}
	if !strings.Contains(string(om), `# {trace_id="`) {
		t.Fatalf("lb exposition has no exemplars:\n%s", om)
	}
	if !strings.Contains(string(om), "clarify_lb_traces_total") {
		t.Errorf("lb exposition missing trace counter")
	}
}

// TestRestoreCarriesTraceID checks trace continuity across a live handoff: a
// session parked mid-disambiguation is snapshotted on its draining owner and
// restored through the balancer, and the re-executed update keeps the
// original fleet trace ID.
func TestRestoreCarriesTraceID(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	pin := f.lb.affinity.Get(sid)
	if pin == nil {
		t.Fatal("no affinity pin after create")
	}
	owner := f.backends[pin.Name]

	up, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit async: %v", err)
	}
	origTID := rt.requestIDOf(http.MethodPost, "/updates")
	if len(origTID) != 32 {
		t.Fatalf("submit request ID = %q, want a trace ID", origTID)
	}
	waitFor(t, 5*time.Second, "parked question", func() bool {
		q, err := c.Question(ctx, sid)
		return err == nil && q != nil
	})

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := owner.DrainForHandoff(dctx); err != nil {
		t.Fatalf("DrainForHandoff: %v", err)
	}
	snaps := owner.SnapshotSessions(pin.Name)
	if len(snaps) != 1 || snaps[0].Pending == nil {
		t.Fatalf("snapshot = %+v, want one parked session", snaps)
	}
	// The snapshot serialized the propagated trace context, so the
	// restored replica re-executes under the same fleet trace ID.
	if !strings.Contains(snaps[0].Pending.TraceParent, origTID) {
		t.Fatalf("snapshot traceparent %q does not carry trace %s",
			snaps[0].Pending.TraceParent, origTID)
	}
	waitFor(t, 5*time.Second, "probe to observe draining", func() bool {
		return f.snapshotOf(t, pin.Name).Draining
	})
	if _, err := c.RestoreSession(ctx, snaps[0]); err != nil {
		t.Fatalf("restore through the balancer: %v", err)
	}

	res, err := c.PollUpdate(ctx, sid, up.ID, func(server.Question) (int, error) { return 1, nil })
	if err != nil || res.Status != server.StatusDone {
		t.Fatalf("restored update = %+v, %v, want done", res, err)
	}
	if res.TraceID != origTID {
		t.Fatalf("restored update trace ID = %s, want original %s", res.TraceID, origTID)
	}

	// Unpark the owner's copy so its shutdown in cleanup is prompt.
	oc := &server.Client{BaseURL: "http://" + pin.Name, PollInterval: 2 * time.Millisecond}
	if _, err := oc.PollUpdate(ctx, sid, up.ID, func(server.Question) (int, error) { return 1, nil }); err != nil {
		t.Fatalf("finish owner's parked update: %v", err)
	}
}

// TestClientTraceParentContinuation checks that a client-minted W3C trace
// context (what clarify -remote sends) is continued rather than restarted:
// the balancer's proxy trace adopts the client's trace ID, so the ID the
// client printed resolves at /debug/traces/{id} to the full fleet tree.
func TestClientTraceParentContinuation(t *testing.T) {
	f := startLBFleet(t, 2, fastProbeOpts())
	c := f.client(nil)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	tp := obs.TraceParent{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
	uctx := obs.ContextWithTraceParent(ctx, tp)
	res, err := c.RunUpdate(uctx, sid, exampleIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if err != nil || res.Status != server.StatusDone {
		t.Fatalf("run update = %+v, %v", res, err)
	}
	if res.TraceID != tp.TraceID {
		t.Fatalf("update trace ID = %s, want client-minted %s", res.TraceID, tp.TraceID)
	}

	resp, err := http.Get(f.lbSrv.URL + "/debug/traces/" + tp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d", tp.TraceID, resp.StatusCode)
	}
	var ft FleetTrace
	if err := json.NewDecoder(resp.Body).Decode(&ft); err != nil {
		t.Fatal(err)
	}
	if ft.Trace == nil || ft.Trace.Root == nil || ft.Trace.Root.Name != "lb-proxy" {
		t.Fatalf("fleet trace for client ID incomplete: %+v", ft)
	}
	if ft.Trace.ParentSpanID != tp.SpanID {
		t.Errorf("proxy trace remote parent = %q, want client span %q", ft.Trace.ParentSpanID, tp.SpanID)
	}
	if findSpan(ft.Trace.Root, "update") == nil {
		t.Error("replica update subtree not grafted under client-continued trace")
	}
}

// TestTracingDisabled checks the off switch: a negative buffer size keeps
// requests flowing with opaque request IDs and an empty /debug/traces.
func TestTracingDisabled(t *testing.T) {
	opts := fastProbeOpts()
	opts.TraceBufferSize = -1
	f := startLBFleet(t, 2, opts)
	rt := &recordingTransport{}
	c := f.client(rt)
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, server.CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT",
		func(server.Question) (int, error) { return 1, nil })
	if err != nil || res.Status != server.StatusDone {
		t.Fatalf("update with tracing off = %+v, %v", res, err)
	}
	if rid := rt.requestIDOf(http.MethodPost, "/updates"); rid == "" {
		t.Fatal("no X-Request-Id minted with tracing off")
	}

	resp, err := http.Get(f.lbSrv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("traces listed with tracing off: %+v", list)
	}
}
