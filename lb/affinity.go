package lb

import (
	"sync"
	"time"
)

// affinityTable pins each session ID to the backend that created it. Session
// IDs are minted by the replicas, so the creating backend cannot be derived
// from the ID alone: the table is seeded at create time and consulted on
// every follow-up request, with the consistent hash ring as the stateless
// fallback for IDs the table has never seen (an LB restarted under live
// traffic). Entries die with their session — removed on DELETE, and swept
// once idle past the TTL, which should be at least the replicas' own
// session idle TTL so the table never forgets a session before the replica
// does.
type affinityTable struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]*affinityEntry
	evicted int64
	misses  int64

	stopOnce sync.Once
	stopCh   chan struct{}
}

type affinityEntry struct {
	b        *Backend
	lastUsed time.Time
}

func newAffinityTable(ttl, sweepEvery time.Duration) *affinityTable {
	if ttl <= 0 {
		ttl = 30 * time.Minute
	}
	if sweepEvery <= 0 {
		sweepEvery = ttl / 4
		if sweepEvery > time.Minute {
			sweepEvery = time.Minute
		}
	}
	t := &affinityTable{ttl: ttl, entries: map[string]*affinityEntry{}, stopCh: make(chan struct{})}
	go t.janitor(sweepEvery)
	return t
}

// Put pins a session to its creating backend.
func (t *affinityTable) Put(id string, b *Backend) {
	t.mu.Lock()
	t.entries[id] = &affinityEntry{b: b, lastUsed: time.Now()}
	t.mu.Unlock()
}

// Get resolves a session's backend and refreshes its idle clock; a miss is
// counted (the caller falls back to the hash ring).
func (t *affinityTable) Get(id string) *Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		t.misses++
		return nil
	}
	e.lastUsed = time.Now()
	return e.b
}

// Remove drops a session's pin (its DELETE succeeded).
func (t *affinityTable) Remove(id string) {
	t.mu.Lock()
	delete(t.entries, id)
	t.mu.Unlock()
}

// Len is the live pin count.
func (t *affinityTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Misses is the lookup-miss count (ring-fallback routings).
func (t *affinityTable) Misses() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.misses
}

// Evicted is the TTL-eviction count.
func (t *affinityTable) Evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Sweep evicts pins idle past the TTL; returns the number evicted.
func (t *affinityTable) Sweep() int {
	cutoff := time.Now().Add(-t.ttl)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if e.lastUsed.Before(cutoff) {
			delete(t.entries, id)
			t.evicted++
			n++
		}
	}
	return n
}

func (t *affinityTable) janitor(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Sweep()
		case <-t.stopCh:
			return
		}
	}
}

// Stop terminates the janitor goroutine.
func (t *affinityTable) Stop() {
	t.stopOnce.Do(func() { close(t.stopCh) })
}
