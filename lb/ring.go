package lb

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent hash ring over a fixed backend fleet. Each backend
// owns `virtualNodes` points on a 64-bit circle; Lookup walks clockwise from
// the key's hash to the first point whose backend passes the eligibility
// predicate. The fleet is fixed at construction — ejection does not remove
// points, it just makes them ineligible — so when a backend recovers, every
// key it used to own hashes straight back to it, and while it is out only
// the keys it owned move (to the next point clockwise), never the rest.
type ring struct {
	points []ringPoint // sorted by hash, immutable after newRing
}

type ringPoint struct {
	hash uint64
	b    *Backend
}

// DefaultVirtualNodes is the per-backend point count when Options.VirtualNodes
// is zero: enough for <10% load spread between replicas at small fleet sizes.
const DefaultVirtualNodes = 128

func newRing(backends []*Backend, virtualNodes int) *ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(backends)*virtualNodes)}
	for _, b := range backends {
		for i := 0; i < virtualNodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(fmt.Sprintf("%s#%d", b.Name, i)),
				b:    b,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare with fnv64a) tie-break by name
		// so the ring order is deterministic across replicas of the LB.
		return r.points[i].b.Name < r.points[j].b.Name
	})
	return r
}

// Lookup returns the first eligible backend clockwise from key's hash, or
// nil when no backend is eligible. Distinct ineligible backends are skipped
// (not just points), so a large virtualNodes count doesn't degenerate the
// walk when one backend is down.
func (r *ring) Lookup(key string, eligible func(*Backend) bool) *Backend {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[*Backend]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.b] {
			continue
		}
		seen[p.b] = true
		if eligible == nil || eligible(p.b) {
			return p.b
		}
	}
	return nil
}

// Points is the ring's total point count (backends × virtual nodes).
func (r *ring) Points() int { return len(r.points) }

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
