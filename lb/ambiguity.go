package lb

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/server"
)

// FleetAmbiguity is the body of the balancer's GET /debug/ambiguity: every
// admitted backend's disambiguation telemetry merged into one fleet view.
// The rollup sums merge exactly and the histograms share one fixed bucket
// table, so the fleet numbers equal what a single daemon serving the same
// traffic would have reported.
type FleetAmbiguity struct {
	server.AmbiguitySnapshot
	// BackendsReporting names the backends whose snapshots were merged, in
	// sorted order; a backend that errored or answered non-200 is absent.
	BackendsReporting []string `json:"backendsReporting"`
}

// handleDebugAmbiguity fans /debug/ambiguity out to every admitted backend
// and merges the snapshots. ?tenant=NAME selects that tenant's merged rollup
// (404 when no backend has ledgers for the tenant), mirroring the replica
// endpoint's contract.
func (l *LB) handleDebugAmbiguity(w http.ResponseWriter, r *http.Request) {
	merged := &FleetAmbiguity{}
	for _, b := range l.backends {
		if !b.Admitted() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL.String()+"/debug/ambiguity", nil)
		if err != nil {
			continue
		}
		start := time.Now()
		resp, err := l.proxy.Do(req)
		if err != nil {
			b.recordRequest(0, time.Since(start), true)
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		b.recordRequest(resp.StatusCode, time.Since(start), false)
		var part server.AmbiguitySnapshot
		if resp.StatusCode == http.StatusOK && json.Unmarshal(data, &part) == nil {
			merged.AmbiguitySnapshot.Merge(&part)
			merged.BackendsReporting = append(merged.BackendsReporting, b.Name)
		}
	}
	sort.Strings(merged.BackendsReporting)
	if merged.Rollup == nil {
		merged.Rollup = ambiguity.NewRollup()
	}
	l.proxied.Add(1)
	if name := r.URL.Query().Get("tenant"); name != "" {
		tr, ok := merged.Tenants[name]
		if !ok {
			writeError(w, http.StatusNotFound, "no ambiguity ledgers for tenant "+name, 0)
			return
		}
		writeJSON(w, http.StatusOK, tr)
		return
	}
	writeJSON(w, http.StatusOK, merged)
}
