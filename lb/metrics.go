package lb

import (
	"sort"

	"github.com/clarifynet/clarify/internal/promtext"
)

// MetricsSnapshot is the body of the balancer's GET /metrics.
type MetricsSnapshot struct {
	// Backends is every replica's state, counters, and last probe payload.
	Backends []BackendSnapshot `json:"backends"`
	// Admitted / AcceptingSessions count the rotation's current shape.
	Admitted          int `json:"admitted"`
	AcceptingSessions int `json:"acceptingSessions"`
	// Proxied counts requests forwarded to a backend (including failures);
	// NoBackend counts requests refused for want of an eligible backend.
	Proxied   int64 `json:"proxied"`
	NoBackend int64 `json:"noBackend"`
	// RestoredSessions counts sessions re-placed via PUT .../restore;
	// GonePinsCleared counts affinity pins dropped because a backend
	// answered 410 Gone for the session.
	RestoredSessions int64 `json:"restoredSessions,omitempty"`
	GonePinsCleared  int64 `json:"gonePinsCleared,omitempty"`
	// AffinityEntries is the live session-pin count; AffinityMisses counts
	// lookups that fell back to the hash ring; AffinityEvicted the pins
	// dropped by the idle TTL.
	AffinityEntries int   `json:"affinityEntries"`
	AffinityMisses  int64 `json:"affinityMisses"`
	AffinityEvicted int64 `json:"affinityEvicted"`
	// RingPoints is backends × virtual nodes.
	RingPoints int `json:"ringPoints"`
	// ProbeRounds counts completed all-backend probe sweeps.
	ProbeRounds int64 `json:"probeRounds"`
	// Traces counts per-request proxy traces recorded; KeptTraces the
	// evicted error traces rescued by tail retention.
	Traces     int64 `json:"traces,omitempty"`
	KeptTraces int64 `json:"keptTraces,omitempty"`
	// Tenants attributes forwarded requests and relayed 429 sheds to the
	// X-Clarify-Tenant principal (bounded cardinality; headerless traffic
	// folds into the default tenant).
	Tenants map[string]TenantLBStats `json:"tenants,omitempty"`
	// UptimeSeconds is the time since the balancer was built.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (l *LB) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Backends:         l.Backends(),
		Proxied:          l.proxied.Load(),
		NoBackend:        l.noBackend.Load(),
		RestoredSessions: l.restored.Load(),
		GonePinsCleared:  l.gonePins.Load(),
		AffinityEntries:  l.affinity.Len(),
		AffinityMisses:   l.affinity.Misses(),
		AffinityEvicted:  l.affinity.Evicted(),
		RingPoints:       l.ring.Points(),
		ProbeRounds:      l.prober.probes.Load(),
		Traces:           l.tracesTotal.Load(),
		Tenants:          l.tenants.snapshot(),
	}
	if l.traces != nil {
		snap.KeptTraces = l.traces.KeptTotal()
	}
	for _, b := range snap.Backends {
		if b.State == StateAdmitted {
			snap.Admitted++
			if !b.Draining {
				snap.AcceptingSessions++
			}
		}
	}
	snap.UptimeSeconds = sinceSeconds(l.started)
	return snap
}

// writePrometheus renders the balancer's metrics through a promtext.Writer —
// Prometheus 0.0.4 or OpenMetrics 1.0 with trace exemplars on the
// per-backend latency buckets — following the clarifyd conventions
// (internal/promtext): ms-suffixed durations, per-backend labels, histograms
// with explicit +Inf.
func writePrometheus(p *promtext.Writer, snap MetricsSnapshot) {
	p.Counter("clarify_lb_proxied_total", "Requests forwarded to a backend.", float64(snap.Proxied))
	p.Counter("clarify_lb_no_backend_total", "Requests refused for want of an eligible backend.", float64(snap.NoBackend))
	p.Gauge("clarify_lb_backends", "Configured backends.", float64(len(snap.Backends)))
	p.Gauge("clarify_lb_backends_admitted", "Backends in rotation.", float64(snap.Admitted))
	p.Gauge("clarify_lb_backends_accepting_sessions", "Backends accepting new sessions (admitted and not draining).", float64(snap.AcceptingSessions))
	p.Gauge("clarify_lb_affinity_entries", "Live session-to-backend pins.", float64(snap.AffinityEntries))
	p.Counter("clarify_lb_affinity_misses_total", "Session lookups that fell back to the hash ring.", float64(snap.AffinityMisses))
	p.Counter("clarify_lb_affinity_evicted_total", "Session pins dropped by the idle TTL.", float64(snap.AffinityEvicted))
	p.Counter("clarify_lb_restored_sessions_total", "Sessions re-placed via PUT restore.", float64(snap.RestoredSessions))
	p.Counter("clarify_lb_gone_pins_cleared_total", "Affinity pins cleared by a backend 410 Gone.", float64(snap.GonePinsCleared))
	p.Gauge("clarify_lb_ring_points", "Hash-ring points (backends x virtual nodes).", float64(snap.RingPoints))
	p.Counter("clarify_lb_probe_rounds_total", "Completed all-backend probe sweeps.", float64(snap.ProbeRounds))
	p.Counter("clarify_lb_traces_total", "Per-request proxy traces recorded.", float64(snap.Traces))
	p.Counter("clarify_lb_kept_traces_total", "Evicted error traces rescued by tail retention.", float64(snap.KeptTraces))

	p.Header("clarify_lb_backend_up", "gauge", "1 while the backend is admitted.")
	for _, b := range snap.Backends {
		up := 0.0
		if b.State == StateAdmitted {
			up = 1
		}
		p.Sample("clarify_lb_backend_up", label(b), up)
	}
	p.Header("clarify_lb_backend_draining", "gauge", "1 while the backend reports draining.")
	for _, b := range snap.Backends {
		v := 0.0
		if b.Draining {
			v = 1
		}
		p.Sample("clarify_lb_backend_draining", label(b), v)
	}
	p.Header("clarify_lb_backend_requests_total", "counter", "Requests proxied per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_requests_total", label(b), float64(b.Requests))
	}
	p.Header("clarify_lb_backend_errors_total", "counter", "Backend responses >= 500 per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_errors_total", label(b), float64(b.Errors5xx))
	}
	p.Header("clarify_lb_backend_transport_errors_total", "counter", "Proxied requests that never reached the backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_transport_errors_total", label(b), float64(b.TransportErrors))
	}
	p.Header("clarify_lb_backend_sheds_total", "counter", "Backend 429 shed responses relayed per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_sheds_total", label(b), float64(b.Sheds))
	}
	p.Header("clarify_lb_backend_creates_total", "counter", "Sessions placed per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_creates_total", label(b), float64(b.CreatesRouted))
	}
	p.Header("clarify_lb_backend_ejections_total", "counter", "Ejection transitions per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_ejections_total", label(b), float64(b.Ejections))
	}
	p.Header("clarify_lb_backend_readmissions_total", "counter", "Re-admission transitions per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_readmissions_total", label(b), float64(b.Readmissions))
	}
	p.Header("clarify_lb_backend_queue_depth", "gauge", "Last probed submission-queue depth per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_queue_depth", label(b), float64(b.Load.QueueDepth))
	}
	p.Header("clarify_lb_backend_active_sessions", "gauge", "Last probed live-session count per backend.")
	for _, b := range snap.Backends {
		p.Sample("clarify_lb_backend_active_sessions", label(b), float64(b.Load.ActiveSessions))
	}
	p.Header("clarify_lb_backend_request_duration_ms", "histogram", "Proxied request latency per backend, in milliseconds.")
	for _, b := range snap.Backends {
		p.Histogram("clarify_lb_backend_request_duration_ms", "backend", b.Name,
			b.LatencyMs.BucketsMs, b.LatencyMs.Counts, b.LatencyMs.Count, b.LatencyMs.SumMs,
			backendExemplars(b))
	}
	if len(snap.Tenants) > 0 {
		names := make([]string, 0, len(snap.Tenants))
		for name := range snap.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		p.Header("clarify_lb_tenant_requests_total", "counter", "Requests forwarded per X-Clarify-Tenant principal.")
		for _, name := range names {
			p.Sample("clarify_lb_tenant_requests_total", tenantLabel(name), float64(snap.Tenants[name].Requests))
		}
		p.Header("clarify_lb_tenant_sheds_total", "counter", "Backend 429 sheds relayed per X-Clarify-Tenant principal.")
		for _, name := range names {
			p.Sample("clarify_lb_tenant_sheds_total", tenantLabel(name), float64(snap.Tenants[name].Sheds))
		}
	}
	p.EOF()
}

// backendExemplars converts a backend's snapshot exemplars to the promtext
// wire type; nil when none were recorded.
func backendExemplars(b BackendSnapshot) []*promtext.Exemplar {
	if len(b.LatencyMs.Exemplars) == 0 {
		return nil
	}
	out := make([]*promtext.Exemplar, len(b.LatencyMs.Exemplars))
	for i, e := range b.LatencyMs.Exemplars {
		if e.TraceID == "" {
			continue
		}
		out[i] = &promtext.Exemplar{TraceID: e.TraceID, Value: e.ValueMs, Ts: e.Ts}
	}
	return out
}

func label(b BackendSnapshot) string {
	return "backend=" + promtext.QuoteLabel(b.Name)
}

func tenantLabel(name string) string {
	return "tenant=" + promtext.QuoteLabel(name)
}
