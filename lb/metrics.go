package lb

import (
	"io"

	"github.com/clarifynet/clarify/internal/promtext"
)

// MetricsSnapshot is the body of the balancer's GET /metrics.
type MetricsSnapshot struct {
	// Backends is every replica's state, counters, and last probe payload.
	Backends []BackendSnapshot `json:"backends"`
	// Admitted / AcceptingSessions count the rotation's current shape.
	Admitted          int `json:"admitted"`
	AcceptingSessions int `json:"acceptingSessions"`
	// Proxied counts requests forwarded to a backend (including failures);
	// NoBackend counts requests refused for want of an eligible backend.
	Proxied   int64 `json:"proxied"`
	NoBackend int64 `json:"noBackend"`
	// RestoredSessions counts sessions re-placed via PUT .../restore;
	// GonePinsCleared counts affinity pins dropped because a backend
	// answered 410 Gone for the session.
	RestoredSessions int64 `json:"restoredSessions,omitempty"`
	GonePinsCleared  int64 `json:"gonePinsCleared,omitempty"`
	// AffinityEntries is the live session-pin count; AffinityMisses counts
	// lookups that fell back to the hash ring; AffinityEvicted the pins
	// dropped by the idle TTL.
	AffinityEntries int   `json:"affinityEntries"`
	AffinityMisses  int64 `json:"affinityMisses"`
	AffinityEvicted int64 `json:"affinityEvicted"`
	// RingPoints is backends × virtual nodes.
	RingPoints int `json:"ringPoints"`
	// ProbeRounds counts completed all-backend probe sweeps.
	ProbeRounds int64 `json:"probeRounds"`
	// UptimeSeconds is the time since the balancer was built.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (l *LB) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Backends:         l.Backends(),
		Proxied:          l.proxied.Load(),
		NoBackend:        l.noBackend.Load(),
		RestoredSessions: l.restored.Load(),
		GonePinsCleared:  l.gonePins.Load(),
		AffinityEntries:  l.affinity.Len(),
		AffinityMisses:   l.affinity.Misses(),
		AffinityEvicted:  l.affinity.Evicted(),
		RingPoints:       l.ring.Points(),
		ProbeRounds:      l.prober.probes.Load(),
	}
	for _, b := range snap.Backends {
		if b.State == StateAdmitted {
			snap.Admitted++
			if !b.Draining {
				snap.AcceptingSessions++
			}
		}
	}
	snap.UptimeSeconds = sinceSeconds(l.started)
	return snap
}

// writePrometheus renders the balancer's metrics in the text exposition
// format, following the clarifyd conventions (internal/promtext): ms-suffixed
// durations, per-backend labels, histograms with explicit +Inf.
func writePrometheus(w io.Writer, snap MetricsSnapshot) {
	promtext.Counter(w, "clarify_lb_proxied_total", "Requests forwarded to a backend.", float64(snap.Proxied))
	promtext.Counter(w, "clarify_lb_no_backend_total", "Requests refused for want of an eligible backend.", float64(snap.NoBackend))
	promtext.Gauge(w, "clarify_lb_backends", "Configured backends.", float64(len(snap.Backends)))
	promtext.Gauge(w, "clarify_lb_backends_admitted", "Backends in rotation.", float64(snap.Admitted))
	promtext.Gauge(w, "clarify_lb_backends_accepting_sessions", "Backends accepting new sessions (admitted and not draining).", float64(snap.AcceptingSessions))
	promtext.Gauge(w, "clarify_lb_affinity_entries", "Live session-to-backend pins.", float64(snap.AffinityEntries))
	promtext.Counter(w, "clarify_lb_affinity_misses_total", "Session lookups that fell back to the hash ring.", float64(snap.AffinityMisses))
	promtext.Counter(w, "clarify_lb_affinity_evicted_total", "Session pins dropped by the idle TTL.", float64(snap.AffinityEvicted))
	promtext.Counter(w, "clarify_lb_restored_sessions_total", "Sessions re-placed via PUT restore.", float64(snap.RestoredSessions))
	promtext.Counter(w, "clarify_lb_gone_pins_cleared_total", "Affinity pins cleared by a backend 410 Gone.", float64(snap.GonePinsCleared))
	promtext.Gauge(w, "clarify_lb_ring_points", "Hash-ring points (backends x virtual nodes).", float64(snap.RingPoints))
	promtext.Counter(w, "clarify_lb_probe_rounds_total", "Completed all-backend probe sweeps.", float64(snap.ProbeRounds))

	promtext.Header(w, "clarify_lb_backend_up", "gauge", "1 while the backend is admitted.")
	for _, b := range snap.Backends {
		up := 0.0
		if b.State == StateAdmitted {
			up = 1
		}
		promtext.Sample(w, "clarify_lb_backend_up", label(b), up)
	}
	promtext.Header(w, "clarify_lb_backend_draining", "gauge", "1 while the backend reports draining.")
	for _, b := range snap.Backends {
		v := 0.0
		if b.Draining {
			v = 1
		}
		promtext.Sample(w, "clarify_lb_backend_draining", label(b), v)
	}
	promtext.Header(w, "clarify_lb_backend_requests_total", "counter", "Requests proxied per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_requests_total", label(b), float64(b.Requests))
	}
	promtext.Header(w, "clarify_lb_backend_errors_total", "counter", "Backend responses >= 500 per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_errors_total", label(b), float64(b.Errors5xx))
	}
	promtext.Header(w, "clarify_lb_backend_transport_errors_total", "counter", "Proxied requests that never reached the backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_transport_errors_total", label(b), float64(b.TransportErrors))
	}
	promtext.Header(w, "clarify_lb_backend_creates_total", "counter", "Sessions placed per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_creates_total", label(b), float64(b.CreatesRouted))
	}
	promtext.Header(w, "clarify_lb_backend_ejections_total", "counter", "Ejection transitions per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_ejections_total", label(b), float64(b.Ejections))
	}
	promtext.Header(w, "clarify_lb_backend_readmissions_total", "counter", "Re-admission transitions per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_readmissions_total", label(b), float64(b.Readmissions))
	}
	promtext.Header(w, "clarify_lb_backend_queue_depth", "gauge", "Last probed submission-queue depth per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_queue_depth", label(b), float64(b.Load.QueueDepth))
	}
	promtext.Header(w, "clarify_lb_backend_active_sessions", "gauge", "Last probed live-session count per backend.")
	for _, b := range snap.Backends {
		promtext.Sample(w, "clarify_lb_backend_active_sessions", label(b), float64(b.Load.ActiveSessions))
	}
	promtext.Header(w, "clarify_lb_backend_request_duration_ms", "histogram", "Proxied request latency per backend, in milliseconds.")
	for _, b := range snap.Backends {
		promtext.Histogram(w, "clarify_lb_backend_request_duration_ms", "backend", b.Name,
			b.LatencyMs.BucketsMs, b.LatencyMs.Counts, b.LatencyMs.Count, b.LatencyMs.SumMs)
	}
}

func label(b BackendSnapshot) string {
	return "backend=" + promtext.QuoteLabel(b.Name)
}
