// Package clarify_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation, each
// delegating to the same experiment drivers the clarify-eval tool uses.
// Custom metrics report the quantities the paper tabulates (question counts,
// overlap counts, LLM calls) alongside wall-clock cost.
package clarify_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"testing"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/evaltopo"
	"github.com/clarifynet/clarify/exper"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/symbolic"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const paperPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

const paperSnippet = `ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 seq 10 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
`

// BenchmarkPaperWalkthrough measures the §2 pipeline end to end: classify →
// synthesize → spec → verify → disambiguate → insert, on the paper's exact
// running example.
func BenchmarkPaperWalkthrough(b *testing.B) {
	var calls, questions int
	for i := 0; i < b.N; i++ {
		cfg := ios.MustParse(paperISPOut)
		session := &clarify.Session{
			Client: llm.NewSimLLM(),
			Config: cfg,
			RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
				return true, nil
			}),
		}
		res, err := session.Submit(context.Background(), paperPrompt, "ISP_OUT")
		if err != nil {
			b.Fatal(err)
		}
		st := session.Stats()
		calls = st.LLMCalls
		questions = len(res.RouteInsert.Questions)
	}
	b.ReportMetric(float64(calls), "llm-calls/update")
	b.ReportMetric(float64(questions), "questions/update")
}

// BenchmarkRepeatedUpdates measures the steady state the daemon serves:
// update after update against configurations whose regex/community universe
// is unchanged. The cached variant shares one SpaceCache across updates
// (as the server does), so every symbolic universe after the first is a
// cache hit; the uncached variant rebuilds each universe from scratch.
func BenchmarkRepeatedUpdates(b *testing.B) {
	run := func(b *testing.B, cache *symbolic.SpaceCache) {
		var hits, misses int64
		for i := 0; i < b.N; i++ {
			session := &clarify.Session{
				Client: llm.NewSimLLM(),
				Config: ios.MustParse(paperISPOut),
				RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
					return true, nil
				}),
				SpaceCache: cache,
			}
			if _, err := session.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
				b.Fatal(err)
			}
		}
		if cache != nil {
			st := cache.Stats()
			hits, misses = st.Hits, st.Misses
		}
		b.ReportMetric(float64(hits), "space-hits")
		b.ReportMetric(float64(misses), "space-misses")
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, symbolic.NewSpaceCache()) })
}

// BenchmarkAmbiguityLedgerOverhead measures the information-gain ledger's
// cost on the uncached Submit path: the identical loop to
// BenchmarkRepeatedUpdates/uncached, once with no telemetry consumer (the
// meter never runs) and once traced (every update metered via model counting
// over the candidate space). The ledger-on variant must stay within 5% of
// ledger-off — the SatCount memo and the precomputed interval table are what
// keep it there.
func BenchmarkAmbiguityLedgerOverhead(b *testing.B) {
	run := func(b *testing.B, metered bool) {
		var bits float64
		var questions int
		for i := 0; i < b.N; i++ {
			session := &clarify.Session{
				Client: llm.NewSimLLM(),
				Config: ios.MustParse(paperISPOut),
				RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
					return true, nil
				}),
			}
			if metered {
				session.Observer = obs.SinkFunc(func(*obs.Trace) {})
			}
			res, err := session.Submit(context.Background(), paperPrompt, "ISP_OUT")
			if err != nil {
				b.Fatal(err)
			}
			if led := res.RouteInsert.Ambiguity; led != nil {
				bits = led.InitialBits
				questions = led.QuestionCount()
			} else if metered {
				b.Fatal("metered run produced no ledger")
			}
		}
		if metered {
			b.ReportMetric(bits, "initial-bits")
			b.ReportMetric(float64(questions), "questions/update")
		}
	}
	b.Run("ledger-off", func(b *testing.B) { run(b, false) })
	b.Run("ledger-on", func(b *testing.B) { run(b, true) })
}

// BenchmarkJournalOverhead measures the flight recorder's cost on the Submit
// path: the same cached walkthrough with journaling off, on with interval
// fsync (the daemon default), and on with always-fsync. The journal-off
// variant must stay within noise of BenchmarkRepeatedUpdates/cached.
func BenchmarkJournalOverhead(b *testing.B) {
	run := func(b *testing.B, jnl *journal.Journal) {
		cache := symbolic.NewSpaceCache()
		for i := 0; i < b.N; i++ {
			session := &clarify.Session{
				Client: llm.NewSimLLM(),
				Config: ios.MustParse(paperISPOut),
				RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
					return true, nil
				}),
				SpaceCache:     cache,
				Journal:        jnl,
				JournalSession: "bench",
			}
			if _, err := session.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
				b.Fatal(err)
			}
		}
		if jnl != nil {
			st := jnl.Stats()
			b.ReportMetric(float64(st.Bytes)/float64(b.N), "journal-bytes/update")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	for _, policy := range []journal.FsyncPolicy{journal.FsyncInterval, journal.FsyncAlways} {
		b.Run("fsync-"+string(policy), func(b *testing.B) {
			jnl, err := journal.Open(journal.Options{Dir: b.TempDir(), Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer jnl.Close()
			b.ResetTimer()
			run(b, jnl)
		})
	}
}

// BenchmarkFigure2Insertion measures the disambiguator alone (Figure 2):
// locating the insertion point of the verified snippet within ISP_OUT.
func BenchmarkFigure2Insertion(b *testing.B) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	oracle := disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disambig.InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", oracle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareRoutePolicies measures the differential analysis that
// generates the paper's OPTION 1 / OPTION 2 examples.
func BenchmarkCompareRoutePolicies(b *testing.B) {
	top := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	resTop, err := disambig.InsertRouteMapStanzaTopBottom(top, "ISP_OUT", snippet, "SET_METRIC",
		disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }))
	if err != nil {
		b.Fatal(err)
	}
	resBottom, err := disambig.InsertRouteMapStanzaTopBottom(top, "ISP_OUT", snippet, "SET_METRIC",
		disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return false, nil }))
	if err != nil {
		b.Fatal(err)
	}
	a, c := resTop.Config, resBottom.Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space, err := symbolic.NewRouteSpace(a, c)
		if err != nil {
			b.Fatal(err)
		}
		diffs, err := analysis.CompareRouteMaps(space, a, a.RouteMaps["ISP_OUT"], c, c.RouteMaps["ISP_OUT"], 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(diffs) == 0 {
			b.Fatal("expected differences")
		}
	}
}

// Corpus scale used by the §3 benchmarks (fractions match the paper; see
// cmd/clarify-eval -full for full-size runs).
const (
	benchCloudACLs  = 60
	benchCloudRMs   = 80
	benchCampusACLs = 200
	benchCampusRMs  = 169
)

// BenchmarkCloudACLOverlaps regenerates the §3.1 ACL table.
func BenchmarkCloudACLOverlaps(b *testing.B) {
	var agg exper.ACLAggregate
	for i := 0; i < b.N; i++ {
		agg = exper.CloudACLExperiment(1, benchCloudACLs)
	}
	b.ReportMetric(float64(agg.WithConflict), "acls-with-conflict")
	b.ReportMetric(float64(agg.ConflictOver20), "acls-over-20")
	b.ReportMetric(float64(agg.MaxPairs), "max-pairs")
	exper.WriteCloudACLTable(io.Discard, agg)
}

// BenchmarkCloudRouteMapOverlaps regenerates the §3.1 route-map table.
func BenchmarkCloudRouteMapOverlaps(b *testing.B) {
	var agg exper.RMAggregate
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = exper.CloudRouteMapExperiment(1, benchCloudRMs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(agg.WithOverlap), "rms-with-overlap")
	b.ReportMetric(float64(agg.Over20), "rms-over-20")
}

// BenchmarkCampusACLOverlaps regenerates the §3.2 ACL table.
func BenchmarkCampusACLOverlaps(b *testing.B) {
	var agg exper.ACLAggregate
	for i := 0; i < b.N; i++ {
		agg = exper.CampusACLExperiment(1, benchCampusACLs)
	}
	b.ReportMetric(100*float64(agg.WithConflict)/float64(agg.Examined), "pct-conflicting")
	b.ReportMetric(100*float64(agg.WithNonTrivial)/float64(agg.Examined), "pct-non-trivial")
}

// BenchmarkCampusRouteMapOverlaps regenerates the §3.2 route-map table.
func BenchmarkCampusRouteMapOverlaps(b *testing.B) {
	var agg exper.RMAggregate
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = exper.CampusRouteMapExperiment(1, benchCampusRMs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(agg.WithOverlap), "rms-with-overlap")
	b.ReportMetric(float64(agg.MaxOverlaps), "max-pairs")
}

// BenchmarkFigure4Synthesis regenerates the §5 evaluation: full incremental
// synthesis of the Figure 3 topology plus BGP convergence and policy checks.
func BenchmarkFigure4Synthesis(b *testing.B) {
	var totalCalls, totalQuestions int
	for i := 0; i < b.N; i++ {
		stats, checks, _, err := evaltopo.RunEvaluation(context.Background(),
			func() llm.Client { return llm.NewSimLLM() })
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range checks {
			if !c.Holds {
				b.Fatalf("policy %s violated", c.Name)
			}
		}
		totalCalls, totalQuestions = 0, 0
		for _, s := range stats {
			totalCalls += s.LLMCalls
			totalQuestions += s.Disambiguations
		}
	}
	b.ReportMetric(float64(totalCalls), "llm-calls/topology")
	b.ReportMetric(float64(totalQuestions), "questions/topology")
}

// BenchmarkDisambiguationQuestions is the §4 ablation: questions asked by
// binary search vs the linear baseline as the overlap count grows. The
// paper's claim is the logarithmic bound ⌈log₂(k+1)⌉.
func BenchmarkDisambiguationQuestions(b *testing.B) {
	for _, k := range []int{3, 7, 15, 31, 63} {
		for _, strat := range []disambig.Strategy{disambig.StrategyBinary, disambig.StrategyLinear} {
			b.Run(fmt.Sprintf("k=%d/%s", k, strat), func(b *testing.B) {
				var questions int
				for i := 0; i < b.N; i++ {
					binary, linear, err := exper.QuestionComplexity([]int{k})
					if err != nil {
						b.Fatal(err)
					}
					if strat == disambig.StrategyBinary {
						questions = binary[0].Questions
					} else {
						questions = linear[0].Questions
					}
				}
				b.ReportMetric(float64(questions), "questions")
				b.ReportMetric(math.Ceil(math.Log2(float64(k+1))), "log-bound")
			})
		}
	}
}

// BenchmarkAtomsUniverse sizes the symbolic encoder on the paper's example:
// variable and atom counts are the ablation quantity for the
// atomic-predicates design choice.
func BenchmarkAtomsUniverse(b *testing.B) {
	cfg := ios.MustParse(paperISPOut + paperSnippet)
	var space *symbolic.RouteSpace
	for i := 0; i < b.N; i++ {
		var err error
		space, err = symbolic.NewRouteSpace(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(space.NumVars()), "bdd-vars")
	b.ReportMetric(float64(space.PathAtomCount()), "path-atoms")
	b.ReportMetric(float64(space.CommAtomCount()), "community-atoms")
}
