package llmtest

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/clarifynet/clarify/llm"
)

func TestHandlerServesSimLLMOverHTTP(t *testing.T) {
	h := NewHandler(llm.NewSimLLM())
	srv := httptest.NewServer(h)
	defer srv.Close()

	client := &llm.HTTPClient{BaseURL: srv.URL, Model: "sim"}
	store := llm.NewPromptStore()

	// Classification round-trips through the real HTTP client wire format.
	resp, err := client.Complete(context.Background(), store.BuildRequest(llm.TaskClassify,
		llm.Message{Role: llm.RoleUser, Content: "Write a route-map stanza that denies routes originating from ASN 65001."}))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(resp.Content); got != "route-map" {
		t.Errorf("classify = %q, want route-map", got)
	}

	// Synthesis produces parseable IOS text.
	resp, err = client.Complete(context.Background(), store.BuildRequest(llm.TaskSynthRouteMap,
		llm.Message{Role: llm.RoleUser, Content: "Write a route-map stanza that denies routes originating from ASN 65001."}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "route-map") || !strings.Contains(resp.Content, "as-path") {
		t.Errorf("synth output = %q", resp.Content)
	}
	if h.Requests() != 2 {
		t.Errorf("requests = %d, want 2", h.Requests())
	}
}

func TestHandlerRejectsUnknownSystemPrompt(t *testing.T) {
	h := NewHandler(llm.NewSimLLM())
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &llm.HTTPClient{BaseURL: srv.URL, Model: "sim"}
	_, err := client.Complete(context.Background(), llm.Request{
		System:   "you are a pirate",
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "arr"}},
	})
	if err == nil {
		t.Fatal("want error for unknown system prompt")
	}
}

func TestHandlerSurfacesClientErrors(t *testing.T) {
	// A SimLLM given garbage intent text errors; the handler must translate
	// that into a 5xx the HTTP client reports.
	h := NewHandler(llm.NewSimLLM())
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &llm.HTTPClient{BaseURL: srv.URL, Model: "sim"}
	store := llm.NewPromptStore()
	_, err := client.Complete(context.Background(), store.BuildRequest(llm.TaskSynthRouteMap,
		llm.Message{Role: llm.RoleUser, Content: "gibberish that parses as no intent"}))
	if err == nil {
		t.Fatal("want error surfaced from the backing client")
	}
}
