// Package llmtest serves any llm.Client — typically the deterministic
// SimLLM — behind an OpenAI-compatible chat-completions HTTP endpoint, so
// the real llm.HTTPClient transport path (retries, backoff, chaos
// injection) can be exercised end-to-end in tests without a network model.
package llmtest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"github.com/clarifynet/clarify/llm"
)

// chatRequest mirrors the wire form llm.HTTPClient posts.
type chatRequest struct {
	Model    string        `json:"model"`
	Messages []llm.Message `json:"messages"`
}

// chatResponse mirrors the wire form llm.HTTPClient decodes.
type chatResponse struct {
	Choices []struct {
		Message llm.Message `json:"message"`
	} `json:"choices"`
	Error *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// Handler is an http.Handler implementing POST .../chat/completions backed
// by an llm.Client. The pipeline task — which the HTTP wire format carries
// only implicitly, inside the system prompt — is recovered by matching the
// system message against the built-in prompt store, so the backing client
// (SimLLM dispatches on Task) behaves exactly as it would in-process.
type Handler struct {
	client   llm.Client
	store    *llm.PromptStore
	requests atomic.Int64
}

// NewHandler wraps client as a chat-completions endpoint.
func NewHandler(client llm.Client) *Handler {
	return &Handler{client: client, store: llm.NewPromptStore()}
}

// Requests counts completions served (successful or not).
func (h *Handler) Requests() int64 { return h.requests.Load() }

// taskFor recovers the pipeline task from the system prompt text.
func (h *Handler) taskFor(system string) (llm.Task, bool) {
	for _, t := range []llm.Task{llm.TaskClassify, llm.TaskSynthRouteMap, llm.TaskSynthACL,
		llm.TaskSpecRouteMap, llm.TaskSpecACL} {
		if h.store.Get(t).System == system {
			return t, true
		}
	}
	return 0, false
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || !strings.HasSuffix(r.URL.Path, "/chat/completions") {
		http.NotFound(w, r)
		return
	}
	h.requests.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		writeChatError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	var req chatRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeChatError(w, http.StatusBadRequest, fmt.Sprintf("decode body: %v", err))
		return
	}
	var system string
	msgs := make([]llm.Message, 0, len(req.Messages))
	for _, m := range req.Messages {
		if m.Role == llm.RoleSystem && system == "" {
			system = m.Content
			continue
		}
		msgs = append(msgs, m)
	}
	task, ok := h.taskFor(system)
	if !ok {
		writeChatError(w, http.StatusBadRequest, "unrecognized system prompt")
		return
	}
	resp, err := h.client.Complete(r.Context(), llm.Request{Task: task, System: system, Messages: msgs})
	if err != nil {
		writeChatError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var out chatResponse
	out.Choices = append(out.Choices, struct {
		Message llm.Message `json:"message"`
	}{Message: llm.Message{Role: llm.RoleAssistant, Content: resp.Content}})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// writeChatError renders the OpenAI-style error envelope.
func writeChatError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"error": map[string]string{"message": msg},
	})
}

var _ http.Handler = (*Handler)(nil)
