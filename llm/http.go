package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPClient talks to an OpenAI-compatible chat-completions endpoint
// (POST {BaseURL}/chat/completions). It exists so the pipeline can run
// against a real model; the repository's experiments all use SimLLM.
type HTTPClient struct {
	// BaseURL is the API root, e.g. "https://api.openai.com/v1".
	BaseURL string
	// Model is the model identifier, e.g. "gpt-4".
	Model string
	// APIKey, when non-empty, is sent as a Bearer token.
	APIKey string
	// HTTP is the underlying client; a 60-second-timeout client is used when
	// nil.
	HTTP *http.Client
	// Temperature defaults to 0 for reproducible synthesis.
	Temperature float64
}

type chatRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature"`
}

type chatResponse struct {
	Choices []struct {
		Message Message `json:"message"`
	} `json:"choices"`
	Error *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// Complete implements Client.
func (c *HTTPClient) Complete(ctx context.Context, req Request) (Response, error) {
	msgs := make([]Message, 0, len(req.Messages)+1)
	if req.System != "" {
		msgs = append(msgs, Message{Role: RoleSystem, Content: req.System})
	}
	msgs = append(msgs, req.Messages...)
	body, err := json.Marshal(chatRequest{Model: c.Model, Messages: msgs, Temperature: c.Temperature})
	if err != nil {
		return Response{}, fmt.Errorf("llm: marshal request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/chat/completions", bytes.NewReader(body))
	if err != nil {
		return Response{}, fmt.Errorf("llm: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	client := c.HTTP
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return Response{}, fmt.Errorf("llm: request failed: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return Response{}, fmt.Errorf("llm: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("llm: endpoint returned %s: %s", resp.Status, truncate(data, 200))
	}
	var out chatResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return Response{}, fmt.Errorf("llm: decode response: %w", err)
	}
	if out.Error != nil {
		return Response{}, fmt.Errorf("llm: endpoint error: %s", out.Error.Message)
	}
	if len(out.Choices) == 0 {
		return Response{}, fmt.Errorf("llm: endpoint returned no choices")
	}
	return Response{Content: out.Choices[0].Message.Content}, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

var _ Client = (*HTTPClient)(nil)
