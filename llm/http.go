package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"github.com/clarifynet/clarify/obs"
)

// HTTPClient talks to an OpenAI-compatible chat-completions endpoint
// (POST {BaseURL}/chat/completions). It exists so the pipeline can run
// against a real model; the repository's experiments all use SimLLM.
//
// Transient endpoint failures (429 and 5xx) are retried with exponential
// backoff and jitter so a daemon serving many sessions does not fail whole
// updates on one flaky response. The client is stateless and safe for
// concurrent use.
type HTTPClient struct {
	// BaseURL is the API root, e.g. "https://api.openai.com/v1".
	BaseURL string
	// Model is the model identifier, e.g. "gpt-4".
	Model string
	// APIKey, when non-empty, is sent as a Bearer token.
	APIKey string
	// HTTP is the underlying client; a 60-second-timeout client is used when
	// nil.
	HTTP *http.Client
	// Temperature defaults to 0 for reproducible synthesis.
	Temperature float64
	// MaxRetries is the number of re-attempts after a retryable failure
	// (429 or 5xx status, or a transport error); 0 disables retries.
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 500 ms; the
	// delay doubles per attempt, ±50% jitter, capped at 30 s). A
	// Retry-After header from the endpoint overrides the computed delay but
	// is clamped to the same 30 s cap, so a hostile or misconfigured
	// endpoint cannot park a worker for an hour.
	RetryBaseDelay time.Duration
}

// maxRetryDelay caps every backoff sleep — computed or header-supplied.
const maxRetryDelay = 30 * time.Second

type chatRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature"`
}

type chatResponse struct {
	Choices []struct {
		Message Message `json:"message"`
	} `json:"choices"`
	Error *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// retryableError marks a failure worth re-attempting.
type retryableError struct {
	err           error
	retryAfter    time.Duration
	hasRetryAfter bool // the endpoint sent an explicit Retry-After hint
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Complete implements Client.
func (c *HTTPClient) Complete(ctx context.Context, req Request) (Response, error) {
	msgs := make([]Message, 0, len(req.Messages)+1)
	if req.System != "" {
		msgs = append(msgs, Message{Role: RoleSystem, Content: req.System})
	}
	msgs = append(msgs, req.Messages...)
	body, err := json.Marshal(chatRequest{Model: c.Model, Messages: msgs, Temperature: c.Temperature})
	if err != nil {
		return Response{}, fmt.Errorf("llm: marshal request: %w", err)
	}
	sp := obs.SpanFromContext(ctx)
	var lastErr error
	var totalBackoff time.Duration
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(ctx, body)
		if err == nil {
			if attempt > 0 {
				sp.SetInt("llm-retries", int64(attempt))
				sp.SetDur("llm-backoff", totalBackoff)
			}
			return resp, nil
		}
		rerr, retryable := err.(*retryableError)
		if !retryable || attempt >= c.MaxRetries {
			if attempt > 0 {
				sp.SetInt("llm-retries", int64(attempt))
				sp.SetDur("llm-backoff", totalBackoff)
				err = fmt.Errorf("llm: giving up after %d attempt(s) and %s of backoff: %w",
					attempt+1, totalBackoff.Round(time.Millisecond), err)
			}
			return Response{}, err
		}
		lastErr = err
		delay := c.retryDelay(attempt, rerr)
		if err := sleepCtx(ctx, delay); err != nil {
			sp.SetInt("llm-retries", int64(attempt))
			sp.SetDur("llm-backoff", totalBackoff)
			return Response{}, fmt.Errorf("llm: giving up after %d attempt(s): %w (last error: %v)",
				attempt+1, err, lastErr)
		}
		totalBackoff += delay
	}
}

// doOnce issues one request; retryable failures are wrapped in
// *retryableError.
func (c *HTTPClient) doOnce(ctx context.Context, body []byte) (Response, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/chat/completions", bytes.NewReader(body))
	if err != nil {
		return Response{}, fmt.Errorf("llm: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	client := c.HTTP
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		if ctx.Err() != nil {
			return Response{}, fmt.Errorf("llm: request failed: %w", err)
		}
		// Transport-level failures (connection reset, DNS blip) are
		// transient by nature.
		return Response{}, &retryableError{err: fmt.Errorf("llm: request failed: %w", err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return Response{}, &retryableError{err: fmt.Errorf("llm: read response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		serr := fmt.Errorf("llm: endpoint returned %s: %s", resp.Status, truncate(data, 200))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			after, ok := parseRetryAfter(resp.Header.Get("Retry-After"))
			return Response{}, &retryableError{err: serr, retryAfter: after, hasRetryAfter: ok}
		}
		return Response{}, serr
	}
	var out chatResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return Response{}, fmt.Errorf("llm: decode response: %w", err)
	}
	if out.Error != nil {
		return Response{}, fmt.Errorf("llm: endpoint error: %s", out.Error.Message)
	}
	if len(out.Choices) == 0 {
		return Response{}, fmt.Errorf("llm: endpoint returned no choices")
	}
	return Response{Content: out.Choices[0].Message.Content}, nil
}

// retryDelay picks the sleep before re-attempt attempt+1: the endpoint's
// Retry-After hint when present (clamped to maxRetryDelay), otherwise the
// computed exponential backoff.
func (c *HTTPClient) retryDelay(attempt int, rerr *retryableError) time.Duration {
	if rerr.hasRetryAfter {
		if rerr.retryAfter > maxRetryDelay {
			return maxRetryDelay
		}
		return rerr.retryAfter
	}
	return c.backoff(attempt)
}

// backoff computes the delay before re-attempt attempt+1: exponential with
// ±50% jitter, capped at 30 s.
func (c *HTTPClient) backoff(attempt int) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > maxRetryDelay || d <= 0 {
		d = maxRetryDelay
	}
	// Jitter in [0.5, 1.5): decorrelates retry storms across concurrent
	// workers hitting the same rate-limited endpoint.
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// parseRetryAfter handles the delay-seconds form of the header (the HTTP
// date form is rare on API endpoints and falls back to the computed
// backoff). An explicit "0" means retry immediately.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

var _ Client = (*HTTPClient)(nil)
