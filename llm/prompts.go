package llm

// PromptStore is the database of system prompts and few-shot examples
// retrieved in step (2) of Figure 1. The defaults reproduce the paper's
// augmentation: a task description restricting output to a single stanza in
// Cisco IOS syntax, plus few-shot examples of similar prompts and their
// translations.
type PromptStore struct {
	prompts map[Task]PromptEntry
}

// PromptEntry is one task's retrieval result.
type PromptEntry struct {
	System   string
	FewShots []Message // alternating user/assistant example turns
}

// NewPromptStore returns the built-in prompt database.
func NewPromptStore() *PromptStore {
	return &PromptStore{prompts: map[Task]PromptEntry{
		TaskClassify: {
			System: `You are a network configuration assistant. Classify the user's request as exactly one of: "route-map" (BGP routing policy: routes, prefixes, communities, AS paths, local preference, MED) or "acl" (packet filtering: traffic, protocols, ports, hosts). Reply with only the single word route-map or acl.`,
			FewShots: []Message{
				{Role: RoleUser, Content: "Write a route-map stanza that denies routes originating from ASN 65001."},
				{Role: RoleAssistant, Content: "route-map"},
				{Role: RoleUser, Content: "Write an ACL entry that blocks udp traffic to port 53."},
				{Role: RoleAssistant, Content: "acl"},
			},
		},
		TaskSynthRouteMap: {
			System: `You are a network configuration synthesizer. Generate exactly one route-map stanza in Cisco IOS syntax implementing the user's intent, together with any prefix-lists, community-lists or as-path access-lists it references. Do not reference data structures you do not define. Output only configuration text, no commentary.`,
			FewShots: []Message{
				{Role: RoleUser, Content: "Write a route-map stanza that denies routes originating from ASN 65001."},
				{Role: RoleAssistant, Content: "ip as-path access-list AS_LIST permit _65001$\nroute-map NEW_STANZA deny 10\n match as-path AS_LIST\n"},
				{Role: RoleUser, Content: "Write a route-map stanza that permits routes with the prefix 10.0.0.0/8 with mask length less than or equal to 24, setting the local-preference to 200."},
				{Role: RoleAssistant, Content: "ip prefix-list PREFIX_10 seq 10 permit 10.0.0.0/8 le 24\nroute-map SET_LOCAL_PREF permit 10\n match ip address prefix-list PREFIX_10\n set local-preference 200\n"},
			},
		},
		TaskSynthACL: {
			System: `You are a network configuration synthesizer. Generate exactly one extended access-list entry in Cisco IOS syntax implementing the user's intent, inside an "ip access-list extended" block. Output only configuration text, no commentary.`,
			FewShots: []Message{
				{Role: RoleUser, Content: "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 80."},
				{Role: RoleAssistant, Content: "ip access-list extended NEW_ENTRY\n permit tcp 10.0.0.0 0.0.0.255 any eq 80\n"},
			},
		},
		TaskSpecRouteMap: {
			System: `You are a network configuration specifier. Translate the user's route-map intent into a JSON behavioural specification with fields: permit (bool), prefix (list of "A.B.C.D/L:lo-hi"), community (regex between slashes or literal), asPath (regex between slashes), localPreference, metric, tag, and set {metric, localPreference, weight, tag, community, additive, nextHopIp}. Output only JSON.`,
			FewShots: []Message{
				{Role: RoleUser, Content: "Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55."},
				{Role: RoleAssistant, Content: "{\n  \"permit\": true,\n  \"prefix\": [\"100.0.0.0/16:16-23\"],\n  \"community\": \"300:3\",\n  \"set\": {\n    \"metric\": 55\n  }\n}"},
			},
		},
		TaskSpecACL: {
			System: `You are a network configuration specifier. Translate the user's ACL intent into a JSON behavioural specification with fields: permit, protocol, src, dst, srcPort, dstPort, established. Addresses are "any", a host IP in CIDR /32 form, or a CIDR block. Output only JSON.`,
			FewShots: []Message{
				{Role: RoleUser, Content: "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 80."},
				{Role: RoleAssistant, Content: "{\n  \"permit\": true,\n  \"protocol\": \"tcp\",\n  \"src\": \"10.0.0.0/24\",\n  \"dst\": \"any\",\n  \"dstPort\": \"eq 80\"\n}"},
			},
		},
	}}
}

// Get returns the prompt entry for a task.
func (s *PromptStore) Get(task Task) PromptEntry { return s.prompts[task] }

// BuildRequest assembles a full request: system prompt, few-shot examples,
// then the conversation turns.
func (s *PromptStore) BuildRequest(task Task, turns ...Message) Request {
	e := s.prompts[task]
	msgs := make([]Message, 0, len(e.FewShots)+len(turns))
	msgs = append(msgs, e.FewShots...)
	msgs = append(msgs, turns...)
	return Request{Task: task, System: e.System, Messages: msgs}
}
