package llm

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const chatOK = `{"choices":[{"message":{"role":"assistant","content":"route-map X permit 10\n"}}]}`

// retryServer fails the first n requests with the given status, then
// succeeds.
func retryServer(t *testing.T, failures int, status int, count *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := count.Add(1)
		if n <= int64(failures) {
			w.WriteHeader(status)
			w.Write([]byte(`{"error":{"message":"overloaded"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(chatOK))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestHTTPClientRetriesTransientFailures(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusInternalServerError, http.StatusServiceUnavailable} {
		var count atomic.Int64
		srv := retryServer(t, 2, status, &count)
		c := &HTTPClient{BaseURL: srv.URL, Model: "m", MaxRetries: 3, RetryBaseDelay: time.Millisecond}
		resp, err := c.Complete(context.Background(), Request{Task: TaskSynthRouteMap,
			Messages: []Message{{Role: RoleUser, Content: "x"}}})
		if err != nil {
			t.Fatalf("status %d: %v after %d attempts", status, err, count.Load())
		}
		if !strings.Contains(resp.Content, "route-map X") {
			t.Errorf("status %d: unexpected content %q", status, resp.Content)
		}
		if count.Load() != 3 {
			t.Errorf("status %d: %d attempts, want 3", status, count.Load())
		}
	}
}

func TestHTTPClientRetryBudgetExhausted(t *testing.T) {
	var count atomic.Int64
	srv := retryServer(t, 1000, http.StatusInternalServerError, &count)
	c := &HTTPClient{BaseURL: srv.URL, Model: "m", MaxRetries: 2, RetryBaseDelay: time.Millisecond}
	_, err := c.Complete(context.Background(), Request{Task: TaskSynthRouteMap,
		Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if count.Load() != 3 { // initial attempt + 2 retries
		t.Errorf("%d attempts, want 3", count.Load())
	}
}

func TestHTTPClientDoesNotRetryClientErrors(t *testing.T) {
	var count atomic.Int64
	srv := retryServer(t, 1000, http.StatusBadRequest, &count)
	c := &HTTPClient{BaseURL: srv.URL, Model: "m", MaxRetries: 3, RetryBaseDelay: time.Millisecond}
	_, err := c.Complete(context.Background(), Request{Task: TaskSynthRouteMap,
		Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil {
		t.Fatal("want error on 400")
	}
	if count.Load() != 1 {
		t.Errorf("%d attempts, want 1 (4xx is not retryable)", count.Load())
	}
}

func TestHTTPClientHonorsRetryAfter(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(chatOK))
	}))
	defer srv.Close()
	// A huge base delay would stall the test; the Retry-After: 0 hint must
	// override it.
	c := &HTTPClient{BaseURL: srv.URL, Model: "m", MaxRetries: 1, RetryBaseDelay: time.Hour}
	start := time.Now()
	if _, err := c.Complete(context.Background(), Request{Task: TaskSynthRouteMap,
		Messages: []Message{{Role: RoleUser, Content: "x"}}}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry took %s; Retry-After hint ignored", elapsed)
	}
}

func TestHTTPClientRetrySleepIsContextAware(t *testing.T) {
	var count atomic.Int64
	srv := retryServer(t, 1000, http.StatusTooManyRequests, &count)
	c := &HTTPClient{BaseURL: srv.URL, Model: "m", MaxRetries: 5, RetryBaseDelay: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Complete(ctx, Request{Task: TaskSynthRouteMap,
		Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil {
		t.Fatal("want error when context expires mid-backoff")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Errorf("error should report abandoned retries: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("backoff ignored context cancellation (%s)", elapsed)
	}
}

func TestRetryDelayClampsRetryAfterHeader(t *testing.T) {
	c := &HTTPClient{RetryBaseDelay: time.Millisecond}
	cases := []struct {
		name  string
		rerr  *retryableError
		want  time.Duration
		exact bool
	}{
		{name: "hour-long-hint-clamped", exact: true, want: maxRetryDelay,
			rerr: &retryableError{retryAfter: time.Hour, hasRetryAfter: true}},
		{name: "zero-hint-immediate", exact: true, want: 0,
			rerr: &retryableError{retryAfter: 0, hasRetryAfter: true}},
		{name: "modest-hint-honored", exact: true, want: 2 * time.Second,
			rerr: &retryableError{retryAfter: 2 * time.Second, hasRetryAfter: true}},
		{name: "no-hint-uses-backoff", exact: false, want: maxRetryDelay,
			rerr: &retryableError{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.retryDelay(0, tc.rerr)
			if tc.exact && got != tc.want {
				t.Errorf("retryDelay = %v, want %v", got, tc.want)
			}
			if got > maxRetryDelay {
				t.Errorf("retryDelay = %v exceeds the %v cap", got, maxRetryDelay)
			}
		})
	}
}
