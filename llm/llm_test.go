package llm

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/spec"
)

const paperPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

func complete(t *testing.T, c Client, task Task, text string) Response {
	t.Helper()
	store := NewPromptStore()
	resp, err := c.Complete(context.Background(), store.BuildRequest(task, Message{Role: RoleUser, Content: text}))
	if err != nil {
		t.Fatalf("Complete(%v): %v", task, err)
	}
	return resp
}

func TestSimClassify(t *testing.T) {
	sim := NewSimLLM()
	if got := complete(t, sim, TaskClassify, paperPrompt).Content; got != "route-map" {
		t.Errorf("classify = %q", got)
	}
	if got := complete(t, sim, TaskClassify, "block tcp traffic to port 22").Content; got != "acl" {
		t.Errorf("classify = %q", got)
	}
	if sim.Calls(TaskClassify) != 2 || sim.TotalCalls() != 2 {
		t.Errorf("call counts wrong: %d/%d", sim.Calls(TaskClassify), sim.TotalCalls())
	}
}

func TestSimSynthesizesPaperSnippet(t *testing.T) {
	sim := NewSimLLM()
	resp := complete(t, sim, TaskSynthRouteMap, paperPrompt)
	cfg, err := ParseSnippet(resp)
	if err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, resp.Content)
	}
	rm := cfg.RouteMaps["SET_METRIC"]
	if rm == nil || len(rm.Stanzas) != 1 {
		t.Fatalf("expected one SET_METRIC stanza:\n%s", resp.Content)
	}
	st := rm.Stanzas[0]
	if !st.Permit || len(st.Matches) != 2 || len(st.Sets) != 1 {
		t.Errorf("stanza shape wrong:\n%s", resp.Content)
	}
	if st.Sets[0].(ios.SetMetric).Value != 55 {
		t.Error("metric != 55")
	}
	// The snippet verifies against the simultaneously generated spec.
	specResp := complete(t, sim, TaskSpecRouteMap, paperPrompt)
	sp, err := spec.ParseRouteMapSpec([]byte(specResp.Content))
	if err != nil {
		t.Fatalf("spec does not parse: %v\n%s", err, specResp.Content)
	}
	violations, err := spec.VerifyRouteMapSnippet(cfg, "SET_METRIC", sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("correct output should verify: %+v", violations)
	}
}

func TestSimFaultPlanCausesVerificationFailureThenRecovers(t *testing.T) {
	for _, fault := range []Fault{FaultWrongValue, FaultWidenMask, FaultDropMatch, FaultFlipAction} {
		sim := NewSimLLM(fault)
		resp := complete(t, sim, TaskSynthRouteMap, paperPrompt)
		cfg, err := ParseSnippet(resp)
		if err != nil {
			t.Fatalf("fault %v output should still parse: %v", fault, err)
		}
		sp, _ := spec.ParseRouteMapSpec([]byte(complete(t, sim, TaskSpecRouteMap, paperPrompt).Content))
		name := firstMapName(cfg)
		violations, err := spec.VerifyRouteMapSnippet(cfg, name, sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) == 0 {
			t.Errorf("fault %v produced an output that still verifies:\n%s", fault, resp.Content)
		}
		// Retry: the plan is exhausted, so the next call is correct.
		resp2 := complete(t, sim, TaskSynthRouteMap, paperPrompt)
		cfg2, err := ParseSnippet(resp2)
		if err != nil {
			t.Fatal(err)
		}
		violations, err = spec.VerifyRouteMapSnippet(cfg2, "SET_METRIC", sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Errorf("fault %v retry should verify: %+v", fault, violations)
		}
	}
}

func firstMapName(cfg *ios.Config) string {
	for name := range cfg.RouteMaps {
		return name
	}
	return ""
}

func TestSimSyntaxFault(t *testing.T) {
	sim := NewSimLLM(FaultSyntax)
	resp := complete(t, sim, TaskSynthRouteMap, paperPrompt)
	if _, err := ParseSnippet(resp); err == nil {
		t.Fatal("syntax fault should not parse")
	}
}

func TestSimACLSynthesisAndSpec(t *testing.T) {
	sim := NewSimLLM()
	text := "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to host 8.8.8.8 on port 443."
	resp := complete(t, sim, TaskSynthACL, text)
	cfg, err := ParseSnippet(resp)
	if err != nil {
		t.Fatalf("%v\n%s", err, resp.Content)
	}
	sp, err := spec.ParseACLSpec([]byte(complete(t, sim, TaskSpecACL, text).Content))
	if err != nil {
		t.Fatal(err)
	}
	violations, err := spec.VerifyACLSnippet(cfg, "NEW_ENTRY", sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %+v", violations)
	}
}

func TestSimFeedbackMarkerExtraction(t *testing.T) {
	sim := NewSimLLM()
	store := NewPromptStore()
	// Retry turn: feedback followed by the restated intent.
	feedback := "The previous stanza was rejected: route 100.0.0.0/24 should be handled but is not matched." +
		FeedbackIntentMarker + paperPrompt
	resp, err := sim.Complete(context.Background(), store.BuildRequest(TaskSynthRouteMap,
		Message{Role: RoleUser, Content: paperPrompt},
		Message{Role: RoleAssistant, Content: "..."},
		Message{Role: RoleUser, Content: feedback},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSnippet(resp); err != nil {
		t.Fatalf("feedback turn not handled: %v", err)
	}
}

func TestSimRejectsUnparseableIntent(t *testing.T) {
	sim := NewSimLLM()
	store := NewPromptStore()
	_, err := sim.Complete(context.Background(), store.BuildRequest(TaskSynthRouteMap,
		Message{Role: RoleUser, Content: "please make the network good"}))
	if err == nil {
		t.Fatal("nonsense intent should fail")
	}
}

func TestPromptStoreShapes(t *testing.T) {
	store := NewPromptStore()
	for _, task := range []Task{TaskClassify, TaskSynthRouteMap, TaskSynthACL, TaskSpecRouteMap, TaskSpecACL} {
		e := store.Get(task)
		if e.System == "" {
			t.Errorf("task %v has no system prompt", task)
		}
		if len(e.FewShots)%2 != 0 {
			t.Errorf("task %v few-shots not paired", task)
		}
		req := store.BuildRequest(task, Message{Role: RoleUser, Content: "x"})
		if req.Task != task || len(req.Messages) != len(e.FewShots)+1 {
			t.Errorf("BuildRequest shape wrong for %v", task)
		}
	}
	// Few-shot synthesis examples must themselves parse.
	for _, task := range []Task{TaskSynthRouteMap, TaskSynthACL} {
		for _, m := range store.Get(task).FewShots {
			if m.Role == RoleAssistant {
				if _, err := ios.Parse(m.Content); err != nil {
					t.Errorf("few-shot for %v does not parse: %v", task, err)
				}
			}
		}
	}
	// Few-shot spec examples must parse as JSON.
	for _, m := range store.Get(TaskSpecRouteMap).FewShots {
		if m.Role == RoleAssistant {
			if _, err := spec.ParseRouteMapSpec([]byte(m.Content)); err != nil {
				t.Errorf("spec few-shot invalid: %v", err)
			}
		}
	}
}

func TestHTTPClient(t *testing.T) {
	var gotBody chatRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" {
			http.NotFound(w, r)
			return
		}
		if auth := r.Header.Get("Authorization"); auth != "Bearer test-key" {
			t.Errorf("auth header = %q", auth)
		}
		if err := json.NewDecoder(r.Body).Decode(&gotBody); err != nil {
			t.Error(err)
		}
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"choices": []map[string]interface{}{
				{"message": map[string]string{"role": "assistant", "content": "route-map"}},
			},
		})
	}))
	defer srv.Close()
	c := &HTTPClient{BaseURL: srv.URL + "/v1", Model: "gpt-4", APIKey: "test-key"}
	resp, err := c.Complete(context.Background(), NewPromptStore().BuildRequest(TaskClassify,
		Message{Role: RoleUser, Content: paperPrompt}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "route-map" {
		t.Errorf("content = %q", resp.Content)
	}
	if gotBody.Model != "gpt-4" || len(gotBody.Messages) == 0 || gotBody.Messages[0].Role != RoleSystem {
		t.Errorf("request body wrong: %+v", gotBody)
	}
}

func TestHTTPClientErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"message":"overloaded"}}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := &HTTPClient{BaseURL: srv.URL, Model: "gpt-4"}
	_, err := c.Complete(context.Background(), Request{Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v", err)
	}

	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"choices":[]}`))
	}))
	defer empty.Close()
	c = &HTTPClient{BaseURL: empty.URL, Model: "gpt-4"}
	if _, err := c.Complete(context.Background(), Request{}); err == nil {
		t.Fatal("empty choices should fail")
	}
}

func TestSimACLFaultVariants(t *testing.T) {
	// Each ACL fault kind yields output that fails spec verification, then
	// the retry passes — same contract as route maps.
	text := "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to host 8.8.8.8 on port 443."
	for _, fault := range []Fault{FaultWrongValue, FaultWidenMask, FaultDropMatch, FaultFlipAction} {
		sim := NewSimLLM(fault)
		resp := complete(t, sim, TaskSynthACL, text)
		cfg, err := ParseSnippet(resp)
		if err != nil {
			t.Fatalf("fault %v output should parse: %v", fault, err)
		}
		sp, err := spec.ParseACLSpec([]byte(complete(t, sim, TaskSpecACL, text).Content))
		if err != nil {
			t.Fatal(err)
		}
		violations, err := spec.VerifyACLSnippet(cfg, "NEW_ENTRY", sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) == 0 {
			t.Errorf("fault %v not caught:\n%s", fault, resp.Content)
		}
		resp2 := complete(t, sim, TaskSynthACL, text)
		cfg2, err := ParseSnippet(resp2)
		if err != nil {
			t.Fatal(err)
		}
		violations, err = spec.VerifyACLSnippet(cfg2, "NEW_ENTRY", sp)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Errorf("fault %v retry still wrong: %+v", fault, violations)
		}
	}
	// Syntax fault on the ACL pipeline.
	sim := NewSimLLM(FaultSyntax)
	if _, err := ParseSnippet(complete(t, sim, TaskSynthACL, text)); err == nil {
		t.Error("syntax fault should not parse")
	}
}

func TestTaskAndFaultStrings(t *testing.T) {
	for task, want := range map[Task]string{
		TaskClassify: "classify", TaskSynthRouteMap: "synth-route-map",
		TaskSynthACL: "synth-acl", TaskSpecRouteMap: "spec-route-map",
		TaskSpecACL: "spec-acl", Task(99): "task(99)",
	} {
		if task.String() != want {
			t.Errorf("Task(%d).String() = %q", int(task), task.String())
		}
	}
	for fault, want := range map[Fault]string{
		FaultNone: "none", FaultWrongValue: "wrong-value", FaultWidenMask: "widen-mask",
		FaultDropMatch: "drop-match", FaultFlipAction: "flip-action", FaultSyntax: "syntax",
		Fault(99): "unknown",
	} {
		if fault.String() != want {
			t.Errorf("Fault(%d).String() = %q", int(fault), fault.String())
		}
	}
}

func TestSimUnsupportedTask(t *testing.T) {
	sim := NewSimLLM()
	_, err := sim.Complete(context.Background(), Request{Task: Task(42),
		Messages: []Message{{Role: RoleUser, Content: "x"}}})
	var ute *UnsupportedTaskError
	if !errors.As(err, &ute) {
		t.Fatalf("err = %v, want UnsupportedTaskError", err)
	}
	if ute.Error() == "" {
		t.Error("empty error text")
	}
}
