package llm

import (
	"fmt"

	"github.com/clarifynet/clarify/intent"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/spec"
)

// RenderRouteMapSnippet renders a structured route-map intent as the IOS
// snippet a well-behaved LLM would produce: one stanza plus the ancillary
// lists it references, using the paper's naming style (COM_LIST, PREFIX_100,
// SET_METRIC).
func RenderRouteMapSnippet(in *intent.RouteMapIntent) (*ios.Config, string) {
	cfg := ios.NewConfig()
	st := &ios.Stanza{Seq: 10, Permit: in.Permit}

	if in.Community != "" {
		name := "COM_LIST"
		if in.CommunityExact {
			cfg.AddCommunityList(name, true, ios.CommunityListEntry{
				Permit: true, Values: []string{"_" + in.Community + "_"},
			})
		} else {
			cfg.AddCommunityList(name, true, ios.CommunityListEntry{
				Permit: true, Values: []string{in.Community},
			})
		}
		st.Matches = append(st.Matches, ios.MatchCommunity{List: name})
	}
	if len(in.Prefixes) > 0 {
		name := fmt.Sprintf("PREFIX_%d", in.Prefixes[0].Prefix.Addr().As4()[0])
		var entries []ios.PrefixListEntry
		for i, pc := range in.Prefixes {
			e := ios.PrefixListEntry{Seq: (i + 1) * 10, Permit: true, Prefix: pc.Prefix}
			bits := pc.Prefix.Bits()
			switch {
			case pc.LenLo == bits && pc.LenHi == bits:
				// exact length: no ge/le
			case pc.LenLo == bits:
				e.Le = pc.LenHi
			case pc.LenHi == 32:
				e.Ge = pc.LenLo
			default:
				e.Ge, e.Le = pc.LenLo, pc.LenHi
			}
			entries = append(entries, e)
		}
		cfg.AddPrefixList(name, entries...)
		st.Matches = append(st.Matches, ios.MatchPrefixList{List: name})
	}
	if in.ASPathRegex != "" {
		cfg.AddASPathList("AS_LIST", ios.ASPathEntry{Permit: true, Regex: in.ASPathRegex})
		st.Matches = append(st.Matches, ios.MatchASPath{List: "AS_LIST"})
	}
	if in.LocalPref != nil {
		st.Matches = append(st.Matches, ios.MatchLocalPref{Value: *in.LocalPref})
	}
	if in.Metric != nil {
		st.Matches = append(st.Matches, ios.MatchMetric{Value: *in.Metric})
	}
	if in.Tag != nil {
		st.Matches = append(st.Matches, ios.MatchTag{Value: *in.Tag})
	}

	if in.SetMetric != nil {
		st.Sets = append(st.Sets, ios.SetMetric{Value: *in.SetMetric})
	}
	if in.SetLocalPref != nil {
		st.Sets = append(st.Sets, ios.SetLocalPref{Value: *in.SetLocalPref})
	}
	if len(in.SetCommunities) > 0 {
		st.Sets = append(st.Sets, ios.SetCommunity{Communities: in.SetCommunities, Additive: in.SetAdditive})
	}
	if in.SetWeight != nil {
		st.Sets = append(st.Sets, ios.SetWeight{Value: *in.SetWeight})
	}
	if in.SetTag != nil {
		st.Sets = append(st.Sets, ios.SetTag{Value: *in.SetTag})
	}
	if in.SetNextHop != "" {
		cfgAddNextHop(st, in.SetNextHop)
	}

	name := mapName(in)
	rm := cfg.AddRouteMap(name)
	rm.Stanzas = append(rm.Stanzas, st)
	return cfg, name
}

func cfgAddNextHop(st *ios.Stanza, addr string) {
	// Rendering through the parser keeps address validation in one place.
	tmp := ios.MustParse("route-map T permit 10\n set ip next-hop " + addr + "\n")
	st.Sets = append(st.Sets, tmp.RouteMaps["T"].Stanzas[0].Sets[0])
}

// mapName chooses the paper-style route-map name from the dominant action.
func mapName(in *intent.RouteMapIntent) string {
	switch {
	case in.SetMetric != nil:
		return "SET_METRIC"
	case in.SetLocalPref != nil:
		return "SET_LOCAL_PREF"
	case len(in.SetCommunities) > 0:
		return "SET_COMMUNITY"
	case in.SetNextHop != "":
		return "SET_NEXT_HOP"
	case !in.Permit:
		return "DENY_ROUTES"
	default:
		return "NEW_STANZA"
	}
}

// RenderACLSnippet renders a structured ACL intent as a one-entry named ACL.
func RenderACLSnippet(in *intent.ACLIntent) (*ios.Config, string, error) {
	s := aclIntentSpec(in)
	ace, err := s.ToACE()
	if err != nil {
		return nil, "", err
	}
	cfg := ios.NewConfig()
	acl := cfg.AddACL("NEW_ENTRY")
	ace.Seq = 10
	acl.Entries = append(acl.Entries, ace)
	return cfg, "NEW_ENTRY", nil
}

// RenderRouteMapSpec renders the JSON behavioural specification for a
// route-map intent (Figure 1 step 3, second LLM call).
func RenderRouteMapSpec(in *intent.RouteMapIntent) *spec.RouteMapSpec {
	s := &spec.RouteMapSpec{Permit: in.Permit}
	for _, pc := range in.Prefixes {
		s.Prefix = append(s.Prefix, pc.String())
	}
	if in.Community != "" {
		if in.CommunityExact {
			s.Community = in.Community
		} else {
			s.Community = "/" + in.Community + "/"
		}
	}
	if in.ASPathRegex != "" {
		s.ASPath = "/" + in.ASPathRegex + "/"
	}
	s.LocalPref = in.LocalPref
	s.Metric = in.Metric
	s.Tag = in.Tag
	s.Set = spec.SetSpec{
		Metric:      in.SetMetric,
		LocalPref:   in.SetLocalPref,
		Weight:      in.SetWeight,
		Tag:         in.SetTag,
		Communities: append([]string(nil), in.SetCommunities...),
		Additive:    in.SetAdditive,
		NextHop:     in.SetNextHop,
	}
	return s
}

// aclIntentSpec converts an ACL intent to its spec (the two structures are
// intentionally parallel).
func aclIntentSpec(in *intent.ACLIntent) *spec.ACLSpec {
	return &spec.ACLSpec{
		Permit:      in.Permit,
		Protocol:    in.Protocol,
		Src:         in.Src,
		Dst:         in.Dst,
		SrcPort:     in.SrcPort,
		DstPort:     in.DstPort,
		Established: in.Established,
		ICMP:        in.ICMP,
	}
}

// RenderACLSpec renders the JSON behavioural specification for an ACL intent.
func RenderACLSpec(in *intent.ACLIntent) *spec.ACLSpec { return aclIntentSpec(in) }
