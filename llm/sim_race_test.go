package llm

import (
	"context"
	"sync"
	"testing"
)

// TestSimLLMConcurrentComplete hammers one SimLLM from many goroutines
// across every task kind; run under -race it proves the simulator (shared
// call counters and the fault-injection plan) is safe for the clarifyd
// worker pool, where many pipelines share a client.
func TestSimLLMConcurrentComplete(t *testing.T) {
	const (
		workers = 16
		rounds  = 25
	)
	// Enough planned faults that consumption of the shared plan overlaps
	// across goroutines.
	plan := make([]Fault, 0, workers*rounds)
	for i := 0; i < workers*rounds/2; i++ {
		plan = append(plan, Fault(1+i%5))
	}
	sim := NewSimLLM(plan...)

	const rmIntent = "Write a route-map stanza that permits routes containing the prefix " +
		"100.0.0.0/16 with mask length less than or equal to 23 and tagged " +
		"with the community 300:3. Their MED value should be set to 55."
	const aclIntent = "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 22."

	reqs := []Request{
		{Task: TaskClassify, Messages: []Message{{Role: RoleUser, Content: rmIntent}}},
		{Task: TaskSynthRouteMap, Messages: []Message{{Role: RoleUser, Content: rmIntent}}},
		{Task: TaskSynthACL, Messages: []Message{{Role: RoleUser, Content: aclIntent}}},
		{Task: TaskSpecRouteMap, Messages: []Message{{Role: RoleUser, Content: rmIntent}}},
		{Task: TaskSpecACL, Messages: []Message{{Role: RoleUser, Content: aclIntent}}},
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := reqs[(w+i)%len(reqs)]
				resp, err := sim.Complete(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Content == "" {
					errs <- &UnsupportedTaskError{Task: req.Task}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sim.TotalCalls(); got != workers*rounds {
		t.Errorf("TotalCalls = %d, want %d", got, workers*rounds)
	}
}
