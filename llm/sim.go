package llm

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/clarifynet/clarify/intent"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/obs"
)

// Fault is one kind of realistic LLM synthesis error the simulator can
// inject, so the verification loop of Figure 1 (steps 3–5) is exercised the
// way a fallible model would exercise it.
type Fault int

// Fault kinds.
const (
	// FaultNone produces a correct output (explicit no-op plan slot).
	FaultNone Fault = iota
	// FaultWrongValue perturbs a numeric set/match value by one.
	FaultWrongValue
	// FaultWidenMask loosens a prefix length bound by one bit.
	FaultWidenMask
	// FaultDropMatch omits one match clause, widening the stanza.
	FaultDropMatch
	// FaultFlipAction swaps permit and deny.
	FaultFlipAction
	// FaultSyntax emits malformed IOS text.
	FaultSyntax
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultWrongValue:
		return "wrong-value"
	case FaultWidenMask:
		return "widen-mask"
	case FaultDropMatch:
		return "drop-match"
	case FaultFlipAction:
		return "flip-action"
	case FaultSyntax:
		return "syntax"
	default:
		return "unknown"
	}
}

// ParseFault inverts Fault.String — the form faults take in CLI flags and
// journal records.
func ParseFault(name string) (Fault, error) {
	for _, f := range []Fault{FaultNone, FaultWrongValue, FaultWidenMask,
		FaultDropMatch, FaultFlipAction, FaultSyntax} {
		if f.String() == name {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("llm: unknown fault %q", name)
}

// ParseFaultPlan turns a comma-separated plan ("wrong-value,syntax") into
// the simulator's fault sequence. Empty or blank input is an empty plan.
func ParseFaultPlan(plan string) ([]Fault, error) {
	if strings.TrimSpace(plan) == "" {
		return nil, nil
	}
	var out []Fault
	for _, name := range strings.Split(plan, ",") {
		f, err := ParseFault(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// SimLLM is the deterministic offline stand-in for GPT-4: it parses the
// restricted-English intent in the last user turn and renders the
// corresponding artifact for the request's task. A fault plan makes
// individual synthesis calls produce realistic wrong outputs; once the plan
// is exhausted every output is correct (modelling the LLM converging under
// counterexample feedback).
type SimLLM struct {
	mu    sync.Mutex
	plan  []Fault
	calls map[Task]int
}

// NewSimLLM returns a correct-by-default simulator.
func NewSimLLM(faultPlan ...Fault) *SimLLM {
	return &SimLLM{plan: faultPlan, calls: map[Task]int{}}
}

// Calls reports how many completions have been served for a task.
func (s *SimLLM) Calls(task Task) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[task]
}

// TotalCalls reports all completions served (the paper's "#LLM calls").
func (s *SimLLM) TotalCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.calls {
		n += c
	}
	return n
}

// nextFault consumes the next planned fault for a synthesis call.
func (s *SimLLM) nextFault() Fault {
	if len(s.plan) == 0 {
		return FaultNone
	}
	f := s.plan[0]
	s.plan = s.plan[1:]
	return f
}

// Complete implements Client.
func (s *SimLLM) Complete(ctx context.Context, req Request) (Response, error) {
	s.mu.Lock()
	s.calls[req.Task]++
	s.mu.Unlock()
	sp := obs.SpanFromContext(ctx)
	sp.SetStr("llm-task", req.Task.String())

	userText := lastUserMessage(req.Messages)
	switch req.Task {
	case TaskClassify:
		return Response{Content: intent.ClassifyText(userText).String()}, nil

	case TaskSynthRouteMap:
		in, err := intent.ParseRouteMapText(userText)
		if err != nil {
			return Response{}, err
		}
		s.mu.Lock()
		fault := s.nextFault()
		s.mu.Unlock()
		if fault != FaultNone {
			sp.SetStr("sim-fault", fault.String())
		}
		if fault == FaultSyntax {
			return Response{Content: "route-map BROKEN permit\n match ip address prefix-list\n"}, nil
		}
		applyRouteMapFault(in, fault)
		cfg, _ := RenderRouteMapSnippet(in)
		return Response{Content: cfg.Print()}, nil

	case TaskSynthACL:
		in, err := intent.ParseACLText(userText)
		if err != nil {
			return Response{}, err
		}
		s.mu.Lock()
		fault := s.nextFault()
		s.mu.Unlock()
		if fault != FaultNone {
			sp.SetStr("sim-fault", fault.String())
		}
		if fault == FaultSyntax {
			return Response{Content: "ip access-list extended BROKEN\n permit tcp\n"}, nil
		}
		applyACLFault(in, fault)
		cfg, _, err := RenderACLSnippet(in)
		if err != nil {
			return Response{}, err
		}
		return Response{Content: cfg.Print()}, nil

	case TaskSpecRouteMap:
		in, err := intent.ParseRouteMapText(userText)
		if err != nil {
			return Response{}, err
		}
		return Response{Content: RenderRouteMapSpec(in).JSON()}, nil

	case TaskSpecACL:
		in, err := intent.ParseACLText(userText)
		if err != nil {
			return Response{}, err
		}
		return Response{Content: RenderACLSpec(in).JSON()}, nil
	}
	return Response{}, &UnsupportedTaskError{Task: req.Task}
}

// UnsupportedTaskError reports a request for a task the simulator does not
// implement.
type UnsupportedTaskError struct{ Task Task }

func (e *UnsupportedTaskError) Error() string {
	return "llm: unsupported task " + e.Task.String()
}

// lastUserMessage extracts the most recent user turn; retries append
// feedback turns, and the simulator (like a real model) regenerates from the
// original intent text, which the feedback turn quotes below a marker line.
func lastUserMessage(msgs []Message) string {
	for i := len(msgs) - 1; i >= 0; i-- {
		if msgs[i].Role == RoleUser {
			content := msgs[i].Content
			if idx := strings.Index(content, FeedbackIntentMarker); idx >= 0 {
				return content[idx+len(FeedbackIntentMarker):]
			}
			return content
		}
	}
	return ""
}

// FeedbackIntentMarker separates verifier feedback from the restated intent
// in retry turns (see clarify.Session).
const FeedbackIntentMarker = "\nOriginal intent:\n"

func applyRouteMapFault(in *intent.RouteMapIntent, f Fault) {
	switch f {
	case FaultWrongValue:
		switch {
		case in.SetMetric != nil:
			*in.SetMetric++
		case in.SetLocalPref != nil:
			*in.SetLocalPref++
		case in.LocalPref != nil:
			*in.LocalPref++
		case in.Metric != nil:
			*in.Metric++
		default:
			in.Permit = !in.Permit
		}
	case FaultWidenMask:
		if len(in.Prefixes) > 0 && in.Prefixes[0].LenHi < 32 {
			in.Prefixes[0].LenHi++
		} else if in.SetMetric != nil {
			*in.SetMetric++
		} else {
			in.Permit = !in.Permit
		}
	case FaultDropMatch:
		switch {
		case in.Community != "":
			in.Community = ""
		case in.ASPathRegex != "":
			in.ASPathRegex = ""
		case in.LocalPref != nil:
			in.LocalPref = nil
		case len(in.Prefixes) > 0 && (in.Community != "" || in.ASPathRegex != ""):
			in.Prefixes = nil
		default:
			in.Permit = !in.Permit
		}
	case FaultFlipAction:
		in.Permit = !in.Permit
		if !in.Permit {
			// A deny stanza with set clauses is legal IOS but the sets are
			// dead; models produce exactly this shape of error.
		}
	}
}

func applyACLFault(in *intent.ACLIntent, f Fault) {
	switch f {
	case FaultWrongValue:
		if strings.HasPrefix(in.DstPort, "eq ") {
			in.DstPort = "eq 8080"
		} else {
			in.Permit = !in.Permit
		}
	case FaultWidenMask, FaultDropMatch:
		if in.Dst != "any" {
			in.Dst = "any"
		} else if in.Src != "any" {
			in.Src = "any"
		} else {
			in.Permit = !in.Permit
		}
	case FaultFlipAction:
		in.Permit = !in.Permit
	}
}

var _ Client = (*SimLLM)(nil)

// ParseSnippet is a convenience for turning a synthesis response back into a
// configuration, shared by the workflow and tests.
func ParseSnippet(resp Response) (*ios.Config, error) {
	return ios.Parse(resp.Content)
}
