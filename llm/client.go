// Package llm provides the language-model substrate of the Clarify pipeline:
// a provider-neutral Client interface, the prompt database of Figure 1 step
// (2), a deterministic simulated LLM with an injectable error model (the
// offline stand-in for GPT-4 documented in DESIGN.md), and an
// OpenAI-compatible HTTP client for users with a real endpoint.
package llm

import (
	"context"
	"fmt"
)

// Role values for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// Task identifies which pipeline step a request serves. The task is implicit
// in the system prompt text for a real LLM; carrying it explicitly lets the
// simulated LLM dispatch without natural-language understanding of its own
// instructions.
type Task int

// Pipeline tasks, in Figure 1 order.
const (
	TaskClassify Task = iota
	TaskSynthRouteMap
	TaskSynthACL
	TaskSpecRouteMap
	TaskSpecACL
)

func (t Task) String() string {
	switch t {
	case TaskClassify:
		return "classify"
	case TaskSynthRouteMap:
		return "synth-route-map"
	case TaskSynthACL:
		return "synth-acl"
	case TaskSpecRouteMap:
		return "spec-route-map"
	case TaskSpecACL:
		return "spec-acl"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Request is one completion request.
type Request struct {
	Task     Task
	System   string
	Messages []Message
}

// Response is the model's reply.
type Response struct {
	Content string
}

// Client is a chat-completion provider.
type Client interface {
	Complete(ctx context.Context, req Request) (Response, error)
}
