package clarify

import (
	"context"
	"testing"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
)

// TestAmbiguityAttrsOnTrace is the telemetry acceptance walkthrough: the
// paper's §2.1 example with one injected synthesis fault, traced. The
// disambiguate span must carry the ledger summary as typed float attrs
// (ambiguity.before_bits / after_bits), and each question-wait child the
// per-question information gain.
func TestAmbiguityAttrsOnTrace(t *testing.T) {
	var captured *obs.Trace
	s := &Session{
		Client: llm.NewSimLLM(llm.FaultWrongValue),
		Config: ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return true, nil
		}),
		Observer: obs.SinkFunc(func(tr *obs.Trace) { captured = tr }),
	}
	res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("observer never received a trace")
	}

	// The result carries the same ledger the trace is annotated from.
	if res.RouteInsert == nil || res.RouteInsert.Ambiguity == nil {
		t.Fatal("traced route insert has no ambiguity ledger")
	}
	led := res.RouteInsert.Ambiguity
	if led.Kind != "route-map" || led.Strategy != "binary" {
		t.Errorf("ledger = %s/%s, want route-map/binary", led.Kind, led.Strategy)
	}
	if led.InitialBits <= 0 {
		t.Errorf("InitialBits = %v, want > 0 (the walkthrough has overlapping candidates)", led.InitialBits)
	}
	if led.ResidualBits != 0 {
		t.Errorf("ResidualBits = %v, want 0 (binary search pins the slot)", led.ResidualBits)
	}
	if led.QuestionCount() == 0 || led.Efficiency() <= 0 {
		t.Errorf("ledger asked %d questions at %v bits/question, want > 0",
			led.QuestionCount(), led.Efficiency())
	}

	dsp := captured.Find("disambiguate")
	if dsp == nil {
		t.Fatal("trace has no disambiguate span")
	}
	before, ok := dsp.Attr("ambiguity.before_bits")
	if !ok || before.Kind != obs.AttrFloat || before.Float != led.InitialBits {
		t.Errorf("ambiguity.before_bits = %+v ok=%v, want float %v", before, ok, led.InitialBits)
	}
	after, ok := dsp.Attr("ambiguity.after_bits")
	if !ok || after.Kind != obs.AttrFloat || after.Float != led.ResidualBits {
		t.Errorf("ambiguity.after_bits = %+v ok=%v, want float %v", after, ok, led.ResidualBits)
	}
	if a, ok := dsp.Attr("ambiguity.resolved_bits"); !ok || a.Float != led.ResolvedBits() {
		t.Errorf("ambiguity.resolved_bits = %+v ok=%v, want %v", a, ok, led.ResolvedBits())
	}
	if a, ok := dsp.Attr("ambiguity.strategy"); !ok || a.Str != "binary" {
		t.Errorf("ambiguity.strategy = %+v ok=%v, want binary", a, ok)
	}

	// Every question-wait child carries its question's entry, in order.
	var waits []*obs.Span
	for _, c := range dsp.Children {
		if c.Name == "question-wait" {
			waits = append(waits, c)
		}
	}
	if len(waits) != led.QuestionCount() {
		t.Fatalf("%d question-wait spans for %d ledger questions", len(waits), led.QuestionCount())
	}
	for i, w := range waits {
		q := led.Questions[i]
		if a, ok := w.Attr("ambiguity.before_bits"); !ok || a.Float != q.BeforeBits {
			t.Errorf("wait %d before_bits = %+v ok=%v, want %v", i, a, ok, q.BeforeBits)
		}
		if a, ok := w.Attr("ambiguity.after_bits"); !ok || a.Float != q.AfterBits {
			t.Errorf("wait %d after_bits = %+v ok=%v, want %v", i, a, ok, q.AfterBits)
		}
		g, ok := w.Attr("ambiguity.gain_bits")
		if !ok || g.Kind != obs.AttrFloat || g.Float != q.GainBits {
			t.Errorf("wait %d gain_bits = %+v ok=%v, want %v", i, g, ok, q.GainBits)
		}
		if q.GainBits < 0 {
			t.Errorf("wait %d negative gain %v", i, q.GainBits)
		}
	}
	// The per-question gains plus residual account for the initial ambiguity
	// on this fully-resolved run: the last after_bits is the residual.
	if last := led.Questions[len(led.Questions)-1]; last.AfterBits != led.ResidualBits {
		t.Errorf("final after_bits %v != residual %v", last.AfterBits, led.ResidualBits)
	}
}

// TestUntracedUnjournaledRunSkipsLedger: with no observer, no trace and no
// journal there is no telemetry consumer, so the pipeline must not pay for
// the meter's model counting.
func TestUntracedUnjournaledRunSkipsLedger(t *testing.T) {
	s := &Session{
		Client: llm.NewSimLLM(),
		Config: ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return true, nil
		}),
	}
	res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteInsert == nil {
		t.Fatal("no route insert result")
	}
	if res.RouteInsert.Ambiguity != nil {
		t.Fatalf("ledger-off run still metered: %+v", res.RouteInsert.Ambiguity)
	}
}
