package server

import (
	"testing"
	"time"

	"github.com/clarifynet/clarify/obs"
)

// benchTrace builds a representative finished update trace: the root plus
// the pipeline stages a §2.1 walkthrough records.
func benchTrace() *obs.Trace {
	t := obs.NewTrace("update")
	for _, name := range []string{"classify", "spec-extract", "synthesize-attempt-1", "disambiguate"} {
		sp := t.Root.Child(name)
		sp.Duration = 3 * time.Millisecond
		sp.End()
	}
	t.Finish()
	return t
}

// BenchmarkObserveTrace measures folding one span tree into the stage
// histograms with exemplar collection off (the default fast path) and on —
// the BENCH_PR8 gate that exemplars cost nothing when disabled.
func BenchmarkObserveTrace(b *testing.B) {
	for _, mode := range []struct {
		name      string
		exemplars bool
	}{{"exemplars-off", false}, {"exemplars-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := newMetrics(nil)
			m.exemplars = mode.exemplars
			tr := benchTrace()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.observeTrace(tr)
			}
		})
	}
}
