package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugAmbiguityEndpoint runs the §2.1 walkthrough over HTTP and checks
// the daemon's live rollup: /debug/ambiguity must agree with what the update
// reported (two questions, binary strategy, route-map kind, zero residual).
func TestDebugAmbiguityEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) {
		return 1, nil
	})
	if err != nil || res.Status != StatusDone {
		t.Fatalf("run update: %v %+v", err, res)
	}
	if res.Result.Questions != 2 {
		t.Fatalf("walkthrough asked %d questions, want 2", res.Result.Questions)
	}

	snap, err := c.Ambiguity(ctx)
	if err != nil {
		t.Fatalf("GET /debug/ambiguity: %v", err)
	}
	total := snap.Rollup.Total
	if total.Updates != 1 || total.Questions != 2 {
		t.Fatalf("rollup total = %+v, want 1 update, 2 questions", total)
	}
	if total.InitialBits <= 0 || total.ResolvedBits != total.InitialBits || total.ResidualBits != 0 {
		t.Errorf("rollup bits = %+v, want fully resolved positive initial", total)
	}
	if snap.Rollup.UpdatesWithQuestions != 1 {
		t.Errorf("UpdatesWithQuestions = %d, want 1", snap.Rollup.UpdatesWithQuestions)
	}
	if st := snap.Rollup.Strategies["binary"]; st == nil || st.Updates != 1 || st.Questions != 2 {
		t.Errorf("binary strategy row = %+v, want 1 update / 2 questions", st)
	}
	if k := snap.Rollup.Kinds["route-map"]; k == nil || k.Updates != 1 {
		t.Errorf("route-map kind row = %+v, want 1 update", k)
	}
	// The update ran without a tenant header, so the ledger lands under the
	// default tenant.
	if tr := snap.Tenants["default"]; tr == nil || tr.Total.Updates != 1 {
		t.Errorf("default-tenant rollup = %+v, want 1 update", snap.Tenants)
	}
	// Histograms: one update with 2 questions.
	if snap.QuestionsPerUpdate.Count != 1 || snap.QuestionsPerUpdate.Sum != 2 {
		t.Errorf("questionsPerUpdate = %+v, want count 1 sum 2", snap.QuestionsPerUpdate)
	}
	if snap.BitsResolvedPerQuestion.Count != 2 {
		t.Errorf("bitsResolvedPerQuestion count = %d, want 2", snap.BitsResolvedPerQuestion.Count)
	}
	if snap.ResidualAmbiguityBits.Count != 1 || snap.ResidualAmbiguityBits.Sum != 0 {
		t.Errorf("residualAmbiguityBits = %+v, want count 1 sum 0", snap.ResidualAmbiguityBits)
	}

	// ?tenant= filters; an unknown tenant is a 404, not an empty rollup.
	resp, err := http.Get(c.BaseURL + "/debug/ambiguity?tenant=ghost")
	if err != nil {
		t.Fatalf("tenant filter: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d, want 404", resp.StatusCode)
	}

	// The same rollup rides /metrics (JSON and Prometheus).
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Ambiguity == nil || m.Ambiguity.Rollup.Total.Updates != 1 {
		t.Errorf("/metrics ambiguity block = %+v, want the same 1-update rollup", m.Ambiguity)
	}
	promResp, err := http.Get(c.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("prometheus metrics: %v", err)
	}
	body, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil {
		t.Fatalf("read prometheus body: %v", err)
	}
	text := string(body)
	for _, series := range []string{
		"clarifyd_ambiguity_updates_metered_total 1",
		`clarifyd_ambiguity_strategy_questions_total{strategy="binary"} 2`,
		`clarifyd_ambiguity_kind_updates_total{kind="route-map"} 1`,
		"clarifyd_ambiguity_bits_resolved_per_question_count 2",
		"clarifyd_ambiguity_questions_per_update_sum 2",
		"clarifyd_ambiguity_residual_bits_count 1",
		"clarifyd_goroutines ",
		"clarifyd_heap_inuse_bytes ",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("prometheus exposition missing %q", series)
		}
	}
}

// TestRuntimeStatsBlock: /metrics carries the process runtime block
// (goroutines, GC pause p99, heap in use) sampled via runtime/metrics.
func TestRuntimeStatsBlock(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1})
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Runtime == nil {
		t.Fatal("/metrics has no runtime block")
	}
	if m.Runtime.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", m.Runtime.Goroutines)
	}
	if m.Runtime.HeapInUseBytes <= 0 {
		t.Errorf("heapInUseBytes = %d, want > 0", m.Runtime.HeapInUseBytes)
	}
	if m.Runtime.GCPauseP99Ms < 0 {
		t.Errorf("gcPauseP99Ms = %v, want >= 0", m.Runtime.GCPauseP99Ms)
	}
}

// TestValueHistogramMerge covers the fleet-merge arithmetic the LB relies on.
func TestValueHistogramMerge(t *testing.T) {
	buckets := []float64{1, 2, 4}
	a := MakeValueHistogramSnapshot(buckets, []int64{1, 0, 2, 0}, 3, 7)
	b := MakeValueHistogramSnapshot(buckets, []int64{0, 1, 0, 1}, 2, 9)
	a.Merge(b)
	if a.Count != 5 || a.Sum != 16 {
		t.Fatalf("merged count/sum = %d/%v, want 5/16", a.Count, a.Sum)
	}
	want := []int64{1, 1, 2, 1}
	for i, c := range a.Counts {
		if c != want[i] {
			t.Fatalf("merged counts = %v, want %v", a.Counts, want)
		}
	}
	if a.Mean != 16.0/5 {
		t.Errorf("merged mean = %v, want 3.2", a.Mean)
	}

	// An empty receiver adopts the other side wholesale.
	var empty ValueHistogramSnapshot
	empty.Merge(b)
	if empty.Count != 2 || len(empty.Counts) != 4 {
		t.Fatalf("empty.Merge = %+v, want a copy of b", empty)
	}
	// A bucket-table mismatch (mixed-version fleet) keeps the receiver as-is.
	c := MakeValueHistogramSnapshot([]float64{1}, []int64{1, 1}, 2, 2)
	before := a.Count
	a.Merge(c)
	if a.Count != before {
		t.Errorf("mismatched-table merge changed the receiver: %+v", a)
	}
}
