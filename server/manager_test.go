package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/clarifynet/clarify"
)

// TestUpdateFinishIdempotent: finishing an update twice must neither panic
// (double close of done) nor overwrite the first terminal state. Regression
// test for the shed-submission/worker race on finish.
func TestUpdateFinishIdempotent(t *testing.T) {
	u := &update{id: "u1", status: StatusQueued, done: make(chan struct{})}
	u.finish(nil, errors.New("queue full"))
	// Second finish with a different outcome must be a no-op.
	u.finish(&clarify.UpdateResult{}, nil)
	select {
	case <-u.done:
	default:
		t.Fatal("done channel not closed")
	}
	info := u.info()
	if info.Status != StatusFailed || info.Error != "queue full" {
		t.Errorf("second finish overwrote the first: %+v", info)
	}
	if info.Result != nil {
		t.Errorf("second finish attached a result: %+v", info.Result)
	}
}

// newTestSession builds a bare session the way RestoreSession does: fresh
// idle clock, preserved ID.
func newTestSession(id string) *session {
	return &session{
		id:       id,
		sess:     &clarify.Session{},
		lastUsed: time.Now(),
		updates:  map[string]*update{},
	}
}

// TestSweepVsRestoreRace: sessions being rehydrated concurrently with
// janitor sweeps must never be evicted mid-restore — Insert stamps a fresh
// idle clock, so a sweep racing the insert sees a live session. Run under
// -race, this also proves the tombstone/insert bookkeeping is data-race
// free.
func TestSweepVsRestoreRace(t *testing.T) {
	m := newManager(1024, time.Hour, time.Hour) // sweeps driven manually
	defer m.Stop()

	const n = 64
	var wg, sweeper sync.WaitGroup
	stop := make(chan struct{})
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
			}
		}
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("restored-%d", i)
			if err := m.Insert(newTestSession(id)); err != nil {
				t.Errorf("Insert %s: %v", id, err)
				return
			}
			// Immediately after insert the session must be visible: a sweep
			// running concurrently has no window to evict a fresh restore.
			if _, ok := m.Get(id); !ok {
				t.Errorf("session %s evicted mid-restore", id)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	sweeper.Wait()
	if m.Len() != n {
		t.Fatalf("after restore storm: %d sessions live, want %d", m.Len(), n)
	}
}

// TestRestoreAfterCutoffGetsFreshIdleClock: a session restored from a
// snapshot taken long before the janitor's cutoff (huge IdleSeconds) starts
// a fresh idle clock — the next sweep must not collect it; only genuinely
// new idleness may.
func TestRestoreAfterCutoffGetsFreshIdleClock(t *testing.T) {
	m := newManager(16, 40*time.Millisecond, time.Hour)
	defer m.Stop()

	s := newTestSession("old-snapshot")
	// The snapshot says the session idled for an hour before capture; the
	// restore path ignores that and stamps time.Now() — mimic it exactly.
	if err := m.Insert(s); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if n := m.Sweep(); n != 0 {
		t.Fatalf("sweep right after restore evicted %d sessions", n)
	}
	if _, ok := m.Get("old-snapshot"); !ok {
		t.Fatal("restored session gone after immediate sweep")
	}
	// A parked-question restore is busy: even past the TTL it survives.
	busy := newTestSession("parked-restore")
	busy.busy = true
	busy.lastUsed = time.Now().Add(-time.Hour)
	if err := m.Insert(busy); err != nil {
		t.Fatalf("Insert busy: %v", err)
	}
	time.Sleep(60 * time.Millisecond) // idle session ages past the 40ms TTL
	evicted := m.Sweep()
	if _, ok := m.Get("parked-restore"); !ok {
		t.Fatal("busy (parked-question) session evicted")
	}
	if _, ok := m.Get("old-snapshot"); ok || evicted == 0 {
		t.Fatal("genuinely idle restored session escaped the TTL sweep")
	}
	// And its tombstone answers with the eviction reason.
	if reason, dead := m.Tombstone("old-snapshot"); !dead || reason != ReasonEvicted {
		t.Fatalf("tombstone = %q/%v, want evicted/true", reason, dead)
	}
}

// TestInsertConflictAndTombstoneClear: inserting over a live ID is a
// conflict; a restore clears the ID's tombstone (the session lives again).
func TestInsertConflictAndTombstoneClear(t *testing.T) {
	m := newManager(16, 30*time.Millisecond, time.Hour)
	defer m.Stop()
	if err := m.Insert(newTestSession("s1")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := m.Insert(newTestSession("s1")); !errors.Is(err, errSessionExists) {
		t.Fatalf("duplicate Insert = %v, want errSessionExists", err)
	}
	// Evict it, then restore it: the tombstone must clear.
	s, _ := m.Get("s1")
	s.mu.Lock()
	s.lastUsed = time.Now().Add(-time.Hour)
	s.mu.Unlock()
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if _, dead := m.Tombstone("s1"); !dead {
		t.Fatal("no tombstone after eviction")
	}
	if err := m.Insert(newTestSession("s1")); err != nil {
		t.Fatalf("re-Insert after eviction: %v", err)
	}
	if _, dead := m.Tombstone("s1"); dead {
		t.Fatal("tombstone survived the restore")
	}
}

// TestTombstoneBound: the dead-session memory is bounded FIFO.
func TestTombstoneBound(t *testing.T) {
	m := newManager(16, 30*time.Millisecond, time.Hour)
	defer m.Stop()
	m.mu.Lock()
	for i := 0; i < maxTombstones+10; i++ {
		m.bury(fmt.Sprintf("dead-%d", i), ReasonEvicted)
	}
	m.mu.Unlock()
	if got := len(m.tombs); got != maxTombstones {
		t.Fatalf("tombstone map grew to %d, want %d", got, maxTombstones)
	}
	if _, dead := m.Tombstone("dead-0"); dead {
		t.Fatal("oldest tombstone not decayed")
	}
	if _, dead := m.Tombstone(fmt.Sprintf("dead-%d", maxTombstones+9)); !dead {
		t.Fatal("newest tombstone missing")
	}
}
