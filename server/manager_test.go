package server

import (
	"errors"
	"testing"

	"github.com/clarifynet/clarify"
)

// TestUpdateFinishIdempotent: finishing an update twice must neither panic
// (double close of done) nor overwrite the first terminal state. Regression
// test for the shed-submission/worker race on finish.
func TestUpdateFinishIdempotent(t *testing.T) {
	u := &update{id: "u1", status: StatusQueued, done: make(chan struct{})}
	u.finish(nil, errors.New("queue full"))
	// Second finish with a different outcome must be a no-op.
	u.finish(&clarify.UpdateResult{}, nil)
	select {
	case <-u.done:
	default:
		t.Fatal("done channel not closed")
	}
	info := u.info()
	if info.Status != StatusFailed || info.Error != "queue full" {
		t.Errorf("second finish overwrote the first: %+v", info)
	}
	if info.Result != nil {
		t.Errorf("second finish attached a result: %+v", info.Result)
	}
}
