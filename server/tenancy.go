package server

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/tenant"
)

// HeaderPriority lets a caller request the interactive dispatch lane
// explicitly (value "interactive"). Sessions that have engaged the
// disambiguation Q&A get the lane automatically; the header covers the
// first submit of a dialogue-heavy workload.
const HeaderPriority = "X-Clarify-Priority"

// tenantFromRequest resolves the request's tenant. An absent header means
// the default tenant; a malformed name reports false and the caller answers
// 400 (silently folding a typo into "default" would misaccount quota).
func tenantFromRequest(r *http.Request) (string, bool) {
	name := r.Header.Get(tenant.HeaderTenant)
	if name == "" {
		return tenant.DefaultTenant, true
	}
	if !tenant.ValidName(name) {
		return "", false
	}
	return name, true
}

// tenantFor resolves a session's tenant state from the registry.
func (s *Server) tenantFor(sn *session) *tenant.Tenant {
	return s.tenants.Get(sn.tenantName())
}

// tenantSLO returns (creating on first use) the tenant's private SLO rings,
// cloned from the server-wide set so every tenant is judged against the
// same objectives. Returns nil — which no-ops — when the server-wide set is
// nil-configured.
func (s *Server) tenantSLO(name string) *slo.Set {
	s.tslosMu.Lock()
	defer s.tslosMu.Unlock()
	set, ok := s.tslos[name]
	if !ok {
		set = s.slos.Clone()
		s.tslos[name] = set
	}
	return set
}

// tenantSLOSnapshot returns one tenant's SLO snapshot, or false if the
// tenant has no rings yet.
func (s *Server) tenantSLOSnapshot(name string) (slo.Snapshot, bool) {
	s.tslosMu.Lock()
	set, ok := s.tslos[name]
	s.tslosMu.Unlock()
	if !ok || set == nil {
		return slo.Snapshot{}, false
	}
	return set.Snapshot(), true
}

// TenantMetrics is one tenant's slice of the /metrics document.
type TenantMetrics struct {
	Profile    tenant.Profile          `json:"profile"`
	InFlight   int                     `json:"in_flight"`
	QueueDepth int                     `json:"queue_depth"`
	Submits    int64                   `json:"submits"`
	Completed  int64                   `json:"completed"`
	Failed     int64                   `json:"failed"`
	Sheds      map[tenant.Reason]int64 `json:"sheds,omitempty"`
	SLO        *slo.Snapshot           `json:"slo,omitempty"`
}

// tenantMetrics assembles the per-tenant /metrics section: registry
// counters joined with queue backlog and each tenant's SLO rings.
func (s *Server) tenantMetrics() map[string]TenantMetrics {
	stats := s.tenants.Snapshot()
	if len(stats) == 0 {
		return nil
	}
	depths := s.pool.FlowDepths()
	out := make(map[string]TenantMetrics, len(stats))
	for name, st := range stats {
		tm := TenantMetrics{
			Profile:    st.Profile,
			InFlight:   st.InFlight,
			QueueDepth: depths[name],
			Submits:    st.Submits,
			Completed:  st.Completed,
			Failed:     st.Failed,
			Sheds:      st.Sheds,
		}
		if snap, ok := s.tenantSLOSnapshot(name); ok {
			tm.SLO = &snap
		}
		out[name] = tm
	}
	return out
}

// sortedTenantNames returns the map's keys in stable order for the
// Prometheus exposition.
func sortedTenantNames(m map[string]TenantMetrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// admitSubmit runs the tenant admission gates for one submission and, when
// denied, writes the 429. When it reports true the tenant's in-flight slot
// is held; the update's terminal path must call Release exactly once.
func (s *Server) admitSubmit(w http.ResponseWriter, tn *tenant.Tenant) bool {
	v := tn.Admit()
	if v.OK {
		return true
	}
	writeShed(w, v.Reason, v.RetryAfter)
	return false
}

// writeShed answers a shed submission: 429, a Retry-After hint rounded up
// to whole seconds, and the gate that rejected it in both the body reason
// and the X-Clarify-Shed header (so a balancer can count sheds without
// parsing bodies).
func writeShed(w http.ResponseWriter, reason tenant.Reason, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if retryAfter%time.Second != 0 || secs < 1 {
		secs++
	}
	w.Header().Set(tenant.HeaderShedReason, string(reason))
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:             "submission shed: " + shedMessage(reason),
		RetryAfterSeconds: secs,
		Reason:            string(reason),
	})
}

func shedMessage(reason tenant.Reason) string {
	switch reason {
	case tenant.ReasonRate:
		return "tenant submit rate limit exceeded"
	case tenant.ReasonConcurrency:
		return "tenant concurrent-update quota exhausted"
	case tenant.ReasonQueueFull:
		return "submission queue full; retry later"
	case tenant.ReasonOverload:
		return "server overloaded; bulk submissions are being shed"
	case tenant.ReasonClosed, tenant.ReasonDrainDeadline:
		return "server is draining"
	default:
		return string(reason)
	}
}
