package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/obs"
)

// session is one hosted clarify.Session plus its serving state. Updates are
// serialized per session (the pipeline owns the config), so `busy` gates
// submissions; distinct sessions run concurrently on the worker pool.
type session struct {
	id   string
	sess *clarify.Session

	mu       sync.Mutex
	busy     bool
	lastUsed time.Time
	updates  map[string]*update
	order    []string // update IDs in submission order
	nextUpd  int
	oracle   *asyncOracle // set while an update is queued or running
	// cfgText is the printed configuration after the last successful
	// update; handlers read this snapshot so they never touch the live
	// *ios.Config a worker may be replacing.
	cfgText string
	// tenant is the admission principal the session was created under
	// (X-Clarify-Tenant, after registry folding); its quotas and fair
	// share govern every submit on this session.
	tenant string
	// dialog is set once a pipeline run asks a disambiguation question;
	// from then on the session's submits ride the interactive lane.
	dialog bool
}

// setTenant records the session's admission principal (set once at create
// or restore, before the session serves traffic).
func (s *session) setTenant(name string) {
	s.mu.Lock()
	s.tenant = name
	s.mu.Unlock()
}

// tenantName reads the session's admission principal.
func (s *session) tenantName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenant
}

// markInteractive flags the session as dialogue-engaged.
func (s *session) markInteractive() {
	s.mu.Lock()
	s.dialog = true
	s.mu.Unlock()
}

// interactive reports whether the session has engaged the disambiguation
// Q&A.
func (s *session) interactive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dialog
}

// setConfigText publishes a new printed-configuration snapshot.
func (s *session) setConfigText(text string) {
	s.mu.Lock()
	s.cfgText = text
	s.mu.Unlock()
}

// configText reads the current printed-configuration snapshot.
func (s *session) configText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfgText
}

// update is one submitted intent's lifecycle record.
type update struct {
	id string
	// intent and target are the Submit inputs, retained so an unfinished
	// update can be snapshotted and re-executed on another daemon.
	intent string
	target string
	// parent is the propagated W3C trace context (a clarify-lb forward
	// span), zero when the submission arrived without a traceparent header.
	parent obs.TraceParent

	mu       sync.Mutex
	status   string
	errMsg   string
	traceID  string
	degraded bool
	result   *UpdateResultInfo
	oracle   *asyncOracle
	finished bool
	done     chan struct{}
}

func (u *update) info() UpdateInfo {
	u.mu.Lock()
	defer u.mu.Unlock()
	status := u.status
	if status == StatusRunning && u.oracle != nil && u.oracle.Pending() != nil {
		status = StatusWaiting
	}
	return UpdateInfo{ID: u.id, Status: status, Error: u.errMsg, TraceID: u.traceID,
		Degraded: u.degraded, Result: u.result}
}

// setTrace stamps the pipeline trace recorded for this update; the trace's
// span tree is retrievable at GET /debug/traces/{traceID} while retained.
func (u *update) setTrace(id string) {
	u.mu.Lock()
	u.traceID = id
	u.mu.Unlock()
}

// setDegraded stamps whether any LLM completion of this update was served by
// a fallback backend.
func (u *update) setDegraded(v bool) {
	u.mu.Lock()
	u.degraded = v
	u.mu.Unlock()
}

func (u *update) setRunning() {
	u.mu.Lock()
	u.status = StatusRunning
	u.mu.Unlock()
}

// finish records the terminal state and releases waiters. It is idempotent:
// only the first call wins (a late second finisher — e.g. a shed submission
// racing its own worker — must not double-close done or clobber the result).
func (u *update) finish(res *clarify.UpdateResult, err error) {
	u.mu.Lock()
	if u.finished {
		u.mu.Unlock()
		return
	}
	u.finished = true
	if err != nil {
		u.status, u.errMsg = StatusFailed, err.Error()
	} else {
		u.status, u.result = StatusDone, newUpdateResultInfo(res)
	}
	u.oracle = nil
	u.mu.Unlock()
	close(u.done)
}

// touch refreshes the idle clock.
func (s *session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

func (s *session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:          s.id,
		Busy:        s.busy,
		Updates:     len(s.updates),
		IdleSeconds: time.Since(s.lastUsed).Seconds(),
		Tenant:      s.tenant,
	}
}

// beginUpdate reserves the session for one update, allocating its record and
// oracle. It fails when another update is already queued or running.
func (s *session) beginUpdate(oracle *asyncOracle, intentText, target string) (*update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy {
		return nil, fmt.Errorf("an update is already in progress on session %s", s.id)
	}
	s.busy = true
	s.oracle = oracle
	s.lastUsed = time.Now()
	s.nextUpd++
	u := &update{
		id:     fmt.Sprintf("u%d", s.nextUpd),
		intent: intentText,
		target: target,
		status: StatusQueued,
		oracle: oracle,
		done:   make(chan struct{}),
	}
	s.updates[u.id] = u
	s.order = append(s.order, u.id)
	return u, nil
}

// endUpdate releases the session after its update finished.
func (s *session) endUpdate() {
	s.mu.Lock()
	s.busy = false
	s.oracle = nil
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// pendingOracle returns the oracle of the in-flight update, or nil.
func (s *session) pendingOracle() *asyncOracle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oracle
}

func (s *session) getUpdate(id string) *update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates[id]
}

// manager owns the session table: creation against a max-session cap,
// lookup, deletion, and a janitor that evicts sessions idle past the TTL.
// Counters from dead sessions are folded into `retired` so /metrics stays
// cumulative.
type manager struct {
	ttl time.Duration
	max int

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	retired  clarify.Stats
	evicted  int64
	// tombs remembers recently dead session IDs and why they died, so a
	// lookup can answer 410 Gone ("evicted") instead of an indistinguishable
	// 404 — the signal a balancer needs to drop a stale affinity pin rather
	// than retry the dead ID. Bounded FIFO via tombOrder.
	tombs     map[string]string
	tombOrder []string

	stopOnce sync.Once
	stopCh   chan struct{}
}

// maxTombstones bounds the dead-session memory; beyond it the oldest
// tombstones decay back to plain 404s.
const maxTombstones = 4096

// ReasonEvicted is the tombstone reason for idle-TTL eviction.
const ReasonEvicted = "evicted"

func newManager(max int, ttl, sweepEvery time.Duration) *manager {
	if max <= 0 {
		max = 1024
	}
	if ttl <= 0 {
		ttl = 30 * time.Minute
	}
	if sweepEvery <= 0 {
		sweepEvery = ttl / 4
		if sweepEvery > time.Minute {
			sweepEvery = time.Minute
		}
	}
	m := &manager{ttl: ttl, max: max, sessions: map[string]*session{},
		tombs: map[string]string{}, stopCh: make(chan struct{})}
	go m.janitor(sweepEvery)
	return m
}

// Create registers a new session; it fails when the cap is reached.
func (m *manager) Create(sess *clarify.Session) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("session cap reached (%d live sessions)", len(m.sessions))
	}
	m.nextID++
	s := &session{
		id:       fmt.Sprintf("s%d-%s", m.nextID, randHex(4)),
		sess:     sess,
		lastUsed: time.Now(),
		updates:  map[string]*update{},
	}
	m.sessions[s.id] = s
	return s, nil
}

// Get looks a session up and refreshes its idle clock.
func (m *manager) Get(id string) (*session, bool) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// Delete removes a session, folding its counters into the retired total.
func (m *manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return false
	}
	delete(m.sessions, id)
	m.retire(s)
	return true
}

// bury records why a session died; callers hold m.mu.
func (m *manager) bury(id, reason string) {
	if _, ok := m.tombs[id]; !ok {
		m.tombOrder = append(m.tombOrder, id)
	}
	m.tombs[id] = reason
	for len(m.tombOrder) > maxTombstones {
		delete(m.tombs, m.tombOrder[0])
		m.tombOrder = m.tombOrder[1:]
	}
}

// Tombstone reports whether id belonged to a dead session and why it died.
func (m *manager) Tombstone(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	reason, ok := m.tombs[id]
	return reason, ok
}

// Insert adds a rehydrated session under its preserved ID, subject to the
// cap. The ID colliding with a live session is a conflict (the snapshot was
// already restored, or the peer never lost it); a tombstone for the ID is
// cleared — the session is alive again. The caller must have stamped a
// fresh lastUsed so the janitor cannot evict the session mid-restore.
func (m *manager) Insert(s *session) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[s.id]; ok {
		return fmt.Errorf("%w: %s", errSessionExists, s.id)
	}
	if len(m.sessions) >= m.max {
		return fmt.Errorf("session cap reached (%d live sessions)", len(m.sessions))
	}
	delete(m.tombs, s.id)
	m.sessions[s.id] = s
	return nil
}

// retire accumulates a dead session's stats; callers hold m.mu.
func (m *manager) retire(s *session) {
	st := s.sess.Stats()
	m.retired.LLMCalls += st.LLMCalls
	m.retired.Disambiguations += st.Disambiguations
	m.retired.Retries += st.Retries
	m.retired.Punts += st.Punts
	m.retired.Updates += st.Updates
}

// List snapshots all live sessions.
func (m *manager) List() []*session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// Len is the live-session count.
func (m *manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Evicted is the TTL-eviction count.
func (m *manager) Evicted() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// CumulativeStats sums pipeline counters over live and retired sessions.
func (m *manager) CumulativeStats() clarify.Stats {
	m.mu.Lock()
	live := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	total := m.retired
	m.mu.Unlock()
	for _, s := range live {
		st := s.sess.Stats()
		total.LLMCalls += st.LLMCalls
		total.Disambiguations += st.Disambiguations
		total.Retries += st.Retries
		total.Punts += st.Punts
		total.Updates += st.Updates
	}
	return total
}

// Sweep evicts sessions idle past the TTL (busy sessions are exempt: a
// parked disambiguation question keeps its session alive until the question
// itself times out). It returns the number evicted.
func (m *manager) Sweep() int {
	cutoff := time.Now().Add(-m.ttl)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := !s.busy && s.lastUsed.Before(cutoff)
		s.mu.Unlock()
		if idle {
			delete(m.sessions, id)
			m.retire(s)
			m.bury(id, ReasonEvicted)
			m.evicted++
			n++
		}
	}
	return n
}

func (m *manager) janitor(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-m.stopCh:
			return
		}
	}
}

// Stop terminates the janitor goroutine.
func (m *manager) Stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
}

func randHex(nBytes int) string {
	b := make([]byte, nBytes)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable; fall back to a counter-only
		// ID rather than crash the daemon.
		return "0000"
	}
	return hex.EncodeToString(b)
}
