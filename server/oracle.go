package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/snapshot"
)

// ErrQuestionTimeout aborts an update whose disambiguation question was not
// answered within the configured window.
var ErrQuestionTimeout = errors.New("server: disambiguation question timed out without an answer")

// errStaleAnswer reports an answer whose sequence number does not match the
// pending question (a duplicate or a race with a newer question).
var errStaleAnswer = errors.New("server: answer does not match the pending question")

// asyncOracle bridges the synchronous disambig oracle interfaces onto the
// HTTP question/answer endpoints. The pipeline goroutine (a pool worker)
// calls ChooseRoute/ChooseACL, which parks it: the question becomes visible
// at GET /v1/sessions/{id}/question and the goroutine resumes when an
// operator POSTs the matching answer — or errors out on timeout or server
// shutdown, cancelling the whole update.
type asyncOracle struct {
	timeout time.Duration

	mu      sync.Mutex
	ctx     context.Context // cancelled on forced shutdown or update deadline
	seq     int
	pending *Question
	answer  chan bool
	// answered is the transcript of answers delivered so far, in question
	// order — the raw material a session snapshot needs to re-execute a
	// parked update on another daemon.
	answered []snapshot.Answer
}

func newAsyncOracle(ctx context.Context, timeout time.Duration) *asyncOracle {
	if timeout <= 0 {
		timeout = time.Minute
	}
	return &asyncOracle{ctx: ctx, timeout: timeout}
}

// newRestoredOracle builds the oracle for a rehydrated update: the sequence
// counter and transcript resume where the snapshot left off, so the
// re-parked question carries the same seq the client last saw and a second
// handoff snapshots the full answer history.
func newRestoredOracle(ctx context.Context, timeout time.Duration, answered []snapshot.Answer) *asyncOracle {
	o := newAsyncOracle(ctx, timeout)
	o.seq = len(answered)
	o.answered = append([]snapshot.Answer(nil), answered...)
	return o
}

// bind replaces the oracle's cancellation context. The server binds the
// per-update deadline context when the job starts running, so an unanswered
// question cannot park a worker past the update budget.
func (o *asyncOracle) bind(ctx context.Context) {
	o.mu.Lock()
	o.ctx = ctx
	o.mu.Unlock()
}

// ChooseRoute implements disambig.RouteOracle.
func (o *asyncOracle) ChooseRoute(q disambig.RouteQuestion) (bool, error) {
	o.mu.Lock()
	o.seq++
	o.pending = newRouteQuestion(o.seq, q)
	o.answer = make(chan bool, 1)
	ch := o.answer
	o.mu.Unlock()
	return o.wait(ch)
}

// ChooseACL implements disambig.ACLOracle.
func (o *asyncOracle) ChooseACL(q disambig.ACLQuestion) (bool, error) {
	o.mu.Lock()
	o.seq++
	o.pending = newACLQuestion(o.seq, q)
	o.answer = make(chan bool, 1)
	ch := o.answer
	o.mu.Unlock()
	return o.wait(ch)
}

// wait parks the pipeline goroutine until an answer, a timeout, update
// cancellation, or shutdown.
func (o *asyncOracle) wait(ch chan bool) (bool, error) {
	o.mu.Lock()
	ctx := o.ctx
	o.mu.Unlock()
	timer := time.NewTimer(o.timeout)
	defer timer.Stop()
	defer func() {
		o.mu.Lock()
		o.pending, o.answer = nil, nil
		o.mu.Unlock()
	}()
	select {
	case preferNew := <-ch:
		return preferNew, nil
	case <-timer.C:
		return false, ErrQuestionTimeout
	case <-ctx.Done():
		return false, fmt.Errorf("server: update cancelled: %w", ctx.Err())
	}
}

// Pending returns the currently displayed question, or nil.
func (o *asyncOracle) Pending() *Question {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.pending == nil {
		return nil
	}
	q := *o.pending
	return &q
}

// Answer delivers the operator's choice for question seq; option is 1 (the
// new rule applies) or 2 (keep existing behaviour).
func (o *asyncOracle) Answer(seq, option int) error {
	if option != 1 && option != 2 {
		return fmt.Errorf("server: option must be 1 or 2, got %d", option)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.pending == nil || o.answer == nil {
		return errStaleAnswer
	}
	if o.pending.Seq != seq {
		return errStaleAnswer
	}
	// The buffered send cannot block: each question allocates a fresh
	// channel and the pending clear below prevents a second delivery.
	o.answer <- (option == 1)
	o.answered = append(o.answered, snapshot.Answer{
		Kind:      o.pending.Kind,
		Question:  o.pending.Text,
		PreferNew: option == 1,
	})
	o.pending, o.answer = nil, nil
	return nil
}

// asked reports whether the oracle has posed at least one disambiguation
// question (including questions inherited from a restored transcript) —
// the signal that flags a session as dialogue-engaged.
func (o *asyncOracle) asked() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.seq > 0
}

// transcript snapshots the delivered-answer history.
func (o *asyncOracle) transcript() []snapshot.Answer {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]snapshot.Answer(nil), o.answered...)
}

var (
	_ disambig.RouteOracle = (*asyncOracle)(nil)
	_ disambig.ACLOracle   = (*asyncOracle)(nil)
)
