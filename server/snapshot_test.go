package server

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"github.com/clarifynet/clarify/snapshot"
)

// runBaseline executes the §2.1 walkthrough on a throwaway server with no
// restart and returns the question texts asked and the final configuration.
func runBaseline(t *testing.T) (questions []string, finalConfig string) {
	t.Helper()
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("baseline create: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) {
		questions = append(questions, q.Text)
		return 1, nil
	})
	if err != nil || res.Status != StatusDone {
		t.Fatalf("baseline run: %v (%+v)", err, res)
	}
	cfg, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatalf("baseline config: %v", err)
	}
	return questions, cfg
}

// TestSnapshotRestoreParkedQuestion is the acceptance walkthrough: a session
// parked on an unanswered question survives a daemon handoff byte-identically
// — the client's next poll sees the same question text under the same update
// ID and sequence number, and the eventual final configuration matches a run
// that never saw a restart.
func TestSnapshotRestoreParkedQuestion(t *testing.T) {
	baselineQuestions, baselineConfig := runBaseline(t)
	if len(baselineQuestions) != 2 {
		t.Fatalf("baseline asked %d questions, want 2", len(baselineQuestions))
	}

	srvA, cA := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := cA.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	u, err := cA.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Answer question 1, then leave question 2 parked — the state a rolling
	// restart interrupts.
	q1 := waitPendingQuestion(t, cA, sid)
	if err := cA.Answer(ctx, sid, q1.Seq, 1); err != nil {
		t.Fatalf("answer q1: %v", err)
	}
	var q2 *Question
	deadline := time.Now().Add(5 * time.Second)
	for {
		q, err := cA.Question(ctx, sid)
		if err != nil {
			t.Fatalf("question poll: %v", err)
		}
		if q != nil && q.Seq != q1.Seq {
			q2 = q
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("question 2 never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if q2.Text != baselineQuestions[1] {
		t.Fatalf("pre-handoff question 2 diverged from baseline:\n%s\nvs\n%s", q2.Text, baselineQuestions[1])
	}

	// SIGTERM on daemon A: drain to parked state and capture.
	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	defer dcancel()
	if err := srvA.DrainForHandoff(dctx); err != nil {
		t.Fatalf("drain for handoff: %v", err)
	}
	snaps := srvA.SnapshotSessions("nodeA")
	if len(snaps) != 1 {
		t.Fatalf("snapshotted %d sessions, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.ID != sid || snap.Pending == nil || snap.Pending.ID != u.ID {
		t.Fatalf("snapshot mangled the pending update: %+v", snap.Pending)
	}
	if len(snap.Pending.Answers) != 1 || !snap.Pending.Answers[0].PreferNew {
		t.Fatalf("snapshot transcript = %+v, want the one OPTION 1 answer", snap.Pending.Answers)
	}
	if snap.Pending.Question == nil || snap.Pending.Question.Seq != q2.Seq {
		t.Fatalf("snapshot parked question = %+v, want seq %d", snap.Pending.Question, q2.Seq)
	}

	// Let daemon A's copy of the parked update finish so its shutdown is
	// prompt; the snapshot is already taken. (A real SIGTERM flow would
	// force-cancel it inside srv.Shutdown instead.)
	if err := cA.Answer(ctx, sid, q2.Seq, 1); err != nil {
		t.Fatalf("unpark daemon A: %v", err)
	}

	// Rehydrate on daemon B and poll as the oblivious client would.
	_, cB := startServer(t, Options{Workers: 2})
	resp, err := cB.RestoreSession(ctx, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if resp.ID != sid || !resp.Pending {
		t.Fatalf("restore response = %+v", resp)
	}

	// The same question must reappear: same seq, byte-identical text.
	restored := waitPendingQuestion(t, cB, sid)
	if restored.Seq != q2.Seq {
		t.Fatalf("restored question seq = %d, want %d", restored.Seq, q2.Seq)
	}
	if restored.Text != q2.Text {
		t.Fatalf("restored question diverged:\n%s\nvs\n%s", restored.Text, q2.Text)
	}
	// The update is pollable under its original ID, reported waiting.
	ru, err := cB.Update(ctx, sid, u.ID)
	if err != nil {
		t.Fatalf("poll restored update %s: %v", u.ID, err)
	}
	if ru.Status != StatusWaiting {
		t.Fatalf("restored update status = %q, want %q", ru.Status, StatusWaiting)
	}

	// Answer it; the run must complete with the baseline's exact config.
	if err := cB.Answer(ctx, sid, restored.Seq, 1); err != nil {
		t.Fatalf("answer restored question: %v", err)
	}
	final, err := cB.PollUpdate(ctx, sid, u.ID, func(q Question) (int, error) { return 1, nil })
	if err != nil || final.Status != StatusDone {
		t.Fatalf("restored update did not finish: %v (%+v)", err, final)
	}
	gotConfig, err := cB.Config(ctx, sid)
	if err != nil {
		t.Fatalf("config after restore: %v", err)
	}
	if gotConfig != baselineConfig {
		t.Fatalf("post-handoff config diverged from the never-restarted run:\n%s\nvs\n%s", gotConfig, baselineConfig)
	}
}

// TestSnapshotRestoreIdleSessionHistory: an idle session's update history,
// counters, and ID sequence survive a handoff.
func TestSnapshotRestoreIdleSessionHistory(t *testing.T) {
	srvA, cA := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := cA.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	res, err := cA.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) { return 1, nil })
	if err != nil || res.Status != StatusDone {
		t.Fatalf("update: %v (%+v)", err, res)
	}
	statsA, err := cA.Stats(ctx, sid)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}

	snaps := srvA.SnapshotSessions("nodeA")
	if len(snaps) != 1 || snaps[0].Pending != nil {
		t.Fatalf("idle snapshot = %+v, want one session with no pending update", snaps)
	}
	if snaps[0].Fingerprint == "" {
		t.Fatal("snapshot missing config fingerprint")
	}

	_, cB := startServer(t, Options{Workers: 2})
	if _, err := cB.RestoreSession(ctx, snaps[0]); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// History is pollable under the original update ID, result intact.
	hu, err := cB.Update(ctx, sid, res.ID)
	if err != nil {
		t.Fatalf("poll history %s: %v", res.ID, err)
	}
	if hu.Status != StatusDone || hu.Result == nil || hu.Result.Questions != res.Result.Questions {
		t.Fatalf("restored history = %+v, want %+v", hu, res)
	}
	// Counters resumed, not reset.
	statsB, err := cB.Stats(ctx, sid)
	if err != nil {
		t.Fatalf("stats after restore: %v", err)
	}
	if statsB != statsA {
		t.Fatalf("stats after restore = %+v, want %+v", statsB, statsA)
	}
	// The update-ID sequence continues where it left off.
	next, err := cB.RunUpdate(ctx, sid, aclIntent, "EDGE_IN", func(q Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("post-restore update: %v", err)
	}
	if next.ID != "u2" {
		t.Fatalf("post-restore update ID = %q, want u2", next.ID)
	}
}

// TestRestoreRejections: conflicts, tampered snapshots, and draining
// servers map onto 409/422/503.
func TestRestoreRejections(t *testing.T) {
	srvA, cA := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := cA.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); err != nil {
		t.Fatalf("create: %v", err)
	}
	snaps := srvA.SnapshotSessions("nodeA")
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}

	// Restoring onto a server that still owns the session is a conflict.
	var apiErr *APIError
	if _, err := cA.RestoreSession(ctx, snaps[0]); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("restore onto owner = %v, want 409", err)
	}

	// A tampered config (fingerprint mismatch) is unprocessable. The
	// fingerprint hashes the as-path/community pattern universe, so the
	// tamper must touch a pattern.
	_, cB := startServer(t, Options{Workers: 2})
	tampered := *snaps[0]
	tampered.ConfigText = tampered.ConfigText + "ip as-path access-list EVIL permit _666_\n"
	if _, err := cB.RestoreSession(ctx, &tampered); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("restore tampered = %v, want 422", err)
	}
	// A future-schema snapshot is refused, not misinterpreted.
	future := *snaps[0]
	future.Schema = snapshot.SchemaVersion + 1
	if _, err := cB.RestoreSession(ctx, &future); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("restore future schema = %v, want 422", err)
	}

	// A draining server adopts nothing.
	srvC, cC := startServer(t, Options{Workers: 2})
	dctx, dcancel := context.WithTimeout(ctx, time.Second)
	defer dcancel()
	if err := srvC.DrainForHandoff(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := cC.RestoreSession(ctx, snaps[0]); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("restore while draining = %v, want 503", err)
	}
}

// TestDrainForHandoffWaitsForPark: a drain must not report quiesced while an
// update is mid-pipeline, and must once it parks on a question.
func TestDrainForHandoffWaitsForPark(t *testing.T) {
	srv, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	u, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	defer dcancel()
	if err := srv.DrainForHandoff(dctx); err != nil {
		t.Fatalf("drain for handoff: %v", err)
	}
	// Quiesced means parked: the snapshot must carry the pending question.
	snaps := srv.SnapshotSessions("node")
	if len(snaps) != 1 || snaps[0].Pending == nil || snaps[0].Pending.Question == nil {
		t.Fatalf("post-drain snapshot = %+v, want a parked pending question", snaps)
	}
	// Drive the parked update to completion so the cleanup shutdown is
	// prompt (answering still works on a draining server).
	if _, err := c.PollUpdate(ctx, sid, u.ID, func(Question) (int, error) { return 1, nil }); err != nil {
		t.Fatalf("finish drained update: %v", err)
	}
}

// TestSnapshotMetricsCounters: capture and restore feed /metrics.
func TestSnapshotMetricsCounters(t *testing.T) {
	srvA, cA := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := cA.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); err != nil {
		t.Fatalf("create: %v", err)
	}
	snaps := srvA.SnapshotSessions("nodeA")
	mA, err := cA.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if mA.SnapshottedSessions != 1 {
		t.Fatalf("snapshottedSessions = %d, want 1", mA.SnapshottedSessions)
	}
	_, cB := startServer(t, Options{Workers: 2})
	if _, err := cB.RestoreSession(ctx, snaps[0]); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := cB.RestoreSession(ctx, snaps[0]); err == nil {
		t.Fatal("double restore succeeded, want conflict")
	}
	mB, err := cB.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if mB.RestoredSessions != 1 || mB.RestoreFailures != 1 {
		t.Fatalf("restored/failures = %d/%d, want 1/1", mB.RestoredSessions, mB.RestoreFailures)
	}
}
