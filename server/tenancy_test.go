package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/tenant"
)

// slowLLM delegates to the simulated LLM after a fixed delay, so each update
// occupies its worker long enough for queue-order assertions to be stable.
type slowLLM struct {
	inner llm.Client
	delay time.Duration
}

func (s slowLLM) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return s.inner.Complete(ctx, req)
}

// TestTenantHeaderBindsSession: the X-Clarify-Tenant header on session
// creation binds the session to that tenant, visible in SessionInfo; an
// invalid header is rejected outright.
func TestTenantHeaderBindsSession(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	c.Tenant = "teamA"
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	info, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatalf("session info: %v", err)
	}
	if info.Tenant != "teamA" {
		t.Errorf("SessionInfo.Tenant = %q, want teamA", info.Tenant)
	}

	bad := &Client{BaseURL: c.BaseURL, Tenant: "no spaces allowed"}
	var apiErr *APIError
	if _, err := bad.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant header accepted: %v", err)
	}
}

// TestTenantRateQuota429: a tenant over its submit rate is bounced with 429,
// Retry-After, and a typed X-Clarify-Shed reason — before any update record
// is allocated — and the shed shows up in the per-tenant metrics.
func TestTenantRateQuota429(t *testing.T) {
	reg := tenant.NewRegistry(tenant.RegistryConfig{Profiles: []tenant.Profile{
		{Name: "mallory", Rate: 0.0001, Burst: 1},
	}})
	_, c := startServer(t, Options{Workers: 2, Tenants: reg})
	c.Tenant = "mallory"
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)

	// First submit consumes the lone token and completes.
	if res, err := c.Submit(ctx, sid, exampleIntent, "ISP_OUT"); err != nil || res.Status != StatusDone {
		t.Fatalf("first submit = %v/%v, want done", res.Status, err)
	}
	before, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatalf("session info: %v", err)
	}

	// Second submit must shed. SubmitAsync carries no client-side 429
	// retry, so the rejection surfaces directly.
	_, err = c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %v, want 429", err)
	}
	if apiErr.RetryAfterSeconds <= 0 {
		t.Errorf("429 carried RetryAfterSeconds %d, want > 0", apiErr.RetryAfterSeconds)
	}

	// The bounce happened before beginUpdate: no update record grew.
	after, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatalf("session info: %v", err)
	}
	if after.Updates != before.Updates {
		t.Errorf("shed submit allocated an update record: %d -> %d", before.Updates, after.Updates)
	}

	// Per-tenant metrics carry the shed, keyed by reason.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	tm, ok := snap.Tenants["mallory"]
	if !ok {
		t.Fatalf("metrics lack tenant mallory: %+v", snap.Tenants)
	}
	if tm.Sheds[tenant.ReasonRate] == 0 {
		t.Errorf("tenant sheds = %+v, want rate > 0", tm.Sheds)
	}
	if tm.Submits == 0 || tm.SLO == nil {
		t.Errorf("tenant metrics incomplete: %+v", tm)
	}
}

// TestTenantConcurrencyQuota409Free: a tenant at its in-flight cap is
// bounced with the concurrency reason and recovers once the update drains.
func TestTenantConcurrencyQuota(t *testing.T) {
	reg := tenant.NewRegistry(tenant.RegistryConfig{Profiles: []tenant.Profile{
		{Name: "teamA", MaxConcurrent: 1},
	}})
	_, c := startServer(t, Options{
		Workers:   2,
		Tenants:   reg,
		NewClient: func() llm.Client { return slowLLM{inner: llm.NewSimLLM(), delay: 50 * time.Millisecond} },
	})
	c.Tenant = "teamA"
	ctx := context.Background()

	sid1, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create 1: %v", err)
	}
	sid2, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create 2: %v", err)
	}
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid1, stop)

	if _, err := c.SubmitAsync(ctx, sid1, exampleIntent, "ISP_OUT"); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// The tenant's only slot is taken; a second session's submit sheds.
	_, err = c.SubmitAsync(ctx, sid2, exampleIntent, "ISP_OUT")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-concurrency submit = %v, want 429", err)
	}

	// Once the first update finishes, the slot frees and the tenant is
	// admitted again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = c.SubmitAsync(ctx, sid2, exampleIntent, "ISP_OUT"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never recovered its slot: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	answerPump(c, sid2, stop)
	waitIdle(t, c, sid2)
}

// waitIdle polls until the session has no in-flight update.
func waitIdle(t *testing.T, c *Client, sid string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Session(context.Background(), sid)
		if err == nil && !info.Busy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("session never went idle")
}

// TestInteractivePreemptsBulkBacklog: a session engaged in the
// disambiguation dialogue dispatches ahead of a full bulk backlog — the
// parked-question answer path must not queue behind a bulk flood.
func TestInteractivePreemptsBulkBacklog(t *testing.T) {
	_, c := startServer(t, Options{
		Workers:   1,
		QueueSize: 16,
		NewClient: func() llm.Client { return slowLLM{inner: llm.NewSimLLM(), delay: 30 * time.Millisecond} },
	})
	ctx := context.Background()
	stop := make(chan struct{})
	defer close(stop)

	// Engage session A in the dialogue: its first update asks questions, so
	// the session is marked interactive for subsequent submits.
	sidA, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create A: %v", err)
	}
	answerPump(c, sidA, stop)
	if res, err := c.Submit(ctx, sidA, exampleIntent, "ISP_OUT"); err != nil || res.Status != StatusDone {
		t.Fatalf("warmup update = %v/%v, want done", res.Status, err)
	}

	// Saturate the single worker with a bulk backlog from other sessions.
	const bulk = 6
	var bulkSids []string
	for i := 0; i < bulk; i++ {
		sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatalf("create bulk %d: %v", i, err)
		}
		answerPump(c, sid, stop)
		if _, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT"); err != nil {
			t.Fatalf("bulk submit %d: %v", i, err)
		}
		bulkSids = append(bulkSids, sid)
	}

	// Submit on the interactive session and wait for it to finish.
	u, err := c.SubmitAsync(ctx, sidA, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("interactive submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ui, err := c.Update(ctx, sidA, u.ID)
		if err != nil {
			t.Fatalf("poll interactive: %v", err)
		}
		if ui.Status == StatusDone || ui.Status == StatusFailed {
			if ui.Status != StatusDone {
				t.Fatalf("interactive update failed: %s", ui.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interactive update never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The interactive update jumped the line: bulk jobs submitted before it
	// must still be pending. (The worker had at most the running job plus
	// the interactive one dispatched by now.)
	pending := 0
	for _, sid := range bulkSids {
		info, err := c.Session(ctx, sid)
		if err != nil {
			t.Fatalf("bulk session info: %v", err)
		}
		if info.Busy {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("no bulk backlog remained when the interactive update finished: priority lane did not preempt")
	}
	for _, sid := range bulkSids {
		waitIdle(t, c, sid)
	}
}

// TestPoolCloseBoundedDrain: Close with an expired deadline purges the
// queued backlog — running each admitted job's drop callback — instead of
// wedging shutdown behind a saturated queue.
func TestPoolCloseBoundedDrain(t *testing.T) {
	p := newPool(1, 8, tenant.ShedConfig{Target: -1}, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-release }) {
		t.Fatal("blocker rejected")
	}
	<-started

	var dropped int64
	for i := 0; i < 8; i++ {
		reason := p.Submit("bulk", 1, tenant.Bulk, func() {
			t.Error("queued job ran after purge")
		}, func(r tenant.Reason) {
			if r == tenant.ReasonDrainDeadline {
				atomic.AddInt64(&dropped, 1)
			}
		})
		if reason != "" {
			t.Fatalf("queued submit %d shed: %s", i, reason)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("Close took %s, want bounded by the 50ms deadline", e)
	}
	if n := atomic.LoadInt64(&dropped); n != 8 {
		t.Fatalf("purged %d jobs with drain reason, want 8", n)
	}
	close(release)
	p.Wait()
}

// TestSnapshotPreservesTenant: a session handed off via snapshot re-binds to
// the same tenant on the successor.
func TestSnapshotPreservesTenant(t *testing.T) {
	reg := tenant.NewRegistry(tenant.RegistryConfig{Profiles: []tenant.Profile{{Name: "teamA", Weight: 2}}})
	srvA, cA := startServer(t, Options{Workers: 2, Tenants: reg})
	cA.Tenant = "teamA"
	ctx := context.Background()

	sid, err := cA.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snaps := srvA.SnapshotSessions("nodeA")
	if len(snaps) != 1 {
		t.Fatalf("snapshotted %d sessions, want 1", len(snaps))
	}
	if snaps[0].Tenant != "teamA" {
		t.Fatalf("snapshot tenant = %q, want teamA", snaps[0].Tenant)
	}

	_, cB := startServer(t, Options{Workers: 2, Tenants: tenant.NewRegistry(tenant.RegistryConfig{})})
	if _, err := cB.RestoreSession(ctx, snaps[0]); err != nil {
		t.Fatalf("restore: %v", err)
	}
	info, err := cB.Session(ctx, sid)
	if err != nil {
		t.Fatalf("restored session info: %v", err)
	}
	if info.Tenant != "teamA" {
		t.Errorf("restored SessionInfo.Tenant = %q, want teamA", info.Tenant)
	}
}

// TestDebugSLOTenantView: /debug/slo?tenant= serves the per-tenant rings and
// 404s for tenants with no observations.
func TestDebugSLOTenantView(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	c.Tenant = "teamA"
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)
	if res, err := c.Submit(ctx, sid, exampleIntent, "ISP_OUT"); err != nil || res.Status != StatusDone {
		t.Fatalf("submit = %v/%v, want done", res.Status, err)
	}

	resp, err := http.Get(c.BaseURL + "/debug/slo?tenant=teamA")
	if err != nil {
		t.Fatalf("GET /debug/slo?tenant=teamA: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant SLO view = %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Get(c.BaseURL + "/debug/slo?tenant=ghost")
	if err != nil {
		t.Fatalf("GET /debug/slo?tenant=ghost: %v", err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant SLO view = %d, want 404: %s", resp.StatusCode, body)
	}
}
