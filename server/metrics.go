package server

import (
	"sort"
	"sync"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/symbolic"
)

// latencyBuckets are the histogram upper bounds in milliseconds; the last
// implicit bucket is +Inf.
var latencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// histogram is a fixed-bucket latency histogram. It is guarded by the owning
// metrics mutex.
type histogram struct {
	counts []int64 // len(latencyBuckets)+1, last bucket is +Inf
	sumMs  float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBuckets, ms)
	h.counts[i]++
	h.sumMs += ms
	h.n++
}

// HistogramSnapshot is the JSON view of one latency histogram.
type HistogramSnapshot struct {
	// BucketsMs are the upper bounds; Counts has one extra entry for +Inf.
	BucketsMs []float64 `json:"bucketsMs"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	SumMs     float64   `json:"sumMs"`
	MeanMs    float64   `json:"meanMs"`
}

// metrics aggregates the server's observable state: per-endpoint request and
// status counters, an in-flight gauge, backpressure rejections, and
// per-endpoint latency histograms. All methods are safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64
	statuses map[int]int64
	latency  map[string]*histogram
	stages   map[string]*histogram // pipeline stage durations from completed traces
	inFlight int64
	rejected int64 // 429 backpressure rejections
	panics   int64 // worker panics contained by the pool
	timeouts int64 // updates aborted by the per-update deadline
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]int64{},
		statuses: map[int]int64{},
		latency:  map[string]*histogram{},
		stages:   map[string]*histogram{},
	}
}

// observeTrace folds one completed span tree into the per-stage latency
// histograms, aggregating numbered spans (synthesize-attempt-2, ...) under
// their canonical stage name.
func (m *metrics) observeTrace(t *obs.Trace) {
	if t == nil || t.Root == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t.Walk(func(sp *obs.Span, _ int) {
		stage := obs.CanonicalStage(sp.Name)
		h := m.stages[stage]
		if h == nil {
			h = newHistogram()
			m.stages[stage] = h
		}
		h.observe(sp.Duration)
	})
}

// recordPanic counts one recovered worker panic.
func (m *metrics) recordPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// recordUpdateTimeout counts one update aborted by its deadline budget.
func (m *metrics) recordUpdateTimeout() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

// begin records an arriving request and returns the completion callback.
func (m *metrics) begin(endpoint string) func(status int) {
	start := time.Now()
	m.mu.Lock()
	m.requests[endpoint]++
	m.inFlight++
	m.mu.Unlock()
	return func(status int) {
		d := time.Since(start)
		m.mu.Lock()
		m.inFlight--
		m.statuses[status]++
		h := m.latency[endpoint]
		if h == nil {
			h = newHistogram()
			m.latency[endpoint] = h
		}
		h.observe(d)
		if status == 429 {
			m.rejected++
		}
		m.mu.Unlock()
	}
}

// MetricsSnapshot is the body of GET /metrics (expvar-style JSON).
type MetricsSnapshot struct {
	// Requests counts requests per endpoint pattern.
	Requests map[string]int64 `json:"requests"`
	// Statuses counts responses per HTTP status code.
	Statuses map[int]int64 `json:"statuses"`
	// InFlight is the number of HTTP requests currently being served.
	InFlight int64 `json:"inFlight"`
	// Rejected counts 429 backpressure rejections.
	Rejected int64 `json:"rejected"`
	// LatencyMs holds one histogram per endpoint pattern.
	LatencyMs map[string]HistogramSnapshot `json:"latencyMs"`
	// QueueDepth is the number of updates waiting for a worker.
	QueueDepth int `json:"queueDepth"`
	// QueueCapacity is the bounded queue's size.
	QueueCapacity int `json:"queueCapacity"`
	// Workers is the worker pool size.
	Workers int `json:"workers"`
	// ActiveUpdates is the number of updates currently executing or parked
	// on a question.
	ActiveUpdates int64 `json:"activeUpdates"`
	// Sessions is the number of live sessions.
	Sessions int `json:"sessions"`
	// EvictedSessions counts sessions removed by TTL eviction.
	EvictedSessions int64 `json:"evictedSessions"`
	// Pipeline is the cumulative clarify.Stats over all sessions, including
	// deleted and evicted ones.
	Pipeline clarify.Stats `json:"pipeline"`
	// SpaceCache reports the shared symbolic route-space cache: hits avoid
	// rebuilding a BDD universe from scratch.
	SpaceCache symbolic.SpaceCacheStats `json:"spaceCache"`
	// StagesMs holds one duration histogram per pipeline stage (classify,
	// synthesize-attempt, verify, disambiguate, ...), built from completed
	// traces.
	StagesMs map[string]HistogramSnapshot `json:"stagesMs"`
	// Traces counts completed traces recorded since start (the debug ring
	// retains only the most recent).
	Traces int64 `json:"traces"`
	// PanicsRecovered counts pipeline-job panics contained by the worker
	// pool; each one failed its update but left the daemon serving.
	PanicsRecovered int64 `json:"panicsRecovered"`
	// UpdateTimeouts counts updates aborted by the per-update deadline.
	UpdateTimeouts int64 `json:"updateTimeouts"`
	// Resilience reports the LLM backend path (circuit breaker + fallback
	// chain) when the server was built with one; nil otherwise.
	Resilience *resilience.Stats `json:"resilience,omitempty"`
}

// snapshot copies the counters; pool/session fields are filled by the server.
func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		Requests:  make(map[string]int64, len(m.requests)),
		Statuses:  make(map[int]int64, len(m.statuses)),
		LatencyMs: make(map[string]HistogramSnapshot, len(m.latency)),
		StagesMs:  make(map[string]HistogramSnapshot, len(m.stages)),
		InFlight:  m.inFlight,
		Rejected:  m.rejected,
	}
	out.PanicsRecovered = m.panics
	out.UpdateTimeouts = m.timeouts
	for k, v := range m.requests {
		out.Requests[k] = v
	}
	for k, v := range m.statuses {
		out.Statuses[k] = v
	}
	for k, h := range m.latency {
		out.LatencyMs[k] = h.snapshot()
	}
	for k, h := range m.stages {
		out.StagesMs[k] = h.snapshot()
	}
	return out
}

// snapshot copies one histogram; callers hold the metrics mutex.
func (h *histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		BucketsMs: latencyBuckets,
		Counts:    append([]int64(nil), h.counts...),
		Count:     h.n,
		SumMs:     h.sumMs,
	}
	if h.n > 0 {
		snap.MeanMs = h.sumMs / float64(h.n)
	}
	return snap
}
