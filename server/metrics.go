package server

import (
	"sort"
	"sync"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/incident"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/symbolic"
	"github.com/clarifynet/clarify/tenant"
)

// defaultLatencyBuckets are the histogram upper bounds in milliseconds when
// Options.LatencyBucketsMs is empty; the last implicit bucket is +Inf.
var defaultLatencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// histogram is a fixed-bucket latency histogram. It is guarded by the owning
// metrics mutex. Every histogram in one metrics instance shares the same
// bucket table, chosen at server construction.
type histogram struct {
	buckets []float64
	counts  []int64 // len(buckets)+1, last bucket is +Inf
	sumMs   float64
	n       int64
	// exemplars holds the most recent exemplared observation per bucket
	// (len(buckets)+1, the last for +Inf); nil until the first exemplar, so
	// exemplar-off histograms pay no extra memory.
	exemplars []Exemplar
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(h.buckets, ms)
	h.counts[i]++
	h.sumMs += ms
	h.n++
}

// observeValue folds a raw dimensionless observation (bits of ambiguity,
// question counts) into a histogram whose bucket table is in the same unit;
// the sum field is reused as-is.
func (h *histogram) observeValue(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sumMs += v
	h.n++
}

// observeExemplar is observe plus an exemplar: the trace that produced this
// observation replaces the bucket's previous exemplar, so each bucket always
// links to a recent representative trace.
func (h *histogram) observeExemplar(d time.Duration, traceID string, ts float64) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(h.buckets, ms)
	h.counts[i]++
	h.sumMs += ms
	h.n++
	if traceID == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{TraceID: traceID, ValueMs: ms, Ts: ts}
}

// Exemplar links one histogram bucket to the trace behind a recent
// observation in it — the OpenMetrics exemplar, so a latency spike on a
// dashboard clicks through to /debug/traces/{traceId}.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	ValueMs float64 `json:"valueMs"`
	Ts      float64 `json:"ts,omitempty"` // unix seconds
}

// HistogramSnapshot is the JSON view of one latency histogram.
type HistogramSnapshot struct {
	// BucketsMs are the upper bounds; Counts has one extra entry for +Inf.
	BucketsMs []float64 `json:"bucketsMs"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	SumMs     float64   `json:"sumMs"`
	MeanMs    float64   `json:"meanMs"`
	// EstP50Ms/EstP95Ms/EstP99Ms are quantile estimates interpolated from the
	// bucket counts (Prometheus histogram_quantile-style), so consumers don't
	// post-process raw buckets. Resolution is bounded by the bucket table.
	EstP50Ms float64 `json:"estP50Ms"`
	EstP95Ms float64 `json:"estP95Ms"`
	EstP99Ms float64 `json:"estP99Ms"`
	// Exemplars, when exemplar collection is on, carries the most recent
	// trace reference per bucket (len(Counts) entries; empty TraceID means
	// the bucket has no exemplar yet). Rendered on OpenMetrics output.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// estimateQuantile interpolates the q-quantile (0 < q < 1) from cumulative
// bucket counts, assuming observations are uniform within a bucket — the
// same model Prometheus's histogram_quantile uses. Samples in the +Inf
// bucket clamp to the highest finite bound.
func estimateQuantile(buckets []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 || len(buckets) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(buckets) {
				return buckets[len(buckets)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = buckets[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (buckets[i]-lower)*frac
		}
		cum += c
	}
	return buckets[len(buckets)-1]
}

// metrics aggregates the server's observable state: per-endpoint request and
// status counters, an in-flight gauge, backpressure rejections, and
// per-endpoint latency histograms. All methods are safe for concurrent use.
type metrics struct {
	buckets   []float64 // histogram upper bounds, fixed at construction
	exemplars bool      // attach trace exemplars to stage histograms
	mu        sync.Mutex
	requests  map[string]int64
	statuses  map[int]int64
	latency   map[string]*histogram
	stages    map[string]*histogram // pipeline stage durations from completed traces
	inFlight  int64
	rejected  int64 // 429 backpressure rejections
	panics    int64 // worker panics contained by the pool
	timeouts  int64 // updates aborted by the per-update deadline
}

func newMetrics(buckets []float64) *metrics {
	if len(buckets) == 0 {
		buckets = defaultLatencyBuckets
	}
	return &metrics{
		buckets:  buckets,
		requests: map[string]int64{},
		statuses: map[int]int64{},
		latency:  map[string]*histogram{},
		stages:   map[string]*histogram{},
	}
}

// observeTrace folds one completed span tree into the per-stage latency
// histograms, aggregating numbered spans (synthesize-attempt-2, ...) under
// their canonical stage name. With exemplars enabled, every bucket touched
// remembers the trace ID, linking the metric back to the span tree.
func (m *metrics) observeTrace(t *obs.Trace) {
	if t == nil || t.Root == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := 0.0
	if m.exemplars {
		ts = float64(time.Now().UnixMilli()) / 1000
	}
	t.Walk(func(sp *obs.Span, _ int) {
		stage := obs.CanonicalStage(sp.Name)
		h := m.stages[stage]
		if h == nil {
			h = newHistogram(m.buckets)
			m.stages[stage] = h
		}
		if m.exemplars {
			h.observeExemplar(sp.Duration, t.ID, ts)
		} else {
			h.observe(sp.Duration)
		}
	})
}

// stageQuantile estimates the q-quantile of one stage's latency histogram
// plus its observation count — the tail-retention policy's "slower than p99"
// input.
func (m *metrics) stageQuantile(stage string, q float64) (float64, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.stages[stage]
	if h == nil || h.n == 0 {
		return 0, 0
	}
	return estimateQuantile(h.buckets, h.counts, h.n, q), h.n
}

// recordPanic counts one recovered worker panic.
func (m *metrics) recordPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// recordUpdateTimeout counts one update aborted by its deadline budget.
func (m *metrics) recordUpdateTimeout() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

// begin records an arriving request and returns the completion callback.
func (m *metrics) begin(endpoint string) func(status int) {
	start := time.Now()
	m.mu.Lock()
	m.requests[endpoint]++
	m.inFlight++
	m.mu.Unlock()
	return func(status int) {
		d := time.Since(start)
		m.mu.Lock()
		m.inFlight--
		m.statuses[status]++
		h := m.latency[endpoint]
		if h == nil {
			h = newHistogram(m.buckets)
			m.latency[endpoint] = h
		}
		h.observe(d)
		if status == 429 {
			m.rejected++
		}
		m.mu.Unlock()
	}
}

// MetricsSnapshot is the body of GET /metrics (expvar-style JSON).
type MetricsSnapshot struct {
	// Requests counts requests per endpoint pattern.
	Requests map[string]int64 `json:"requests"`
	// Statuses counts responses per HTTP status code.
	Statuses map[int]int64 `json:"statuses"`
	// InFlight is the number of HTTP requests currently being served.
	InFlight int64 `json:"inFlight"`
	// Rejected counts 429 backpressure rejections.
	Rejected int64 `json:"rejected"`
	// LatencyMs holds one histogram per endpoint pattern.
	LatencyMs map[string]HistogramSnapshot `json:"latencyMs"`
	// QueueDepth is the number of updates waiting for a worker.
	QueueDepth int `json:"queueDepth"`
	// QueueCapacity is the bounded queue's size.
	QueueCapacity int `json:"queueCapacity"`
	// Workers is the worker pool size.
	Workers int `json:"workers"`
	// ActiveUpdates is the number of updates currently executing or parked
	// on a question.
	ActiveUpdates int64 `json:"activeUpdates"`
	// Sessions is the number of live sessions.
	Sessions int `json:"sessions"`
	// EvictedSessions counts sessions removed by TTL eviction.
	EvictedSessions int64 `json:"evictedSessions"`
	// SnapshottedSessions counts sessions captured for handoff, and
	// RestoredSessions counts sessions rehydrated from a snapshot or peer;
	// RestoreFailures counts rejected restore attempts (conflict, invalid
	// snapshot, cap).
	SnapshottedSessions int64 `json:"snapshottedSessions,omitempty"`
	RestoredSessions    int64 `json:"restoredSessions,omitempty"`
	RestoreFailures     int64 `json:"restoreFailures,omitempty"`
	// Pipeline is the cumulative clarify.Stats over all sessions, including
	// deleted and evicted ones.
	Pipeline clarify.Stats `json:"pipeline"`
	// SpaceCache reports the shared symbolic route-space cache: hits avoid
	// rebuilding a BDD universe from scratch.
	SpaceCache symbolic.SpaceCacheStats `json:"spaceCache"`
	// StagesMs holds one duration histogram per pipeline stage (classify,
	// synthesize-attempt, verify, disambiguate, ...), built from completed
	// traces.
	StagesMs map[string]HistogramSnapshot `json:"stagesMs"`
	// Traces counts completed traces recorded since start (the debug ring
	// retains only the most recent).
	Traces int64 `json:"traces"`
	// KeptTraces counts evicted traces rescued by the tail-retention policy
	// (errors, degraded runs, latency outliers).
	KeptTraces int64 `json:"keptTraces,omitempty"`
	// Incidents reports profile-on-fire activity when an incident recorder
	// is configured; nil otherwise.
	Incidents *incident.Stats `json:"incidents,omitempty"`
	// PanicsRecovered counts pipeline-job panics contained by the worker
	// pool; each one failed its update but left the daemon serving.
	PanicsRecovered int64 `json:"panicsRecovered"`
	// UpdateTimeouts counts updates aborted by the per-update deadline.
	UpdateTimeouts int64 `json:"updateTimeouts"`
	// Resilience reports the LLM backend path (circuit breaker + fallback
	// chain) when the server was built with one; nil otherwise.
	Resilience *resilience.Stats `json:"resilience,omitempty"`
	// SLO is the rolling objective state: per-objective good/bad counts,
	// error budget remaining, and multi-window burn-rate alerts.
	SLO *slo.Snapshot `json:"slo,omitempty"`
	// Journal reports flight-recorder activity when journaling is enabled;
	// nil otherwise.
	Journal *journal.Stats `json:"journal,omitempty"`
	// Queue is the fair-dispatch queue's counters: pushes, pops, sheds by
	// gate, and whether the overload controller is tripped.
	Queue *tenant.QueueStats `json:"queue,omitempty"`
	// Tenants holds each live tenant's admission counters, queue backlog,
	// and private SLO rings.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Ambiguity is the disambiguation-efficiency telemetry: information-gain
	// rollups per strategy and tenant plus the bits/questions distributions.
	// Also served alone at GET /debug/ambiguity.
	Ambiguity *AmbiguitySnapshot `json:"ambiguity,omitempty"`
	// Runtime is the process-runtime block (goroutines, GC pause p99, heap
	// in use), sampled at scrape time.
	Runtime *RuntimeStats `json:"runtime,omitempty"`
}

// snapshot copies the counters; pool/session fields are filled by the server.
func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		Requests:  make(map[string]int64, len(m.requests)),
		Statuses:  make(map[int]int64, len(m.statuses)),
		LatencyMs: make(map[string]HistogramSnapshot, len(m.latency)),
		StagesMs:  make(map[string]HistogramSnapshot, len(m.stages)),
		InFlight:  m.inFlight,
		Rejected:  m.rejected,
	}
	out.PanicsRecovered = m.panics
	out.UpdateTimeouts = m.timeouts
	for k, v := range m.requests {
		out.Requests[k] = v
	}
	for k, v := range m.statuses {
		out.Statuses[k] = v
	}
	for k, h := range m.latency {
		out.LatencyMs[k] = h.snapshot()
	}
	for k, h := range m.stages {
		out.StagesMs[k] = h.snapshot()
	}
	return out
}

// snapshot copies one histogram; callers hold the metrics mutex.
func (h *histogram) snapshot() HistogramSnapshot {
	snap := MakeHistogramSnapshot(h.buckets, h.counts, h.n, h.sumMs)
	if h.exemplars != nil {
		snap.Exemplars = append([]Exemplar(nil), h.exemplars...)
	}
	return snap
}

// MakeHistogramSnapshot builds the wire view of a fixed-bucket latency
// histogram from raw counts, including the interpolated quantile estimates.
// The counts slice is copied. Shared with the lb package so clarify-lb's
// per-backend latency series carry the same shape as clarifyd's.
func MakeHistogramSnapshot(bucketsMs []float64, counts []int64, count int64, sumMs float64) HistogramSnapshot {
	snap := HistogramSnapshot{
		BucketsMs: bucketsMs,
		Counts:    append([]int64(nil), counts...),
		Count:     count,
		SumMs:     sumMs,
	}
	if count > 0 {
		snap.MeanMs = sumMs / float64(count)
		snap.EstP50Ms = estimateQuantile(bucketsMs, counts, count, 0.50)
		snap.EstP95Ms = estimateQuantile(bucketsMs, counts, count, 0.95)
		snap.EstP99Ms = estimateQuantile(bucketsMs, counts, count, 0.99)
	}
	return snap
}

// DefaultLatencyBucketsMs exposes the default histogram bound table for
// other serving tiers (the lb package) that want matching resolution.
func DefaultLatencyBucketsMs() []float64 {
	return append([]float64(nil), defaultLatencyBuckets...)
}
