package server

import (
	"net/http"
	"strconv"
	"sync"

	"github.com/clarifynet/clarify/obs"
)

// DefaultTraceBufferSize is the debug ring's capacity when
// Options.TraceBufferSize is zero.
const DefaultTraceBufferSize = 256

// traceRing retains the most recent completed traces for the /debug/traces
// endpoints. It is a fixed-size ring: the oldest trace is evicted (and
// becomes unresolvable by ID) when a new one arrives at capacity.
type traceRing struct {
	mu    sync.Mutex
	buf   []*obs.Trace // circular, len == capacity
	next  int          // slot the next trace lands in
	byID  map[string]*obs.Trace
	total int64 // traces ever recorded
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = DefaultTraceBufferSize
	}
	return &traceRing{
		buf:  make([]*obs.Trace, capacity),
		byID: map[string]*obs.Trace{},
	}
}

// Add records a completed trace, evicting the oldest at capacity.
func (r *traceRing) Add(t *obs.Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// Get resolves a retained trace by ID.
func (r *traceRing) Get(id string) (*obs.Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Total is the number of traces ever recorded.
func (r *traceRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// List snapshots the retained traces, newest first.
func (r *traceRing) List() []*obs.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*obs.Trace, 0, len(r.byID))
	// Walk backwards from the most recently filled slot.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if t := r.buf[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// TraceSummary is one row of GET /debug/traces.
type TraceSummary struct {
	ID         string  `json:"id"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"durationMs"`
	Spans      int     `json:"spans"`
	// Target and Error echo the root span's attributes when present.
	Target string `json:"target,omitempty"`
	Error  string `json:"error,omitempty"`
}

func summarize(t *obs.Trace) TraceSummary {
	s := TraceSummary{
		ID:         t.ID,
		Start:      t.Start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		DurationMs: float64(t.Duration()) / 1e6,
		Spans:      t.SpanCount(),
	}
	if a, ok := t.Root.Attr("target"); ok {
		s.Target = a.Str
	}
	if a, ok := t.Root.Attr("error"); ok {
		s.Error = a.Str
	}
	return s
}

// handleDebugTraces lists the retained traces, newest first. ?limit=N bounds
// the response to the N most recent.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer", 0)
			return
		}
		limit = n
	}
	traces := s.traces.List()
	if limit >= 0 && limit < len(traces) {
		traces = traces[:limit]
	}
	out := make([]TraceSummary, 0, len(traces))
	for _, t := range traces {
		out = append(out, summarize(t))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugTrace returns one retained trace's full span tree.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("tid"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such trace (evicted or never recorded)", 0)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
