package server

import (
	"net/http"
	"strconv"

	"github.com/clarifynet/clarify/obs"
)

// DefaultTraceBufferSize is the debug ring's capacity when
// Options.TraceBufferSize is zero.
const DefaultTraceBufferSize = 256

// DefaultTraceKeepSize is the tail-retention ring's capacity when
// Options.TraceKeepSize is zero: evicted error/degraded/slow traces survive
// here after healthy traffic pushes them out of the main ring.
const DefaultTraceKeepSize = 64

// newTraceRing builds the shared obs.Ring for the /debug/traces endpoints;
// the retention policy is attached by New once the server exists.
func newTraceRing(capacity int) *obs.Ring {
	if capacity <= 0 {
		capacity = DefaultTraceBufferSize
	}
	return obs.NewRing(capacity)
}

// TraceSummary is one row of GET /debug/traces.
type TraceSummary struct {
	ID         string  `json:"id"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"durationMs"`
	Spans      int     `json:"spans"`
	// ParentSpanID is the remote parent for traces that continue a
	// propagated fleet context (a clarify-lb forward span).
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// Target and Error echo the root span's attributes when present.
	Target string `json:"target,omitempty"`
	Error  string `json:"error,omitempty"`
}

func summarize(t *obs.Trace) TraceSummary {
	s := TraceSummary{
		ID:           t.ID,
		Start:        t.Start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		DurationMs:   float64(t.Duration()) / 1e6,
		Spans:        t.SpanCount(),
		ParentSpanID: t.ParentSpanID,
	}
	if a, ok := t.Root.Attr("target"); ok {
		s.Target = a.Str
	}
	if a, ok := t.Root.Attr("error"); ok {
		s.Error = a.Str
	}
	return s
}

// handleDebugTraces lists the retained traces, newest first. ?limit=N bounds
// the response to the N most recent; ?kept=1 lists the tail-retention ring
// (error/degraded/slow traces that outlived the main ring) instead.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer", 0)
			return
		}
		limit = n
	}
	var traces []*obs.Trace
	if r.URL.Query().Get("kept") == "1" {
		traces = s.traces.Kept()
	} else {
		traces = s.traces.List()
	}
	if limit >= 0 && limit < len(traces) {
		traces = traces[:limit]
	}
	out := make([]TraceSummary, 0, len(traces))
	for _, t := range traces {
		out = append(out, summarize(t))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugTrace returns one retained trace's full span tree; tail-kept
// traces resolve here too.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("tid"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such trace (evicted or never recorded)", 0)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
