package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/clarifynet/clarify/chaoshttp"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/llm/llmtest"
	"github.com/clarifynet/clarify/resilience"
)

// chaosStack wires the full production LLM path for tests: SimLLM served
// over real HTTP behind a chaos transport, wrapped in retries, a breaker,
// and a SimLLM fallback.
type chaosStack struct {
	rt       *chaoshttp.RoundTripper
	endpoint *httptest.Server
	stack    *resilience.Stack
}

func newChaosStack(t *testing.T, plan chaoshttp.Plan, cfg resilience.BreakerConfig, withFallback bool) *chaosStack {
	t.Helper()
	endpoint := httptest.NewServer(llmtest.NewHandler(llm.NewSimLLM()))
	t.Cleanup(endpoint.Close)
	rt := chaoshttp.New(plan, endpoint.Client().Transport)
	primary := &llm.HTTPClient{
		BaseURL:        endpoint.URL,
		Model:          "sim",
		HTTP:           &http.Client{Transport: rt, Timeout: 10 * time.Second},
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
	}
	var fallback llm.Client
	if withFallback {
		fallback = llm.NewSimLLM()
	}
	return &chaosStack{
		rt:       rt,
		endpoint: endpoint,
		stack:    resilience.NewStack(primary, "http", cfg, fallback, "sim"),
	}
}

// soakBreakerConfig trips and recovers fast enough for test timescales.
func soakBreakerConfig() resilience.BreakerConfig {
	return resilience.BreakerConfig{
		FailureRate:    0.5,
		MinRequests:    4,
		Window:         2 * time.Second,
		Buckets:        10,
		Cooldown:       20 * time.Millisecond,
		HalfOpenProbes: 2,
	}
}

// runSessions drives updates concurrent sessions × perSession updates each
// through the full HTTP API, answering every question with OPTION 1, and
// returns (done, failed) counts.
func runSessions(t *testing.T, c *Client, sessions, perSession int) (int64, int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var mu sync.Mutex
	var done, failed int64
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
			if err != nil {
				t.Errorf("create session: %v", err)
				return
			}
			for j := 0; j < perSession; j++ {
				res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT",
					func(q Question) (int, error) { return 1, nil })
				if err != nil {
					t.Errorf("run update: %v", err)
					return
				}
				mu.Lock()
				switch res.Status {
				case StatusDone:
					done++
				case StatusFailed:
					failed++
				default:
					t.Errorf("update ended non-terminal: %+v", res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return done, failed
}

// TestChaosSoak hammers a daemon whose primary LLM endpoint injects mixed
// faults, then goes hard-down, then heals — asserting every update reaches a
// terminal state, the breaker opens under sustained failure and closes after
// recovery, no session wedges, and no goroutines leak.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	baseline := runtime.NumGoroutine()

	cs := newChaosStack(t, chaoshttp.Plan{
		Seed:         42,
		Reset:        0.12,
		HTTP429:      0.08,
		HTTP503:      0.08,
		Garbage:      0.08,
		Truncate:     0.05,
		Stall:        0.04,
		Latency:      0.2,
		LatencyDelay: time.Millisecond,
		StallDelay:   5 * time.Millisecond,
	}, soakBreakerConfig(), true)

	srv := New(Options{
		Workers:       8,
		QueueSize:     64,
		UpdateTimeout: 30 * time.Second,
		NewClient:     func() llm.Client { return cs.stack.Client() },
		Resilience:    cs.stack,
	})
	hs := httptest.NewServer(srv)
	c := &Client{BaseURL: hs.URL, PollInterval: 2 * time.Millisecond}

	// Phase 1: mixed chaos. Retries plus the fallback must keep every update
	// terminal; with SimLLM behind both backends they should all succeed.
	done, failed := runSessions(t, c, 10, 20)
	t.Logf("mixed chaos: done=%d failed=%d injected: %s", done, failed, cs.rt.Counts())
	if done+failed != 200 {
		t.Fatalf("lost updates: done=%d failed=%d, want 200 terminal", done, failed)
	}
	if done == 0 {
		t.Fatal("no update succeeded under mixed chaos")
	}

	// Phase 2: hard-down primary. Phase 1's successes still dominate the
	// rolling window, so keep failing traffic flowing until they expire and
	// the failure rate trips the breaker; the fallback must serve throughout.
	cs.rt.SetPlan(chaoshttp.Plan{Reset: 1})
	openBy := time.Now().Add(30 * time.Second)
	for cs.stack.Breaker().State() != resilience.Open {
		if time.Now().After(openBy) {
			t.Fatalf("breaker never opened under hard-down primary: %+v", cs.stack.Breaker().Stats())
		}
		if _, f := runSessions(t, c, 4, 2); f != 0 {
			t.Fatalf("hard-down phase: %d updates failed despite fallback", f)
		}
	}
	bs := cs.stack.Breaker().Stats()
	if bs.Opens == 0 || bs.State != "open" {
		t.Errorf("breaker = %+v after hard-down phase, want open", bs)
	}

	// The breaker state must be visible on the Prometheus endpoint.
	resp, err := http.Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"clarifyd_llm_breaker_state 1",
		"clarifyd_llm_breaker_opens_total",
		"clarifyd_llm_fallback_total",
		`clarifyd_llm_backend_served_total{backend="sim"}`,
		"clarifyd_panics_recovered_total 0",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// Phase 3: heal the endpoint; probe traffic must close the breaker and
	// the stack must leave degraded mode.
	cs.rt.SetPlan(chaoshttp.Plan{})
	deadline := time.Now().Add(30 * time.Second)
	for cs.stack.Breaker().State() != resilience.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker did not close after healing: %+v", cs.stack.Breaker().Stats())
		}
		if _, f := runSessions(t, c, 1, 1); f != 0 {
			t.Fatal("update failed after healing")
		}
	}
	if cs.stack.Degraded() {
		t.Error("stack still degraded after breaker closed and primary served")
	}

	// No stuck sessions: every hosted session must be idle (not busy).
	for _, sn := range srv.mgr.List() {
		if info := sn.info(); info.Busy {
			t.Errorf("session %s still busy after soak", info.ID)
		}
	}

	// Drain and check for goroutine leaks.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs.Close()
	cs.endpoint.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live vs baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosHardDownFallback is the acceptance walkthrough: with the primary
// endpoint 100% down, the §2.1 update completes via the SimLLM fallback in
// degraded mode and the daemon reports it everywhere it should.
func TestChaosHardDownFallback(t *testing.T) {
	plan, err := chaoshttp.ParsePlan("down")
	if err != nil {
		t.Fatalf("parse plan: %v", err)
	}
	// One walkthrough makes only ~3 primary attempts, so trip after 2 and
	// keep the breaker open for the rest of the test.
	cs := newChaosStack(t, plan, resilience.BreakerConfig{
		FailureRate: 0.5,
		MinRequests: 2,
		Cooldown:    time.Hour,
	}, true)
	srv, c := startServer(t, Options{
		Workers:    2,
		NewClient:  func() llm.Client { return cs.stack.Client() },
		Resilience: cs.stack,
	})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT",
		func(q Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone || res.Result == nil {
		t.Fatalf("walkthrough did not finish via fallback: %+v", res)
	}
	if res.Result.Questions != 2 {
		t.Errorf("walkthrough asked %d questions, want 2", res.Result.Questions)
	}
	if !res.Degraded {
		t.Error("walkthrough update not flagged degraded")
	}
	cfg, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatalf("fetch config: %v", err)
	}
	if !strings.Contains(cfg, "set metric 55") {
		t.Errorf("updated config missing synthesized stanza:\n%s", cfg)
	}

	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"degraded"`) {
		t.Errorf("/healthz = %d %s, want 200 degraded", resp.StatusCode, body)
	}
	resp, err = http.Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if body := readAll(t, resp); !strings.Contains(body, "clarifyd_llm_breaker_state 1") {
		t.Error("prometheus exposition does not report the breaker open")
	}
}

// TestFaultInjectionSweep measures update success across primary failure
// rates with and without the SimLLM fallback; the logged table backs the
// EXPERIMENTS.md fault-injection sweep.
func TestFaultInjectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	const perRun = 8
	for _, withFallback := range []bool{false, true} {
		for _, rate := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			name := fmt.Sprintf("rate=%.2f/fallback=%v", rate, withFallback)
			t.Run(name, func(t *testing.T) {
				cs := newChaosStack(t, chaoshttp.Plan{Seed: 7, Reset: rate},
					soakBreakerConfig(), withFallback)
				_, c := startServer(t, Options{
					Workers:       4,
					QueueSize:     16,
					UpdateTimeout: 30 * time.Second,
					NewClient:     func() llm.Client { return cs.stack.Client() },
					Resilience:    cs.stack,
				})
				done, failed := runSessions(t, c, 4, perRun/4)
				t.Logf("sweep rate=%.2f fallback=%v: %d/%d updates succeeded",
					rate, withFallback, done, done+failed)
				if withFallback && failed > 0 {
					t.Errorf("%d updates failed with fallback configured", failed)
				}
				if !withFallback && rate == 1.0 && done > 0 {
					t.Errorf("%d updates succeeded against a hard-down primary with no fallback", done)
				}
			})
		}
	}
}
