package server

import (
	"fmt"
	"sort"

	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/tenant"
)

// writePrometheus renders a MetricsSnapshot through a promtext.Writer, which
// selects between the classic text exposition format (version 0.0.4) and
// OpenMetrics 1.0 — the latter carrying trace exemplars on histogram buckets
// and the closing # EOF. Durations are exposed in milliseconds, matching the
// JSON view; metric names carry the _ms suffix so the unit is explicit.
func writePrometheus(p *promtext.Writer, snap MetricsSnapshot) {
	w := p.W
	p.Header("clarifyd_requests_total", "counter", "HTTP requests received per endpoint pattern.")
	for _, k := range sortedKeys(snap.Requests) {
		fmt.Fprintf(w, "clarifyd_requests_total{endpoint=%s} %d\n", quoteLabel(k), snap.Requests[k])
	}

	p.Header("clarifyd_responses_total", "counter", "HTTP responses sent per status code.")
	codes := make([]int, 0, len(snap.Statuses))
	for c := range snap.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "clarifyd_responses_total{code=\"%d\"} %d\n", c, snap.Statuses[c])
	}

	p.Gauge("clarifyd_in_flight_requests", "HTTP requests currently being served.", float64(snap.InFlight))
	p.Counter("clarifyd_rejected_total", "Submissions shed with 429 backpressure.", float64(snap.Rejected))
	p.Gauge("clarifyd_queue_depth", "Updates waiting for a worker.", float64(snap.QueueDepth))
	p.Gauge("clarifyd_queue_capacity", "Bounded submission queue size.", float64(snap.QueueCapacity))
	p.Gauge("clarifyd_workers", "Worker pool size.", float64(snap.Workers))
	p.Gauge("clarifyd_active_updates", "Updates executing or parked on a question.", float64(snap.ActiveUpdates))
	p.Gauge("clarifyd_sessions", "Live sessions.", float64(snap.Sessions))
	p.Counter("clarifyd_evicted_sessions_total", "Sessions removed by TTL eviction.", float64(snap.EvictedSessions))
	p.Counter("clarifyd_snapshotted_sessions_total", "Sessions captured for handoff.", float64(snap.SnapshottedSessions))
	p.Counter("clarifyd_restored_sessions_total", "Sessions rehydrated from a snapshot or peer handoff.", float64(snap.RestoredSessions))
	p.Counter("clarifyd_restore_failures_total", "Rejected session restore attempts.", float64(snap.RestoreFailures))
	p.Counter("clarifyd_traces_total", "Completed pipeline traces recorded.", float64(snap.Traces))
	p.Counter("clarifyd_kept_traces_total", "Evicted traces rescued by tail retention (error/degraded/slow).", float64(snap.KeptTraces))

	p.Counter("clarifyd_pipeline_llm_calls_total", "LLM completions requested across all sessions.", float64(snap.Pipeline.LLMCalls))
	p.Counter("clarifyd_pipeline_disambiguations_total", "Disambiguation questions answered.", float64(snap.Pipeline.Disambiguations))
	p.Counter("clarifyd_pipeline_retries_total", "Synthesis attempts beyond the first.", float64(snap.Pipeline.Retries))
	p.Counter("clarifyd_pipeline_punts_total", "Updates abandoned at the retry threshold.", float64(snap.Pipeline.Punts))
	p.Counter("clarifyd_pipeline_updates_total", "Successful insertions.", float64(snap.Pipeline.Updates))

	p.Counter("clarifyd_space_cache_hits_total", "Symbolic route-space cache hits.", float64(snap.SpaceCache.Hits))
	p.Counter("clarifyd_space_cache_misses_total", "Symbolic route-space cache misses (universe rebuilds).", float64(snap.SpaceCache.Misses))
	p.Gauge("clarifyd_space_cache_idle", "Symbolic route spaces parked in the cache.", float64(snap.SpaceCache.Idle))

	p.Counter("clarifyd_panics_recovered_total", "Pipeline-job panics contained by the worker pool.", float64(snap.PanicsRecovered))
	p.Counter("clarifyd_update_timeouts_total", "Updates aborted by the per-update deadline.", float64(snap.UpdateTimeouts))
	if snap.Resilience != nil {
		writeResilience(p, snap.Resilience)
	}
	if snap.SLO != nil {
		writeSLO(p, *snap.SLO)
	}
	if snap.Journal != nil {
		p.Counter("clarifyd_journal_appended_total", "Flight-recorder records appended.", float64(snap.Journal.Appended))
		p.Counter("clarifyd_journal_bytes_total", "Flight-recorder bytes written.", float64(snap.Journal.Bytes))
		p.Counter("clarifyd_journal_rotations_total", "Flight-recorder segment rotations.", float64(snap.Journal.Rotations))
		p.Counter("clarifyd_journal_errors_total", "Flight-recorder append or rotation failures.", float64(snap.Journal.Errors))
	}
	if snap.Incidents != nil {
		p.Counter("clarifyd_incident_captures_total", "Profile-on-fire incident bundles captured.", float64(snap.Incidents.Captures))
		p.Counter("clarifyd_incident_suppressed_total", "Firing transitions skipped by the capture cooldown.", float64(snap.Incidents.Suppressed))
	}
	if snap.Queue != nil {
		overloaded := 0.0
		if snap.Queue.Overloaded {
			overloaded = 1
		}
		p.Gauge("clarifyd_queue_overloaded", "1 while the CoDel-style shed controller is tripped on queue delay.", overloaded)
		p.Counter("clarifyd_queue_shed_overload_total", "Bulk submissions shed in overload mode (fair-share policy).", float64(snap.Queue.ShedOverload))
		p.Counter("clarifyd_queue_shed_full_total", "Submissions shed because the queue was at capacity.", float64(snap.Queue.ShedFull))
		p.Counter("clarifyd_queue_dropped_total", "Queued jobs purged at the shutdown drain deadline.", float64(snap.Queue.Dropped))
		p.Counter("clarifyd_queue_overload_entries_total", "Transitions of the shed controller into overload mode.", float64(snap.Queue.ShedEntries))
	}
	if len(snap.Tenants) > 0 {
		writeTenants(p, snap.Tenants)
	}
	if snap.Ambiguity != nil {
		writeAmbiguity(p, snap.Ambiguity)
	}
	if snap.Runtime != nil {
		p.Gauge("clarifyd_goroutines", "Live goroutines.", float64(snap.Runtime.Goroutines))
		p.Gauge("clarifyd_gc_pause_p99_ms", "99th-percentile GC stop-the-world pause since start, in milliseconds.", snap.Runtime.GCPauseP99Ms)
		p.Gauge("clarifyd_heap_inuse_bytes", "Heap memory occupied by in-use spans.", float64(snap.Runtime.HeapInUseBytes))
	}

	p.Header("clarifyd_request_duration_ms", "histogram", "HTTP request latency per endpoint pattern, in milliseconds.")
	for _, k := range sortedHistKeys(snap.LatencyMs) {
		writeHistogram(p, "clarifyd_request_duration_ms", "endpoint", k, snap.LatencyMs[k])
	}

	p.Header("clarifyd_stage_duration_ms", "histogram", "Pipeline stage latency from completed traces, in milliseconds.")
	for _, k := range sortedHistKeys(snap.StagesMs) {
		writeHistogram(p, "clarifyd_stage_duration_ms", "stage", k, snap.StagesMs[k])
	}
	p.EOF()
}

// writeTenants renders the per-tenant admission series. Cardinality is
// bounded by the registry's tenant cap, and SLO series repeat per tenant
// only for tenants that have served updates.
func writeTenants(p *promtext.Writer, tenants map[string]TenantMetrics) {
	w := p.W
	names := sortedTenantNames(tenants)
	p.Header("clarifyd_tenant_submits_total", "counter", "Admitted submissions per tenant.")
	for _, name := range names {
		fmt.Fprintf(w, "clarifyd_tenant_submits_total{tenant=%s} %d\n", quoteLabel(name), tenants[name].Submits)
	}
	p.Header("clarifyd_tenant_sheds_total", "counter", "Rejected submissions per tenant and admission gate.")
	for _, name := range names {
		tm := tenants[name]
		for _, reason := range sortedKeysAny(tm.Sheds) {
			fmt.Fprintf(w, "clarifyd_tenant_sheds_total{tenant=%s,reason=%s} %d\n",
				quoteLabel(name), quoteLabel(reason), tm.Sheds[tenant.Reason(reason)])
		}
	}
	p.Header("clarifyd_tenant_in_flight_updates", "gauge", "Updates executing or parked, per tenant.")
	for _, name := range names {
		fmt.Fprintf(w, "clarifyd_tenant_in_flight_updates{tenant=%s} %d\n", quoteLabel(name), tenants[name].InFlight)
	}
	p.Header("clarifyd_tenant_queue_depth", "gauge", "Bulk jobs queued per tenant.")
	for _, name := range names {
		fmt.Fprintf(w, "clarifyd_tenant_queue_depth{tenant=%s} %d\n", quoteLabel(name), tenants[name].QueueDepth)
	}
	p.Header("clarifyd_tenant_weight", "gauge", "Fair-queueing weight per tenant.")
	for _, name := range names {
		fmt.Fprintf(w, "clarifyd_tenant_weight{tenant=%s} %s\n", quoteLabel(name), formatFloat(tenants[name].Profile.Weight))
	}
	p.Header("clarifyd_tenant_slo_error_budget_remaining", "gauge", "Error budget unspent per tenant and objective.")
	for _, name := range names {
		if s := tenants[name].SLO; s != nil {
			for _, o := range s.Objectives {
				fmt.Fprintf(w, "clarifyd_tenant_slo_error_budget_remaining{tenant=%s,objective=%s} %s\n",
					quoteLabel(name), quoteLabel(o.Objective.Name), formatFloat(o.ErrorBudgetRemaining))
			}
		}
	}
	p.Header("clarifyd_tenant_slo_alert_firing", "gauge", "1 while a burn-rate alert fires, per tenant, objective, and window.")
	for _, name := range names {
		if s := tenants[name].SLO; s != nil {
			for _, o := range s.Objectives {
				for _, ws := range o.Windows {
					firing := 0.0
					if ws.Firing {
						firing = 1
					}
					fmt.Fprintf(w, "clarifyd_tenant_slo_alert_firing{tenant=%s,objective=%s,window=%s} %s\n",
						quoteLabel(name), quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(firing))
				}
			}
		}
	}
}

// sortedKeysAny sorts a Reason-keyed map's keys as strings.
func sortedKeysAny(m map[tenant.Reason]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// writeResilience renders the LLM backend-path series: degraded mode, the
// primary breaker's state machine, and per-backend chain traffic.
func writeResilience(p *promtext.Writer, rs *resilience.Stats) {
	w := p.W
	degraded := 0.0
	if rs.Degraded {
		degraded = 1
	}
	p.Gauge("clarifyd_llm_degraded", "1 while completions are served by a fallback backend or the primary breaker is open.", degraded)
	if b := rs.Breaker; b != nil {
		state := 0.0
		switch b.State {
		case "open":
			state = 1
		case "half-open":
			state = 2
		}
		p.Gauge("clarifyd_llm_breaker_state", "Primary breaker state: 0 closed, 1 open, 2 half-open.", state)
		p.Counter("clarifyd_llm_breaker_opens_total", "Breaker transitions into the open state.", float64(b.Opens))
		p.Counter("clarifyd_llm_breaker_short_circuits_total", "LLM calls rejected without reaching the primary backend.", float64(b.ShortCircuits))
		p.Counter("clarifyd_llm_breaker_probes_total", "Half-open probe calls admitted to the primary backend.", float64(b.Probes))
	}
	if c := rs.Chain; c != nil {
		p.Counter("clarifyd_llm_fallback_total", "Completions served by a non-primary backend.", float64(c.Fallbacks))
		p.Counter("clarifyd_llm_chain_exhausted_total", "Completions where every backend failed.", float64(c.Exhausted))
		p.Header("clarifyd_llm_backend_served_total", "counter", "Completions served per backend.")
		for _, b := range c.Backends {
			fmt.Fprintf(w, "clarifyd_llm_backend_served_total{backend=%s} %d\n", quoteLabel(b.Name), b.Served)
		}
		p.Header("clarifyd_llm_backend_failures_total", "counter", "Failed attempts per backend.")
		for _, b := range c.Backends {
			fmt.Fprintf(w, "clarifyd_llm_backend_failures_total{backend=%s} %d\n", quoteLabel(b.Name), b.Failures)
		}
	}
}

// writeSLO renders the rolling-objective series: good/bad totals, budget
// remaining, and per-window burn rates with an alert-firing gauge.
func writeSLO(p *promtext.Writer, snap slo.Snapshot) {
	w := p.W
	p.Header("clarifyd_slo_good_total", "counter", "Updates meeting the objective, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_good_total{objective=%s} %d\n", quoteLabel(o.Objective.Name), o.Good)
	}
	p.Header("clarifyd_slo_bad_total", "counter", "Updates missing the objective, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_bad_total{objective=%s} %d\n", quoteLabel(o.Objective.Name), o.Bad)
	}
	p.Header("clarifyd_slo_error_budget_remaining", "gauge", "Fraction of the longest window's error budget unspent, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_error_budget_remaining{objective=%s} %s\n",
			quoteLabel(o.Objective.Name), formatFloat(o.ErrorBudgetRemaining))
	}
	p.Header("clarifyd_slo_burn_rate", "gauge", "Error-budget burn rate per objective and window.")
	for _, o := range snap.Objectives {
		for _, ws := range o.Windows {
			fmt.Fprintf(w, "clarifyd_slo_burn_rate{objective=%s,window=%s,span=\"long\"} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(ws.LongBurn))
			fmt.Fprintf(w, "clarifyd_slo_burn_rate{objective=%s,window=%s,span=\"short\"} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(ws.ShortBurn))
		}
	}
	p.Header("clarifyd_slo_alert_firing", "gauge", "1 while the multi-window burn-rate alert fires, per objective and window.")
	for _, o := range snap.Objectives {
		for _, ws := range o.Windows {
			firing := 0.0
			if ws.Firing {
				firing = 1
			}
			fmt.Fprintf(w, "clarifyd_slo_alert_firing{objective=%s,window=%s} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(firing))
		}
	}
}

// writeHistogram renders one labelled histogram series: cumulative le
// buckets (with exemplars in OpenMetrics mode), an explicit +Inf bucket,
// then _sum and _count.
func writeHistogram(p *promtext.Writer, name, labelKey, labelVal string, h HistogramSnapshot) {
	p.Histogram(name, labelKey, labelVal, h.BucketsMs, h.Counts, h.Count, h.SumMs, exemplarsOf(h))
}

// exemplarsOf converts a snapshot's exemplars to the promtext wire type.
func exemplarsOf(h HistogramSnapshot) []*promtext.Exemplar {
	if len(h.Exemplars) == 0 {
		return nil
	}
	out := make([]*promtext.Exemplar, len(h.Exemplars))
	for i, e := range h.Exemplars {
		if e.TraceID == "" {
			continue
		}
		out[i] = &promtext.Exemplar{TraceID: e.TraceID, Value: e.ValueMs, Ts: e.Ts}
	}
	return out
}

func formatFloat(v float64) string { return promtext.FormatFloat(v) }

func quoteLabel(v string) string { return promtext.QuoteLabel(v) }

func sortedKeys(m map[string]int64) []string { return promtext.SortedKeys(m) }

func sortedHistKeys(m map[string]HistogramSnapshot) []string { return promtext.SortedKeys(m) }
