package server

import (
	"fmt"
	"io"
	"sort"

	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/slo"
)

// writePrometheus renders a MetricsSnapshot in the Prometheus text exposition
// format (version 0.0.4). Durations are exposed in milliseconds, matching the
// JSON view; metric names carry the _ms suffix so the unit is explicit.
func writePrometheus(w io.Writer, snap MetricsSnapshot) {
	writeHeader(w, "clarifyd_requests_total", "counter", "HTTP requests received per endpoint pattern.")
	for _, k := range sortedKeys(snap.Requests) {
		fmt.Fprintf(w, "clarifyd_requests_total{endpoint=%s} %d\n", quoteLabel(k), snap.Requests[k])
	}

	writeHeader(w, "clarifyd_responses_total", "counter", "HTTP responses sent per status code.")
	codes := make([]int, 0, len(snap.Statuses))
	for c := range snap.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "clarifyd_responses_total{code=\"%d\"} %d\n", c, snap.Statuses[c])
	}

	writeGauge(w, "clarifyd_in_flight_requests", "HTTP requests currently being served.", float64(snap.InFlight))
	writeCounter(w, "clarifyd_rejected_total", "Submissions shed with 429 backpressure.", float64(snap.Rejected))
	writeGauge(w, "clarifyd_queue_depth", "Updates waiting for a worker.", float64(snap.QueueDepth))
	writeGauge(w, "clarifyd_queue_capacity", "Bounded submission queue size.", float64(snap.QueueCapacity))
	writeGauge(w, "clarifyd_workers", "Worker pool size.", float64(snap.Workers))
	writeGauge(w, "clarifyd_active_updates", "Updates executing or parked on a question.", float64(snap.ActiveUpdates))
	writeGauge(w, "clarifyd_sessions", "Live sessions.", float64(snap.Sessions))
	writeCounter(w, "clarifyd_evicted_sessions_total", "Sessions removed by TTL eviction.", float64(snap.EvictedSessions))
	writeCounter(w, "clarifyd_snapshotted_sessions_total", "Sessions captured for handoff.", float64(snap.SnapshottedSessions))
	writeCounter(w, "clarifyd_restored_sessions_total", "Sessions rehydrated from a snapshot or peer handoff.", float64(snap.RestoredSessions))
	writeCounter(w, "clarifyd_restore_failures_total", "Rejected session restore attempts.", float64(snap.RestoreFailures))
	writeCounter(w, "clarifyd_traces_total", "Completed pipeline traces recorded.", float64(snap.Traces))

	writeCounter(w, "clarifyd_pipeline_llm_calls_total", "LLM completions requested across all sessions.", float64(snap.Pipeline.LLMCalls))
	writeCounter(w, "clarifyd_pipeline_disambiguations_total", "Disambiguation questions answered.", float64(snap.Pipeline.Disambiguations))
	writeCounter(w, "clarifyd_pipeline_retries_total", "Synthesis attempts beyond the first.", float64(snap.Pipeline.Retries))
	writeCounter(w, "clarifyd_pipeline_punts_total", "Updates abandoned at the retry threshold.", float64(snap.Pipeline.Punts))
	writeCounter(w, "clarifyd_pipeline_updates_total", "Successful insertions.", float64(snap.Pipeline.Updates))

	writeCounter(w, "clarifyd_space_cache_hits_total", "Symbolic route-space cache hits.", float64(snap.SpaceCache.Hits))
	writeCounter(w, "clarifyd_space_cache_misses_total", "Symbolic route-space cache misses (universe rebuilds).", float64(snap.SpaceCache.Misses))
	writeGauge(w, "clarifyd_space_cache_idle", "Symbolic route spaces parked in the cache.", float64(snap.SpaceCache.Idle))

	writeCounter(w, "clarifyd_panics_recovered_total", "Pipeline-job panics contained by the worker pool.", float64(snap.PanicsRecovered))
	writeCounter(w, "clarifyd_update_timeouts_total", "Updates aborted by the per-update deadline.", float64(snap.UpdateTimeouts))
	if snap.Resilience != nil {
		writeResilience(w, snap.Resilience)
	}
	if snap.SLO != nil {
		writeSLO(w, *snap.SLO)
	}
	if snap.Journal != nil {
		writeCounter(w, "clarifyd_journal_appended_total", "Flight-recorder records appended.", float64(snap.Journal.Appended))
		writeCounter(w, "clarifyd_journal_bytes_total", "Flight-recorder bytes written.", float64(snap.Journal.Bytes))
		writeCounter(w, "clarifyd_journal_rotations_total", "Flight-recorder segment rotations.", float64(snap.Journal.Rotations))
		writeCounter(w, "clarifyd_journal_errors_total", "Flight-recorder append or rotation failures.", float64(snap.Journal.Errors))
	}

	writeHeader(w, "clarifyd_request_duration_ms", "histogram", "HTTP request latency per endpoint pattern, in milliseconds.")
	for _, k := range sortedHistKeys(snap.LatencyMs) {
		writeHistogram(w, "clarifyd_request_duration_ms", "endpoint", k, snap.LatencyMs[k])
	}

	writeHeader(w, "clarifyd_stage_duration_ms", "histogram", "Pipeline stage latency from completed traces, in milliseconds.")
	for _, k := range sortedHistKeys(snap.StagesMs) {
		writeHistogram(w, "clarifyd_stage_duration_ms", "stage", k, snap.StagesMs[k])
	}
}

// writeResilience renders the LLM backend-path series: degraded mode, the
// primary breaker's state machine, and per-backend chain traffic.
func writeResilience(w io.Writer, rs *resilience.Stats) {
	degraded := 0.0
	if rs.Degraded {
		degraded = 1
	}
	writeGauge(w, "clarifyd_llm_degraded", "1 while completions are served by a fallback backend or the primary breaker is open.", degraded)
	if b := rs.Breaker; b != nil {
		state := 0.0
		switch b.State {
		case "open":
			state = 1
		case "half-open":
			state = 2
		}
		writeGauge(w, "clarifyd_llm_breaker_state", "Primary breaker state: 0 closed, 1 open, 2 half-open.", state)
		writeCounter(w, "clarifyd_llm_breaker_opens_total", "Breaker transitions into the open state.", float64(b.Opens))
		writeCounter(w, "clarifyd_llm_breaker_short_circuits_total", "LLM calls rejected without reaching the primary backend.", float64(b.ShortCircuits))
		writeCounter(w, "clarifyd_llm_breaker_probes_total", "Half-open probe calls admitted to the primary backend.", float64(b.Probes))
	}
	if c := rs.Chain; c != nil {
		writeCounter(w, "clarifyd_llm_fallback_total", "Completions served by a non-primary backend.", float64(c.Fallbacks))
		writeCounter(w, "clarifyd_llm_chain_exhausted_total", "Completions where every backend failed.", float64(c.Exhausted))
		writeHeader(w, "clarifyd_llm_backend_served_total", "counter", "Completions served per backend.")
		for _, b := range c.Backends {
			fmt.Fprintf(w, "clarifyd_llm_backend_served_total{backend=%s} %d\n", quoteLabel(b.Name), b.Served)
		}
		writeHeader(w, "clarifyd_llm_backend_failures_total", "counter", "Failed attempts per backend.")
		for _, b := range c.Backends {
			fmt.Fprintf(w, "clarifyd_llm_backend_failures_total{backend=%s} %d\n", quoteLabel(b.Name), b.Failures)
		}
	}
}

// writeSLO renders the rolling-objective series: good/bad totals, budget
// remaining, and per-window burn rates with an alert-firing gauge.
func writeSLO(w io.Writer, snap slo.Snapshot) {
	writeHeader(w, "clarifyd_slo_good_total", "counter", "Updates meeting the objective, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_good_total{objective=%s} %d\n", quoteLabel(o.Objective.Name), o.Good)
	}
	writeHeader(w, "clarifyd_slo_bad_total", "counter", "Updates missing the objective, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_bad_total{objective=%s} %d\n", quoteLabel(o.Objective.Name), o.Bad)
	}
	writeHeader(w, "clarifyd_slo_error_budget_remaining", "gauge", "Fraction of the longest window's error budget unspent, per objective.")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "clarifyd_slo_error_budget_remaining{objective=%s} %s\n",
			quoteLabel(o.Objective.Name), formatFloat(o.ErrorBudgetRemaining))
	}
	writeHeader(w, "clarifyd_slo_burn_rate", "gauge", "Error-budget burn rate per objective and window.")
	for _, o := range snap.Objectives {
		for _, ws := range o.Windows {
			fmt.Fprintf(w, "clarifyd_slo_burn_rate{objective=%s,window=%s,span=\"long\"} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(ws.LongBurn))
			fmt.Fprintf(w, "clarifyd_slo_burn_rate{objective=%s,window=%s,span=\"short\"} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(ws.ShortBurn))
		}
	}
	writeHeader(w, "clarifyd_slo_alert_firing", "gauge", "1 while the multi-window burn-rate alert fires, per objective and window.")
	for _, o := range snap.Objectives {
		for _, ws := range o.Windows {
			firing := 0.0
			if ws.Firing {
				firing = 1
			}
			fmt.Fprintf(w, "clarifyd_slo_alert_firing{objective=%s,window=%s} %s\n",
				quoteLabel(o.Objective.Name), quoteLabel(ws.Severity), formatFloat(firing))
		}
	}
}

// The exposition primitives live in internal/promtext, shared with the
// clarify-lb front tier so both daemons render identically-shaped series.
func writeHeader(w io.Writer, name, kind, help string) { promtext.Header(w, name, kind, help) }

func writeCounter(w io.Writer, name, help string, v float64) { promtext.Counter(w, name, help, v) }

func writeGauge(w io.Writer, name, help string, v float64) { promtext.Gauge(w, name, help, v) }

// writeHistogram renders one labelled histogram series: cumulative le
// buckets, an explicit +Inf bucket, then _sum and _count.
func writeHistogram(w io.Writer, name, labelKey, labelVal string, h HistogramSnapshot) {
	promtext.Histogram(w, name, labelKey, labelVal, h.BucketsMs, h.Counts, h.Count, h.SumMs)
}

func formatFloat(v float64) string { return promtext.FormatFloat(v) }

func quoteLabel(v string) string { return promtext.QuoteLabel(v) }

func sortedKeys(m map[string]int64) []string { return promtext.SortedKeys(m) }

func sortedHistKeys(m map[string]HistogramSnapshot) []string { return promtext.SortedKeys(m) }
