package server

import (
	"math"
	runtimemetrics "runtime/metrics"
)

// RuntimeStats is the process-runtime block of GET /metrics: scheduler and
// memory health signals sampled from runtime/metrics at scrape time, so an
// operator correlating an ambiguity or latency regression can rule a
// GC stall or goroutine leak in or out without attaching a profiler.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// GCPauseP99Ms is the 99th-percentile stop-the-world GC pause since
	// process start, in milliseconds.
	GCPauseP99Ms float64 `json:"gcPauseP99Ms"`
	// HeapInUseBytes is the heap memory occupied by spans with live or
	// not-yet-swept objects.
	HeapInUseBytes int64 `json:"heapInUseBytes"`
}

// runtimeSampleNames are the runtime/metrics series the block reads. The
// scheduler pause histogram moved names in Go 1.22; both are requested and
// whichever the toolchain supports wins.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/pauses/total/gc:seconds",
	"/gc/pauses:seconds",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
}

// readRuntimeStats samples the runtime. It allocates a fresh sample slice per
// call; /metrics scrape rates make that noise.
func readRuntimeStats() *RuntimeStats {
	samples := make([]runtimemetrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	runtimemetrics.Read(samples)
	out := &RuntimeStats{}
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case "/sched/pauses/total/gc:seconds", "/gc/pauses:seconds":
			if s.Value.Kind() == runtimemetrics.KindFloat64Histogram && out.GCPauseP99Ms == 0 {
				out.GCPauseP99Ms = runtimeHistQuantile(s.Value.Float64Histogram(), 0.99) * 1000
			}
		case "/memory/classes/heap/objects:bytes", "/memory/classes/heap/unused:bytes":
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				out.HeapInUseBytes += int64(s.Value.Uint64())
			}
		}
	}
	return out
}

// runtimeHistQuantile estimates the q-quantile of a runtime/metrics
// Float64Histogram, returning the upper edge of the bucket holding the rank
// (clamping infinite edges to the nearest finite neighbour).
func runtimeHistQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 1) {
				edge = h.Buckets[i]
			}
			if math.IsInf(edge, -1) {
				edge = 0
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
