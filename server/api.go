// Package server exposes the Clarify pipeline (clarify.Session) as a
// concurrent JSON-over-HTTP service: many sessions, a bounded worker pool
// with backpressure, asynchronous disambiguation (the operator answers the
// paper's OPTION 1/2 questions over HTTP while the pipeline goroutine is
// parked), and an observability layer (/healthz, /metrics, request logging,
// graceful shutdown).
//
// The wire format is defined in this file and shared by the handlers
// (server.go) and the Go client (client.go).
package server

import (
	"encoding/json"
	"fmt"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

// CreateSessionRequest creates a session from a base configuration.
type CreateSessionRequest struct {
	// Config is the Cisco IOS base configuration text.
	Config string `json:"config"`
	// MaxAttempts bounds synthesis retries (0 = pipeline default).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// EnableReuse turns on the verified-snippet cache.
	EnableReuse bool `json:"enableReuse,omitempty"`
	// SkipVerification disables the verifier (ablation only).
	SkipVerification bool `json:"skipVerification,omitempty"`
}

// CreateSessionResponse returns the new session's identifier.
type CreateSessionResponse struct {
	ID string `json:"id"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	ID string `json:"id"`
	// Busy reports whether an update is queued or running.
	Busy bool `json:"busy"`
	// Updates counts updates submitted so far (any status).
	Updates int `json:"updates"`
	// IdleSeconds is the time since the session was last touched.
	IdleSeconds float64 `json:"idleSeconds"`
	// Tenant is the admission principal the session was created under.
	Tenant string `json:"tenant,omitempty"`
}

// SubmitRequest submits one natural-language intent against a target
// route-map or ACL name.
type SubmitRequest struct {
	Intent string `json:"intent"`
	Target string `json:"target"`
	// Async makes the submit return immediately with an update ID to poll
	// (also selectable with the ?async=1 query parameter).
	Async bool `json:"async,omitempty"`
}

// Update statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	// StatusWaiting means the pipeline is parked on a disambiguation
	// question; fetch it at GET /v1/sessions/{id}/question.
	StatusWaiting = "waiting"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// UpdateInfo is the poll view of one submitted update.
type UpdateInfo struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// TraceID identifies the pipeline trace recorded for this update; fetch
	// its span tree at GET /debug/traces/{traceID} while retained.
	TraceID string `json:"traceId,omitempty"`
	// Degraded reports that at least one LLM completion of this update was
	// served by a fallback backend rather than the primary.
	Degraded bool `json:"degraded,omitempty"`
	// Result is set once Status is "done".
	Result *UpdateResultInfo `json:"result,omitempty"`
}

// Terminal reports whether the update has finished (successfully or not).
func (u *UpdateInfo) Terminal() bool {
	return u.Status == StatusDone || u.Status == StatusFailed
}

// UpdateResultInfo is the JSON projection of clarify.UpdateResult.
type UpdateResultInfo struct {
	Kind        string `json:"kind"`
	SnippetText string `json:"snippetText"`
	SpecJSON    string `json:"specJson"`
	Attempts    int    `json:"attempts"`
	// Position is the insertion index chosen by disambiguation.
	Position int `json:"position"`
	// Questions is the number of differential questions asked.
	Questions int `json:"questions"`
	// Renames maps snippet ancillary-list names to their fresh names in the
	// merged configuration (route-map updates only).
	Renames map[string]string `json:"renames,omitempty"`
}

// newUpdateResultInfo projects a pipeline result onto the wire type.
func newUpdateResultInfo(res *clarify.UpdateResult) *UpdateResultInfo {
	out := &UpdateResultInfo{
		Kind:        res.Kind.String(),
		SnippetText: res.SnippetText,
		SpecJSON:    res.SpecJSON,
		Attempts:    res.Attempts,
	}
	if res.RouteInsert != nil {
		out.Position = res.RouteInsert.Position
		out.Questions = len(res.RouteInsert.Questions)
		out.Renames = res.RouteInsert.Renames
	}
	if res.ACLInsert != nil {
		out.Position = res.ACLInsert.Position
		out.Questions = len(res.ACLInsert.Questions)
	}
	return out
}

// Question is one pending differential disambiguation question: the concrete
// witness input plus the two behavioural options of §2.2. Exactly one of
// Route or Packet is set.
type Question struct {
	// Seq identifies the question within its session; an answer must echo
	// it so stale answers are rejected.
	Seq int `json:"seq"`
	// Kind is "route-map" or "acl".
	Kind string `json:"kind"`
	// Route is the witness route (route-map questions).
	Route *route.Route `json:"route,omitempty"`
	// Packet is the witness packet in IOS-ish rendering (ACL questions).
	Packet string `json:"packet,omitempty"`
	// Option1 is the behaviour if the new rule handles the witness;
	// Option2 is the existing configuration's behaviour.
	Option1 string `json:"option1"`
	Option2 string `json:"option2"`
	// Text is the full OPTION 1 / OPTION 2 rendering shown by the CLIs.
	Text string `json:"text"`
}

// newRouteQuestion renders a disambiguator route question for the wire.
func newRouteQuestion(seq int, q disambig.RouteQuestion) *Question {
	in := q.Input
	return &Question{
		Seq:     seq,
		Kind:    "route-map",
		Route:   &in,
		Option1: renderRouteVerdict(q.NewVerdict),
		Option2: renderRouteVerdict(q.OldVerdict),
		Text:    q.String(),
	}
}

// newACLQuestion renders a disambiguator ACL question for the wire.
func newACLQuestion(seq int, q disambig.ACLQuestion) *Question {
	return &Question{
		Seq:     seq,
		Kind:    "acl",
		Packet:  q.Input.String(),
		Option1: renderACLAction(q.NewPermit),
		Option2: renderACLAction(q.OldPermit),
		Text:    q.String(),
	}
}

func renderRouteVerdict(v policy.RouteVerdict) string {
	if !v.Permit {
		return "deny"
	}
	return "permit; output " + v.Output.String()
}

func renderACLAction(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}

// QuestionResponse wraps the question poll: Pending is false (and Question
// nil) when the pipeline is not parked on a question.
type QuestionResponse struct {
	Pending  bool      `json:"pending"`
	Question *Question `json:"question,omitempty"`
}

// AnswerRequest answers the pending question.
type AnswerRequest struct {
	// Seq must match the pending question's sequence number.
	Seq int `json:"seq"`
	// Option is 1 (the new rule applies to the witness) or 2 (keep the
	// existing behaviour).
	Option int `json:"option"`
}

// HealthStatus is the body of GET /healthz and GET /readyz. Beyond the
// status string, it carries the load signals a fronting balancer's probe
// needs: active_sessions and queue_depth feed load-aware create placement,
// and draining tells the balancer to stop routing new sessions here while
// in-flight ones finish (connection draining).
type HealthStatus struct {
	// Status is "ok"/"ready", "degraded", "draining", or "unready".
	Status string `json:"status"`
	// Draining is true from the moment Shutdown begins until the process
	// exits; session traffic is still served so parked Q&A can finish.
	Draining bool `json:"draining"`
	// ActiveSessions is the live session count.
	ActiveSessions int `json:"active_sessions"`
	// ActiveUpdates counts updates executing or parked on a question.
	ActiveUpdates int64 `json:"active_updates"`
	// QueueDepth / QueueCapacity describe the bounded submission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// LLM flags the backend path when it is not the healthy primary:
	// "fallback" (degraded mode) or "breaker-open" (unready).
	LLM string `json:"llm,omitempty"`
}

// StatsResponse reports the session's cumulative pipeline counters.
type StatsResponse struct {
	Stats clarify.Stats `json:"stats"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429 responses (mirrors the Retry-After
	// header) so programmatic clients can back off without header parsing.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
	// Reason machine-tags the failure class; 410 Gone replies carry
	// "evicted" so clients and balancers can distinguish a dead session from
	// an ID that never existed.
	Reason string `json:"reason,omitempty"`
}

// RestoreSessionResponse acknowledges a PUT /v1/sessions/{id}/restore: the
// session is live again, and Pending reports whether an interrupted update
// is being re-executed (its question will reappear under the same ID).
type RestoreSessionResponse struct {
	ID      string `json:"id"`
	Pending bool   `json:"pending,omitempty"`
}

// APIError is the typed error the client returns for non-2xx replies.
type APIError struct {
	StatusCode        int
	Message           string
	RetryAfterSeconds int
	// Reason mirrors ErrorResponse.Reason ("evicted" on 410 Gone).
	Reason string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("clarifyd: %d: %s", e.StatusCode, e.Message)
}

// decodeStrict unmarshals JSON rejecting unknown garbage bodies gracefully.
func decodeStrict(data []byte, v interface{}) error {
	if len(data) == 0 {
		return fmt.Errorf("empty request body")
	}
	return json.Unmarshal(data, v)
}
