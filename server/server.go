package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/incident"
	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/symbolic"
	"github.com/clarifynet/clarify/tenant"
)

// Options configures a Server. The zero value is usable: 4 workers, a
// queue of 8, 1024 sessions, 30-minute idle TTL, 1-minute question timeout,
// SimLLM sessions, and discarded logs.
type Options struct {
	// Workers is the number of pipeline workers (default 4).
	Workers int
	// QueueSize bounds the submission queue (default 2×Workers). Beyond it,
	// submits are rejected with 429 + Retry-After.
	QueueSize int
	// MaxSessions caps live sessions (default 1024); creates beyond it get
	// 503.
	MaxSessions int
	// IdleTTL evicts sessions with no traffic for this long (default 30m).
	IdleTTL time.Duration
	// SweepInterval is the janitor period (default IdleTTL/4, capped at 1m).
	SweepInterval time.Duration
	// QuestionTimeout aborts an update whose disambiguation question goes
	// unanswered for this long (default 1m).
	QuestionTimeout time.Duration
	// NewClient builds the LLM client for each new session (default
	// llm.NewSimLLM). A shared stateless client may be returned.
	NewClient func() llm.Client
	// Logger receives one structured line per request; nil disables logging.
	Logger *log.Logger
	// MaxConfigBytes bounds uploaded configurations (default 4 MiB).
	MaxConfigBytes int64
	// TraceBufferSize bounds the /debug/traces ring of recent completed
	// traces (default DefaultTraceBufferSize).
	TraceBufferSize int
	// UpdateTimeout bounds each update's wall-clock budget, measured from
	// when a worker picks the job up (default 2m; negative disables). The
	// budget covers LLM calls, retries, and time parked on an unanswered
	// disambiguation question.
	UpdateTimeout time.Duration
	// Resilience, when non-nil, is the circuit-breaker + fallback stack the
	// sessions' LLM clients are built around. The server only reads it — for
	// degraded-mode health reporting and /metrics — so it must be the same
	// stack NewClient wires into sessions.
	Resilience *resilience.Stack
	// LatencyBucketsMs overrides the histogram upper bounds (milliseconds)
	// for both per-endpoint and per-stage latency, so load tests at different
	// scales keep resolution. Must be strictly ascending and positive; empty
	// keeps the default table. New panics on an invalid table — call
	// Options.Validate first when the bounds come from user input.
	LatencyBucketsMs []float64
	// Journal, when non-nil, is the flight recorder every hosted session
	// appends to: one durable record per update (see the journal package).
	// The server does not close it; the owner does, after Shutdown.
	Journal *journal.Journal
	// SLO overrides the rolling objective set evaluated against update
	// outcomes and served at GET /debug/slo; nil selects the defaults
	// (99.9% availability, 99% under 500ms, page/ticket burn-rate windows).
	SLO *slo.Set
	// Exemplars attaches OpenMetrics exemplars (trace IDs) to the per-stage
	// latency histograms, linking /metrics buckets to /debug/traces entries.
	// Off by default: the exemplar-off path is byte-identical to PR 3/5
	// behaviour.
	Exemplars bool
	// TraceKeepSize bounds the tail-retention ring holding evicted traces
	// worth keeping (errors, degraded runs, slower than the update-stage
	// p99). 0 selects DefaultTraceKeepSize; negative disables retention.
	TraceKeepSize int
	// Incidents, when non-nil, is the profile-on-fire recorder: a burn-rate
	// alert transitioning to firing triggers a rate-limited CPU+heap+traces
	// capture, indexed at GET /debug/incidents.
	Incidents *incident.Recorder
	// Tenants is the admission-control registry: per-tenant rate limits,
	// concurrent-update quotas, and fair-queueing weights, keyed by the
	// X-Clarify-Tenant header. Nil builds an open registry (every tenant
	// gets weight 1, unlimited rate and concurrency) — single-tenant
	// deployments see no behaviour change beyond the queue swap.
	Tenants *tenant.Registry
	// Shed tunes the CoDel-style queue-delay shed controller on the bulk
	// dispatch lane. The zero value selects the defaults (200ms target,
	// 2s interval); a negative Target disables overload shedding.
	Shed tenant.ShedConfig
}

// Validate reports whether the options are well-formed; New panics on the
// same conditions. Only fields that can carry user input are checked.
func (o Options) Validate() error {
	for i, b := range o.LatencyBucketsMs {
		if b <= 0 {
			return fmt.Errorf("server: LatencyBucketsMs[%d] = %v: bounds must be positive", i, b)
		}
		if i > 0 && b <= o.LatencyBucketsMs[i-1] {
			return fmt.Errorf("server: LatencyBucketsMs[%d] = %v: bounds must be strictly ascending", i, b)
		}
	}
	return nil
}

// DefaultUpdateTimeout is the per-update deadline when Options.UpdateTimeout
// is zero.
const DefaultUpdateTimeout = 2 * time.Minute

// Server hosts concurrent clarify.Sessions behind a JSON HTTP API. It
// implements http.Handler; wire it into an http.Server (or httptest) and
// call Shutdown to drain.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	pool    *pool
	mgr     *manager
	met     *metrics
	amb     *ambiguityMetrics
	traces  *obs.Ring
	slos    *slo.Set
	spaces  *symbolic.SpaceCache // shared across all hosted sessions
	tenants *tenant.Registry

	// tslos holds each tenant's private SLO rings, cloned lazily from slos
	// so noisy-neighbor protection is judged per tenant.
	tslosMu sync.Mutex
	tslos   map[string]*slo.Set

	// firing tracks which burn-rate alerts were firing at the last SLO
	// observation, so runUpdate can detect quiet→firing transitions and
	// trigger the incident recorder exactly on the edge.
	firingMu sync.Mutex
	firing   map[string]bool

	baseCtx  context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	active   atomic.Int64 // updates executing or parked on a question

	// restoreWG tracks re-execution goroutines for rehydrated pending
	// updates; Shutdown waits for them alongside the pool so a drain
	// snapshot can capture their state.
	restoreWG sync.WaitGroup

	// Snapshot/restore counters for /metrics.
	snapshotted     atomic.Int64
	restored        atomic.Int64
	restoreFailures atomic.Int64
}

// New builds a Server from opts.
func New(opts Options) *Server {
	if opts.NewClient == nil {
		opts.NewClient = func() llm.Client { return llm.NewSimLLM() }
	}
	if opts.QuestionTimeout <= 0 {
		opts.QuestionTimeout = time.Minute
	}
	if opts.MaxConfigBytes <= 0 {
		opts.MaxConfigBytes = 4 << 20
	}
	if opts.UpdateTimeout == 0 {
		opts.UpdateTimeout = DefaultUpdateTimeout
	}
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	slos := opts.SLO
	if slos == nil {
		// The defaults cannot fail validation.
		slos, _ = slo.New(slo.Config{})
	}
	tenants := opts.Tenants
	if tenants == nil {
		tenants = tenant.NewRegistry(tenant.RegistryConfig{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	met := newMetrics(opts.LatencyBucketsMs)
	met.exemplars = opts.Exemplars
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		pool:    newPool(opts.Workers, opts.QueueSize, opts.Shed, func(interface{}) { met.recordPanic() }),
		mgr:     newManager(opts.MaxSessions, opts.IdleTTL, opts.SweepInterval),
		met:     met,
		amb:     newAmbiguityMetrics(),
		traces:  newTraceRing(opts.TraceBufferSize),
		slos:    slos,
		spaces:  symbolic.NewSpaceCache(),
		tenants: tenants,
		tslos:   map[string]*slo.Set{},
		firing:  map[string]bool{},
		baseCtx: ctx,
		cancel:  cancel,
	}
	if keep := opts.TraceKeepSize; keep >= 0 {
		if keep == 0 {
			keep = DefaultTraceKeepSize
		}
		s.traces.SetRetention(keep, s.keepTrace)
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("POST /v1/sessions", s.handleCreateSession)
	s.route("PUT /v1/sessions/{id}/restore", s.handleRestoreSession)
	s.route("GET /v1/sessions", s.handleListSessions)
	s.route("GET /v1/sessions/{id}", s.handleGetSession)
	s.route("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.route("POST /v1/sessions/{id}/updates", s.handleSubmit)
	s.route("GET /v1/sessions/{id}/updates/{uid}", s.handleGetUpdate)
	s.route("GET /v1/sessions/{id}/question", s.handleQuestion)
	s.route("POST /v1/sessions/{id}/answer", s.handleAnswer)
	s.route("GET /v1/sessions/{id}/config", s.handleConfig)
	s.route("GET /v1/sessions/{id}/stats", s.handleStats)
	s.route("GET /debug/traces", s.handleDebugTraces)
	s.route("GET /debug/traces/{tid}", s.handleDebugTrace)
	s.route("GET /debug/slo", s.handleDebugSLO)
	s.route("GET /debug/ambiguity", s.handleDebugAmbiguity)
	s.route("GET /debug/incidents", s.handleDebugIncidents)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with metrics and request logging, keyed
// by the route pattern so per-endpoint counters aggregate across sessions.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		end := s.met.begin(pattern)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		end(rec.status)
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
		}
	})
}

// statusRecorder captures the response code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Shutdown drains the server: new submissions are rejected, queued and
// running updates are given until ctx expires to finish, then any still
// parked on questions are force-cancelled. Always returns after the pool has
// fully stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.Close(ctx)
	if err == nil {
		// The pool is drained; rehydrated-update goroutines (which run off
		// the pool) get the remaining budget.
		done := make(chan struct{})
		go func() { s.restoreWG.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	if err != nil {
		// Grace period exhausted: release goroutines parked on answers or
		// LLM calls, then wait for the drain to complete.
		s.cancel()
		s.pool.Wait()
		s.restoreWG.Wait()
	}
	s.cancel()
	s.mgr.Stop()
	return err
}

// --- handlers ---

// health assembles the load signals both probes share; a fronting balancer
// reads them for load-aware create placement and drain detection.
func (s *Server) health() HealthStatus {
	return HealthStatus{
		Draining:       s.draining.Load(),
		ActiveSessions: s.mgr.Len(),
		ActiveUpdates:  s.active.Load(),
		QueueDepth:     s.pool.Depth(),
		QueueCapacity:  s.pool.Capacity(),
	}
}

// handleHealthz is the liveness probe: 503 only while draining. A daemon
// running on its fallback backend is alive — it reports 200 with a degraded
// payload rather than getting restarted by an orchestrator.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	body := s.health()
	body.Status = "ok"
	if body.Draining {
		status = http.StatusServiceUnavailable
		body.Status = "draining"
	} else if s.opts.Resilience.Degraded() {
		body.Status = "degraded"
		body.LLM = "fallback"
	}
	writeJSON(w, status, body)
}

// handleReadyz is the readiness probe: 503 while draining or when the LLM
// path cannot serve at all (breaker open with no fallback configured).
// Degraded-but-serving still reports ready, flagged in the payload.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	body := s.health()
	body.Status = "ready"
	switch {
	case body.Draining:
		status = http.StatusServiceUnavailable
		body.Status = "draining"
	case !s.opts.Resilience.CanServe():
		status = http.StatusServiceUnavailable
		body.Status = "unready"
		body.LLM = "breaker-open"
	case s.opts.Resilience.Degraded():
		body.Status = "degraded"
		body.LLM = "fallback"
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.snapshot()
	snap.QueueDepth = s.pool.Depth()
	snap.QueueCapacity = s.pool.Capacity()
	snap.Workers = s.pool.Workers()
	snap.ActiveUpdates = s.active.Load()
	snap.Sessions = s.mgr.Len()
	snap.EvictedSessions = s.mgr.Evicted()
	snap.SnapshottedSessions = s.snapshotted.Load()
	snap.RestoredSessions = s.restored.Load()
	snap.RestoreFailures = s.restoreFailures.Load()
	snap.Pipeline = s.mgr.CumulativeStats()
	snap.SpaceCache = s.spaces.Stats()
	snap.Traces = s.traces.Total()
	snap.KeptTraces = s.traces.KeptTotal()
	if s.opts.Resilience != nil {
		snap.Resilience = s.opts.Resilience.Stats()
	}
	sloSnap := s.slos.Snapshot()
	snap.SLO = &sloSnap
	qs := s.pool.QueueStats()
	snap.Queue = &qs
	snap.Tenants = s.tenantMetrics()
	if s.opts.Journal != nil {
		js := s.opts.Journal.Stats()
		snap.Journal = &js
	}
	if s.opts.Incidents != nil {
		is := s.opts.Incidents.Stats()
		snap.Incidents = &is
	}
	snap.Ambiguity = s.amb.snapshot()
	snap.Runtime = readRuntimeStats()
	switch r.URL.Query().Get("format") {
	case "prometheus":
		p := &promtext.Writer{W: w}
		w.Header().Set("Content-Type", p.ContentType())
		writePrometheus(p, snap)
		return
	case "openmetrics":
		p := &promtext.Writer{W: w, OpenMetrics: true}
		w.Header().Set("Content-Type", p.ContentType())
		writePrometheus(p, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxConfigBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error(), 0)
		return
	}
	var req CreateSessionRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error(), 0)
		return
	}
	tenantName, ok := tenantFromRequest(r)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad "+tenant.HeaderTenant+" header: want 1-64 chars of [A-Za-z0-9._-]", 0)
		return
	}
	cfg, err := ios.Parse(req.Config)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "parse config: "+err.Error(), 0)
		return
	}
	sess := &clarify.Session{
		Client:           s.opts.NewClient(),
		Config:           cfg,
		MaxAttempts:      req.MaxAttempts,
		EnableReuse:      req.EnableReuse,
		SkipVerification: req.SkipVerification,
		SpaceCache:       s.spaces,
		Journal:          s.opts.Journal,
	}
	sn, err := s.mgr.Create(sess)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error(), 0)
		return
	}
	// Label the session's journal records with its ID; the session has not
	// served an update yet, so the write is unobserved.
	sess.JournalSession = sn.id
	sn.setTenant(s.tenants.Get(tenantName).Name())
	sn.setConfigText(cfg.Print())
	writeJSON(w, http.StatusCreated, CreateSessionResponse{ID: sn.id})
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.mgr.List()
	out := make([]SessionInfo, 0, len(sessions))
	for _, sn := range sessions {
		out = append(out, sn.info())
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupSession resolves a path session ID, answering 410 Gone for a
// session that died (with the tombstoned reason) and 404 for an ID that was
// never here.
func (s *Server) lookupSession(w http.ResponseWriter, id string) (*session, bool) {
	sn, ok := s.mgr.Get(id)
	if ok {
		return sn, true
	}
	if reason, dead := s.mgr.Tombstone(id); dead {
		writeGone(w, id, reason)
		return nil, false
	}
	writeError(w, http.StatusNotFound, "no such session", 0)
	return nil, false
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sn.info())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.Delete(id) {
		if reason, dead := s.mgr.Tombstone(id); dead {
			writeGone(w, id, reason)
			return
		}
		writeError(w, http.StatusNotFound, "no such session", 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSubmit is the hot path: run the tenant admission gates (token
// bucket, concurrent-update quota), reserve the session, enqueue the
// pipeline on the worker pool's fair queue — shedding with 429 +
// Retry-After when a gate denies, the queue is full, or the overload
// controller is tripped — and either wait for completion (sync) or return
// the update ID (async).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
		return
	}
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error(), 0)
		return
	}
	var req SubmitRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error(), 0)
		return
	}
	if req.Intent == "" || req.Target == "" {
		writeError(w, http.StatusBadRequest, "intent and target are required", 0)
		return
	}
	async := req.Async || r.URL.Query().Get("async") == "1"

	// Tenant gates run before the session is reserved: a quota bounce must
	// not allocate an update record, or a flooding tenant would grow its
	// sessions' update history without doing any work.
	tn := s.tenantFor(sn)
	if !s.admitSubmit(w, tn) {
		return
	}
	oracle := newAsyncOracle(s.baseCtx, s.opts.QuestionTimeout)
	u, err := sn.beginUpdate(oracle, req.Intent, req.Target)
	if err != nil {
		tn.Release()
		writeError(w, http.StatusConflict, err.Error(), 0)
		return
	}
	// A W3C traceparent from the caller (clarify-lb's forward span, or a
	// clarify -remote invocation) makes this update part of a fleet trace:
	// the pipeline adopts the trace ID and parents under the caller's span.
	// The write is safe: the job has not been submitted yet.
	if tp, ok := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); ok {
		u.parent = tp
	}
	// Sessions engaged in the disambiguation Q&A ride the strict-priority
	// interactive lane, so an operator mid-dialogue is never queued behind
	// a bulk flood; the header requests it for a dialogue's first submit.
	lane := tenant.Bulk
	if sn.interactive() || r.Header.Get(HeaderPriority) == "interactive" {
		lane = tenant.Interactive
	}
	job := func() { s.runUpdate(sn, u, tn, oracle, oracle, oracle) }
	// drop runs only if the job is purged at the shutdown drain deadline:
	// it fails the update and returns the session and quota slot.
	drop := func(reason tenant.Reason) {
		u.finish(nil, fmt.Errorf("rejected: %s", shedMessage(reason)))
		sn.endUpdate()
		tn.Release()
	}
	if reason := s.pool.Submit(tn.Name(), tn.Weight(), lane, job, drop); reason != "" {
		tn.RecordShed(reason)
		drop(reason)
		writeShed(w, reason, time.Second)
		return
	}
	if async {
		writeJSON(w, http.StatusAccepted, u.info())
		return
	}
	select {
	case <-u.done:
	case <-r.Context().Done():
		// The client went away; the update keeps running and remains
		// pollable at its update ID.
	}
	writeJSON(w, http.StatusOK, u.info())
}

// runUpdate executes one reserved update end to end: start the deadline
// budget, bind the oracle, run the pipeline, publish the outcome, release
// the session and the tenant's in-flight slot, and feed the fleet and
// per-tenant SLOs. It serves both fresh submissions (as the pool job) and
// rehydrated pending updates (on a restore goroutine); both paths hold an
// in-flight slot on tn when they get here. route and acl are the oracles
// the pipeline consults — the live async oracle for fresh updates, a
// transcript-replaying wrapper for restored ones.
func (s *Server) runUpdate(sn *session, u *update, tn *tenant.Tenant, oracle *asyncOracle, route disambig.RouteOracle, acl disambig.ACLOracle) {
	s.active.Add(1)
	defer s.active.Add(-1)
	defer tn.Release()
	// A panicking pipeline must fail its own update and release the
	// session; otherwise the session stays busy forever and sync
	// submitters hang. The pool has a last-resort recover too, but by
	// then the update record is unreachable.
	defer func() {
		if v := recover(); v != nil {
			s.met.recordPanic()
			u.finish(nil, fmt.Errorf("internal: update panicked: %v", v))
			sn.endUpdate()
		}
	}()
	u.setRunning()
	// The deadline budget starts when a worker picks the job up, not
	// while it sits in the queue — queue time is backpressure, not work.
	uctx := s.baseCtx
	cancel := func() {}
	if s.opts.UpdateTimeout > 0 {
		uctx, cancel = context.WithTimeout(s.baseCtx, s.opts.UpdateTimeout)
	}
	defer cancel()
	oracle.bind(uctx)
	uctx, flags := resilience.WithFlags(uctx)
	if u.parent.Valid() {
		uctx = obs.ContextWithTraceParent(uctx, u.parent)
	}
	cs := sn.sess
	cs.RouteOracle = route
	cs.ACLOracle = acl
	// Per-update sink: stamps the trace ID onto the update record, feeds
	// the per-stage histograms, and retains the trace for /debug/traces.
	// The degraded flag lands on the root span here so the tail-retention
	// policy and the fleet view see it without consulting the update record.
	// Updates are serialized per session, so reassigning the observer
	// here is as safe as the oracle assignment above.
	cs.Observer = obs.SinkFunc(func(t *obs.Trace) {
		if flags.Degraded() {
			t.Root.SetBool("degraded", true)
		}
		u.setTrace(t.ID)
		s.met.observeTrace(t)
		s.traces.Add(t)
	})
	start := time.Now()
	res, rerr := cs.Submit(uctx, u.intent, u.target)
	elapsed := time.Since(start)
	if rerr != nil && uctx.Err() == context.DeadlineExceeded && s.baseCtx.Err() == nil {
		s.met.recordUpdateTimeout()
		rerr = fmt.Errorf("update exceeded its %s budget: %w", s.opts.UpdateTimeout, rerr)
	}
	if rerr == nil {
		sn.setConfigText(res.Config.Print())
	}
	// Fold the pipeline's information-gain ledger (if the update reached
	// disambiguation) into the fleet and per-tenant ambiguity rollups.
	if rerr == nil && res != nil {
		if res.RouteInsert != nil {
			s.amb.record(tn.Name(), res.RouteInsert.Ambiguity)
		}
		if res.ACLInsert != nil {
			s.amb.record(tn.Name(), res.ACLInsert.Ambiguity)
		}
	}
	u.setDegraded(flags.Degraded())
	u.finish(res, rerr)
	// A session whose pipeline asked at least one disambiguation question
	// is in a dialogue: its follow-up submits ride the interactive lane.
	if oracle.asked() {
		sn.markInteractive()
	}
	sn.endUpdate()
	// Every terminal update outcome feeds the rolling objectives — fleet
	// and per-tenant: the elapsed time covers the whole pipeline including
	// question-wait, the same latency the client experienced.
	failed := rerr != nil
	tn.RecordOutcome(failed)
	s.slos.Observe(elapsed, failed)
	s.tenantSLO(tn.Name()).Observe(elapsed, failed)
	s.checkIncidents()
}

// keepTrace is the tail-retention policy: a trace evicted from the debug
// ring survives when it recorded an error, ran degraded, or was slower than
// the current update-stage p99 estimate (once enough updates have been
// observed for the estimate to mean something).
func (s *Server) keepTrace(t *obs.Trace) bool {
	if t.Root == nil {
		return false
	}
	if _, ok := t.Root.Attr("error"); ok {
		return true
	}
	if a, ok := t.Root.Attr("degraded"); ok && a.Bool {
		return true
	}
	p99, n := s.met.stageQuantile("update", 0.99)
	if n < minQuantileObservations || p99 <= 0 {
		return false
	}
	return float64(t.Duration())/float64(time.Millisecond) >= p99
}

// minQuantileObservations is how many update observations the stage
// histogram needs before the p99 estimate drives tail retention.
const minQuantileObservations = 20

// checkIncidents runs profile-on-fire: after each SLO observation, compare
// the firing alert set against the previous one and hand any quiet→firing
// transition to the incident recorder (which rate-limits actual captures).
// The capture runs on its own goroutine — it sleeps through a bounded CPU
// profile — so the worker that completed the update is not held.
func (s *Server) checkIncidents() {
	if s.opts.Incidents == nil {
		return
	}
	snap := s.slos.Snapshot()
	var newlyFiring []string
	s.firingMu.Lock()
	for _, o := range snap.Objectives {
		for _, ws := range o.Windows {
			name := o.Objective.Name + "/" + ws.Severity
			if ws.Firing && !s.firing[name] {
				newlyFiring = append(newlyFiring, name)
			}
			s.firing[name] = ws.Firing
		}
	}
	s.firingMu.Unlock()
	if len(newlyFiring) == 0 {
		return
	}
	// Evidence bundle: the retained tail (errors, outliers) first — those
	// are the traces that explain a burn — then recent traffic for context.
	traces := append(s.traces.Kept(), s.traces.List()...)
	go s.opts.Incidents.Capture(newlyFiring, traces)
}

// handleDebugIncidents serves the incident capture index, newest first.
func (s *Server) handleDebugIncidents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Incidents == nil {
		writeJSON(w, http.StatusOK, []incident.Capture{})
		return
	}
	list := s.opts.Incidents.List()
	if list == nil {
		list = []incident.Capture{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetUpdate(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	u := sn.getUpdate(r.PathValue("uid"))
	if u == nil {
		writeError(w, http.StatusNotFound, "no such update", 0)
		return
	}
	writeJSON(w, http.StatusOK, u.info())
}

func (s *Server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	resp := QuestionResponse{}
	if oracle := sn.pendingOracle(); oracle != nil {
		if q := oracle.Pending(); q != nil {
			resp.Pending = true
			resp.Question = q
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error(), 0)
		return
	}
	var req AnswerRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error(), 0)
		return
	}
	oracle := sn.pendingOracle()
	if oracle == nil {
		writeError(w, http.StatusConflict, "no update awaiting an answer", 0)
		return
	}
	if err := oracle.Answer(req.Seq, req.Option); err != nil {
		code := http.StatusConflict
		if req.Option != 1 && req.Option != 2 {
			code = http.StatusBadRequest
		}
		writeError(w, code, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "answered"})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, sn.configText())
}

// handleDebugSLO serves the rolling objective state: per-objective budget
// remaining and every burn-rate window's evaluation. ?tenant=NAME selects
// that tenant's private rings instead of the fleet's.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("tenant"); name != "" {
		snap, ok := s.tenantSLOSnapshot(name)
		if !ok {
			writeError(w, http.StatusNotFound, "no SLO state for tenant "+name, 0)
			return
		}
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeJSON(w, http.StatusOK, s.slos.Snapshot())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{Stats: sn.sess.Stats()})
}

// --- response helpers ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

// writeGone answers for a session that existed but died, tagging why so a
// balancer drops its stale affinity pin instead of retrying the dead ID.
func writeGone(w http.ResponseWriter, id, reason string) {
	writeJSON(w, http.StatusGone, ErrorResponse{
		Error:  fmt.Sprintf("session %s is gone (%s)", id, reason),
		Reason: reason,
	})
}
