package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// exampleConfig is the paper's §2.1 ISP_OUT running example.
const exampleConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

// exampleIntent is the §2.1 natural-language intent.
const exampleIntent = "Write a route-map stanza that permits routes containing the prefix " +
	"100.0.0.0/16 with mask length less than or equal to 23 and tagged " +
	"with the community 300:3. Their MED value should be set to 55."

const edgeACL = `ip access-list extended EDGE_IN
 deny tcp any any eq 22
 permit udp 10.0.0.0 0.0.0.255 any eq 53
 permit tcp any any established
 deny ip any any
`

const aclIntent = "Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 22."

// startServer spins a Server behind httptest and returns its client.
func startServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	srv := New(opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	})
	return srv, &Client{BaseURL: hs.URL, PollInterval: 2 * time.Millisecond}
}

// answerPump answers every pending question on the session with OPTION 1
// until stopped.
func answerPump(c *Client, sid string, stop <-chan struct{}) {
	go func() {
		last := -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			q, err := c.Question(context.Background(), sid)
			if err == nil && q != nil && q.Seq != last {
				if err := c.Answer(context.Background(), sid, q.Seq, 1); err == nil {
					last = q.Seq
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
}

// waitPendingQuestion polls until the session shows a parked question.
func waitPendingQuestion(t *testing.T, c *Client, sid string) *Question {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		q, err := c.Question(context.Background(), sid)
		if err != nil {
			t.Fatalf("question poll: %v", err)
		}
		if q != nil {
			return q
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no question became pending")
	return nil
}

// TestWalkthroughOverHTTP replays the §2.1 walkthrough end to end over the
// HTTP API: create session, submit the intent, answer both differential
// questions with OPTION 1, and fetch the updated configuration.
func TestWalkthroughOverHTTP(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	var asked []Question
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) {
		asked = append(asked, q)
		return 1, nil // OPTION 1: the new stanza wins
	})
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone || res.Result == nil {
		t.Fatalf("update did not finish: %+v", res)
	}
	if res.Result.Position != 0 || res.Result.Questions != 2 {
		t.Errorf("got position %d with %d questions, want 0 and 2", res.Result.Position, res.Result.Questions)
	}
	if res.Result.Renames["COM_LIST"] != "D2" || res.Result.Renames["PREFIX_100"] != "D3" {
		t.Errorf("renames = %v, want COM_LIST→D2 PREFIX_100→D3", res.Result.Renames)
	}
	if len(asked) != 2 {
		t.Fatalf("answered %d questions, want 2", len(asked))
	}
	for i, q := range asked {
		if q.Kind != "route-map" || q.Route == nil {
			t.Errorf("question %d missing route witness: %+v", i, q)
		}
		if q.Option1 == "" || q.Option2 == "" || !strings.Contains(q.Text, "OPTION 1") {
			t.Errorf("question %d missing rendered options: %+v", i, q)
		}
	}

	cfg, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatalf("fetch config: %v", err)
	}
	for _, want := range []string{"set metric 55", "D2", "D3", "route-map ISP_OUT"} {
		if !strings.Contains(cfg, want) {
			t.Errorf("updated config missing %q:\n%s", want, cfg)
		}
	}

	st, err := c.Stats(ctx, sid)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.LLMCalls != 3 || st.Disambiguations != 2 || st.Updates != 1 {
		t.Errorf("stats = %+v, want 3 LLM calls, 2 disambiguations, 1 update", st)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Pipeline.LLMCalls != 3 || m.Pipeline.Updates != 1 {
		t.Errorf("cumulative pipeline stats = %+v", m.Pipeline)
	}
	if m.Workers == 0 || m.QueueCapacity == 0 {
		t.Errorf("pool gauges missing: %+v", m)
	}
	h, ok := m.LatencyMs["POST /v1/sessions"]
	if !ok || h.Count == 0 {
		t.Errorf("latency histogram for session create missing: %+v", m.LatencyMs)
	}
	if m.Requests["POST /v1/sessions/{id}/updates"] == 0 {
		t.Errorf("per-endpoint request counters missing: %+v", m.Requests)
	}
	if m.SpaceCache.Hits+m.SpaceCache.Misses == 0 {
		t.Errorf("route-space cache counters missing from /metrics: %+v", m.SpaceCache)
	}
}

// TestACLUpdateOverHTTP exercises the ACL pipeline and packet-witness
// questions over HTTP.
func TestACLUpdateOverHTTP(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: edgeACL})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	var asked []Question
	res, err := c.RunUpdate(ctx, sid, aclIntent, "EDGE_IN", func(q Question) (int, error) {
		asked = append(asked, q)
		return 1, nil
	})
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone || res.Result == nil {
		t.Fatalf("update did not finish: %+v", res)
	}
	if res.Result.Kind != "acl" {
		t.Errorf("kind = %q, want acl", res.Result.Kind)
	}
	if len(asked) == 0 {
		t.Fatal("expected at least one packet question (the new permit overlaps the ssh deny)")
	}
	for i, q := range asked {
		if q.Kind != "acl" || q.Packet == "" {
			t.Errorf("question %d missing packet witness: %+v", i, q)
		}
	}
	cfg, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "permit tcp 10.0.0.0 0.0.0.255 any eq 22") {
		t.Errorf("updated ACL missing new entry:\n%s", cfg)
	}
}

// TestConcurrentSessions hammers the pool with many sessions in parallel;
// run under -race this is the serving layer's concurrency-safety test.
func TestConcurrentSessions(t *testing.T) {
	_, c := startServer(t, Options{Workers: 4, QueueSize: 32})
	const n = 8

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
			if err != nil {
				errs <- err
				return
			}
			res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) { return 1, nil })
			if err != nil {
				errs <- err
				return
			}
			if res.Status != StatusDone || res.Result.Position != 0 || res.Result.Questions != 2 {
				errs <- errors.New("unexpected result: " + res.Status + " " + res.Error)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Pipeline.Updates != n || m.Pipeline.LLMCalls != 3*n {
		t.Errorf("cumulative stats = %+v, want %d updates and %d LLM calls", m.Pipeline, n, 3*n)
	}
	if m.Sessions != n {
		t.Errorf("sessions = %d, want %d", m.Sessions, n)
	}
}

// TestQueueFullBackpressure saturates a 1-worker/1-slot pool and checks that
// excess submissions are shed with 429 + Retry-After while /metrics reports
// the congestion.
func TestQueueFullBackpressure(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueSize: 1, QuestionTimeout: 30 * time.Second})
	ctx := context.Background()

	var sids []string
	for i := 0; i < 8; i++ {
		sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatal(err)
		}
		sids = append(sids, sid)
	}

	// First update occupies the worker, parked on its question.
	first, err := c.SubmitAsync(ctx, sids[0], exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	waitPendingQuestion(t, c, sids[0])

	// Second update fills the single queue slot.
	second, err := c.SubmitAsync(ctx, sids[1], exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}

	// Everything beyond capacity must be rejected with 429.
	rejected := 0
	for _, sid := range sids[2:] {
		_, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
		if err == nil {
			t.Fatalf("submit on %s unexpectedly accepted", sid)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("want 429 APIError, got %v", err)
		}
		if apiErr.RetryAfterSeconds <= 0 {
			t.Errorf("429 missing Retry-After hint: %+v", apiErr)
		}
		rejected++
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueDepth != 1 {
		t.Errorf("queue depth = %d, want 1", m.QueueDepth)
	}
	if m.ActiveUpdates != 1 {
		t.Errorf("active updates = %d, want 1", m.ActiveUpdates)
	}
	if m.Rejected < int64(rejected) {
		t.Errorf("rejected counter = %d, want >= %d", m.Rejected, rejected)
	}

	// Drain: answer both live updates to completion.
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sids[0], stop)
	answerPump(c, sids[1], stop)
	for _, pair := range []struct{ sid, uid string }{{sids[0], first.ID}, {sids[1], second.ID}} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			u, err := c.Update(ctx, pair.sid, pair.uid)
			if err != nil {
				t.Fatal(err)
			}
			if u.Terminal() {
				if u.Status != StatusDone {
					t.Errorf("update %s/%s failed: %s", pair.sid, pair.uid, u.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("update %s/%s never finished", pair.sid, pair.uid)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestBusyConflict: a session admits one update at a time.
func TestBusyConflict(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	waitPendingQuestion(t, c, sid)
	_, err = c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("want 409 on busy session, got %v", err)
	}
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := c.Update(ctx, sid, u.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQuestionTimeout: an unanswered question aborts the update and leaves
// the session available with its configuration unchanged.
func TestQuestionTimeout(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QuestionTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var final UpdateInfo
	for {
		final, err = c.Update(ctx, sid, u.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update never became terminal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Status != StatusFailed || !strings.Contains(final.Error, "timed out") {
		t.Fatalf("want failed-with-timeout, got %+v", final)
	}
	info, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if info.Busy {
		t.Error("session still busy after aborted update")
	}
	after, err := c.Config(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("aborted update mutated the visible configuration")
	}
}

// TestGracefulShutdownDrains: Shutdown waits for in-flight updates; one
// parked on a question finishes once answered, and the drained server
// refuses new work.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, c := startServer(t, Options{Workers: 1, QuestionTimeout: 30 * time.Second})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	waitPendingQuestion(t, c, sid)

	shutdownErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()

	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)

	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	final, err := c.Update(ctx, sid, u.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("in-flight update not drained: %+v", final)
	}
	// The drained server sheds new work.
	if _, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT"); err == nil {
		t.Error("submit accepted after shutdown")
	}
	if _, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); err == nil {
		t.Error("session create accepted after shutdown")
	}
}

// TestShutdownForceCancels: when the drain budget expires, updates parked on
// questions are cancelled rather than leaked.
func TestShutdownForceCancels(t *testing.T) {
	srv, c := startServer(t, Options{Workers: 1, QuestionTimeout: 30 * time.Second})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.SubmitAsync(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	waitPendingQuestion(t, c, sid)

	sctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline-exceeded drain, got %v", err)
	}
	final, err := c.Update(ctx, sid, u.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed || !strings.Contains(final.Error, "cancelled") {
		t.Fatalf("want cancelled update after forced shutdown, got %+v", final)
	}
}

// TestSessionTTLEviction: idle sessions are evicted by the janitor and show
// up in the eviction counter.
func TestSessionTTLEviction(t *testing.T) {
	_, c := startServer(t, Options{IdleTTL: 30 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	// Polling the session itself would refresh its idle clock (reads count
	// as traffic), so watch the eviction counter instead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.EvictedSessions > 0 {
			if m.Sessions != 0 {
				t.Errorf("evicted but %d sessions still live", m.Sessions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A TTL-evicted session is distinguishable from an ID that never
	// existed: 410 Gone with the "evicted" reason, the signal a balancer
	// uses to drop its stale affinity pin.
	_, err = c.Session(ctx, sid)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusGone || apiErr.Reason != ReasonEvicted {
		t.Fatalf("want 410 Gone (evicted) after eviction, got %v", err)
	}
	_, err = c.Session(ctx, "s999-never-existed")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404 for unknown ID, got %v", err)
	}
}

// TestMaxSessionsCap: creates beyond the cap are refused with 503.
func TestMaxSessionsCap(t *testing.T) {
	_, c := startServer(t, Options{MaxSessions: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 at session cap, got %v", err)
	}
}

// TestSyncSubmit: the synchronous endpoint blocks until the update is done
// while questions are answered on a parallel connection.
func TestSyncSubmit(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)
	res, err := c.Submit(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDone || res.Result == nil || res.Result.Questions != 2 {
		t.Fatalf("sync submit result = %+v", res)
	}
}

// TestBadRequests covers the defensive paths: bad JSON, bad config, missing
// fields, unknown session, bad answers.
func TestBadRequests(t *testing.T) {
	_, c := startServer(t, Options{})
	ctx := context.Background()

	if _, err := c.CreateSession(ctx, CreateSessionRequest{Config: "route-map X permit\n broken"}); err == nil {
		t.Error("malformed config accepted")
	}
	if _, err := c.Session(ctx, "nope"); err == nil {
		t.Error("unknown session served")
	}
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAsync(ctx, sid, "", ""); err == nil {
		t.Error("empty intent accepted")
	}
	// No update in flight: answers conflict.
	err = c.Answer(ctx, sid, 1, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("want 409 answering idle session, got %v", err)
	}
	if err := c.DeleteSession(ctx, sid); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSession(ctx, sid); err == nil {
		t.Error("double delete succeeded")
	}
}
