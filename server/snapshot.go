package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/snapshot"
	"github.com/clarifynet/clarify/symbolic"
)

// Sentinel errors RestoreSession wraps so the HTTP handler (and a restoring
// daemon) can map failures onto status codes.
var (
	// errSessionExists: the ID already names a live session here (the
	// snapshot was restored twice, or the peer never lost the session).
	errSessionExists = errors.New("session already exists")
	// errDraining: this daemon is shutting down and cannot adopt sessions.
	errDraining = errors.New("server is draining")
	// errBadSnapshot: the snapshot is structurally invalid or fails
	// integrity checks (config unparseable, fingerprint mismatch).
	errBadSnapshot = errors.New("invalid session snapshot")
)

// DrainForHandoff prepares the session table for capture: new submissions
// are already rejected (draining), and the call waits until no update is
// mid-pipeline — every in-flight update is parked on a disambiguation
// question and the submission queue is empty — or ctx expires. A parked
// update is safe to snapshot (its intent + answer transcript fully
// determine its re-execution); an update mid-LLM-call is not, so we wait
// for it to either finish or park.
func (s *Server) DrainForHandoff(ctx context.Context) error {
	s.draining.Store(true)
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		if s.quiescedForSnapshot() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain for handoff: %w", ctx.Err())
		case <-t.C:
		}
	}
}

// quiescedForSnapshot reports whether every in-flight update is parked on a
// question (snapshot-safe) and nothing is queued.
func (s *Server) quiescedForSnapshot() bool {
	if s.pool.Depth() > 0 {
		return false
	}
	for _, sn := range s.mgr.List() {
		if o := sn.pendingOracle(); o != nil && o.Pending() == nil {
			return false
		}
	}
	return true
}

// SnapshotSessions captures every live session for handoff. Call after
// DrainForHandoff; sessions whose update is still mid-pipeline are captured
// anyway (their pending update re-executes from the transcript), so a
// too-short drain budget degrades to a slower restore, not data loss. node
// labels the capturing daemon.
func (s *Server) SnapshotSessions(node string) []*snapshot.Session {
	live := s.mgr.List()
	out := make([]*snapshot.Session, 0, len(live))
	now := time.Now()
	for _, sn := range live {
		snap := sn.capture(node, now)
		s.snapshotted.Add(1)
		s.journalLifecycle(journal.KindSessionSnapshot, snap)
		out = append(out, snap)
	}
	return out
}

// capture externalizes one session's serving state.
func (sn *session) capture(node string, now time.Time) *snapshot.Session {
	sn.mu.Lock()
	out := &snapshot.Session{
		Schema:      snapshot.SchemaVersion,
		ID:          sn.id,
		CapturedAt:  now,
		Node:        node,
		Tenant:      sn.tenant,
		ConfigText:  sn.cfgText,
		MaxAttempts: sn.sess.MaxAttempts,
		EnableReuse: sn.sess.EnableReuse,
		IdleSeconds: now.Sub(sn.lastUsed).Seconds(),
		NextUpdate:  sn.nextUpd,
		Order:       append([]string(nil), sn.order...),
	}
	out.SkipVerification = sn.sess.SkipVerification
	updates := make([]*update, 0, len(sn.order))
	for _, id := range sn.order {
		if u := sn.updates[id]; u != nil {
			updates = append(updates, u)
		}
	}
	oracle := sn.oracle
	sn.mu.Unlock()

	out.Stats = sn.sess.Stats()
	if cfg, err := ios.Parse(out.ConfigText); err == nil {
		out.Fingerprint = symbolic.Fingerprint(cfg)
	}
	for _, u := range updates {
		info := u.info()
		if info.Terminal() {
			rec := snapshot.UpdateRecord{
				ID: info.ID, Status: info.Status, Error: info.Error,
				TraceID: info.TraceID, Degraded: info.Degraded,
			}
			if info.Result != nil {
				if data, err := json.Marshal(info.Result); err == nil {
					rec.Result = data
				}
			}
			out.Updates = append(out.Updates, rec)
			continue
		}
		// The in-flight update: its intent plus the answers delivered so
		// far are everything a successor needs to re-execute and re-park it.
		pending := &snapshot.PendingUpdate{ID: info.ID, Intent: u.intent, Target: u.target}
		if u.parent.Valid() {
			pending.TraceParent = u.parent.String()
		}
		if oracle != nil {
			pending.Answers = oracle.transcript()
			if q := oracle.Pending(); q != nil {
				pending.Question = &snapshot.Question{Seq: q.Seq, Kind: q.Kind, Text: q.Text}
			}
		}
		out.Pending = pending
	}
	return out
}

// RestoreSession rehydrates one externalized session under its original ID:
// history becomes pollable again, counters resume, and a pending update is
// re-executed with its recorded answers so it re-parks on the same question
// with the same sequence number. The restored session gets a fresh idle
// clock — it must never materialize already past the janitor's cutoff.
func (s *Server) RestoreSession(snap *snapshot.Session) error {
	if s.draining.Load() {
		s.restoreFailures.Add(1)
		return errDraining
	}
	if err := snap.Validate(); err != nil {
		s.restoreFailures.Add(1)
		return fmt.Errorf("%w: %v", errBadSnapshot, err)
	}
	cfg, err := ios.Parse(snap.ConfigText)
	if err != nil {
		s.restoreFailures.Add(1)
		return fmt.Errorf("%w: parse config: %v", errBadSnapshot, err)
	}
	if snap.Fingerprint != "" {
		if fp := symbolic.Fingerprint(cfg); fp != snap.Fingerprint {
			s.restoreFailures.Add(1)
			return fmt.Errorf("%w: config fingerprint mismatch (snapshot %s, recomputed %s)",
				errBadSnapshot, snap.Fingerprint, fp)
		}
	}

	cs := &clarify.Session{
		Client:           s.opts.NewClient(),
		Config:           cfg,
		MaxAttempts:      snap.MaxAttempts,
		EnableReuse:      snap.EnableReuse,
		SkipVerification: snap.SkipVerification,
		SpaceCache:       s.spaces,
		Journal:          s.opts.Journal,
		JournalSession:   snap.ID,
	}
	cs.RestoreStats(snap.Stats)
	// Re-bind the session to its tenant on this daemon's registry; a
	// malformed or pre-tenancy name folds to the default tenant.
	tn := s.tenants.Get(snap.Tenant)
	sn := &session{
		id:       snap.ID,
		sess:     cs,
		lastUsed: time.Now(), // fresh idle clock by design
		updates:  map[string]*update{},
		order:    append([]string(nil), snap.Order...),
		nextUpd:  snap.NextUpdate,
		cfgText:  cfg.Print(),
		tenant:   tn.Name(),
	}
	for _, rec := range snap.Updates {
		u := &update{
			id: rec.ID, intent: "", target: "",
			status: rec.Status, errMsg: rec.Error,
			traceID: rec.TraceID, degraded: rec.Degraded,
			finished: true, done: make(chan struct{}),
		}
		close(u.done)
		if len(rec.Result) > 0 {
			res := new(UpdateResultInfo)
			if json.Unmarshal(rec.Result, res) == nil {
				u.result = res
			}
		}
		sn.updates[u.id] = u
	}

	var runRestored func()
	if p := snap.Pending; p != nil {
		oracle := newRestoredOracle(s.baseCtx, s.opts.QuestionTimeout, p.Answers)
		u := &update{
			id: p.ID, intent: p.Intent, target: p.Target,
			status: StatusQueued, oracle: oracle, done: make(chan struct{}),
		}
		if tp, ok := obs.ParseTraceParent(p.TraceParent); ok {
			// The re-executed update keeps its fleet trace ID, so the trace a
			// client was handed before the handoff resolves on the successor.
			u.parent = tp
		}
		sn.updates[u.id] = u
		found := false
		for _, id := range sn.order {
			if id == u.id {
				found = true
				break
			}
		}
		if !found {
			sn.order = append(sn.order, u.id)
		}
		sn.busy = true
		sn.oracle = oracle
		// A pending update with dialogue history keeps its interactive
		// standing on the successor.
		sn.dialog = p.Question != nil || len(p.Answers) > 0
		// The update held an in-flight slot on its original daemon; it
		// re-enters this registry's accounting without a bucket charge.
		tn.AdmitRestored()
		ro := &replayingOracle{answers: p.Answers, live: oracle}
		runRestored = func() { s.runUpdate(sn, u, tn, oracle, ro, ro) }
	}

	if err := s.mgr.Insert(sn); err != nil {
		s.restoreFailures.Add(1)
		return err
	}
	s.restored.Add(1)
	s.journalLifecycle(journal.KindSessionRestore, sn.capture("", time.Now()))
	if runRestored != nil {
		// Re-execution runs off the worker pool: it is restoration work, not
		// new load, and it must not be shed by a full queue. Shutdown waits
		// for these goroutines alongside the pool.
		s.restoreWG.Add(1)
		go func() {
			defer s.restoreWG.Done()
			runRestored()
		}()
	}
	return nil
}

// journalLifecycle appends a session lifecycle event to the flight
// recorder, so a journal scan shows where every session lived and moved.
func (s *Server) journalLifecycle(kind string, snap *snapshot.Session) {
	if s.opts.Journal == nil {
		return
	}
	s.opts.Journal.Append(&journal.Record{
		Kind:              kind,
		Time:              time.Now(),
		Session:           snap.ID,
		BaseConfig:        snap.ConfigText,
		ConfigFingerprint: snap.Fingerprint,
	})
}

// replayingOracle feeds a rehydrated update's recorded answers back to the
// pipeline in order, then hands off to the live oracle — at which point the
// re-executed update parks on exactly the question the client was looking
// at, with the same sequence number. The pipeline is deterministic given
// the same config, intent, and answers, so the replayed prefix asks the
// same questions it originally did; a kind mismatch means the snapshot
// lied, and the update fails rather than answering the wrong question.
type replayingOracle struct {
	answers []snapshot.Answer
	next    int
	live    *asyncOracle
}

func (o *replayingOracle) pop(kind string) (snapshot.Answer, bool, error) {
	if o.next >= len(o.answers) {
		return snapshot.Answer{}, false, nil
	}
	a := o.answers[o.next]
	if a.Kind != kind {
		return snapshot.Answer{}, false, fmt.Errorf(
			"server: restore diverged: pipeline asked a %s question, transcript answer %d is %s",
			kind, o.next+1, a.Kind)
	}
	o.next++
	return a, true, nil
}

// ChooseRoute implements disambig.RouteOracle.
func (o *replayingOracle) ChooseRoute(q disambig.RouteQuestion) (bool, error) {
	a, ok, err := o.pop("route-map")
	if err != nil {
		return false, err
	}
	if ok {
		return a.PreferNew, nil
	}
	return o.live.ChooseRoute(q)
}

// ChooseACL implements disambig.ACLOracle.
func (o *replayingOracle) ChooseACL(q disambig.ACLQuestion) (bool, error) {
	a, ok, err := o.pop("acl")
	if err != nil {
		return false, err
	}
	if ok {
		return a.PreferNew, nil
	}
	return o.live.ChooseACL(q)
}

var (
	_ disambig.RouteOracle = (*replayingOracle)(nil)
	_ disambig.ACLOracle   = (*replayingOracle)(nil)
)

// handleRestoreSession is the admin endpoint a draining peer (or a restart
// script replaying a snapshot directory) PUTs externalized sessions to.
func (s *Server) handleRestoreSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
		return
	}
	// Snapshots carry a full config plus update history; allow slack over
	// the config bound.
	body, err := io.ReadAll(io.LimitReader(r.Body, 2*s.opts.MaxConfigBytes+(1<<20)))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error(), 0)
		return
	}
	var snap snapshot.Session
	if err := decodeStrict(body, &snap); err != nil {
		writeError(w, http.StatusBadRequest, "decode snapshot: "+err.Error(), 0)
		return
	}
	id := r.PathValue("id")
	if snap.ID == "" {
		snap.ID = id
	} else if snap.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("snapshot session ID %q does not match path ID %q", snap.ID, id), 0)
		return
	}
	if err := s.RestoreSession(&snap); err != nil {
		switch {
		case errors.Is(err, errSessionExists):
			writeError(w, http.StatusConflict, err.Error(), 0)
		case errors.Is(err, errDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), 0)
		case errors.Is(err, errBadSnapshot):
			writeError(w, http.StatusUnprocessableEntity, err.Error(), 0)
		default:
			// Session cap and the like: the caller should try another peer.
			writeError(w, http.StatusServiceUnavailable, err.Error(), 1)
		}
		return
	}
	writeJSON(w, http.StatusCreated, RestoreSessionResponse{ID: snap.ID, Pending: snap.Pending != nil})
}
