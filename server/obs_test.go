package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/clarifynet/clarify/obs"
)

// runWalkthrough drives one §2.1 update through the API, answering every
// question with OPTION 1, and returns the finished update info.
func runWalkthrough(t *testing.T, c *Client, sid string) UpdateInfo {
	t.Helper()
	res, err := c.RunUpdate(context.Background(), sid, exampleIntent, "ISP_OUT",
		func(Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone {
		t.Fatalf("update did not finish: %+v", res)
	}
	return res
}

// TestUpdateCarriesTraceID checks that a finished update reports the ID of
// its recorded trace and that /debug/traces resolves it to a span tree.
func TestUpdateCarriesTraceID(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	res := runWalkthrough(t, c, sid)
	if res.TraceID == "" {
		t.Fatal("finished update has no traceId")
	}

	resp, err := http.Get(c.BaseURL + "/debug/traces/" + res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d", res.TraceID, resp.StatusCode)
	}
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != res.TraceID || tr.Root == nil || tr.Root.Name != "update" {
		t.Fatalf("trace round trip lost shape: %+v", tr)
	}
	for _, stage := range []string{"classify", "synthesize-attempt-1", "verify", "disambiguate"} {
		if tr.Find(stage) == nil {
			t.Errorf("served trace missing %q span", stage)
		}
	}

	// The listing shows it newest-first with the root's target attribute.
	resp, err = http.Get(c.BaseURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != res.TraceID || list[0].Target != "ISP_OUT" {
		t.Fatalf("trace listing = %+v", list)
	}
	if list[0].Spans < 6 || list[0].DurationMs <= 0 {
		t.Errorf("summary lacks shape: %+v", list[0])
	}
}

// TestTraceRingEviction fills a small ring past capacity and checks that the
// oldest trace becomes unresolvable while the newest remain, oldest-out.
func TestTraceRingEviction(t *testing.T) {
	r := newTraceRing(2)
	ts := make([]*obs.Trace, 3)
	for i := range ts {
		ts[i] = obs.NewTrace("update")
		ts[i].Finish()
		r.Add(ts[i])
	}
	if _, ok := r.Get(ts[0].ID); ok {
		t.Fatal("oldest trace must be evicted at capacity")
	}
	for _, tr := range ts[1:] {
		if _, ok := r.Get(tr.ID); !ok {
			t.Fatalf("retained trace %s must resolve", tr.ID)
		}
	}
	if got := r.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	list := r.List()
	if len(list) != 2 || list[0] != ts[2] || list[1] != ts[1] {
		t.Fatalf("List must be the retained traces newest-first, got %d entries", len(list))
	}

	// End to end: a server with a one-slot ring 404s the first update's
	// trace after the second lands.
	_, c := startServer(t, Options{Workers: 1, TraceBufferSize: 1})
	sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	first := runWalkthrough(t, c, sid)
	second := runWalkthrough(t, c, sid)
	resp, err := http.Get(c.BaseURL + "/debug/traces/" + first.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted trace must 404, got %d", resp.StatusCode)
	}
	resp, err = http.Get(c.BaseURL + "/debug/traces/" + second.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("latest trace must resolve, got %d", resp.StatusCode)
	}
}

// TestConcurrentTraceRecording hammers several sessions at once (run under
// -race in CI) and checks every update records a resolvable trace.
func TestConcurrentTraceRecording(t *testing.T) {
	srv, c := startServer(t, Options{Workers: 4})
	const sessions = 4
	var wg sync.WaitGroup
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sid string) {
			defer wg.Done()
			res, err := c.RunUpdate(context.Background(), sid, exampleIntent, "ISP_OUT",
				func(Question) (int, error) { return 1, nil })
			if err != nil || res.Status != StatusDone {
				t.Errorf("session %d: %v %+v", i, err, res)
				return
			}
			ids[i] = res.TraceID
		}(i, sid)
	}
	wg.Wait()
	if srv.traces.Total() != sessions {
		t.Errorf("recorded %d traces, want %d", srv.traces.Total(), sessions)
	}
	for i, id := range ids {
		if id == "" {
			continue // already reported above
		}
		if _, ok := srv.traces.Get(id); !ok {
			t.Errorf("session %d trace %s not retained", i, id)
		}
	}
}

// promFamily collects one metric family's parsed exposition lines.
type promFamily struct {
	help    string
	typ     string
	samples map[string]float64 // full sample name with labels → value
}

// parsePromText parses the Prometheus 0.0.4 text exposition into families,
// failing the test on any malformed line or HELP/TYPE ordering violation.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	get := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{samples: map[string]float64{}}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			get(name).help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			if get(name).help == "" {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			get(name).typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		case strings.TrimSpace(line) == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			// Label values may contain spaces ("GET /metrics"), so the
			// value is everything after the LAST space.
			cut := strings.LastIndexByte(line, ' ')
			if cut < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			sample, value := line[:cut], line[cut+1:]
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
			}
			// The family is the sample name minus labels and, for
			// histograms, the _bucket/_sum/_count suffix.
			name := sample
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if fam := strings.TrimSuffix(name, suf); fam != name && fams[fam] != nil {
					base = fam
					break
				}
			}
			f := fams[base]
			if f == nil || f.typ == "" {
				t.Fatalf("line %d: sample %q precedes its # TYPE", ln+1, sample)
			}
			f.samples[sample] = v
		}
	}
	return fams
}

// checkHistogram validates one labelled histogram series: buckets cumulative
// and monotone, +Inf bucket present and equal to _count.
func checkHistogram(t *testing.T, f *promFamily, name, labels string) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	prefix := name + "_bucket{" + labels
	for sample, v := range f.samples {
		if !strings.HasPrefix(sample, prefix) {
			continue
		}
		leStart := strings.Index(sample, `le="`)
		if leStart < 0 {
			t.Fatalf("bucket sample %q has no le label", sample)
		}
		leStr := sample[leStart+4:]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil && leStr != "+Inf" {
			t.Fatalf("bucket sample %q: bad le %q", sample, leStr)
		}
		if leStr == "+Inf" {
			le = 1e308
		}
		buckets = append(buckets, bucket{le, v})
	}
	if len(buckets) < 2 {
		t.Fatalf("%s{%s}: want at least one finite bucket plus +Inf, got %d", name, labels, len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Fatalf("%s{%s}: buckets not cumulative: le=%g count=%g < previous %g",
				name, labels, buckets[i].le, buckets[i].count, buckets[i-1].count)
		}
	}
	countName := fmt.Sprintf("%s_count{%s}", name, labels)
	if labels == "" {
		countName = name + "_count"
	}
	count, ok := f.samples[countName]
	if !ok {
		t.Fatalf("%s{%s}: missing _count sample (looked for %q)", name, labels, countName)
	}
	if inf := buckets[len(buckets)-1]; inf.count != count {
		t.Fatalf("%s{%s}: +Inf bucket %g != _count %g", name, labels, inf.count, count)
	}
}

// TestPrometheusExposition drives one update and validates the full
// /metrics?format=prometheus output as well-formed 0.0.4 text exposition
// with per-stage latency histograms.
func TestPrometheusExposition(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	runWalkthrough(t, c, sid)

	resp, err := http.Get(c.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, string(body))

	wantCounters := map[string]float64{
		"clarifyd_pipeline_llm_calls_total":       3,
		"clarifyd_pipeline_updates_total":         1,
		"clarifyd_pipeline_disambiguations_total": 2,
		"clarifyd_traces_total":                   1,
	}
	for name, want := range wantCounters {
		f := fams[name]
		if f == nil || f.typ != "counter" {
			t.Errorf("missing counter family %s: %+v", name, f)
			continue
		}
		if got := f.samples[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	for _, name := range []string{"clarifyd_workers", "clarifyd_queue_capacity", "clarifyd_sessions"} {
		f := fams[name]
		if f == nil || f.typ != "gauge" {
			t.Errorf("missing gauge family %s", name)
		}
	}
	if f := fams["clarifyd_requests_total"]; f == nil ||
		f.samples[`clarifyd_requests_total{endpoint="POST /v1/sessions"}`] < 1 {
		t.Errorf("per-endpoint request counters missing: %+v", f)
	}

	// Request-latency histogram for session create.
	reqHist := fams["clarifyd_request_duration_ms"]
	if reqHist == nil || reqHist.typ != "histogram" {
		t.Fatalf("missing request duration histogram: %+v", reqHist)
	}
	checkHistogram(t, reqHist, "clarifyd_request_duration_ms", `endpoint="POST /v1/sessions"`)

	// Per-stage pipeline histograms: every canonical stage of the §2.1
	// walkthrough must be present with at least one observation.
	stageHist := fams["clarifyd_stage_duration_ms"]
	if stageHist == nil || stageHist.typ != "histogram" {
		t.Fatalf("missing stage duration histogram: %+v", stageHist)
	}
	for _, stage := range []string{"update", "classify", "spec-extract", "synthesize-attempt", "parse", "verify", "disambiguate", "question-wait", "insert"} {
		labels := `stage="` + stage + `"`
		checkHistogram(t, stageHist, "clarifyd_stage_duration_ms", labels)
		if n := stageHist.samples[`clarifyd_stage_duration_ms_count{`+labels+`}`]; n < 1 {
			t.Errorf("stage %s has no observations", stage)
		}
	}
}
