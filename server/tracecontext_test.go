package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/clarifynet/clarify/incident"
	"github.com/clarifynet/clarify/internal/promtext"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/slo"
)

// TestTraceParentAdoption checks that an update submitted with a W3C
// traceparent header joins the caller's trace: the pipeline trace reuses the
// propagated trace ID and records the caller's span as its remote parent.
func TestTraceParentAdoption(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}

	tp := obs.TraceParent{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: obs.FlagSampled}
	uctx := obs.ContextWithTraceParent(ctx, tp)
	res, err := c.RunUpdate(uctx, sid, exampleIntent, "ISP_OUT",
		func(Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone {
		t.Fatalf("update did not finish: %+v", res)
	}
	if res.TraceID != tp.TraceID {
		t.Fatalf("update trace ID = %s, want propagated %s", res.TraceID, tp.TraceID)
	}

	resp, err := http.Get(c.BaseURL + "/debug/traces/" + tp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d", tp.TraceID, resp.StatusCode)
	}
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ParentSpanID != tp.SpanID {
		t.Fatalf("trace remote parent = %q, want caller span %q", tr.ParentSpanID, tp.SpanID)
	}
	if tr.Root == nil || tr.Root.Name != "update" {
		t.Fatalf("trace root = %+v, want update span", tr.Root)
	}
}

// TestInvalidTraceParentIgnored checks that a malformed traceparent header
// falls back to a locally minted trace instead of failing the update.
func TestInvalidTraceParentIgnored(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	// An invalid context still serializes to a traceparent header; the
	// server must reject it on parse and mint its own trace.
	uctx := obs.ContextWithTraceParent(ctx, obs.TraceParent{TraceID: "nope", SpanID: "short"})
	res, err := c.RunUpdate(uctx, sid, exampleIntent, "ISP_OUT",
		func(Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone {
		t.Fatalf("update did not finish: %+v", res)
	}
	if res.TraceID == "" || res.TraceID == "nope" || len(res.TraceID) != 32 {
		t.Fatalf("update trace ID = %q, want a fresh 32-hex local ID", res.TraceID)
	}
}

// TestOpenMetricsExemplars checks that with exemplars enabled the OpenMetrics
// exposition carries trace-ID exemplars on the stage histograms, validates
// against the format constraints, and that the classic 0.0.4 exposition stays
// exemplar-free.
func TestOpenMetricsExemplars(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, Exemplars: true})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	res := runWalkthrough(t, c, sid)

	fetch := func(format string) (string, string) {
		t.Helper()
		resp, err := http.Get(c.BaseURL + "/metrics?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	om, ct := fetch("openmetrics")
	if !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("openmetrics Content-Type = %q", ct)
	}
	if err := promtext.ValidateOpenMetrics([]byte(om)); err != nil {
		t.Fatalf("openmetrics exposition invalid: %v\n%s", err, om)
	}
	want := `# {trace_id="` + res.TraceID + `"}`
	if !strings.Contains(om, want) {
		t.Fatalf("exposition has no exemplar for trace %s:\n%s", res.TraceID, om)
	}

	classic, ct := fetch("prometheus")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	if strings.Contains(classic, "trace_id") || strings.Contains(classic, "# EOF") {
		t.Fatalf("classic exposition leaked OpenMetrics syntax:\n%s", classic)
	}
}

// TestTailRetentionKeepsErrorTraces checks that an errored update's trace
// survives eviction from the main debug ring into the kept ring, and that
// /debug/traces/{id} still resolves it.
func TestTailRetentionKeepsErrorTraces(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, TraceBufferSize: 2, TraceKeepSize: 8})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}

	// A target that does not exist fails the update; its trace records the
	// error on the root span, which the retention policy keeps.
	bad, err := c.RunUpdate(ctx, sid, exampleIntent, "NO_SUCH_MAP",
		func(Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if bad.Status != StatusFailed || bad.TraceID == "" {
		t.Fatalf("bad-target update = %+v, want failed with a trace", bad)
	}

	// Healthy traffic evicts it from the 2-slot main ring.
	for i := 0; i < 3; i++ {
		runWalkthrough(t, c, sid)
	}

	var kept []TraceSummary
	resp, err := http.Get(c.BaseURL + "/debug/traces?kept=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&kept); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range kept {
		if s.ID == bad.TraceID {
			found = true
			if s.Error == "" {
				t.Errorf("kept trace summary has no error: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("errored trace %s not in kept ring: %+v", bad.TraceID, kept)
	}

	one, err := http.Get(c.BaseURL + "/debug/traces/" + bad.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	one.Body.Close()
	if one.StatusCode != http.StatusOK {
		t.Fatalf("kept trace not resolvable by ID: %d", one.StatusCode)
	}
}

// TestProfileOnFire drives the availability objective into a firing state
// with failed updates and checks that exactly one rate-limited incident
// bundle appears at /debug/incidents.
func TestProfileOnFire(t *testing.T) {
	slos, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{Name: "availability", Goal: 0.5}},
		Windows: []slo.Window{
			{Long: 2 * time.Second, Short: 500 * time.Millisecond, Burn: 1, Severity: "page"},
		},
		Resolution: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := incident.NewRecorder(incident.Options{
		Dir:         t.TempDir(),
		Cooldown:    time.Hour,
		CPUDuration: 30 * time.Millisecond,
	})
	_, c := startServer(t, Options{Workers: 2, SLO: slos, Incidents: rec})
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}

	// Every update fails, so the availability burn rate exceeds the alert
	// threshold as soon as both windows have data.
	for i := 0; i < 6; i++ {
		res, err := c.RunUpdate(ctx, sid, exampleIntent, "NO_SUCH_MAP", nil)
		if err != nil {
			t.Fatalf("run update: %v", err)
		}
		if res.Status != StatusFailed {
			t.Fatalf("update %d unexpectedly succeeded: %+v", i, res)
		}
		time.Sleep(100 * time.Millisecond)
	}

	deadline := time.Now().Add(5 * time.Second)
	var list []incident.Capture
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.BaseURL + "/debug/incidents")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(list) != 1 {
		t.Fatalf("incidents = %d (%+v), want exactly one rate-limited capture", len(list), list)
	}
	cap0 := list[0]
	if len(cap0.Alerts) == 0 || !strings.HasPrefix(cap0.Alerts[0], "availability/") {
		t.Errorf("capture alerts = %v, want availability/*", cap0.Alerts)
	}
	hasTraces := false
	for _, f := range cap0.Files {
		if f == "traces.jsonl" {
			hasTraces = true
		}
	}
	if !hasTraces {
		t.Errorf("capture files = %v, want traces.jsonl", cap0.Files)
	}

	// The metrics snapshot surfaces the recorder counters.
	resp, err := http.Get(c.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "clarifyd_incident_captures_total 1") {
		t.Errorf("prometheus exposition missing incident counter:\n%s",
			firstMatching(string(body), "incident"))
	}
}

// firstMatching returns the exposition lines containing substr, for error
// messages that would otherwise dump the whole document.
func firstMatching(doc, substr string) string {
	var out []string
	for _, line := range strings.Split(doc, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("(no lines matching %q)", substr)
	}
	return strings.Join(out, "\n")
}
