package server

import (
	"context"
	"sync"
)

// pool is a bounded worker pool: N workers drain a bounded queue of jobs.
// When the queue is full, TrySubmit fails immediately so the HTTP layer can
// shed load with 429 instead of accumulating goroutines — the backpressure
// contract of the serving layer.
//
// Workers are panic-proof: a panicking job is contained (and reported via
// onPanic) instead of killing the worker goroutine and, with it, the whole
// daemon.
type pool struct {
	queue   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int
	// onPanic, when non-nil, receives the recovered value of any job panic
	// that escapes the job's own recovery. It runs on the worker goroutine;
	// keep it non-blocking.
	onPanic func(v interface{})
}

func newPool(workers, queueSize int, onPanic func(v interface{})) *pool {
	if workers <= 0 {
		workers = 4
	}
	if queueSize <= 0 {
		queueSize = 2 * workers
	}
	p := &pool{queue: make(chan func(), queueSize), workers: workers, onPanic: onPanic}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				p.run(job)
			}
		}()
	}
	return p
}

// run executes one job, containing any panic so the worker survives.
func (p *pool) run(job func()) {
	defer func() {
		if v := recover(); v != nil && p.onPanic != nil {
			p.onPanic(v)
		}
	}()
	job()
}

// TrySubmit enqueues a job without blocking; it reports false when the queue
// is full or the pool is draining.
func (p *pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- job:
		return true
	default:
		return false
	}
}

// Depth is the number of queued (not yet running) jobs.
func (p *pool) Depth() int { return len(p.queue) }

// Capacity is the bounded queue size.
func (p *pool) Capacity() int { return cap(p.queue) }

// Workers is the pool size.
func (p *pool) Workers() int { return p.workers }

// Close stops accepting jobs and waits for the queue to drain and all
// running jobs to finish, or for ctx to expire (the workers keep draining in
// the background in that case).
func (p *pool) Close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until all workers have exited; call only after Close.
func (p *pool) Wait() { p.wg.Wait() }
