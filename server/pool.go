package server

import (
	"context"
	"sync"

	"github.com/clarifynet/clarify/tenant"
)

// pool is a bounded worker pool: N workers drain a two-lane tenant-aware
// dispatch queue (tenant.Queue). The interactive lane is strict-priority so
// sessions engaged in the disambiguation Q&A are never queued behind a bulk
// flood; the bulk lane is weighted-fair (SFQ) across tenants. When the queue
// is full — or the CoDel-style shed controller declares overload and the
// submitting tenant is at its fair backlog share — Submit fails immediately
// with a typed reason so the HTTP layer can shed load with 429 instead of
// accumulating goroutines: the backpressure contract of the serving layer.
//
// Workers are panic-proof: a panicking job is contained (and reported via
// onPanic) instead of killing the worker goroutine and, with it, the whole
// daemon.
type pool struct {
	queue   *tenant.Queue
	wg      sync.WaitGroup
	workers int
	// onPanic, when non-nil, receives the recovered value of any job panic
	// that escapes the job's own recovery. It runs on the worker goroutine;
	// keep it non-blocking.
	onPanic func(v interface{})
}

func newPool(workers, queueSize int, shed tenant.ShedConfig, onPanic func(v interface{})) *pool {
	if workers <= 0 {
		workers = 4
	}
	if queueSize <= 0 {
		queueSize = 2 * workers
	}
	p := &pool{
		queue:   tenant.NewQueue(tenant.QueueConfig{Capacity: queueSize, Shed: shed}),
		workers: workers,
		onPanic: onPanic,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				job, ok := p.queue.Next()
				if !ok {
					return
				}
				p.run(job)
			}
		}()
	}
	return p
}

// run executes one job, containing any panic so the worker survives.
func (p *pool) run(job func()) {
	defer func() {
		if v := recover(); v != nil && p.onPanic != nil {
			p.onPanic(v)
		}
	}()
	job()
}

// Submit enqueues a job on the given tenant's flow and lane without
// blocking. The empty reason means admitted; otherwise the job was shed
// (queue full, overload, or pool draining) and drop — if non-nil — may
// later be invoked only for admitted jobs that get purged at shutdown.
func (p *pool) Submit(tenantName string, weight float64, lane tenant.Lane, job func(), drop func(tenant.Reason)) tenant.Reason {
	if weight <= 0 {
		weight = 1
	}
	if tenantName == "" {
		tenantName = tenant.DefaultTenant
	}
	return p.queue.Push(tenantName, weight, lane, job, drop)
}

// TrySubmit enqueues a job on the default tenant's bulk flow; it reports
// false when the queue is full or the pool is draining. Retained for
// callers (and tests) that predate tenancy.
func (p *pool) TrySubmit(job func()) bool {
	return p.Submit(tenant.DefaultTenant, 1, tenant.Bulk, job, nil) == ""
}

// Depth is the number of queued (not yet running) jobs.
func (p *pool) Depth() int { return p.queue.Depth() }

// Capacity is the bounded queue size.
func (p *pool) Capacity() int { return p.queue.Capacity() }

// Workers is the pool size.
func (p *pool) Workers() int { return p.workers }

// Overloaded reports whether the queue-delay shed controller is tripped.
func (p *pool) Overloaded() bool { return p.queue.Overloaded() }

// QueueStats snapshots the dispatch-queue counters.
func (p *pool) QueueStats() tenant.QueueStats { return p.queue.Stats() }

// FlowDepths returns the current bulk backlog per tenant.
func (p *pool) FlowDepths() map[string]int { return p.queue.FlowDepths() }

// Close stops accepting jobs and waits for the queue to drain and all
// running jobs to finish. If ctx expires first, the still-queued jobs are
// purged — each one's drop callback fails it upstream — so a saturated
// queue cannot wedge SIGTERM handoff past the supervisor's kill budget;
// only jobs already running keep the workers busy in the background.
func (p *pool) Close(ctx context.Context) error {
	p.queue.Close()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.queue.Purge(tenant.ReasonDrainDeadline)
		return ctx.Err()
	}
}

// Wait blocks until all workers have exited; call only after Close.
func (p *pool) Wait() { p.wg.Wait() }
