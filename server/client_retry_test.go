package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers failures times with the given status before serving
// the real payload, counting every hit.
type flakyHandler struct {
	failures int32
	status   int
	hits     atomic.Int32
	payload  interface{}
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.hits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	if n <= h.failures {
		w.WriteHeader(h.status)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "transient"})
		return
	}
	json.NewEncoder(w).Encode(h.payload)
}

// TestClientRetriesIdempotentGet checks a GET that hits a short 503 window —
// a balancer whose backend is mid-ejection, a draining replica — succeeds
// transparently within the retry budget.
func TestClientRetriesIdempotentGet(t *testing.T) {
	h := &flakyHandler{failures: 2, status: http.StatusServiceUnavailable,
		payload: SessionInfo{ID: "s1"}}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, RetryBaseDelay: time.Millisecond}
	info, err := c.Session(context.Background(), "s1")
	if err != nil {
		t.Fatalf("Session after transient 503s: %v", err)
	}
	if info.ID != "s1" {
		t.Fatalf("info.ID = %q, want s1", info.ID)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

// TestClientDoesNotRetryNonIdempotent checks POSTs fail straight through:
// submits and answers are not idempotent, so the client must not replay them.
func TestClientDoesNotRetryNonIdempotent(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, RetryBaseDelay: time.Millisecond}
	if err := c.Answer(context.Background(), "s1", 0, 1); err == nil {
		t.Fatal("Answer against a 503 server succeeded, want error")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a POST, want exactly 1", got)
	}
}

// TestClientRetryNotOnRealAnswers checks a 4xx — a real answer from the
// service — is never retried even on a GET.
func TestClientRetryNotOnRealAnswers(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusNotFound}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, RetryBaseDelay: time.Millisecond}
	if _, err := c.Session(context.Background(), "nope"); err == nil {
		t.Fatal("Session for a 404 succeeded, want error")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 404 GET, want exactly 1", got)
	}
}

// TestClientRetryDisabled checks MaxRetries < 0 turns the mechanism off.
func TestClientRetryDisabled(t *testing.T) {
	h := &flakyHandler{failures: 1, status: http.StatusServiceUnavailable,
		payload: SessionInfo{ID: "s1"}}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, MaxRetries: -1}
	if _, err := c.Session(context.Background(), "s1"); err == nil {
		t.Fatal("Session with retries disabled succeeded, want the 503 error")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests with retries disabled, want 1", got)
	}
}

func TestClientRetryDelay(t *testing.T) {
	c := &Client{}
	if d := c.retryDelay(0, nil); d != 50*time.Millisecond {
		t.Errorf("retryDelay(0) = %v, want 50ms", d)
	}
	if d := c.retryDelay(1, nil); d != 100*time.Millisecond {
		t.Errorf("retryDelay(1) = %v, want 100ms", d)
	}
	if d := c.retryDelay(10, nil); d != time.Second {
		t.Errorf("retryDelay(10) = %v, want the 1s cap", d)
	}
	// An explicit Retry-After hint overrides the computed backoff.
	if d := c.retryDelay(0, &APIError{RetryAfterSeconds: 1}); d != time.Second {
		t.Errorf("retryDelay with Retry-After 1 = %v, want 1s", d)
	}
	if d := c.retryDelay(0, &APIError{RetryAfterSeconds: 30}); d != time.Second {
		t.Errorf("retryDelay with Retry-After 30 = %v, want the 1s cap", d)
	}
}

// TestHealthPayloadFields checks /healthz and /readyz expose the load
// signals a fronting balancer reads for placement and drain detection.
func TestHealthPayloadFields(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig}); err != nil {
		t.Fatalf("create session: %v", err)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
		if h.Draining {
			t.Errorf("%s reports draining on a live server", path)
		}
		if h.ActiveSessions != 1 {
			t.Errorf("%s active_sessions = %d, want 1", path, h.ActiveSessions)
		}
		if h.QueueCapacity <= 0 {
			t.Errorf("%s queue_capacity = %d, want > 0", path, h.QueueCapacity)
		}
		if h.QueueDepth < 0 {
			t.Errorf("%s queue_depth = %d, want >= 0", path, h.QueueDepth)
		}
	}
}

// TestClientCancelMidBackoff checks a GET retry sleeping out its backoff
// aborts the instant the caller's context is cancelled — and surfaces the
// cancellation, not the transient error it was about to retry.
func TestClientCancelMidBackoff(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusServiceUnavailable}
	hs := httptest.NewServer(h)
	defer hs.Close()

	// A huge backoff makes the sleep the only place the time can go.
	c := &Client{BaseURL: hs.URL, RetryBaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Session(ctx, "s1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Session succeeded against a permanent 503")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to surface; the backoff sleep ignored ctx", elapsed)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests after cancellation, want 1", got)
	}
}

// TestClientCancelMid429Backoff checks the same for RunUpdate's 429
// backpressure loop: cancellation mid Retry-After sleep returns immediately
// with ctx.Err, not after the full wait.
func TestClientCancelMid429Backoff(t *testing.T) {
	h := &flakyHandler{failures: 100, status: http.StatusTooManyRequests}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := &Client{BaseURL: hs.URL}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.RunUpdate(ctx, "s1", "intent", "RM", func(Question) (int, error) { return 1, nil })
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RunUpdate succeeded against a permanent 429")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", err)
	}
	// The server sends no Retry-After, so the loop's default wait is 1s;
	// cancellation at 20ms must not sit it out.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v to surface; the 429 sleep ignored ctx", elapsed)
	}
}
