package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"github.com/clarifynet/clarify/journal"
	"github.com/clarifynet/clarify/slo"
)

// TestDebugTracesLimit checks GET /debug/traces?limit=N returns the N most
// recent traces newest-first, and rejects malformed limits.
func TestDebugTracesLimit(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, runWalkthrough(t, c, sid).TraceID)
	}

	fetch := func(q string) ([]TraceSummary, int) {
		t.Helper()
		resp, err := http.Get(c.BaseURL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode
		}
		var list []TraceSummary
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list, resp.StatusCode
	}

	list, _ := fetch("?limit=2")
	if len(list) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list))
	}
	if list[0].ID != ids[2] || list[1].ID != ids[1] {
		t.Errorf("limit=2 order = [%s %s], want newest-first [%s %s]",
			list[0].ID, list[1].ID, ids[2], ids[1])
	}
	if list, _ := fetch("?limit=0"); len(list) != 0 {
		t.Errorf("limit=0 returned %d traces, want none", len(list))
	}
	if list, _ := fetch("?limit=99"); len(list) != 3 {
		t.Errorf("limit beyond total returned %d traces, want all 3", len(list))
	}
	if list, _ := fetch(""); len(list) != 3 {
		t.Errorf("no limit returned %d traces, want all 3", len(list))
	}
	for _, bad := range []string{"?limit=-1", "?limit=x", "?limit=1.5"} {
		if _, status := fetch(bad); status != http.StatusBadRequest {
			t.Errorf("GET /debug/traces%s = %d, want 400", bad, status)
		}
	}
}

// TestLatencyBucketValidation exercises Options.Validate on the
// configurable bucket table.
func TestLatencyBucketValidation(t *testing.T) {
	good := Options{LatencyBucketsMs: []float64{1, 5, 10}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{
		{0, 1, 2}, // non-positive bound
		{-1, 1},   // negative bound
		{1, 1, 2}, // not strictly ascending
		{5, 1},    // descending
	} {
		opts := Options{LatencyBucketsMs: bad}
		if err := opts.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted, want error", bad)
		}
	}
}

// TestConfigurableBuckets runs a server with a custom bucket table and
// checks the histograms in /metrics use it, with quantile estimates filled.
func TestConfigurableBuckets(t *testing.T) {
	custom := []float64{10, 100, 10000}
	_, c := startServer(t, Options{Workers: 2, LatencyBucketsMs: custom})
	sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	runWalkthrough(t, c, sid)

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	h, ok := snap.StagesMs["update"]
	if !ok || h.Count < 1 {
		t.Fatalf("no update-stage histogram in metrics: %+v", snap.StagesMs)
	}
	if len(h.BucketsMs) != len(custom) || h.BucketsMs[0] != 10 || h.BucketsMs[2] != 10000 {
		t.Fatalf("BucketsMs = %v, want the custom table %v", h.BucketsMs, custom)
	}
	if len(h.Counts) != len(custom)+1 {
		t.Fatalf("Counts has %d entries, want %d (+Inf)", len(h.Counts), len(custom)+1)
	}
	if h.EstP50Ms <= 0 || h.EstP99Ms < h.EstP50Ms {
		t.Errorf("quantile estimates not filled or unordered: p50=%v p99=%v", h.EstP50Ms, h.EstP99Ms)
	}
}

// TestEstimateQuantile pins the interpolation math on hand-computed cases.
func TestEstimateQuantile(t *testing.T) {
	buckets := []float64{10, 20, 40}
	// 10 samples in (0,10], 10 in (10,20], none higher.
	counts := []int64{10, 10, 0, 0}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 10}, // rank 10 lands exactly on the first bucket's upper bound
		{0.25, 5},  // rank 2.5 interpolates to the middle of (0,10]
		{0.75, 15}, // rank 15 interpolates halfway through (10,20]
		{0.95, 19}, // rank 19 → 90% through the second bucket
	}
	for _, tc := range cases {
		got := estimateQuantile(buckets, counts, 20, tc.q)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("estimateQuantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// +Inf samples clamp to the highest finite bound.
	if got := estimateQuantile(buckets, []int64{0, 0, 0, 5}, 5, 0.99); got != 40 {
		t.Errorf("+Inf clamp = %v, want 40", got)
	}
	// Empty histogram estimates zero.
	if got := estimateQuantile(buckets, []int64{0, 0, 0, 0}, 0, 0.5); got != 0 {
		t.Errorf("empty histogram = %v, want 0", got)
	}
}

// TestDebugSLOEndpoint checks GET /debug/slo serves the default objectives
// and that served updates move the good counters.
func TestDebugSLOEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2})
	sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	runWalkthrough(t, c, sid)

	snap, err := c.SLO(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Objectives) != 2 {
		t.Fatalf("objectives = %d, want the 2 defaults", len(snap.Objectives))
	}
	names := map[string]slo.MonitorSnapshot{}
	for _, o := range snap.Objectives {
		names[o.Objective.Name] = o
	}
	avail, ok := names["availability"]
	if !ok {
		t.Fatal("availability objective missing")
	}
	if avail.Good != 1 || avail.Bad != 0 {
		t.Errorf("availability good/bad = %d/%d, want 1/0 after one clean update", avail.Good, avail.Bad)
	}
	if avail.Firing() {
		t.Error("no alert should fire after one success")
	}
	if len(avail.Windows) == 0 {
		t.Error("objective reports no alert windows")
	}
	if _, ok := names["latency"]; !ok {
		t.Error("latency objective missing")
	}

	// The same snapshot rides along in /metrics.
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.SLO == nil || len(m.SLO.Objectives) != 2 {
		t.Fatalf("metrics SLO block = %+v, want both objectives embedded", m.SLO)
	}
}

// TestServerJournal runs a journaling server and checks each update lands in
// the journal tagged with its session, and that /metrics reports the
// journal's counters.
func TestServerJournal(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()

	_, c := startServer(t, Options{Workers: 2, Journal: jnl})
	sid, err := c.CreateSession(context.Background(), CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatal(err)
	}
	res := runWalkthrough(t, c, sid)

	recs, stats, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.Skipped != 0 {
		t.Fatalf("journal holds %d records (%d skipped), want 1", len(recs), stats.Skipped)
	}
	rec := recs[0]
	if rec.Session != sid {
		t.Errorf("record session = %q, want the serving session %q", rec.Session, sid)
	}
	if rec.TraceID != res.TraceID {
		t.Errorf("record trace = %q, want the update's trace %q", rec.TraceID, res.TraceID)
	}
	if rec.Intent != exampleIntent || rec.Target != "ISP_OUT" {
		t.Errorf("record inputs = %q/%q", rec.Intent, rec.Target)
	}
	if rec.FinalConfig == "" || rec.Trace == nil || len(rec.Answers) != 2 {
		t.Errorf("record not self-contained: final=%d bytes, trace=%v, answers=%d",
			len(rec.FinalConfig), rec.Trace != nil, len(rec.Answers))
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Journal == nil || m.Journal.Appended != 1 {
		t.Fatalf("metrics journal block = %+v, want appended=1", m.Journal)
	}
}
