package server

import (
	"net/http"
	"sync"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/internal/promtext"
)

// ambiguityBitsBuckets are the value-histogram upper bounds, in bits, for
// the information-gain and residual-ambiguity distributions. Route-map and
// ACL candidate spaces are packet universes, so per-question gains of a few
// bits and residuals up to the full space (tens of bits) both need
// resolution; the last implicit bucket is +Inf.
var ambiguityBitsBuckets = []float64{0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// questionCountBuckets are the value-histogram upper bounds for questions
// asked per metered update. Binary search keeps this logarithmic in the
// overlap count, so small buckets dominate; the tail catches linear-probing
// baselines.
var questionCountBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24}

// ambiguityMetrics aggregates the disambiguation information-gain ledgers
// the pipeline attaches to completed updates: a fleet rollup, per-tenant
// rollups, and the three value histograms the telemetry exposes. All methods
// are safe for concurrent use.
type ambiguityMetrics struct {
	mu      sync.Mutex
	rollup  *ambiguity.Rollup
	tenants map[string]*ambiguity.Rollup
	// bitsPerQuestion observes each question's information gain; the other
	// two observe once per metered update.
	bitsPerQuestion    *histogram
	questionsPerUpdate *histogram
	residualBits       *histogram
}

func newAmbiguityMetrics() *ambiguityMetrics {
	return &ambiguityMetrics{
		rollup:             ambiguity.NewRollup(),
		tenants:            map[string]*ambiguity.Rollup{},
		bitsPerQuestion:    newHistogram(ambiguityBitsBuckets),
		questionsPerUpdate: newHistogram(questionCountBuckets),
		residualBits:       newHistogram(ambiguityBitsBuckets),
	}
}

// record folds one update's ledger in under the named tenant. Nil ledgers
// (updates that never reached disambiguation, or ran untraced) are ignored.
func (a *ambiguityMetrics) record(tenantName string, l *ambiguity.Ledger) {
	if l == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rollup.Add(l)
	tr := a.tenants[tenantName]
	if tr == nil {
		tr = ambiguity.NewRollup()
		a.tenants[tenantName] = tr
	}
	tr.Add(l)
	for _, q := range l.Questions {
		a.bitsPerQuestion.observeValue(q.GainBits)
	}
	a.questionsPerUpdate.observeValue(float64(l.QuestionCount()))
	a.residualBits.observeValue(l.ResidualBits)
}

// snapshot deep-copies the aggregates into the wire shape.
func (a *ambiguityMetrics) snapshot() *AmbiguitySnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := &AmbiguitySnapshot{
		Rollup:                  ambiguity.NewRollup(),
		BitsResolvedPerQuestion: a.bitsPerQuestion.snapshotValue(),
		QuestionsPerUpdate:      a.questionsPerUpdate.snapshotValue(),
		ResidualAmbiguityBits:   a.residualBits.snapshotValue(),
	}
	out.Rollup.Merge(a.rollup)
	if len(a.tenants) > 0 {
		out.Tenants = make(map[string]*ambiguity.Rollup, len(a.tenants))
		for name, tr := range a.tenants {
			cp := ambiguity.NewRollup()
			cp.Merge(tr)
			out.Tenants[name] = cp
		}
	}
	return out
}

// AmbiguitySnapshot is the body of GET /debug/ambiguity and the /metrics
// "ambiguity" block: the rollup of every ledger this daemon recorded, the
// per-tenant breakdown, and the distribution histograms. clarify-lb fetches
// one per backend and merges them into the fleet view — sums merge exactly,
// and the histograms share a fixed bucket table.
type AmbiguitySnapshot struct {
	Rollup  *ambiguity.Rollup            `json:"rollup"`
	Tenants map[string]*ambiguity.Rollup `json:"tenants,omitempty"`
	// BitsResolvedPerQuestion distributes each clarifying question's
	// information gain (bits of candidate space eliminated).
	BitsResolvedPerQuestion ValueHistogramSnapshot `json:"bitsResolvedPerQuestion"`
	// QuestionsPerUpdate distributes the number of questions each metered
	// update needed before the insertion point was pinned.
	QuestionsPerUpdate ValueHistogramSnapshot `json:"questionsPerUpdate"`
	// ResidualAmbiguityBits distributes the candidate-space entropy left when
	// each update was accepted — nonzero residuals quantify placements the
	// dialogue never pinned down.
	ResidualAmbiguityBits ValueHistogramSnapshot `json:"residualAmbiguityBits"`
}

// Merge folds another daemon's snapshot into this one (the lb fleet view).
// Histograms merge bucket-wise; a bucket-table mismatch (mixed-version
// fleet) keeps the receiver's histogram and merges only the rollups.
func (s *AmbiguitySnapshot) Merge(o *AmbiguitySnapshot) {
	if s == nil || o == nil {
		return
	}
	if s.Rollup == nil {
		s.Rollup = ambiguity.NewRollup()
	}
	s.Rollup.Merge(o.Rollup)
	for name, tr := range o.Tenants {
		if s.Tenants == nil {
			s.Tenants = map[string]*ambiguity.Rollup{}
		}
		dst := s.Tenants[name]
		if dst == nil {
			dst = ambiguity.NewRollup()
			s.Tenants[name] = dst
		}
		dst.Merge(tr)
	}
	s.BitsResolvedPerQuestion.Merge(o.BitsResolvedPerQuestion)
	s.QuestionsPerUpdate.Merge(o.QuestionsPerUpdate)
	s.ResidualAmbiguityBits.Merge(o.ResidualAmbiguityBits)
}

// ValueHistogramSnapshot is the wire view of a fixed-bucket histogram over a
// dimensionless value (bits, question counts) — the unit-free sibling of
// HistogramSnapshot.
type ValueHistogramSnapshot struct {
	// Buckets are the upper bounds; Counts has one extra entry for +Inf.
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Mean    float64   `json:"mean"`
	EstP50  float64   `json:"estP50"`
	EstP95  float64   `json:"estP95"`
	EstP99  float64   `json:"estP99"`
}

// MakeValueHistogramSnapshot builds the wire view from raw counts; the
// counts slice is copied. Shared with the lb package.
func MakeValueHistogramSnapshot(buckets []float64, counts []int64, count int64, sum float64) ValueHistogramSnapshot {
	snap := ValueHistogramSnapshot{
		Buckets: buckets,
		Counts:  append([]int64(nil), counts...),
		Count:   count,
		Sum:     sum,
	}
	snap.restat()
	return snap
}

// restat recomputes the derived fields from the raw counts.
func (h *ValueHistogramSnapshot) restat() {
	if h.Count <= 0 {
		h.Mean, h.EstP50, h.EstP95, h.EstP99 = 0, 0, 0, 0
		return
	}
	h.Mean = h.Sum / float64(h.Count)
	h.EstP50 = estimateQuantile(h.Buckets, h.Counts, h.Count, 0.50)
	h.EstP95 = estimateQuantile(h.Buckets, h.Counts, h.Count, 0.95)
	h.EstP99 = estimateQuantile(h.Buckets, h.Counts, h.Count, 0.99)
}

// Merge adds another snapshot's observations bucket-wise and recomputes the
// quantile estimates. Mismatched bucket tables are skipped (the receiver
// wins) rather than producing a nonsense merge.
func (h *ValueHistogramSnapshot) Merge(o ValueHistogramSnapshot) {
	if o.Count == 0 && len(o.Counts) == 0 {
		return
	}
	if len(h.Counts) == 0 {
		*h = o
		h.Counts = append([]int64(nil), o.Counts...)
		return
	}
	if len(h.Counts) != len(o.Counts) {
		return
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	h.restat()
}

// snapshotValue copies one value histogram; callers hold the metrics mutex.
func (h *histogram) snapshotValue() ValueHistogramSnapshot {
	return MakeValueHistogramSnapshot(h.buckets, h.counts, h.n, h.sumMs)
}

// handleDebugAmbiguity serves the disambiguation-efficiency rollup: how much
// candidate-space ambiguity updates started with, how many bits each
// clarifying question resolved, and what remained at accept — fleet-wide,
// with ?tenant=NAME selecting one tenant's rollup.
func (s *Server) handleDebugAmbiguity(w http.ResponseWriter, r *http.Request) {
	snap := s.amb.snapshot()
	if name := r.URL.Query().Get("tenant"); name != "" {
		tr, ok := snap.Tenants[name]
		if !ok {
			writeError(w, http.StatusNotFound, "no ambiguity ledgers for tenant "+name, 0)
			return
		}
		writeJSON(w, http.StatusOK, tr)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// writeAmbiguity renders the disambiguation telemetry series: per-strategy
// counters (updates, questions, bits) and the three distribution histograms.
func writeAmbiguity(p *promtext.Writer, snap *AmbiguitySnapshot) {
	if r := snap.Rollup; r != nil {
		p.Counter("clarifyd_ambiguity_updates_metered_total",
			"Updates that carried a disambiguation information-gain ledger.", float64(r.Total.Updates))
		p.Counter("clarifyd_ambiguity_updates_with_questions_total",
			"Metered updates that asked at least one clarifying question.", float64(r.UpdatesWithQuestions))
		p.Header("clarifyd_ambiguity_strategy_updates_total", "counter", "Metered updates per insertion strategy.")
		for _, name := range r.StrategyNames() {
			p.Sample("clarifyd_ambiguity_strategy_updates_total", "strategy="+quoteLabel(name), float64(r.Strategies[name].Updates))
		}
		p.Header("clarifyd_ambiguity_strategy_questions_total", "counter", "Clarifying questions asked per insertion strategy.")
		for _, name := range r.StrategyNames() {
			p.Sample("clarifyd_ambiguity_strategy_questions_total", "strategy="+quoteLabel(name), float64(r.Strategies[name].Questions))
		}
		p.Header("clarifyd_ambiguity_strategy_bits_resolved_total", "counter", "Bits of candidate-space ambiguity resolved per insertion strategy.")
		for _, name := range r.StrategyNames() {
			p.Sample("clarifyd_ambiguity_strategy_bits_resolved_total", "strategy="+quoteLabel(name), r.Strategies[name].ResolvedBits)
		}
		p.Header("clarifyd_ambiguity_strategy_bits_residual_total", "counter", "Bits of candidate-space ambiguity left at accept per insertion strategy.")
		for _, name := range r.StrategyNames() {
			p.Sample("clarifyd_ambiguity_strategy_bits_residual_total", "strategy="+quoteLabel(name), r.Strategies[name].ResidualBits)
		}
		p.Header("clarifyd_ambiguity_kind_updates_total", "counter", "Metered updates per update kind (route-map, acl).")
		for _, name := range r.KindNames() {
			p.Sample("clarifyd_ambiguity_kind_updates_total", "kind="+quoteLabel(name), float64(r.Kinds[name].Updates))
		}
	}
	writeValueHistogram(p, "clarifyd_ambiguity_bits_resolved_per_question",
		"Information gain of each clarifying question, in bits.", snap.BitsResolvedPerQuestion)
	writeValueHistogram(p, "clarifyd_ambiguity_questions_per_update",
		"Clarifying questions asked per metered update.", snap.QuestionsPerUpdate)
	writeValueHistogram(p, "clarifyd_ambiguity_residual_bits",
		"Candidate-space ambiguity left when each update was accepted, in bits.", snap.ResidualAmbiguityBits)
}

// writeValueHistogram renders one unlabelled histogram family from a value
// snapshot: cumulative le buckets, +Inf, _sum and _count.
func writeValueHistogram(p *promtext.Writer, name, help string, h ValueHistogramSnapshot) {
	p.Header(name, "histogram", help)
	var cum int64
	for i, ub := range h.Buckets {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		p.Sample(name+"_bucket", "le="+quoteLabel(formatFloat(ub)), float64(cum))
	}
	p.Sample(name+"_bucket", `le="+Inf"`, float64(h.Count))
	p.Sample(name+"_sum", "", h.Sum)
	p.Sample(name+"_count", "", float64(h.Count))
}
