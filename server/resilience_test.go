package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/resilience"
	"github.com/clarifynet/clarify/tenant"
)

// readAll drains and closes an HTTP response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// panicClient panics on its nth completion (1-based); other calls delegate.
type panicClient struct {
	inner llm.Client
	n     int32
	at    int32
}

func (p *panicClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if atomic.AddInt32(&p.n, 1) == p.at {
		panic("synthetic pipeline panic")
	}
	return p.inner.Complete(ctx, req)
}

// blockingClient parks every completion until its context expires.
type blockingClient struct{}

func (blockingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

// failingClient fails every completion.
type failingClient struct{}

func (failingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{}, context.DeadlineExceeded
}

// TestPoolContainsPanics exercises the pool-level last-resort recovery: a job
// that panics must not kill its worker, and the pool must keep draining jobs.
func TestPoolContainsPanics(t *testing.T) {
	var recovered int64
	p := newPool(2, 4, tenant.ShedConfig{Target: -1}, func(interface{}) { atomic.AddInt64(&recovered, 1) })
	done := make(chan struct{}, 8)
	for i := 0; i < 4; i++ {
		ok := p.TrySubmit(func() {
			done <- struct{}{}
			panic("boom")
		})
		if !ok {
			t.Fatalf("submit %d rejected", i)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("panicking job %d never ran", i)
		}
	}
	// Followed by normal jobs: workers must have survived the panics. The
	// queue may still hold a just-finished job's slot, so retry briefly.
	for i := 0; i < 4; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for !p.TrySubmit(func() { done <- struct{}{} }) {
			if time.Now().After(deadline) {
				t.Fatalf("post-panic submit %d rejected: workers died", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("post-panic job %d never ran: a worker died", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := atomic.LoadInt64(&recovered); n != 4 {
		t.Fatalf("recovered %d panics, want 4", n)
	}
}

// TestPanickingUpdateFailsCleanly submits an update whose LLM client panics:
// the update must fail with a synthetic error, the session must be released
// for the next update, and the panic counter must increment — the daemon
// itself keeps serving.
func TestPanickingUpdateFailsCleanly(t *testing.T) {
	pc := &panicClient{inner: llm.NewSimLLM(), at: 1}
	srv, c := startServer(t, Options{Workers: 1, NewClient: func() llm.Client { return pc }})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.Submit(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Status != StatusFailed || !strings.Contains(res.Error, "update panicked") {
		t.Fatalf("got %q/%q, want failed update with panic error", res.Status, res.Error)
	}
	if got := srv.met.snapshot().PanicsRecovered; got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}

	// The session must be reusable: the panic consumed the client's only
	// planned fault, so the rerun completes normally.
	stop := make(chan struct{})
	defer close(stop)
	answerPump(c, sid, stop)
	res, err = c.Submit(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if res.Status != StatusDone {
		t.Fatalf("post-panic update = %q (%s), want done", res.Status, res.Error)
	}
}

// TestUpdateTimeoutFreesWorker bounds an update whose LLM call never returns:
// the deadline budget must fail the update, count it, and hand the worker
// back.
func TestUpdateTimeoutFreesWorker(t *testing.T) {
	srv, c := startServer(t, Options{
		Workers:       1,
		UpdateTimeout: 50 * time.Millisecond,
		NewClient:     func() llm.Client { return blockingClient{} },
	})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	start := time.Now()
	res, err := c.Submit(ctx, sid, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Status != StatusFailed || !strings.Contains(res.Error, "budget") {
		t.Fatalf("got %q/%q, want deadline failure", res.Status, res.Error)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("timeout took %s, budget was 50ms", e)
	}
	if got := srv.met.snapshot().UpdateTimeouts; got != 1 {
		t.Errorf("UpdateTimeouts = %d, want 1", got)
	}
	// The single worker must be free again: a second submit on a fresh
	// session must be picked up (and time out the same way) rather than
	// queue forever.
	sid2, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session 2: %v", err)
	}
	res, err = c.Submit(ctx, sid2, exampleIntent, "ISP_OUT")
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if res.Status != StatusFailed {
		t.Fatalf("second update = %q, want failed", res.Status)
	}
}

// TestDegradedModeHealthAndFlag runs the §2.1 walkthrough against a stack
// whose primary always fails: SimLLM serves as fallback, the update succeeds
// flagged degraded, and /healthz + /readyz report degraded while staying 200.
func TestDegradedModeHealthAndFlag(t *testing.T) {
	stack := resilience.NewStack(failingClient{}, "http",
		resilience.BreakerConfig{FailureRate: 0.5, MinRequests: 2, Cooldown: time.Hour},
		llm.NewSimLLM(), "sim")
	srv, c := startServer(t, Options{
		Workers:    2,
		NewClient:  func() llm.Client { return stack.Client() },
		Resilience: stack,
	})
	ctx := context.Background()

	sid, err := c.CreateSession(ctx, CreateSessionRequest{Config: exampleConfig})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	res, err := c.RunUpdate(ctx, sid, exampleIntent, "ISP_OUT", func(q Question) (int, error) { return 1, nil })
	if err != nil {
		t.Fatalf("run update: %v", err)
	}
	if res.Status != StatusDone {
		t.Fatalf("update = %q (%s), want done via fallback", res.Status, res.Error)
	}
	if !res.Degraded {
		t.Error("UpdateInfo.Degraded = false, want true (served by fallback)")
	}

	// Liveness stays 200 but reports degraded.
	hs := httptest.NewServer(srv)
	defer hs.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200 (degraded is alive): %s", path, resp.StatusCode, body)
		}
		if !strings.Contains(body, `"degraded"`) || !strings.Contains(body, `"fallback"`) {
			t.Errorf("%s body missing degraded payload: %s", path, body)
		}
	}

	// /metrics carries the resilience snapshot.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if snap.Resilience == nil || !snap.Resilience.Degraded {
		t.Fatalf("metrics resilience = %+v, want degraded", snap.Resilience)
	}
	if snap.Resilience.Chain == nil || snap.Resilience.Chain.Fallbacks == 0 {
		t.Errorf("chain fallbacks not counted: %+v", snap.Resilience.Chain)
	}
}

// TestReadyzUnreadyWithoutFallback reports 503 when the breaker is open and
// there is nothing to fall back to.
func TestReadyzUnreadyWithoutFallback(t *testing.T) {
	stack := resilience.NewStack(failingClient{}, "http",
		resilience.BreakerConfig{FailureRate: 0.5, MinRequests: 1, Cooldown: time.Hour},
		nil, "")
	srv, _ := startServer(t, Options{
		NewClient:  func() llm.Client { return stack.Client() },
		Resilience: stack,
	})
	// Trip the breaker directly; no HTTP traffic needed.
	stack.Breaker().Record(false)
	if stack.Breaker().State() != resilience.Open {
		t.Fatal("breaker did not open")
	}

	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "breaker-open") {
		t.Errorf("/readyz body missing breaker-open: %s", body)
	}
	// Liveness is unaffected: the daemon should not be restarted for this.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200: %s", resp.StatusCode, body)
	}
}
