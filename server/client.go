package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/slo"
	"github.com/clarifynet/clarify/snapshot"
	"github.com/clarifynet/clarify/tenant"
)

// Client is the Go client for a running clarifyd. It is safe for concurrent
// use by multiple goroutines.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; a 30-second-timeout client is used
	// when nil.
	HTTP *http.Client
	// PollInterval paces RunUpdate's question/status polling (default
	// 25 ms).
	PollInterval time.Duration
	// MaxRetries bounds the extra attempts for idempotent GETs (question
	// polls, update polls, stats, session info) that fail with a transient
	// transport error or a 502/503/504 — a balancer whose backend is inside
	// an ejection window, or a replica briefly draining. Non-GET requests
	// are never retried here (submits and answers are not idempotent; the
	// server's own Retry-After contract covers 429s via RunUpdate).
	// Default 2; negative disables.
	MaxRetries int
	// RetryBaseDelay seeds the doubling backoff between GET retries
	// (default 50ms, capped at 1s). A Retry-After hint from the server
	// overrides the computed delay, mirroring llm.HTTPClient.
	RetryBaseDelay time.Duration
	// Tenant, when set, is sent as the X-Clarify-Tenant header on every
	// request, binding created sessions — and their quota accounting — to
	// that tenant.
	Tenant string
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 2
	}
	return c.MaxRetries
}

// retryDelay computes the pause before GET retry n (0-based), honoring an
// explicit Retry-After hint when the failure carried one.
func (c *Client) retryDelay(n int, apiErr *APIError) time.Duration {
	const maxDelay = time.Second
	if apiErr != nil && apiErr.RetryAfterSeconds > 0 {
		d := time.Duration(apiErr.RetryAfterSeconds) * time.Second
		if d > maxDelay {
			d = maxDelay
		}
		return d
	}
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << n
	if d > maxDelay {
		d = maxDelay
	}
	return d
}

// retryableGet reports whether a failed idempotent GET is worth retrying:
// transient transport errors and gateway-ish statuses (502/503/504) are; any
// other API error — 4xx, 500 — is a real answer from the service.
func retryableGet(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Transport-level failure (connection refused/reset mid-ejection). The
	// caller's context expiring is terminal, not transient.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) pollEvery() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 25 * time.Millisecond
}

// do issues one JSON request; out may be nil for responses without a body.
// GETs are retried per MaxRetries on transient failures so short backend
// ejection or drain windows behind a balancer do not surface as errors.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, in, out)
		if err == nil || method != http.MethodGet || attempt >= c.maxRetries() || !retryableGet(err) {
			return err
		}
		var apiErr *APIError
		errors.As(err, &apiErr)
		if serr := sleepCtx(ctx, c.retryDelay(attempt, apiErr)); serr != nil {
			// Cancellation mid-backoff is the caller's context speaking;
			// surface it immediately (and recognizably — errors.Is sees
			// context.Canceled) instead of the transient error we were
			// about to retry.
			return fmt.Errorf("clarifyd client: retry aborted: %w (last error: %v)", serr, err)
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("clarifyd client: marshal: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("clarifyd client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(tenant.HeaderTenant, c.Tenant)
	}
	if tp, ok := obs.TraceParentFromContext(ctx); ok {
		// Propagate the caller's fleet trace context so CLI-driven updates
		// stitch under the same trace ID across the balancer and daemon.
		req.Header.Set(obs.TraceParentHeader, tp.String())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("clarifyd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("clarifyd client: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(data)}
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
			apiErr.RetryAfterSeconds = e.RetryAfterSeconds
			apiErr.Reason = e.Reason
		}
		return apiErr
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("clarifyd client: decode response: %w", err)
		}
	}
	return nil
}

// CreateSession uploads a base configuration and returns the session ID.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (string, error) {
	var resp CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// DeleteSession removes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Session fetches one session's info.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var out SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Submit runs one intent synchronously: the call returns when the update has
// finished. Disambiguation questions must be answered concurrently (another
// goroutine polling Question/Answer) or the update times out; most callers
// want RunUpdate instead.
func (c *Client) Submit(ctx context.Context, id, intentText, target string) (UpdateInfo, error) {
	var out UpdateInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/updates",
		SubmitRequest{Intent: intentText, Target: target}, &out)
	return out, err
}

// SubmitAsync enqueues one intent and returns immediately with the update to
// poll.
func (c *Client) SubmitAsync(ctx context.Context, id, intentText, target string) (UpdateInfo, error) {
	var out UpdateInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/updates?async=1",
		SubmitRequest{Intent: intentText, Target: target, Async: true}, &out)
	return out, err
}

// Update polls one update's status.
func (c *Client) Update(ctx context.Context, id, updateID string) (UpdateInfo, error) {
	var out UpdateInfo
	err := c.do(ctx, http.MethodGet,
		"/v1/sessions/"+url.PathEscape(id)+"/updates/"+url.PathEscape(updateID), nil, &out)
	return out, err
}

// Question fetches the pending disambiguation question, or nil when the
// pipeline is not waiting on one.
func (c *Client) Question(ctx context.Context, id string) (*Question, error) {
	var out QuestionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/question", nil, &out); err != nil {
		return nil, err
	}
	if !out.Pending {
		return nil, nil
	}
	return out.Question, nil
}

// Answer delivers the operator's choice (1 or 2) for question seq.
func (c *Client) Answer(ctx context.Context, id string, seq, option int) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/answer",
		AnswerRequest{Seq: seq, Option: option}, nil)
}

// Config fetches the session's current configuration text.
func (c *Client) Config(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/sessions/"+url.PathEscape(id)+"/config", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("clarifyd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("clarifyd client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: string(data)}
	}
	return string(data), nil
}

// Stats fetches the session's pipeline counters.
func (c *Client) Stats(ctx context.Context, id string) (clarify.Stats, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/stats", nil, &out)
	return out.Stats, err
}

// Metrics fetches the daemon-wide metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// SLO fetches the daemon's rolling objective state (GET /debug/slo).
func (c *Client) SLO(ctx context.Context) (slo.Snapshot, error) {
	var out slo.Snapshot
	err := c.do(ctx, http.MethodGet, "/debug/slo", nil, &out)
	return out, err
}

// Ambiguity fetches the daemon's disambiguation-efficiency telemetry
// (GET /debug/ambiguity). Works against clarify-lb too, which serves the
// merged fleet view at the same path.
func (c *Client) Ambiguity(ctx context.Context) (AmbiguitySnapshot, error) {
	var out AmbiguitySnapshot
	err := c.do(ctx, http.MethodGet, "/debug/ambiguity", nil, &out)
	return out, err
}

// AnswerFunc chooses OPTION 1 or 2 for one differential question; it is the
// client-side analogue of the disambig oracle interfaces.
type AnswerFunc func(q Question) (option int, err error)

// RunUpdate drives one intent end to end: submit asynchronously, poll for
// disambiguation questions and answer them via fn, and return the terminal
// update. 429 backpressure rejections are retried after the server's
// Retry-After hint until ctx expires. On error the returned UpdateInfo
// carries the last known state — in particular the update ID once the
// submit landed, so a caller surviving a replica handoff can resume the
// same update with PollUpdate instead of resubmitting.
func (c *Client) RunUpdate(ctx context.Context, id, intentText, target string, fn AnswerFunc) (UpdateInfo, error) {
	var u UpdateInfo
	for {
		var err error
		u, err = c.SubmitAsync(ctx, id, intentText, target)
		if err == nil {
			break
		}
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
			return UpdateInfo{}, err
		}
		wait := time.Duration(apiErr.RetryAfterSeconds) * time.Second
		if wait <= 0 {
			wait = time.Second
		}
		if serr := sleepCtx(ctx, wait); serr != nil {
			return UpdateInfo{}, fmt.Errorf("clarifyd client: retry aborted: %w", serr)
		}
	}
	return c.PollUpdate(ctx, id, u.ID, fn)
}

// PollUpdate drives an already-submitted update to completion: poll its
// status, answer disambiguation questions via fn, and return the terminal
// state. It is the resume half of RunUpdate — safe to call again after a
// transport error or a replica restart, because answering is idempotent per
// sequence number (a stale answer is a tolerated conflict). On error the
// returned UpdateInfo carries the last state seen.
func (c *Client) PollUpdate(ctx context.Context, id, updateID string, fn AnswerFunc) (UpdateInfo, error) {
	last := UpdateInfo{ID: updateID, Status: StatusQueued}
	answered := -1
	for {
		cur, err := c.Update(ctx, id, updateID)
		if err != nil {
			return last, err
		}
		last = cur
		if cur.Terminal() {
			return cur, nil
		}
		q, err := c.Question(ctx, id)
		if err != nil {
			return last, err
		}
		if q != nil && q.Seq != answered {
			option, err := fn(*q)
			if err != nil {
				return last, err
			}
			if err := c.Answer(ctx, id, q.Seq, option); err != nil {
				// A conflict means the question moved on (answered
				// elsewhere or timed out); keep polling.
				if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != http.StatusConflict {
					return last, err
				}
			}
			answered = q.Seq
			continue
		}
		if err := sleepCtx(ctx, c.pollEvery()); err != nil {
			return last, err
		}
	}
}

// RestoreSession uploads an externalized session to the daemon (or to a
// balancer, which places it on an accepting replica and re-pins affinity).
// Draining daemons use it to hand parked sessions to a peer on SIGTERM.
func (c *Client) RestoreSession(ctx context.Context, snap *snapshot.Session) (RestoreSessionResponse, error) {
	var out RestoreSessionResponse
	err := c.do(ctx, http.MethodPut, "/v1/sessions/"+url.PathEscape(snap.ID)+"/restore", snap, &out)
	return out, err
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
