package intent

import (
	"testing"
)

// The paper's §2.1 prompt, verbatim.
const paperPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

func TestClassifyText(t *testing.T) {
	cases := []struct {
		text string
		want Kind
	}{
		{paperPrompt, KindRouteMap},
		{"Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 80", KindACL},
		{"deny udp packets from host 1.2.3.4", KindACL},
		{"permit routes originating from ASN 32", KindRouteMap},
		{"block traffic to port 22", KindACL},
		{"deny any route with local-preference 300", KindRouteMap},
	}
	for _, c := range cases {
		if got := ClassifyText(c.text); got != c.want {
			t.Errorf("ClassifyText(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestParsePaperPrompt(t *testing.T) {
	in, err := ParseRouteMapText(paperPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Permit {
		t.Error("should permit")
	}
	if len(in.Prefixes) != 1 {
		t.Fatalf("prefixes = %v", in.Prefixes)
	}
	pc := in.Prefixes[0]
	if pc.Prefix.String() != "100.0.0.0/16" || pc.LenLo != 16 || pc.LenHi != 23 {
		t.Errorf("prefix constraint = %+v", pc)
	}
	if in.Community != "300:3" || !in.CommunityExact {
		t.Errorf("community = %q exact=%v", in.Community, in.CommunityExact)
	}
	if in.SetMetric == nil || *in.SetMetric != 55 {
		t.Errorf("set metric = %v", in.SetMetric)
	}
	if in.Metric != nil {
		t.Error("MED 55 is a set action, not a match")
	}
}

func TestParseRouteMapVariants(t *testing.T) {
	in, err := ParseRouteMapText("Deny routes originating from ASN 32.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Permit || in.ASPathRegex != "_32$" {
		t.Errorf("%+v", in)
	}

	in, err = ParseRouteMapText("Permit routes received from neighbor AS 65000 and set the local-preference to 200.")
	if err != nil {
		t.Fatal(err)
	}
	if in.ASPathRegex != "^65000_" || in.SetLocalPref == nil || *in.SetLocalPref != 200 {
		t.Errorf("%+v", in)
	}

	in, err = ParseRouteMapText("Permit routes passing through AS 7018.")
	if err != nil {
		t.Fatal(err)
	}
	if in.ASPathRegex != "_7018_" {
		t.Errorf("%+v", in)
	}

	in, err = ParseRouteMapText("Permit locally originated routes and add the community 100:1.")
	if err != nil {
		t.Fatal(err)
	}
	if in.ASPathRegex != "^$" || len(in.SetCommunities) != 1 || in.SetCommunities[0] != "100:1" {
		t.Errorf("%+v", in)
	}

	in, err = ParseRouteMapText("Permit routes with a community matching /_65000:[0-9]+_/ and local-preference 300.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Community != "_65000:[0-9]+_" || in.CommunityExact {
		t.Errorf("community = %q", in.Community)
	}
	if in.LocalPref == nil || *in.LocalPref != 300 {
		t.Errorf("local-pref = %v", in.LocalPref)
	}

	in, err = ParseRouteMapText("Permit routes with the prefix 10.0.0.0/8 with mask length between 9 and 24, setting the next-hop to 192.0.2.1.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Prefixes[0].LenLo != 9 || in.Prefixes[0].LenHi != 24 || in.SetNextHop != "192.0.2.1" {
		t.Errorf("%+v", in)
	}

	in, err = ParseRouteMapText("Permit routes for 192.168.0.0/16 or longer prefixes.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Prefixes[0].LenHi != 32 {
		t.Errorf("or-longer should widen to 32: %+v", in.Prefixes[0])
	}

	in, err = ParseRouteMapText("Permit routes tagged with community 9:9, keeping existing communities, and add community 8:8.")
	if err != nil {
		t.Fatal(err)
	}
	if !in.SetAdditive {
		t.Errorf("%+v", in)
	}
}

func TestParseRouteMapErrors(t *testing.T) {
	for _, text := range []string{
		"Write a route-map stanza.", // no action
		"Permit routes.",            // no match condition
		"Deny routes with prefix 10.0.0.0/8; set metric to 5.",                           // set on deny
		"Permit routes with prefix 10.0.0.0/8 with mask length less than or equal to 4.", // bad bounds
	} {
		if _, err := ParseRouteMapText(text); err == nil {
			t.Errorf("ParseRouteMapText(%q) should fail", text)
		}
	}
}

func TestParseACLText(t *testing.T) {
	in, err := ParseACLText("Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to host 8.8.8.8 on port 443.")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Permit || in.Protocol != "tcp" || in.Src != "10.0.0.0/24" || in.Dst != "8.8.8.8/32" || in.DstPort != "eq 443" {
		t.Errorf("%+v", in)
	}

	in, err = ParseACLText("Deny udp packets from host 1.2.3.4.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Permit || in.Protocol != "udp" || in.Src != "1.2.3.4/32" || in.Dst != "any" {
		t.Errorf("%+v", in)
	}

	in, err = ParseACLText("Permit established tcp traffic to 172.16.0.0/12.")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Established || in.Dst != "172.16.0.0/12" || in.Src != "any" {
		t.Errorf("%+v", in)
	}

	in, err = ParseACLText("Block traffic to ports 5000 through 5100.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Permit || in.DstPort != "range 5000 5100" {
		t.Errorf("%+v", in)
	}
	if in.Protocol != "tcp" {
		t.Errorf("port constraints should force tcp, got %s", in.Protocol)
	}
}

func TestParseTextDispatch(t *testing.T) {
	in, err := ParseText(paperPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindRouteMap || in.RouteMap == nil || in.ACL != nil {
		t.Errorf("%+v", in)
	}
	in, err = ParseText("permit tcp traffic from any to any port 80")
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindACL || in.ACL == nil {
		t.Errorf("%+v", in)
	}
}

func TestPrefixConstraintString(t *testing.T) {
	in, _ := ParseRouteMapText(paperPrompt)
	if got := in.Prefixes[0].String(); got != "100.0.0.0/16:16-23" {
		t.Errorf("String = %q", got)
	}
}

func TestParseICMPIntents(t *testing.T) {
	in, err := ParseACLText("Permit ping traffic from 10.0.0.0/24 to host 8.8.8.8.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Protocol != "icmp" || in.ICMP != "echo" {
		t.Errorf("%+v", in)
	}
	in, err = ParseACLText("Block icmp unreachable packets from any host.")
	if err != nil {
		t.Fatal(err)
	}
	if in.Permit || in.ICMP != "unreachable" {
		t.Errorf("%+v", in)
	}
}
