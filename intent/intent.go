// Package intent models structured user intents for single-stanza updates
// and parses the restricted English the paper's prompts use.
//
// The structured form is the meeting point of the pipeline: the simulated
// LLM renders IOS configuration and JSON specifications from it, and tests
// construct it directly. The English parser recognizes the phrasing family
// of the paper's §2.1 prompt ("Write a route-map stanza that permits routes
// containing the prefix 100.0.0.0/16 with mask length less than or equal to
// 23 and tagged with the community 300:3. Their MED value should be set to
// 55.") plus the equivalent ACL phrasings.
package intent

import (
	"fmt"
	"net/netip"
	"regexp"
	"strconv"
	"strings"
)

// Kind discriminates the two synthesis pipelines of Figure 1.
type Kind int

// Intent kinds.
const (
	KindRouteMap Kind = iota
	KindACL
)

func (k Kind) String() string {
	if k == KindACL {
		return "acl"
	}
	return "route-map"
}

// PrefixConstraint matches routes under Prefix with prefix length in
// [LenLo, LenHi].
type PrefixConstraint struct {
	Prefix netip.Prefix
	LenLo  int
	LenHi  int
}

// String renders the constraint in the spec's "A.B.C.D/L:lo-hi" notation.
func (pc PrefixConstraint) String() string {
	return fmt.Sprintf("%s:%d-%d", pc.Prefix, pc.LenLo, pc.LenHi)
}

// RouteMapIntent describes one route-map stanza: match conditions plus
// transformations.
type RouteMapIntent struct {
	Permit bool

	Prefixes  []PrefixConstraint
	Community string // Cisco regex, or exact community literal
	// CommunityExact marks Community as a literal rather than a regex.
	CommunityExact bool
	ASPathRegex    string
	LocalPref      *uint32
	Metric         *uint32
	Tag            *uint32

	SetMetric      *uint32
	SetLocalPref   *uint32
	SetWeight      *uint16
	SetTag         *uint32
	SetCommunities []string
	SetAdditive    bool
	SetNextHop     string
}

// ACLIntent describes one access-list entry.
type ACLIntent struct {
	Permit      bool
	Protocol    string // ip, tcp, udp, icmp
	Src, Dst    string // "any", host address, or CIDR
	SrcPort     string // IOS port phrase: "eq 80", "range 1 10", ...
	DstPort     string
	Established bool
	// ICMP is an IOS icmp-type phrase ("echo", "unreachable 1") when the
	// intent names a specific ICMP message kind.
	ICMP string
}

// Intent is the tagged union handed to the synthesis pipeline.
type Intent struct {
	Kind     Kind
	RouteMap *RouteMapIntent
	ACL      *ACLIntent
}

// ---------- English parsing ----------

var (
	reCIDR       = regexp.MustCompile(`\b(\d+\.\d+\.\d+\.\d+/\d+)\b`)
	reHost       = regexp.MustCompile(`\b(\d+\.\d+\.\d+\.\d+)\b`)
	reCommunity  = regexp.MustCompile(`communit(?:y|ies)\s+(?:matching\s+)?(/[^/]+/|\d+:\d+)`)
	reASRegex    = regexp.MustCompile(`as-?path\s+(?:matching\s+)?/([^/]+)/`)
	reOriginAS   = regexp.MustCompile(`originat(?:e|es|ing)\s+(?:from\s+)?(?:asn?\s+)?(\d+)`)
	reThroughAS  = regexp.MustCompile(`(?:passing|pass|going)\s+through\s+(?:asn?\s+)?(\d+)`)
	reNeighborAS = regexp.MustCompile(`(?:from|received from)\s+neighbor\s+(?:asn?\s+)?(\d+)`)
	reEmptyPath  = regexp.MustCompile(`\b(?:locally originated|empty as-?path)\b`)
	reLocalPref  = regexp.MustCompile(`local[- ]preference\s+(?:value\s+)?(?:of\s+)?(\d+)`)
	reMedMatch   = regexp.MustCompile(`(?:med|metric)\s+(?:value\s+)?(?:of\s+)?(\d+)`)
	reTagMatch   = regexp.MustCompile(`\btag\s+(?:value\s+)?(?:of\s+)?(\d+)`)

	reSetMetric  = regexp.MustCompile(`(?:med|metric)(?:\s+value)?\s+(?:should\s+be\s+|must\s+be\s+)?set\s+to\s+(\d+)|set\s+(?:the\s+)?(?:med|metric)\s+to\s+(\d+)`)
	reSetLP      = regexp.MustCompile(`local[- ]preference(?:\s+value)?\s+(?:should\s+be\s+|must\s+be\s+)?set\s+to\s+(\d+)|set\s+(?:the\s+)?local[- ]preference\s+to\s+(\d+)`)
	reSetWeight  = regexp.MustCompile(`weight(?:\s+value)?\s+(?:should\s+be\s+|must\s+be\s+)?set\s+to\s+(\d+)|set\s+(?:the\s+)?weight\s+to\s+(\d+)`)
	reSetTag     = regexp.MustCompile(`tag(?:\s+value)?\s+(?:should\s+be\s+|must\s+be\s+)?set\s+to\s+(\d+)|set\s+(?:the\s+)?tag\s+to\s+(\d+)`)
	reSetComm    = regexp.MustCompile(`(?:add|attach|set)\s+(?:the\s+)?community\s+(\d+:\d+)`)
	reSetNextHop = regexp.MustCompile(`next[- ]hop\s+(?:should\s+be\s+|must\s+be\s+)?(?:set\s+)?(?:to\s+)?(\d+\.\d+\.\d+\.\d+)`)

	reMaskLE      = regexp.MustCompile(`mask length\s+(?:less than or equal to|at most|<=|up to)\s+(\d+)`)
	reMaskGE      = regexp.MustCompile(`mask length\s+(?:greater than or equal to|at least|>=)\s+(\d+)`)
	reMaskBetween = regexp.MustCompile(`mask length\s+between\s+(\d+)\s+and\s+(\d+)`)

	rePortEq    = regexp.MustCompile(`(?:on\s+|to\s+|destination\s+)?port\s+(\d+)`)
	rePortRange = regexp.MustCompile(`ports?\s+(\d+)\s*(?:-|to|through)\s*(\d+)`)
	reSrcPort   = regexp.MustCompile(`(?:from|source)\s+port\s+(\d+)`)
)

// ParseError reports unparseable or self-contradictory intent text.
type ParseError struct{ Msg string }

func (e *ParseError) Error() string { return "intent: " + e.Msg }

// ClassifyText decides which pipeline an English query belongs to, the
// classification step (1) of Figure 1.
func ClassifyText(text string) Kind {
	t := strings.ToLower(text)
	aclScore, rmScore := 0, 0
	for _, kw := range []string{"acl", "access-list", "access list", "traffic", "packet", "packets", " tcp ", " udp ", " icmp ", "port ", "established", "host "} {
		if strings.Contains(t, kw) {
			aclScore++
		}
	}
	for _, kw := range []string{"route-map", "route map", "routes", "route ", "prefix", "as-path", "as path", "community", "local-preference", "local preference", "med", "metric", "advertis"} {
		if strings.Contains(t, kw) {
			rmScore++
		}
	}
	if aclScore > rmScore {
		return KindACL
	}
	return KindRouteMap
}

// ParseText parses an English intent into its structured form, classifying
// it first.
func ParseText(text string) (*Intent, error) {
	switch ClassifyText(text) {
	case KindACL:
		a, err := ParseACLText(text)
		if err != nil {
			return nil, err
		}
		return &Intent{Kind: KindACL, ACL: a}, nil
	default:
		rm, err := ParseRouteMapText(text)
		if err != nil {
			return nil, err
		}
		return &Intent{Kind: KindRouteMap, RouteMap: rm}, nil
	}
}

func parseAction(t string) (bool, error) {
	permitIdx := earliest(t, "permit", "allow", "accept")
	denyIdx := earliest(t, "deny", "denies", "block", "reject", "drop", "filter out")
	switch {
	case permitIdx < 0 && denyIdx < 0:
		return false, &ParseError{Msg: "no permit/deny action found"}
	case denyIdx < 0:
		return true, nil
	case permitIdx < 0:
		return false, nil
	default:
		return permitIdx < denyIdx, nil
	}
}

func earliest(t string, words ...string) int {
	best := -1
	for _, w := range words {
		if i := strings.Index(t, w); i >= 0 && (best < 0 || i < best) {
			best = i
		}
	}
	return best
}

// ParseRouteMapText parses a route-map stanza intent.
func ParseRouteMapText(text string) (*RouteMapIntent, error) {
	t := strings.ToLower(text)
	permit, err := parseAction(t)
	if err != nil {
		return nil, err
	}
	out := &RouteMapIntent{Permit: permit}

	if m := reCIDR.FindStringSubmatch(t); m != nil {
		pfx, err := netip.ParsePrefix(m[1])
		if err != nil {
			return nil, &ParseError{Msg: "bad prefix " + m[1]}
		}
		pc := PrefixConstraint{Prefix: pfx.Masked(), LenLo: pfx.Bits(), LenHi: pfx.Bits()}
		if mm := reMaskBetween.FindStringSubmatch(t); mm != nil {
			pc.LenLo = int(atoi(mm[1]))
			pc.LenHi = int(atoi(mm[2]))
		} else {
			if mm := reMaskLE.FindStringSubmatch(t); mm != nil {
				pc.LenHi = int(atoi(mm[1]))
			}
			if mm := reMaskGE.FindStringSubmatch(t); mm != nil {
				pc.LenLo = int(atoi(mm[1]))
			}
			if strings.Contains(t, "or longer") || strings.Contains(t, "and longer") || strings.Contains(t, "more specific") {
				pc.LenHi = 32
			}
		}
		if pc.LenLo < pfx.Bits() || pc.LenLo > pc.LenHi || pc.LenHi > 32 {
			return nil, &ParseError{Msg: fmt.Sprintf("inconsistent mask bounds [%d,%d] for %s", pc.LenLo, pc.LenHi, pfx)}
		}
		out.Prefixes = append(out.Prefixes, pc)
	}

	if m := reCommunity.FindStringSubmatch(t); m != nil {
		// Exclude "set/add community" phrasing handled below.
		if !reSetComm.MatchString(t) || !strings.Contains(reSetComm.FindString(t), m[1]) {
			val := m[1]
			if strings.HasPrefix(val, "/") {
				out.Community = strings.Trim(val, "/")
			} else {
				out.Community = val
				out.CommunityExact = true
			}
		}
	}

	switch {
	case reASRegex.MatchString(t):
		out.ASPathRegex = reASRegex.FindStringSubmatch(t)[1]
	case reEmptyPath.MatchString(t):
		out.ASPathRegex = "^$"
	case reOriginAS.MatchString(t):
		out.ASPathRegex = "_" + reOriginAS.FindStringSubmatch(t)[1] + "$"
	case reNeighborAS.MatchString(t):
		out.ASPathRegex = "^" + reNeighborAS.FindStringSubmatch(t)[1] + "_"
	case reThroughAS.MatchString(t):
		out.ASPathRegex = "_" + reThroughAS.FindStringSubmatch(t)[1] + "_"
	}

	// Scalar matches: only when not part of a "set to" phrase.
	withoutSets := reSetMetric.ReplaceAllString(t, "")
	withoutSets = reSetLP.ReplaceAllString(withoutSets, "")
	withoutSets = reSetTag.ReplaceAllString(withoutSets, "")
	if m := reLocalPref.FindStringSubmatch(withoutSets); m != nil {
		out.LocalPref = u32ptr(atoi(m[1]))
	}
	if m := reMedMatch.FindStringSubmatch(withoutSets); m != nil {
		out.Metric = u32ptr(atoi(m[1]))
	}
	if m := reTagMatch.FindStringSubmatch(withoutSets); m != nil {
		out.Tag = u32ptr(atoi(m[1]))
	}

	if m := firstGroup(reSetMetric, t); m != "" {
		out.SetMetric = u32ptr(atoi(m))
	}
	if m := firstGroup(reSetLP, t); m != "" {
		out.SetLocalPref = u32ptr(atoi(m))
	}
	if m := firstGroup(reSetWeight, t); m != "" {
		v := uint16(atoi(m))
		out.SetWeight = &v
	}
	if m := firstGroup(reSetTag, t); m != "" {
		out.SetTag = u32ptr(atoi(m))
	}
	for _, m := range reSetComm.FindAllStringSubmatch(t, -1) {
		out.SetCommunities = append(out.SetCommunities, m[1])
	}
	if len(out.SetCommunities) > 0 && (strings.Contains(t, "additive") || strings.Contains(t, "keeping existing") || strings.Contains(t, "in addition")) {
		out.SetAdditive = true
	}
	if m := reSetNextHop.FindStringSubmatch(t); m != nil {
		out.SetNextHop = m[1]
	}

	if !out.hasMatch() {
		return nil, &ParseError{Msg: "no match condition recognized in route-map intent"}
	}
	if !permit && out.hasSet() {
		return nil, &ParseError{Msg: "deny stanzas cannot carry set actions"}
	}
	return out, nil
}

func (i *RouteMapIntent) hasMatch() bool {
	return len(i.Prefixes) > 0 || i.Community != "" || i.ASPathRegex != "" ||
		i.LocalPref != nil || i.Metric != nil || i.Tag != nil
}

func (i *RouteMapIntent) hasSet() bool {
	return i.SetMetric != nil || i.SetLocalPref != nil || i.SetWeight != nil ||
		i.SetTag != nil || len(i.SetCommunities) > 0 || i.SetNextHop != ""
}

// ParseACLText parses an ACL entry intent such as "permit tcp traffic from
// 10.0.0.0/24 to host 8.8.8.8 on port 443".
func ParseACLText(text string) (*ACLIntent, error) {
	t := strings.ToLower(text)
	permit, err := parseAction(t)
	if err != nil {
		return nil, err
	}
	out := &ACLIntent{Permit: permit, Protocol: "ip", Src: "any", Dst: "any"}
	for _, proto := range []string{"tcp", "udp", "icmp"} {
		if strings.Contains(t, proto) {
			out.Protocol = proto
			break
		}
	}
	// from X ... to Y
	fromIdx := strings.Index(t, "from ")
	toIdx := strings.Index(t, " to ")
	srcPart, dstPart := "", ""
	if fromIdx >= 0 {
		if toIdx > fromIdx {
			srcPart = t[fromIdx:toIdx]
			dstPart = t[toIdx:]
		} else {
			srcPart = t[fromIdx:]
		}
	} else if toIdx >= 0 {
		dstPart = t[toIdx:]
	}
	out.Src = pickAddr(srcPart)
	out.Dst = pickAddr(dstPart)

	if m := reSrcPort.FindStringSubmatch(t); m != nil {
		out.SrcPort = "eq " + m[1]
	}
	if m := rePortRange.FindStringSubmatch(t); m != nil {
		out.DstPort = "range " + m[1] + " " + m[2]
	} else if m := rePortEq.FindStringSubmatch(t); m != nil && out.SrcPort == "" {
		out.DstPort = "eq " + m[1]
	} else if m != nil && !strings.Contains(reSrcPort.FindString(t), m[1]) {
		out.DstPort = "eq " + m[1]
	}
	if strings.Contains(t, "established") {
		out.Established = true
	}
	switch {
	case strings.Contains(t, "ping") || strings.Contains(t, "echo request"):
		out.Protocol, out.ICMP = "icmp", "echo"
	case strings.Contains(t, "echo repl"):
		out.Protocol, out.ICMP = "icmp", "echo-reply"
	case strings.Contains(t, "unreachable"):
		out.Protocol, out.ICMP = "icmp", "unreachable"
	case strings.Contains(t, "time exceeded") || strings.Contains(t, "ttl exceeded"):
		out.Protocol, out.ICMP = "icmp", "time-exceeded"
	}
	if out.Protocol == "ip" && (out.SrcPort != "" || out.DstPort != "") {
		out.Protocol = "tcp"
	}
	return out, nil
}

func pickAddr(part string) string {
	if part == "" {
		return "any"
	}
	if m := reCIDR.FindStringSubmatch(part); m != nil {
		return m[1]
	}
	if m := reHost.FindStringSubmatch(part); m != nil {
		return m[1] + "/32"
	}
	return "any"
}

func firstGroup(re *regexp.Regexp, t string) string {
	m := re.FindStringSubmatch(t)
	if m == nil {
		return ""
	}
	for _, g := range m[1:] {
		if g != "" {
			return g
		}
	}
	return ""
}

func atoi(s string) uint32 {
	v, _ := strconv.ParseUint(s, 10, 32)
	return uint32(v)
}

func u32ptr(v uint32) *uint32 { return &v }
