package tenant

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket and
// shed-controller tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketBurstThenDeny(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(2, 4, clk.Now)
	for i := 0; i < 4; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d: denied within burst", i)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("take beyond burst succeeded")
	}
	// Empty bucket at 2 tokens/s: one token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Fatalf("retry hint = %v, want 500ms", retry)
	}
}

func TestBucketFractionalRefillAccumulates(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(2, 1, clk.Now)
	if ok, _ := b.Take(); !ok {
		t.Fatal("initial take denied")
	}
	// 200ms at 2/s = 0.4 tokens: still short.
	clk.Advance(200 * time.Millisecond)
	if ok, retry := b.Take(); ok {
		t.Fatal("take with 0.4 tokens succeeded")
	} else if retry != 300*time.Millisecond {
		t.Fatalf("retry hint = %v, want 300ms", retry)
	}
	// Another 300ms brings the fractional remainder to a full token.
	clk.Advance(300 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatal("take after accumulated refill denied")
	}
}

func TestBucketRefillClampsToBurst(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 3, clk.Now)
	for i := 0; i < 3; i++ {
		b.Take()
	}
	clk.Advance(time.Hour) // long idle must not bank more than burst
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d after idle denied", i)
		}
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("burst clamp violated: 4th take after idle succeeded")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0, newFakeClock().Now)
	for i := 0; i < 10_000; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatal("unlimited bucket denied")
		}
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	clk := newFakeClock()
	// Fractional rate rounds the default burst up, floor 1.
	b := NewBucket(0.5, 0, clk.Now)
	if ok, _ := b.Take(); !ok {
		t.Fatal("first take denied with default burst")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("second take exceeded default burst of 1")
	}
	if ok, retry := b.Take(); ok || retry != 2*time.Second {
		t.Fatalf("retry hint = %v, want 2s at 0.5/s", retry)
	}
}

func TestBucketRetryHintShrinksOverTime(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(1, 1, clk.Now)
	b.Take()
	_, r1 := b.Take()
	clk.Advance(600 * time.Millisecond)
	_, r2 := b.Take()
	if r2 >= r1 {
		t.Fatalf("retry hint did not shrink: %v then %v", r1, r2)
	}
	if r2 != 400*time.Millisecond {
		t.Fatalf("retry hint = %v, want 400ms", r2)
	}
}
