package tenant

import (
	"container/heap"
	"sync"
	"time"
)

// item is one queued job.
type item struct {
	run      func()
	drop     func(Reason)
	flow     *flow
	tag      float64 // SFQ start tag (bulk lane)
	seq      uint64  // arrival order, FIFO tiebreak
	enqueued time.Time
	index    int // heap bookkeeping
}

// flow is the per-tenant fair-queueing state.
type flow struct {
	name       string
	weight     float64
	lastFinish float64 // virtual finish tag of the flow's latest job
	backlog    int     // jobs currently queued in the bulk lane
}

// itemHeap orders bulk jobs by (tag, seq): minimum virtual start tag first,
// arrival order breaking ties.
type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// QueueStats is a point-in-time snapshot of queue counters.
type QueueStats struct {
	Depth        int   `json:"depth"`
	Pushed       int64 `json:"pushed"`
	Popped       int64 `json:"popped"`
	ShedOverload int64 `json:"shed_overload"`
	ShedFull     int64 `json:"shed_full"`
	Dropped      int64 `json:"dropped"`
	Overloaded   bool  `json:"overloaded"`
	ShedEntries  int64 `json:"shed_entries"`
}

// QueueConfig configures NewQueue.
type QueueConfig struct {
	// Capacity bounds the total queued jobs across both lanes; <= 0 means
	// unbounded.
	Capacity int
	// Shed tunes the overload detector.
	Shed ShedConfig
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

// Queue is a bounded two-lane dispatch queue. The interactive lane is
// strict-priority FIFO; the bulk lane is start-time weighted fair (SFQ).
// Workers block in Next; producers call Push, which either admits the job
// or returns a shed Reason. Safe for concurrent use.
type Queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int
	now   func() time.Time
	codel *shedController

	closed bool
	vtime  float64 // global virtual time: start tag of the latest bulk dispatch
	seq    uint64
	bulk   itemHeap
	prio   []*item
	flows  map[string]*flow

	pushed, popped         int64
	shedOverload, shedFull int64
	dropped                int64
}

// NewQueue builds a queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	q := &Queue{
		cap:   cfg.Capacity,
		now:   cfg.Now,
		codel: newShedController(cfg.Shed, cfg.Now),
		flows: map[string]*flow{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job for the named flow. It returns the empty Reason when
// admitted, or the gate that rejected it. drop may be nil; when non-nil it
// is invoked (outside the queue lock, by Purge) if the job is discarded
// before dispatch.
func (q *Queue) Push(flowName string, weight float64, lane Lane, run func(), drop func(Reason)) Reason {
	if weight <= 0 {
		weight = 1
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ReasonClosed
	}
	if q.cap > 0 && len(q.bulk)+len(q.prio) >= q.cap {
		q.shedFull++
		q.mu.Unlock()
		return ReasonQueueFull
	}
	if lane == Bulk && q.codel.overloaded() && q.beyondFairShare(flowName, weight) {
		q.shedOverload++
		q.mu.Unlock()
		return ReasonOverload
	}
	it := &item{run: run, drop: drop, seq: q.seq, enqueued: q.now()}
	q.seq++
	q.pushed++
	if lane == Interactive {
		q.prio = append(q.prio, it)
	} else {
		f := q.flows[flowName]
		if f == nil {
			f = &flow{name: flowName, weight: weight}
			q.flows[flowName] = f
		}
		f.weight = weight
		it.flow = f
		it.tag = f.lastFinish
		if q.vtime > it.tag {
			it.tag = q.vtime
		}
		f.lastFinish = it.tag + 1/f.weight
		f.backlog++
		heap.Push(&q.bulk, it)
	}
	q.mu.Unlock()
	q.cond.Signal()
	return ""
}

// beyondFairShare reports whether admitting one more bulk job would put the
// flow at or beyond its weighted share of the current bulk backlog. Called
// with q.mu held, only while the shed controller is in overload mode: the
// delay signal is global, but the rejection targets the flows dominating
// the backlog (FQ-CoDel's discipline), so a light flow still gets through.
func (q *Queue) beyondFairShare(flowName string, weight float64) bool {
	total := len(q.bulk)
	if total == 0 {
		return false
	}
	sumW := weight
	have := 0
	for _, f := range q.flows {
		if f.backlog > 0 {
			if f.name == flowName {
				have = f.backlog
				sumW += f.weight - weight // replace the provisional term
			} else {
				sumW += f.weight
			}
		}
	}
	// Share of the existing backlog, not counting the incoming job: a flow
	// already at its share is refused more (a lone flooding flow therefore
	// always is), while a flow with no backlog is always admitted — that
	// guarantees victim liveness in overload.
	share := float64(total) * weight / sumW
	if share < 1 {
		share = 1
	}
	return float64(have+1) > share
}

// Next blocks until a job is available and returns it. It prefers the
// interactive lane; otherwise it dispatches the minimum-tag bulk job. It
// returns false once the queue is closed and empty.
func (q *Queue) Next() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.prio) > 0 {
			it := q.prio[0]
			q.prio[0] = nil
			q.prio = q.prio[1:]
			q.popped++
			return it.run, true
		}
		if len(q.bulk) > 0 {
			it := heap.Pop(&q.bulk).(*item)
			q.popped++
			if it.tag > q.vtime {
				q.vtime = it.tag
			}
			q.finishItemLocked(it)
			q.codel.observe(q.now().Sub(it.enqueued))
			return it.run, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// finishItemLocked retires a bulk item's flow accounting and prunes idle
// flow state so the map stays bounded.
func (q *Queue) finishItemLocked(it *item) {
	f := it.flow
	if f == nil {
		return
	}
	if f.backlog > 0 {
		f.backlog--
	}
	if f.backlog == 0 && f.lastFinish <= q.vtime {
		delete(q.flows, f.name)
	}
	if len(q.bulk) == 0 {
		// Queue idle: forget all flow history. Tags restart at vtime, so
		// a returning flow competes fresh rather than being penalized for
		// (or credited with) a backlog that no longer exists.
		q.flows = map[string]*flow{}
	}
}

// TryNext is Next without blocking: ok=false means the queue is momentarily
// empty (or closed). Used by drain loops.
func (q *Queue) TryNext() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.prio) > 0 {
		it := q.prio[0]
		q.prio[0] = nil
		q.prio = q.prio[1:]
		q.popped++
		return it.run, true
	}
	if len(q.bulk) > 0 {
		it := heap.Pop(&q.bulk).(*item)
		q.popped++
		if it.tag > q.vtime {
			q.vtime = it.tag
		}
		q.finishItemLocked(it)
		q.codel.observe(q.now().Sub(it.enqueued))
		return it.run, true
	}
	return nil, false
}

// Close stops intake. Queued jobs remain dispatchable via Next/TryNext
// until drained or purged; blocked workers are woken.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Purge discards every queued job, invoking each job's drop callback (if
// any) with the given reason outside the queue lock. It returns the number
// of jobs discarded.
func (q *Queue) Purge(reason Reason) int {
	q.mu.Lock()
	items := make([]*item, 0, len(q.prio)+len(q.bulk))
	items = append(items, q.prio...)
	items = append(items, q.bulk...)
	q.prio = nil
	q.bulk = nil
	q.flows = map[string]*flow{}
	q.dropped += int64(len(items))
	q.mu.Unlock()
	q.cond.Broadcast()
	for _, it := range items {
		if it.drop != nil {
			it.drop(reason)
		}
	}
	return len(items)
}

// Depth returns the total queued jobs across both lanes.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.bulk) + len(q.prio)
}

// Capacity returns the configured bound (0 = unbounded).
func (q *Queue) Capacity() int { return q.cap }

// Overloaded reports whether the shed controller is in overload mode.
func (q *Queue) Overloaded() bool { return q.codel.overloaded() }

// FlowDepths returns the current bulk backlog per flow.
func (q *Queue) FlowDepths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.flows))
	for name, f := range q.flows {
		if f.backlog > 0 {
			out[name] = f.backlog
		}
	}
	return out
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Depth:        len(q.bulk) + len(q.prio),
		Pushed:       q.pushed,
		Popped:       q.popped,
		ShedOverload: q.shedOverload,
		ShedFull:     q.shedFull,
		Dropped:      q.dropped,
		Overloaded:   q.codel.overloaded(),
		ShedEntries:  q.codel.shedEntries(),
	}
}
