// Package tenant provides the admission-control primitives that make the
// clarify daemon safe to share: per-tenant token-bucket rate limits,
// concurrent-update quotas, start-time weighted fair queueing (SFQ) with a
// strict-priority interactive lane, and a CoDel-style queue-delay shed
// controller.
//
// The pieces compose but do not depend on each other:
//
//   - Bucket — token-bucket rate limiter with an injectable clock.
//   - Registry / Tenant — named tenants with a Profile (weight, rate, burst,
//     max concurrent updates); Admit consults the bucket and the in-flight
//     quota and returns a Verdict with a Retry-After hint.
//   - Queue — a bounded two-lane dispatch queue. The interactive lane is
//     strict-priority FIFO; the bulk lane is weighted fair (SFQ: each job is
//     tagged max(virtualTime, flowFinish), flows advance by 1/weight, the
//     minimum tag dispatches). A shed controller watching bulk dequeue
//     sojourn times flips the queue into overload mode when delay stays
//     above target for a full interval; while overloaded, arriving bulk jobs
//     from flows at or beyond their fair backlog share are rejected
//     (FQ-CoDel's discipline: the delay signal is global, the drop policy
//     targets the dominant flows).
//
// The server composes them: Registry gates the submit handler (429 +
// Retry-After on quota), Queue replaces the worker pool's FIFO channel.
package tenant

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HeaderTenant is the HTTP request header naming the tenant on whose behalf
// a session is created or an update submitted. Absent or empty means
// DefaultTenant.
const HeaderTenant = "X-Clarify-Tenant"

// HeaderShedReason is set on 429 responses to say which admission gate
// rejected the request (see the Reason constants).
const HeaderShedReason = "X-Clarify-Shed"

// DefaultTenant is the tenant name used when a request carries no
// X-Clarify-Tenant header.
const DefaultTenant = "default"

// Lane selects which dispatch lane a job enters.
type Lane int

const (
	// Bulk is the weighted-fair lane for ordinary synthesis submits.
	Bulk Lane = iota
	// Interactive is the strict-priority lane: jobs here dispatch before
	// any bulk job. Used for sessions engaged in the disambiguation Q&A so
	// an operator mid-dialogue is never queued behind a bulk flood.
	Interactive
)

func (l Lane) String() string {
	if l == Interactive {
		return "interactive"
	}
	return "bulk"
}

// Reason says which admission gate rejected (or dropped) a job.
type Reason string

const (
	// ReasonRate: the tenant's token bucket is empty.
	ReasonRate Reason = "rate"
	// ReasonConcurrency: the tenant is at its max concurrent updates.
	ReasonConcurrency Reason = "concurrency"
	// ReasonQueueFull: the dispatch queue is at capacity.
	ReasonQueueFull Reason = "queue_full"
	// ReasonOverload: the queue-delay shed controller is in overload mode
	// and the tenant's backlog is at or beyond its fair share.
	ReasonOverload Reason = "overload"
	// ReasonClosed: the queue is shut down (daemon draining).
	ReasonClosed Reason = "closed"
	// ReasonDrainDeadline: the job was purged from the queue because the
	// shutdown drain deadline expired before a worker picked it up.
	ReasonDrainDeadline Reason = "drain_deadline"
)

// Verdict is the outcome of an admission check.
type Verdict struct {
	OK         bool
	Reason     Reason
	RetryAfter time.Duration // hint for the Retry-After header when !OK
}

// Profile is a tenant's admission configuration.
type Profile struct {
	// Name identifies the tenant; empty in the default profile.
	Name string `json:"name,omitempty"`
	// Weight is the tenant's share of bulk dispatch (SFQ weight). <= 0
	// means 1.
	Weight float64 `json:"weight"`
	// Rate is the sustained submit rate in updates/second. <= 0 means
	// unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth. <= 0 with a positive Rate defaults
	// to max(1, ceil(Rate)).
	Burst int `json:"burst,omitempty"`
	// MaxConcurrent caps the tenant's in-flight updates. <= 0 means
	// unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
}

// withDefaults normalizes zero/negative fields.
func (p Profile) withDefaults() Profile {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.Rate > 0 && p.Burst <= 0 {
		p.Burst = int(p.Rate)
		if float64(p.Burst) < p.Rate {
			p.Burst++
		}
		if p.Burst < 1 {
			p.Burst = 1
		}
	}
	if p.Rate <= 0 {
		p.Rate, p.Burst = 0, 0
	}
	if p.MaxConcurrent < 0 {
		p.MaxConcurrent = 0
	}
	return p
}

// ParseProfile parses a default-profile spec "weight:rate:burst:concurrent".
// Trailing fields may be omitted; empty fields keep the zero default
// (weight 1, unlimited rate, unlimited concurrency).
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	if strings.TrimSpace(spec) == "" {
		return p.withDefaults(), nil
	}
	fields := strings.Split(spec, ":")
	if len(fields) > 4 {
		return p, fmt.Errorf("profile %q: want at most weight:rate:burst:concurrent", spec)
	}
	parse := func(i int, dst *float64, what string) error {
		if i >= len(fields) || strings.TrimSpace(fields[i]) == "" {
			return nil
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil || v < 0 {
			return fmt.Errorf("profile %q: bad %s %q", spec, what, fields[i])
		}
		*dst = v
		return nil
	}
	var burst, conc float64
	if err := parse(0, &p.Weight, "weight"); err != nil {
		return p, err
	}
	if err := parse(1, &p.Rate, "rate"); err != nil {
		return p, err
	}
	if err := parse(2, &burst, "burst"); err != nil {
		return p, err
	}
	if err := parse(3, &conc, "concurrent"); err != nil {
		return p, err
	}
	p.Burst, p.MaxConcurrent = int(burst), int(conc)
	return p.withDefaults(), nil
}

// ParseProfiles parses a comma-separated list of named tenant specs, each
// "name:weight:rate:burst:concurrent" with trailing fields optional, e.g.
// "teamA:4,mallory:1:2:4:2". Unset fields inherit from def.
func ParseProfiles(spec string, def Profile) ([]Profile, error) {
	def = def.withDefaults()
	var out []Profile
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ValidName(name) {
			return nil, fmt.Errorf("tenant spec %q: bad name %q", part, name)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenant %q configured twice", name)
		}
		seen[name] = true
		p := def
		if strings.TrimSpace(rest) != "" {
			fields := strings.Split(rest, ":")
			if len(fields) > 4 {
				return nil, fmt.Errorf("tenant %q: want at most name:weight:rate:burst:concurrent", name)
			}
			set := func(i int, dst *float64, what string) error {
				if i >= len(fields) || strings.TrimSpace(fields[i]) == "" {
					return nil
				}
				v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
				if err != nil || v < 0 {
					return fmt.Errorf("tenant %q: bad %s %q", name, what, fields[i])
				}
				*dst = v
				return nil
			}
			var burst = float64(p.Burst)
			var conc = float64(p.MaxConcurrent)
			if err := set(0, &p.Weight, "weight"); err != nil {
				return nil, err
			}
			if err := set(1, &p.Rate, "rate"); err != nil {
				return nil, err
			}
			if err := set(2, &burst, "burst"); err != nil {
				return nil, err
			}
			if err := set(3, &conc, "concurrent"); err != nil {
				return nil, err
			}
			// A rate overridden without an explicit burst re-derives the
			// burst from the new rate rather than inheriting the default's.
			if len(fields) >= 2 && strings.TrimSpace(fields[1]) != "" &&
				(len(fields) < 3 || strings.TrimSpace(fields[2]) == "") {
				burst = 0
			}
			p.Burst, p.MaxConcurrent = int(burst), int(conc)
			p = p.withDefaults()
		}
		p.Name = name
		out = append(out, p)
	}
	return out, nil
}

// ValidName reports whether name is acceptable as a tenant identifier:
// 1–64 characters from [A-Za-z0-9._-].
func ValidName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// OverflowTenant absorbs tenants beyond the registry's cardinality cap so
// metrics stay bounded under a tenant-name flood.
const OverflowTenant = "~overflow"

// DefaultMaxTenants bounds the number of distinct live tenants a registry
// tracks before folding new names into OverflowTenant.
const DefaultMaxTenants = 256

// Stats is a point-in-time snapshot of one tenant's admission counters.
type Stats struct {
	Profile   Profile          `json:"profile"`
	InFlight  int              `json:"in_flight"`
	Submits   int64            `json:"submits"`
	Completed int64            `json:"completed"`
	Failed    int64            `json:"failed"`
	Sheds     map[Reason]int64 `json:"sheds,omitempty"`
}

// ShedTotal sums sheds across reasons.
func (s Stats) ShedTotal() int64 {
	var n int64
	for _, v := range s.Sheds {
		n += v
	}
	return n
}

// Tenant is one admitted principal: its profile, token bucket, in-flight
// count, and counters. Safe for concurrent use.
type Tenant struct {
	name   string
	prof   Profile
	bucket *Bucket

	mu        sync.Mutex
	inflight  int
	submits   int64
	completed int64
	failed    int64
	sheds     map[Reason]int64
}

// Name returns the tenant's identifier.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's fair-queueing weight.
func (t *Tenant) Weight() float64 { return t.prof.Weight }

// Profile returns the tenant's admission configuration.
func (t *Tenant) Profile() Profile { return t.prof }

// Admit runs the rate and concurrency gates. On success the tenant's
// in-flight count is incremented; the caller must pair it with Release.
func (t *Tenant) Admit() Verdict {
	if ok, retry := t.bucket.Take(); !ok {
		t.RecordShed(ReasonRate)
		return Verdict{Reason: ReasonRate, RetryAfter: retry}
	}
	t.mu.Lock()
	if t.prof.MaxConcurrent > 0 && t.inflight >= t.prof.MaxConcurrent {
		t.mu.Unlock()
		t.RecordShed(ReasonConcurrency)
		return Verdict{Reason: ReasonConcurrency, RetryAfter: time.Second}
	}
	t.inflight++
	t.submits++
	t.mu.Unlock()
	return Verdict{OK: true}
}

// AdmitRestored takes an in-flight slot without consulting the rate or
// concurrency gates: a rehydrated pending update was admitted before its
// session was handed off, so it re-enters accounting unconditionally. Pair
// with Release like Admit.
func (t *Tenant) AdmitRestored() {
	t.mu.Lock()
	t.inflight++
	t.mu.Unlock()
}

// Release returns one in-flight slot. Safe to call once per successful
// Admit.
func (t *Tenant) Release() {
	t.mu.Lock()
	if t.inflight > 0 {
		t.inflight--
	}
	t.mu.Unlock()
}

// RecordShed counts a rejection against the tenant.
func (t *Tenant) RecordShed(r Reason) {
	t.mu.Lock()
	if t.sheds == nil {
		t.sheds = map[Reason]int64{}
	}
	t.sheds[r]++
	t.mu.Unlock()
}

// RecordOutcome counts a finished update.
func (t *Tenant) RecordOutcome(failed bool) {
	t.mu.Lock()
	if failed {
		t.failed++
	} else {
		t.completed++
	}
	t.mu.Unlock()
}

// InFlight returns the tenant's current in-flight update count.
func (t *Tenant) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inflight
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{
		Profile:   t.prof,
		InFlight:  t.inflight,
		Submits:   t.submits,
		Completed: t.completed,
		Failed:    t.failed,
	}
	if len(t.sheds) > 0 {
		st.Sheds = make(map[Reason]int64, len(t.sheds))
		for k, v := range t.sheds {
			st.Sheds[k] = v
		}
	}
	return st
}

// Registry resolves tenant names to Tenant state, creating unknown tenants
// with the default profile. Cardinality is bounded: past MaxTenants live
// tenants, unknown names share the OverflowTenant entry so a name flood
// cannot grow metrics without bound.
type Registry struct {
	mu       sync.Mutex
	def      Profile
	profiles map[string]Profile
	live     map[string]*Tenant
	maxLive  int
	now      func() time.Time
}

// RegistryConfig configures NewRegistry.
type RegistryConfig struct {
	// Default is the profile for tenants without an explicit entry.
	Default Profile
	// Profiles are explicitly configured tenants.
	Profiles []Profile
	// MaxTenants bounds live-tenant cardinality; 0 means
	// DefaultMaxTenants.
	MaxTenants int
	// Now is the clock; nil means time.Now. Injected by tests.
	Now func() time.Time
}

// NewRegistry builds a tenant registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	r := &Registry{
		def:      cfg.Default.withDefaults(),
		profiles: map[string]Profile{},
		live:     map[string]*Tenant{},
		maxLive:  cfg.MaxTenants,
		now:      cfg.Now,
	}
	for _, p := range cfg.Profiles {
		r.profiles[p.Name] = p.withDefaults()
	}
	return r
}

// Default returns the registry's default profile.
func (r *Registry) Default() Profile { return r.def }

// Get resolves a tenant by name, creating it on first use. Empty or
// invalid names resolve to the default tenant; names beyond the
// cardinality cap fold into the overflow tenant (which uses the default
// profile).
func (r *Registry) Get(name string) *Tenant {
	if name == "" || !ValidName(name) {
		name = DefaultTenant
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.live[name]; ok {
		return t
	}
	prof, configured := r.profiles[name]
	if !configured {
		prof = r.def
		if len(r.live) >= r.maxLive {
			name = OverflowTenant
			if t, ok := r.live[name]; ok {
				return t
			}
		}
	}
	prof.Name = name
	t := &Tenant{
		name:   name,
		prof:   prof,
		bucket: NewBucket(prof.Rate, prof.Burst, r.now),
	}
	r.live[name] = t
	return t
}

// Snapshot returns per-tenant stats for every live tenant.
func (r *Registry) Snapshot() map[string]Stats {
	r.mu.Lock()
	tenants := make([]*Tenant, 0, len(r.live))
	for _, t := range r.live {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	out := make(map[string]Stats, len(tenants))
	for _, t := range tenants {
		out[t.name] = t.Stats()
	}
	return out
}
