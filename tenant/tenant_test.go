package tenant

import (
	"fmt"
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		spec string
		want Profile
		err  bool
	}{
		{"", Profile{Weight: 1}, false},
		{"4", Profile{Weight: 4}, false},
		{"4:10", Profile{Weight: 4, Rate: 10, Burst: 10}, false},
		{"4:10:25:8", Profile{Weight: 4, Rate: 10, Burst: 25, MaxConcurrent: 8}, false},
		{"::5", Profile{Weight: 1}, false}, // burst without rate is inert
		{":::3", Profile{Weight: 1, MaxConcurrent: 3}, false},
		{"1:0.5", Profile{Weight: 1, Rate: 0.5, Burst: 1}, false},
		{"a", Profile{}, true},
		{"1:2:3:4:5", Profile{}, true},
		{"-1", Profile{}, true},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseProfile(%q): want error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseProfile(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseProfiles(t *testing.T) {
	def := Profile{Weight: 4, Rate: 20, Burst: 40, MaxConcurrent: 16}
	got, err := ParseProfiles("teamA, mallory:1:2:4:2, teamB::10", def)
	if err != nil {
		t.Fatal(err)
	}
	want := []Profile{
		{Name: "teamA", Weight: 4, Rate: 20, Burst: 40, MaxConcurrent: 16},
		{Name: "mallory", Weight: 1, Rate: 2, Burst: 4, MaxConcurrent: 2},
		// Overridden rate with no explicit burst re-derives burst from the
		// new rate; unset weight/concurrent inherit the default.
		{Name: "teamB", Weight: 4, Rate: 10, Burst: 10, MaxConcurrent: 16},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d profiles, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("profile %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	for _, bad := range []string{"bad name:1", "dup:1,dup:2", "x:1:2:3:4:5", "ok:-2"} {
		if _, err := ParseProfiles(bad, def); err == nil {
			t.Errorf("ParseProfiles(%q): want error", bad)
		}
	}
}

func TestRegistryAdmitQuotas(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryConfig{
		Default:  Profile{Weight: 1},
		Profiles: []Profile{{Name: "capped", Weight: 1, Rate: 100, MaxConcurrent: 2}},
		Now:      clk.Now,
	})
	c := r.Get("capped")
	if v := c.Admit(); !v.OK {
		t.Fatalf("admit 1: %+v", v)
	}
	if v := c.Admit(); !v.OK {
		t.Fatalf("admit 2: %+v", v)
	}
	v := c.Admit()
	if v.OK || v.Reason != ReasonConcurrency {
		t.Fatalf("admit 3 = %+v, want concurrency denial", v)
	}
	if v.RetryAfter <= 0 {
		t.Fatal("concurrency denial carries no Retry-After hint")
	}
	c.Release()
	if v := c.Admit(); !v.OK {
		t.Fatalf("admit after release: %+v", v)
	}
	st := c.Stats()
	if st.Submits != 3 || st.Sheds[ReasonConcurrency] != 1 || st.InFlight != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryRateDenialRetryAfter(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryConfig{
		Default: Profile{Weight: 1, Rate: 2, Burst: 1},
		Now:     clk.Now,
	})
	a := r.Get("a")
	if v := a.Admit(); !v.OK {
		t.Fatalf("first admit: %+v", v)
	}
	v := a.Admit()
	if v.OK || v.Reason != ReasonRate {
		t.Fatalf("second admit = %+v, want rate denial", v)
	}
	if v.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 500ms", v.RetryAfter)
	}
}

func TestRegistryDefaultAndInvalidNames(t *testing.T) {
	r := NewRegistry(RegistryConfig{Default: Profile{Weight: 2}})
	if got := r.Get("").Name(); got != DefaultTenant {
		t.Fatalf("empty name → %q", got)
	}
	if got := r.Get("bad name!").Name(); got != DefaultTenant {
		t.Fatalf("invalid name → %q", got)
	}
	if w := r.Get("anyone").Weight(); w != 2 {
		t.Fatalf("unknown tenant weight = %v, want default 2", w)
	}
}

func TestRegistryCardinalityCap(t *testing.T) {
	r := NewRegistry(RegistryConfig{Default: Profile{Weight: 1}, MaxTenants: 3})
	for i := 0; i < 3; i++ {
		r.Get(fmt.Sprintf("t%d", i))
	}
	over := r.Get("t99")
	if over.Name() != OverflowTenant {
		t.Fatalf("tenant beyond cap = %q, want %q", over.Name(), OverflowTenant)
	}
	if again := r.Get("t77"); again != over {
		t.Fatal("overflow tenants not folded into one entry")
	}
	// Existing tenants still resolve to their own entries.
	if r.Get("t0").Name() != "t0" {
		t.Fatal("existing tenant displaced by overflow")
	}
	if n := len(r.Snapshot()); n != 4 { // 3 + overflow
		t.Fatalf("snapshot size = %d, want 4", n)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "team-A_1.x", "X"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", string(long), "é"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}
