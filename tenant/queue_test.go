package tenant

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWFQFairShares is the fairness property test: with every flow fully
// backlogged, dispatch counts must track weights within tolerance. Run
// under -race in CI.
func TestWFQFairShares(t *testing.T) {
	q := NewQueue(QueueConfig{Shed: ShedConfig{Target: -1}})
	weights := map[string]float64{"a": 1, "b": 2, "c": 4}
	const perFlow = 700
	counts := map[string]*int64{}
	for name, w := range weights {
		counts[name] = new(int64)
		c := counts[name]
		for i := 0; i < perFlow; i++ {
			if r := q.Push(name, w, Bulk, func() { atomic.AddInt64(c, 1) }, nil); r != "" {
				t.Fatalf("push %s: %v", name, r)
			}
		}
	}
	// Dispatch the first 700 jobs; all flows stay backlogged throughout,
	// so shares must match weights.
	const window = 700
	for i := 0; i < window; i++ {
		run, ok := q.Next()
		if !ok {
			t.Fatal("queue closed early")
		}
		run()
	}
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	for name, w := range weights {
		got := float64(atomic.LoadInt64(counts[name]))
		want := window * w / totalW
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("flow %s: dispatched %.0f, want %.0f ±10%%", name, got, want)
		}
	}
}

// TestWFQFairSharesConcurrent runs producers and consumers concurrently
// (exercised under -race) and checks weighted shares over the saturated
// window.
func TestWFQFairSharesConcurrent(t *testing.T) {
	q := NewQueue(QueueConfig{Shed: ShedConfig{Target: -1}})
	weights := map[string]float64{"small": 1, "big": 3}
	const perFlow = 600
	var wg sync.WaitGroup
	for name, w := range weights {
		wg.Add(1)
		go func(name string, w float64) {
			defer wg.Done()
			for i := 0; i < perFlow; i++ {
				q.Push(name, w, Bulk, func() {}, nil)
			}
		}(name, w)
	}
	wg.Wait() // saturate before dispatch so shares are well-defined

	var workers sync.WaitGroup
	popped := int64(0)
	const window = 600
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for atomic.AddInt64(&popped, 1) <= window {
				run, ok := q.Next()
				if !ok {
					return
				}
				run()
			}
		}()
	}
	workers.Wait()
	q.Close()
	// After exactly 600 pops of the 1200 queued, the big flow must have
	// drained ~3x as much as the small one (verified via what remains).
	depths := q.FlowDepths()
	dispSmall := perFlow - depths["small"]
	dispBig := perFlow - depths["big"]
	if dispSmall+dispBig != window {
		t.Fatalf("dispatched %d+%d, want %d", dispSmall, dispBig, window)
	}
	ratio := float64(dispBig) / float64(dispSmall)
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("big/small dispatch ratio = %.2f, want ~3", ratio)
	}
}

func TestPriorityLanePreemptsBulk(t *testing.T) {
	q := NewQueue(QueueConfig{Shed: ShedConfig{Target: -1}})
	order := []string{}
	for i := 0; i < 5; i++ {
		q.Push("bulk", 1, Bulk, func() { order = append(order, "bulk") }, nil)
	}
	q.Push("vip", 1, Interactive, func() { order = append(order, "vip") }, nil)
	run, _ := q.Next()
	run()
	if order[0] != "vip" {
		t.Fatalf("first dispatch = %q, want vip (interactive preempts %d queued bulk)", order[0], 5)
	}
}

func TestQueueCapacityShedsFull(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, Shed: ShedConfig{Target: -1}})
	if r := q.Push("a", 1, Bulk, func() {}, nil); r != "" {
		t.Fatal(r)
	}
	if r := q.Push("a", 1, Bulk, func() {}, nil); r != "" {
		t.Fatal(r)
	}
	if r := q.Push("a", 1, Bulk, func() {}, nil); r != ReasonQueueFull {
		t.Fatalf("push over capacity = %q, want %q", r, ReasonQueueFull)
	}
	if st := q.Stats(); st.ShedFull != 1 {
		t.Fatalf("ShedFull = %d, want 1", st.ShedFull)
	}
}

func TestQueuePurgeInvokesDrop(t *testing.T) {
	q := NewQueue(QueueConfig{})
	var dropped []Reason
	for i := 0; i < 3; i++ {
		q.Push("a", 1, Bulk, func() { t.Error("purged job ran") }, func(r Reason) { dropped = append(dropped, r) })
	}
	q.Push("a", 1, Interactive, func() { t.Error("purged job ran") }, func(r Reason) { dropped = append(dropped, r) })
	q.Close()
	if n := q.Purge(ReasonDrainDeadline); n != 4 {
		t.Fatalf("purged %d, want 4", n)
	}
	if len(dropped) != 4 {
		t.Fatalf("drop callbacks = %d, want 4", len(dropped))
	}
	for _, r := range dropped {
		if r != ReasonDrainDeadline {
			t.Fatalf("drop reason = %q", r)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("Next returned a job after close+purge")
	}
}

func TestQueueClosedRejectsPush(t *testing.T) {
	q := NewQueue(QueueConfig{})
	q.Close()
	if r := q.Push("a", 1, Bulk, func() {}, nil); r != ReasonClosed {
		t.Fatalf("push after close = %q, want %q", r, ReasonClosed)
	}
}

// TestOverloadShedsFairShareOnly: in overload mode the dominant flow is
// shed while a light flow's pushes are still admitted.
func TestOverloadShedsFairShareOnly(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{
		Shed: ShedConfig{Target: 50 * time.Millisecond, Interval: 100 * time.Millisecond},
		Now:  clk.Now,
	})
	// Build a backlog dominated by the noisy flow.
	for i := 0; i < 20; i++ {
		q.Push("noisy", 1, Bulk, func() {}, nil)
	}
	q.Push("victim", 1, Bulk, func() {}, nil)
	// Trip the controller: two above-target sojourns an interval apart.
	clk.Advance(60 * time.Millisecond)
	if run, ok := q.Next(); ok {
		run()
	}
	clk.Advance(110 * time.Millisecond)
	if run, ok := q.Next(); ok {
		run()
	}
	if !q.Overloaded() {
		t.Fatal("queue not overloaded after sustained above-target sojourns")
	}
	// Noisy (≈19/19 of backlog, fair share ≈10) is shed; victim (1) is not.
	if r := q.Push("noisy", 1, Bulk, func() {}, nil); r != ReasonOverload {
		t.Fatalf("noisy push in overload = %q, want %q", r, ReasonOverload)
	}
	if r := q.Push("victim", 1, Bulk, func() {}, nil); r != "" {
		t.Fatalf("victim push in overload = %q, want admitted", r)
	}
	// Interactive lane is never overload-shed.
	if r := q.Push("noisy", 1, Interactive, func() {}, nil); r != "" {
		t.Fatalf("interactive push in overload = %q, want admitted", r)
	}
}

// TestOverloadClearsOnFastSojourn: one below-target dequeue exits shed mode.
func TestOverloadClearsOnFastSojourn(t *testing.T) {
	clk := newFakeClock()
	c := newShedController(ShedConfig{Target: 50 * time.Millisecond, Interval: 100 * time.Millisecond}, clk.Now)
	c.observe(60 * time.Millisecond) // arms
	clk.Advance(110 * time.Millisecond)
	c.observe(70 * time.Millisecond) // trips
	if !c.overloaded() {
		t.Fatal("controller did not trip")
	}
	c.observe(10 * time.Millisecond) // clears
	if c.overloaded() {
		t.Fatal("controller did not clear on below-target sojourn")
	}
	if c.shedEntries() != 1 {
		t.Fatalf("shedEntries = %d, want 1", c.shedEntries())
	}
}

// TestShedHysteresis: a single above-target sojourn does not trip shedding
// until it has persisted a full interval.
func TestShedHysteresis(t *testing.T) {
	clk := newFakeClock()
	c := newShedController(ShedConfig{Target: 50 * time.Millisecond, Interval: 100 * time.Millisecond}, clk.Now)
	c.observe(200 * time.Millisecond)
	if c.overloaded() {
		t.Fatal("tripped on first above-target sojourn")
	}
	clk.Advance(50 * time.Millisecond)
	c.observe(200 * time.Millisecond)
	if c.overloaded() {
		t.Fatal("tripped before a full interval above target")
	}
	clk.Advance(60 * time.Millisecond)
	c.observe(200 * time.Millisecond)
	if !c.overloaded() {
		t.Fatal("did not trip after a full interval above target")
	}
}

func TestVirtualTimeResetWhenIdle(t *testing.T) {
	q := NewQueue(QueueConfig{Shed: ShedConfig{Target: -1}})
	// A heavy burst from one flow advances its finish tag far ahead.
	for i := 0; i < 50; i++ {
		q.Push("burst", 1, Bulk, func() {}, nil)
	}
	for {
		run, ok := q.TryNext()
		if !ok {
			break
		}
		run()
	}
	if len(q.FlowDepths()) != 0 {
		t.Fatal("flow state survived idle queue")
	}
	// After idling, the burst flow competes fresh: interleaving with a new
	// equal-weight flow is ~1:1, not starved by its history.
	for i := 0; i < 10; i++ {
		q.Push("burst", 1, Bulk, func() {}, nil)
		q.Push("fresh", 1, Bulk, func() {}, nil)
	}
	depths := q.FlowDepths()
	if depths["burst"] != 10 || depths["fresh"] != 10 {
		t.Fatalf("depths = %v", depths)
	}
	// First two dispatches must cover both flows (no starvation).
	q.TryNext()
	q.TryNext()
	d := q.FlowDepths()
	if d["burst"] != 9 || d["fresh"] != 9 {
		t.Fatalf("after 2 pops depths = %v, want one from each", d)
	}
}
