package tenant

import (
	"testing"
)

// BenchmarkDispatchFIFO is the baseline the WFQ queue replaced: a plain
// buffered channel push+pop, the cheapest possible dispatch structure.
func BenchmarkDispatchFIFO(b *testing.B) {
	ch := make(chan func(), 256)
	job := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch <- job
		<-ch
	}
}

// BenchmarkDispatchWFQ measures the single-tenant Push+TryNext round trip
// through the SFQ heap — the per-job dispatch overhead every bulk submit
// pays after the FIFO was replaced. Shedding is disabled so the benchmark
// isolates tag arithmetic and heap traffic.
func BenchmarkDispatchWFQ(b *testing.B) {
	q := NewQueue(QueueConfig{Capacity: 256, Shed: ShedConfig{Target: -1}})
	job := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := q.Push(DefaultTenant, 1, Bulk, job, nil); r != "" {
			b.Fatalf("push shed: %s", r)
		}
		if _, ok := q.TryNext(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkDispatchWFQ8Tenants is the same round trip with eight live flows,
// so the heap actually has depth and the fair-share bookkeeping has entries
// to scan.
func BenchmarkDispatchWFQ8Tenants(b *testing.B) {
	q := NewQueue(QueueConfig{Capacity: 256, Shed: ShedConfig{Target: -1}})
	names := make([]string, 8)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	job := func() {}
	// Keep a standing backlog of one job per tenant so flows stay live.
	for _, n := range names {
		if r := q.Push(n, float64(1+len(n)%4), Bulk, job, nil); r != "" {
			b.Fatalf("seed push shed: %s", r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := q.Push(names[i%8], 1, Bulk, job, nil); r != "" {
			b.Fatalf("push shed: %s", r)
		}
		if _, ok := q.TryNext(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkDispatchWFQInteractive measures the strict-priority lane: a
// priority push+pop while a bulk backlog sits in the heap underneath it.
func BenchmarkDispatchWFQInteractive(b *testing.B) {
	q := NewQueue(QueueConfig{Capacity: 256, Shed: ShedConfig{Target: -1}})
	job := func() {}
	for i := 0; i < 64; i++ {
		if r := q.Push(DefaultTenant, 1, Bulk, job, nil); r != "" {
			b.Fatalf("seed push shed: %s", r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := q.Push(DefaultTenant, 1, Interactive, job, nil); r != "" {
			b.Fatalf("push shed: %s", r)
		}
		if _, ok := q.TryNext(); !ok {
			b.Fatal("pop failed")
		}
	}
}
