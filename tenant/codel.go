package tenant

import (
	"sync"
	"time"
)

// Default shed-controller tuning. The target bounds how long a bulk job may
// sit queued before the daemon starts refusing new bulk work; the interval
// is how long delay must stay above target before shedding engages (CoDel's
// hysteresis, so a transient burst does not trip it).
const (
	DefaultShedTarget   = 200 * time.Millisecond
	DefaultShedInterval = 2 * time.Second
)

// ShedConfig tunes the CoDel-style overload detector.
type ShedConfig struct {
	// Target is the acceptable bulk queue sojourn time. 0 means
	// DefaultShedTarget; negative disables overload shedding entirely.
	Target time.Duration
	// Interval is how long sojourn must continuously exceed Target before
	// the queue enters overload mode. 0 means DefaultShedInterval.
	Interval time.Duration
}

func (c ShedConfig) withDefaults() ShedConfig {
	if c.Target == 0 {
		c.Target = DefaultShedTarget
	}
	if c.Interval <= 0 {
		c.Interval = DefaultShedInterval
	}
	return c
}

// shedController implements CoDel's state machine on dequeue sojourn times:
// it watches how long each bulk job waited in queue, arms when sojourn
// first exceeds the target, trips into overload once it has stayed above
// target for a full interval, and clears the moment any job dequeues under
// target. The queue consults Overloaded at push time to decide whether to
// shed arriving bulk work.
type shedController struct {
	target   time.Duration
	interval time.Duration
	now      func() time.Time

	mu         sync.Mutex
	firstAbove time.Time // when the current above-target episode trips; zero = not armed
	shedding   bool
	entries    int64 // transitions into overload
}

func newShedController(cfg ShedConfig, now func() time.Time) *shedController {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	return &shedController{target: cfg.Target, interval: cfg.Interval, now: now}
}

// disabled reports whether overload shedding is turned off.
func (c *shedController) disabled() bool { return c == nil || c.target < 0 }

// observe feeds one bulk dequeue sojourn time into the state machine.
func (c *shedController) observe(sojourn time.Duration) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sojourn < c.target {
		c.firstAbove = time.Time{}
		c.shedding = false
		return
	}
	now := c.now()
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.interval)
		return
	}
	if !c.shedding && !now.Before(c.firstAbove) {
		c.shedding = true
		c.entries++
	}
}

// overloaded reports whether the queue is in overload (shed) mode.
func (c *shedController) overloaded() bool {
	if c.disabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shedding
}

// shedEntries counts transitions into overload mode.
func (c *shedController) shedEntries() int64 {
	if c.disabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries
}
