package tenant

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter. Tokens refill continuously at
// rate/second up to burst; each Take consumes one token. A rate <= 0 means
// unlimited (Take always succeeds). Safe for concurrent use; the clock is
// injectable for tests.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket builds a bucket that starts full. rate <= 0 disables limiting;
// burst <= 0 with a positive rate defaults to max(1, ceil(rate)).
func NewBucket(rate float64, burst int, now func() time.Time) *Bucket {
	if now == nil {
		now = time.Now
	}
	b := &Bucket{rate: rate, now: now}
	if rate > 0 {
		if burst <= 0 {
			burst = int(rate)
			if float64(burst) < rate {
				burst++
			}
			if burst < 1 {
				burst = 1
			}
		}
		b.burst = float64(burst)
		b.tokens = b.burst
		b.last = now()
	}
	return b
}

// Take consumes one token. When the bucket is empty it reports false and
// how long until one token will have refilled (a Retry-After hint, rounded
// up to the next millisecond and at least 1ms).
func (b *Bucket) Take() (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	wait := time.Duration(need / b.rate * float64(time.Second))
	if rem := wait % time.Millisecond; rem != 0 {
		wait += time.Millisecond - rem
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Tokens reports the current token count after refill, for tests and
// debugging.
func (b *Bucket) Tokens() float64 {
	if b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	return b.tokens
}
