package clarify_test

import (
	"context"
	"fmt"
	"log"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/symbolic"
)

const exampleConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

// ExampleSession_Submit shows the full Figure 1 pipeline on the paper's
// running example, with an oracle that always gives the new stanza
// precedence.
func ExampleSession_Submit() {
	cfg, err := ios.Parse(exampleConfig)
	if err != nil {
		log.Fatal(err)
	}
	session := &clarify.Session{
		Client: llm.NewSimLLM(),
		Config: cfg,
		RouteOracle: disambig.FuncRouteOracle(func(q disambig.RouteQuestion) (bool, error) {
			return true, nil // OPTION 1: the new stanza wins
		}),
	}
	res, err := session.Submit(context.Background(),
		"Write a route-map stanza that permits routes containing the prefix "+
			"100.0.0.0/16 with mask length less than or equal to 23 and tagged "+
			"with the community 300:3. Their MED value should be set to 55.",
		"ISP_OUT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted at position %d after %d question(s)\n",
		res.RouteInsert.Position, len(res.RouteInsert.Questions))
	fmt.Printf("renames: COM_LIST→%s PREFIX_100→%s\n",
		res.RouteInsert.Renames["COM_LIST"], res.RouteInsert.Renames["PREFIX_100"])
	// Output:
	// inserted at position 0 after 2 question(s)
	// renames: COM_LIST→D2 PREFIX_100→D3
}

// ExampleInsertRouteMapStanza runs the disambiguator directly on a verified
// snippet, with a simulated user whose intent is bottom placement.
func ExampleInsertRouteMapStanza() {
	orig := ios.MustParse(exampleConfig)
	snippet := ios.MustParse(`ip community-list expanded COM_LIST permit _300:3_
route-map NEW permit 10
 match community COM_LIST
 set metric 55
`)
	target := orig.Clone()
	target.AddCommunityList("D2", true, ios.CommunityListEntry{Permit: true, Values: []string{"_300:3_"}})
	target.RouteMaps["ISP_OUT"].InsertStanza(3, &ios.Stanza{
		Permit:  true,
		Matches: []ios.Match{ios.MatchCommunity{List: "D2"}},
		Sets:    []ios.SetClause{ios.SetMetric{Value: 55}},
	})
	user := disambig.NewSimUserRouteMap(target, "ISP_OUT")
	res, err := disambig.InsertRouteMapStanza(orig, "ISP_OUT", snippet, "NEW", user)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position %d, %d questions\n", res.Position, len(res.Questions))
	// Output:
	// position 3, 2 questions
}

// ExampleCompareRouteMaps finds a differential input between two placements
// of the same stanza — the paper's OPTION 1 / OPTION 2 machinery.
func ExampleCompareRouteMaps() {
	top := ios.MustParse(exampleConfig)
	top.AddCommunityList("D2", true, ios.CommunityListEntry{Permit: true, Values: []string{"_300:3_"}})
	bottom := top.Clone()
	stanza := &ios.Stanza{
		Permit:  true,
		Matches: []ios.Match{ios.MatchCommunity{List: "D2"}},
		Sets:    []ios.SetClause{ios.SetMetric{Value: 55}},
	}
	top.RouteMaps["ISP_OUT"].InsertStanza(0, stanza.Clone())
	bottom.RouteMaps["ISP_OUT"].InsertStanza(3, stanza.Clone())

	space, err := symbolic.NewRouteSpace(top, bottom)
	if err != nil {
		log.Fatal(err)
	}
	diffs, err := analysis.CompareRouteMaps(space,
		top, top.RouteMaps["ISP_OUT"], bottom, bottom.RouteMaps["ISP_OUT"], 1)
	if err != nil {
		log.Fatal(err)
	}
	d := diffs[0]
	fmt.Printf("top placement permits: %v; bottom placement permits: %v\n",
		d.VerdictA.Permit, d.VerdictB.Permit)
	// Output:
	// top placement permits: true; bottom placement permits: false
}

// ExampleSearchRouteMapMatching uses the declarative query API to find a
// denied route with specific attributes.
func ExampleSearchRouteMapMatching() {
	cfg := ios.MustParse(exampleConfig)
	r, ok, err := analysis.SearchRouteMapMatching(cfg, cfg.RouteMaps["ISP_OUT"],
		analysis.RouteQuery{ASPathRegex: "_32$", PrefixWithin: "50.0.0.0/8"}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found=%v network under 50.0.0.0/8: %v path ends in 32: %v\n",
		ok, r.Network.Addr().As4()[0] == 50, r.FlatASPath()[len(r.FlatASPath())-1] == 32)
	// Output:
	// found=true network under 50.0.0.0/8: true path ends in 32: true
}
