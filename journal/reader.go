package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// maxRecordBytes bounds one journal line on read. Records carry full config
// texts and span trees, so the bound is generous; a line over it is treated
// like a corrupt record (skipped and counted), not a fatal error.
const maxRecordBytes = 64 << 20

// ReadStats reports what a scan encountered, so callers can surface
// corruption (crash-truncated tails, partial writes) instead of silently
// dropping it.
type ReadStats struct {
	// Segments is the number of segment files visited.
	Segments int `json:"segments"`
	// Records is the number of well-formed records decoded.
	Records int `json:"records"`
	// Skipped is the number of undecodable lines — typically the truncated
	// tail record of a crashed writer's final segment.
	Skipped int `json:"skipped"`
	// SkippedAt lists "file:line" locations of skipped records (bounded).
	SkippedAt []string `json:"skippedAt,omitempty"`
	// SkippedUnknownVersion counts well-formed records stamped with a schema
	// newer than this build's SchemaVersion — a newer writer sharing the
	// directory across a rolling deploy. They are skipped, never fatal.
	SkippedUnknownVersion int `json:"skippedUnknownVersion,omitempty"`
}

const maxSkipLocations = 16

// Scan streams every record in the journal directory in write order (oldest
// segment first, line order within a segment), calling fn for each decoded
// record. Undecodable lines — a crash mid-append leaves exactly one, at the
// tail of the last segment written — are skipped and counted, never fatal.
// fn returning an error stops the scan and returns that error.
func Scan(dir string, fn func(rec *Record) error) (ReadStats, error) {
	var stats ReadStats
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	for _, seg := range segs {
		stats.Segments++
		if err := scanSegment(seg, fn, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func scanSegment(path string, fn func(rec *Record) error, stats *ReadStats) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxRecordBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := new(Record)
		if err := json.Unmarshal(line, rec); err != nil {
			stats.skip(path, lineNo)
			continue
		}
		if rec.Schema > SchemaVersion {
			// A newer writer's record: its fields may carry semantics this
			// build cannot honor, so skip it rather than misreplay it.
			stats.SkippedUnknownVersion++
			continue
		}
		stats.Records++
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// A line the scanner cannot finish (e.g. over the buffer bound, or an
		// I/O error at the tail) is corruption, not a reason to fail the scan.
		stats.skip(path, lineNo+1)
	}
	return nil
}

func (s *ReadStats) skip(path string, line int) {
	s.Skipped++
	if len(s.SkippedAt) < maxSkipLocations {
		s.SkippedAt = append(s.SkippedAt, fmt.Sprintf("%s:%d", path, line))
	}
}

// ReadAll decodes every record in the journal directory.
func ReadAll(dir string) ([]*Record, ReadStats, error) {
	var recs []*Record
	stats, err := Scan(dir, func(rec *Record) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, stats, err
}
