// Package journal is the Clarify flight recorder: a durable, append-only
// JSONL log with one self-contained record per pipeline update. Where the
// server's /debug/traces ring keeps only the most recent span trees in
// memory, the journal survives crashes, drains, and restarts — every record
// carries everything needed to re-execute the update offline (intent text,
// base configuration, the symbolic-space fingerprint, the SimLLM fault
// sequence, the oracle Q&A transcript, the final configuration and diff,
// and the full obs.Trace span tree), which is exactly the raw material the
// paper's evaluation methodology is built on: replay many intent→config
// runs and classify how they went.
//
// The writer rotates segments by size and age, prunes old segments beyond a
// retention bound, and offers three fsync policies (never / interval /
// always). A nil *Journal is valid and turns every method into a no-op, so
// instrumented code needs no "is journaling enabled?" branches.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/obs"
)

// SchemaVersion is stamped on every record so future readers can migrate
// old journals. Version history:
//
//	1 — initial format: one record per pipeline update.
//	2 — adds Kind, distinguishing update records from session lifecycle
//	    events ("session-snapshot", "session-restore").
//	3 — adds Ambiguity, the disambiguation information-gain ledger
//	    (candidate-space bits before/per-question/at-accept). Absent on
//	    v1/v2 records and on updates recorded with the ledger off; readers
//	    see a nil ledger, which aggregates as zero.
//
// Readers skip-and-count records stamped with a schema newer than their own
// (see ReadStats.SkippedUnknownVersion) so a journal shared across a rolling
// deploy never fails an older replica's scan.
const SchemaVersion = 3

// Record kinds. The zero value means a pipeline update (every schema-1
// record); lifecycle kinds journal session handoffs.
const (
	// KindUpdate marks one pipeline update (the default, left empty on the
	// wire for schema-1 compatibility).
	KindUpdate = ""
	// KindSessionSnapshot marks a session captured by a draining daemon.
	KindSessionSnapshot = "session-snapshot"
	// KindSessionRestore marks a session rehydrated from a snapshot or a
	// peer handoff.
	KindSessionRestore = "session-restore"
)

// Answer is one resolved disambiguation question: the rendered differential
// example shown to the operator and which option they chose. The transcript
// of answers is what lets a replay re-run the update without a user.
type Answer struct {
	// Kind is "route-map" or "acl".
	Kind string `json:"kind"`
	// Question is the full OPTION 1 / OPTION 2 rendering shown.
	Question string `json:"question"`
	// PreferNew is true when the operator chose OPTION 1 (the new rule
	// applies to the witness input).
	PreferNew bool `json:"preferNew"`
}

// Record is one journaled update. Records are self-contained: replaying one
// needs nothing but the record itself.
type Record struct {
	// Schema is the record format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Kind distinguishes update records (empty) from session lifecycle
	// events (KindSessionSnapshot, KindSessionRestore).
	Kind string `json:"kind,omitempty"`
	// Time is when the update finished.
	Time time.Time `json:"time"`
	// TraceID links the record to the in-memory /debug/traces ring while the
	// trace is retained there.
	TraceID string `json:"traceId,omitempty"`
	// Session labels the serving session (daemon session ID, or "cli").
	Session string `json:"session,omitempty"`
	// Intent and Target are the Submit inputs.
	Intent string `json:"intent"`
	Target string `json:"target"`
	// BaseConfig is the full configuration text the update ran against.
	BaseConfig string `json:"baseConfig"`
	// ConfigFingerprint is the symbolic.SpaceCache content fingerprint of the
	// base configuration (the identity of the BDD universe the verifier and
	// disambiguator worked in).
	ConfigFingerprint string `json:"configFingerprint,omitempty"`
	// MaxAttempts and SkipVerification reproduce the session knobs that
	// change pipeline behaviour.
	MaxAttempts      int  `json:"maxAttempts,omitempty"`
	SkipVerification bool `json:"skipVerification,omitempty"`
	// Reused marks an update served from the verified-snippet cache (no LLM
	// calls); such records cannot be replayed standalone.
	Reused bool `json:"reused,omitempty"`
	// SimFaults is the SimLLM fault sequence consumed by the update's
	// synthesis calls, in call order ("none" entries included), recovered
	// from the trace's sim-fault span attributes. Re-seeding a SimLLM with
	// this plan reproduces the same synthesis outputs.
	SimFaults []string `json:"simFaults,omitempty"`
	// Answers is the oracle Q&A transcript, in question order.
	Answers []Answer `json:"answers,omitempty"`
	// Ambiguity is the disambiguation information-gain ledger (schema ≥ 3):
	// candidate-space bits before the search, per answered question, and
	// left at accept. Nil on older records and on updates recorded with the
	// ledger off.
	Ambiguity *ambiguity.Ledger `json:"ambiguity,omitempty"`
	// Degraded reports that at least one completion was served by a fallback
	// backend.
	Degraded bool `json:"degraded,omitempty"`
	// Error is the pipeline error, empty on success.
	Error string `json:"error,omitempty"`
	// Attempts is the number of synthesis calls used (successful updates).
	Attempts int `json:"attempts,omitempty"`
	// FinalConfig is the updated configuration text (successful updates).
	FinalConfig string `json:"finalConfig,omitempty"`
	// ConfigDiff is a unified-style line diff BaseConfig → FinalConfig.
	ConfigDiff string `json:"configDiff,omitempty"`
	// DurationMs is the update's wall-clock time.
	DurationMs float64 `json:"durationMs"`
	// Trace is the full span tree recorded for the update.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// FsyncPolicy selects the journal's durability/throughput trade-off.
type FsyncPolicy string

// Fsync policies.
const (
	// FsyncNever leaves flushing to the OS page cache (fastest; a crash can
	// lose recently appended records).
	FsyncNever FsyncPolicy = "never"
	// FsyncInterval flushes and fsyncs on a background ticker (bounded loss
	// window, near-FsyncNever throughput). The default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncAlways flushes and fsyncs every append (no loss window, slowest).
	FsyncAlways FsyncPolicy = "always"
)

// Options configures a Journal. The zero value (plus Dir) is usable:
// 8 MiB segments, no age-based rotation, unlimited retention, interval
// fsync every second.
type Options struct {
	// Dir is the journal directory; it is created if missing.
	Dir string
	// MaxSegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). The bound is checked before each append, so a segment
	// may overshoot by one record.
	MaxSegmentBytes int64
	// MaxSegmentAge rotates the active segment once it has been open this
	// long (0 disables age-based rotation).
	MaxSegmentAge time.Duration
	// MaxSegments prunes the oldest closed segments beyond this total count
	// (0 keeps everything).
	MaxSegments int
	// Fsync selects the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval flushes (default 1s).
	FsyncInterval time.Duration
}

func (o Options) maxBytes() int64 {
	if o.MaxSegmentBytes <= 0 {
		return 8 << 20
	}
	return o.MaxSegmentBytes
}

func (o Options) fsync() FsyncPolicy {
	switch o.Fsync {
	case FsyncNever, FsyncAlways:
		return o.Fsync
	default:
		return FsyncInterval
	}
}

func (o Options) fsyncEvery() time.Duration {
	if o.FsyncInterval <= 0 {
		return time.Second
	}
	return o.FsyncInterval
}

// Stats is a snapshot of journal activity, surfaced in the daemon's
// /metrics body.
type Stats struct {
	// Appended counts records written since Open.
	Appended int64 `json:"appended"`
	// Bytes counts journal bytes written since Open.
	Bytes int64 `json:"bytes"`
	// Rotations counts segment rotations since Open.
	Rotations int64 `json:"rotations"`
	// Pruned counts old segments removed by the retention bound.
	Pruned int64 `json:"pruned"`
	// Errors counts appends or rotations that failed; LastError is the most
	// recent failure's message.
	Errors    int64  `json:"errors"`
	LastError string `json:"lastError,omitempty"`
}

// Journal is the durable update log. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Journal struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64
	openedAt time.Time
	seq      int
	closed   bool
	stats    Stats

	stopCh chan struct{}
	doneCh chan struct{}
}

const segmentPattern = "journal-%06d.jsonl"

// Open creates (or reopens) a journal in opts.Dir. A fresh segment is always
// started: an earlier crash's possibly-truncated tail record stays isolated
// in its old segment, where readers skip and count it.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	segs, err := Segments(opts.Dir)
	if err != nil {
		return nil, err
	}
	seq := 0
	for _, s := range segs {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(s), segmentPattern, &n); err == nil && n > seq {
			seq = n
		}
	}
	j := &Journal{opts: opts, seq: seq}
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	if opts.fsync() == FsyncInterval {
		j.stopCh = make(chan struct{})
		j.doneCh = make(chan struct{})
		go j.flusher(opts.fsyncEvery())
	}
	return j, nil
}

// openSegmentLocked starts the next segment; callers hold j.mu (or own j
// exclusively, as in Open).
func (j *Journal) openSegmentLocked() error {
	j.seq++
	path := filepath.Join(j.opts.Dir, fmt.Sprintf(segmentPattern, j.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64<<10)
	j.size = 0
	j.openedAt = time.Now()
	return nil
}

// flusher is the FsyncInterval background loop.
func (j *Journal) flusher(every time.Duration) {
	defer close(j.doneCh)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				j.syncLocked()
			}
			j.mu.Unlock()
		case <-j.stopCh:
			return
		}
	}
}

// syncLocked flushes the buffer and fsyncs the segment; callers hold j.mu.
func (j *Journal) syncLocked() {
	if j.w == nil {
		return
	}
	if err := j.w.Flush(); err != nil {
		j.recordErrLocked(err)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.recordErrLocked(err)
	}
}

func (j *Journal) recordErrLocked(err error) {
	j.stats.Errors++
	j.stats.LastError = err.Error()
}

// Append writes one record as a JSON line, rotating first when the active
// segment is over its size or age bound. Safe on a nil journal.
func (j *Journal) Append(rec *Record) error {
	if j == nil || rec == nil {
		return nil
	}
	rec.Schema = SchemaVersion
	data, err := json.Marshal(rec)
	if err != nil {
		j.mu.Lock()
		j.recordErrLocked(err)
		j.mu.Unlock()
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	data = append(data, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: append after Close")
	}
	if j.size > 0 && (j.size+int64(len(data)) > j.opts.maxBytes() ||
		(j.opts.MaxSegmentAge > 0 && time.Since(j.openedAt) > j.opts.MaxSegmentAge)) {
		if err := j.rotateLocked(); err != nil {
			j.recordErrLocked(err)
			return err
		}
	}
	if _, err := j.w.Write(data); err != nil {
		j.recordErrLocked(err)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(data))
	j.stats.Appended++
	j.stats.Bytes += int64(len(data))
	if j.opts.fsync() == FsyncAlways {
		j.syncLocked()
	}
	return nil
}

// rotateLocked closes the active segment, starts the next one, and prunes
// old segments past the retention bound; callers hold j.mu.
func (j *Journal) rotateLocked() error {
	j.syncLocked()
	if err := j.f.Close(); err != nil {
		j.recordErrLocked(err)
	}
	if err := j.openSegmentLocked(); err != nil {
		return err
	}
	j.stats.Rotations++
	j.pruneLocked()
	return nil
}

// pruneLocked removes the oldest segments beyond MaxSegments; callers hold
// j.mu. Prune errors are counted, not fatal.
func (j *Journal) pruneLocked() {
	if j.opts.MaxSegments <= 0 {
		return
	}
	segs, err := Segments(j.opts.Dir)
	if err != nil {
		j.recordErrLocked(err)
		return
	}
	for len(segs) > j.opts.MaxSegments {
		if err := os.Remove(segs[0]); err != nil {
			j.recordErrLocked(err)
			return
		}
		j.stats.Pruned++
		segs = segs[1:]
	}
}

// Sync forces a flush+fsync of the active segment. Safe on a nil journal.
func (j *Journal) Sync() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.syncLocked()
	}
}

// Stats snapshots the journal counters. Safe on a nil journal.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close flushes, fsyncs, and closes the active segment and stops the
// background flusher. Idempotent and safe on a nil journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.syncLocked()
	err := j.f.Close()
	j.mu.Unlock()
	if j.stopCh != nil {
		close(j.stopCh)
		<-j.doneCh
	}
	return err
}

// Segments lists the journal's segment files in write order (oldest first).
func Segments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("journal: list segments: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}
