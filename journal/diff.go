package journal

import "strings"

// Diff renders a minimal unified-style line diff from a to b: unchanged
// lines prefixed "  ", removals "- ", additions "+ ". It exists so a journal
// record shows *what the update changed* at a glance without the reader
// re-deriving it from two full config texts. The alignment is a classic
// longest-common-subsequence over lines — config texts are small (hundreds
// of lines), so the quadratic table is fine.
func Diff(a, b string) string {
	if a == b {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	// lcs[i][j] = length of the LCS of al[i:] and bl[j:].
	lcs := make([][]int, len(al)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(bl)+1)
	}
	for i := len(al) - 1; i >= 0; i-- {
		for j := len(bl) - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out strings.Builder
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		switch {
		case al[i] == bl[j]:
			out.WriteString("  " + al[i] + "\n")
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			out.WriteString("- " + al[i] + "\n")
			i++
		default:
			out.WriteString("+ " + bl[j] + "\n")
			j++
		}
	}
	for ; i < len(al); i++ {
		out.WriteString("- " + al[i] + "\n")
	}
	for ; j < len(bl); j++ {
		out.WriteString("+ " + bl[j] + "\n")
	}
	return out.String()
}

func splitLines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
