package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/clarifynet/clarify/ambiguity"
)

// TestScanAcceptsV2RecordsWithNilLedger: schema-2 journals predate the
// ambiguity ledger. Their records must scan cleanly with a nil Ambiguity
// field — readers treat "no ledger" as "not metered", never as corruption.
func TestScanAcceptsV2RecordsWithNilLedger(t *testing.T) {
	dir := t.TempDir()
	lines := `{"schema":2,"intent":"pre-ledger","target":"RM","baseConfig":"!","durationMs":1}
{"schema":3,"intent":"metered","target":"RM","baseConfig":"!","durationMs":1,"ambiguity":{"kind":"route-map","strategy":"binary","initialBits":8,"residualBits":0,"questions":[{"beforeBits":8,"afterBits":4,"gainBits":4,"preferNew":true}]}}
`
	seg := filepath.Join(dir, fmt.Sprintf(segmentPattern, 1))
	if err := os.WriteFile(seg, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var recs []*Record
	stats, err := Scan(dir, func(rec *Record) error {
		cp := *rec
		recs = append(recs, &cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if stats.Records != 2 || stats.Skipped != 0 || stats.SkippedUnknownVersion != 0 {
		t.Fatalf("stats = %+v, want both records accepted", stats)
	}
	if recs[0].Ambiguity != nil {
		t.Errorf("v2 record decoded a ledger from nowhere: %+v", recs[0].Ambiguity)
	}
	led := recs[1].Ambiguity
	if led == nil || led.Strategy != "binary" || led.InitialBits != 8 || len(led.Questions) != 1 {
		t.Fatalf("v3 ledger = %+v, want binary/8 bits/1 question", led)
	}
	if q := led.Questions[0]; q.GainBits != 4 || !q.PreferNew {
		t.Errorf("question = %+v, want gain 4, preferNew", q)
	}
}

// TestLedgerRoundTrip writes a v3 record through the journal and reads it
// back: the ledger must survive verbatim, and ledger-less records stay nil.
func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	led := &ambiguity.Ledger{
		Kind: "acl", Strategy: "binary", InitialBits: 6.5, ResidualBits: 1.5,
		Questions: []ambiguity.Question{{BeforeBits: 6.5, AfterBits: 1.5, GainBits: 5, PreferNew: false}},
	}
	j.Append(&Record{Session: "s", Intent: "metered", Target: "A", BaseConfig: "!", Ambiguity: led})
	j.Append(&Record{Session: "s", Intent: "unmetered", Target: "A", BaseConfig: "!"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, stats, err := ReadAll(dir)
	if err != nil || stats.Records != 2 {
		t.Fatalf("ReadAll = %d recs %+v, %v", len(recs), stats, err)
	}
	if recs[0].Schema != SchemaVersion {
		t.Errorf("written schema = %d, want %d", recs[0].Schema, SchemaVersion)
	}
	got := recs[0].Ambiguity
	if got == nil || got.Kind != "acl" || got.InitialBits != 6.5 || got.ResidualBits != 1.5 {
		t.Fatalf("ledger after round trip = %+v, want the original", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].GainBits != 5 || got.Questions[0].PreferNew {
		t.Fatalf("questions after round trip = %+v", got.Questions)
	}
	if recs[1].Ambiguity != nil {
		t.Errorf("unmetered record grew a ledger: %+v", recs[1].Ambiguity)
	}
}
