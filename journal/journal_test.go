package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecord(i int) *Record {
	return &Record{
		Intent:      fmt.Sprintf("intent %d", i),
		Target:      "RM0",
		BaseConfig:  "route-map RM0 permit 10\n",
		FinalConfig: "route-map RM0 permit 5\nroute-map RM0 permit 10\n",
		DurationMs:  float64(i),
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || stats.Records != 5 || stats.Skipped != 0 {
		t.Fatalf("ReadAll = %d records, stats %+v; want 5 clean records", len(recs), stats)
	}
	for i, r := range recs {
		if r.Schema != SchemaVersion {
			t.Errorf("record %d schema = %d, want %d", i, r.Schema, SchemaVersion)
		}
		if want := fmt.Sprintf("intent %d", i); r.Intent != want {
			t.Errorf("record %d intent = %q, want %q (order must be oldest-first)", i, r.Intent, want)
		}
	}
}

// TestRotationConcurrentWriters hammers a small-segment journal from many
// goroutines (run under -race) and checks that rotation loses nothing: every
// append lands in exactly one segment and reads back intact.
func TestRotationConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, MaxSegmentBytes: 2 << 10, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := testRecord(i)
				rec.Session = fmt.Sprintf("writer-%d", w)
				if err := j.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if stats.Appended != writers*perWriter {
		t.Fatalf("Stats.Appended = %d, want %d", stats.Appended, writers*perWriter)
	}
	if stats.Rotations == 0 {
		t.Fatal("no rotations with 2KiB segments; rotation path untested")
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("Segments = %v, want several after rotation", segs)
	}
	recs, rstats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter || rstats.Skipped != 0 {
		t.Fatalf("read back %d records (%d skipped), want %d clean",
			len(recs), rstats.Skipped, writers*perWriter)
	}
	perSession := map[string]int{}
	for _, r := range recs {
		perSession[r.Session]++
	}
	for w := 0; w < writers; w++ {
		if got := perSession[fmt.Sprintf("writer-%d", w)]; got != perWriter {
			t.Errorf("writer-%d has %d records, want %d", w, got, perWriter)
		}
	}
}

// TestCrashTruncatedTail simulates a crash mid-append: the tail record of a
// segment is cut short. Readers must skip and count it — never fail — and a
// reopened journal must start a fresh segment so the damage stays contained.
func TestCrashTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the final record's line in half.
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("Segments = %v, %v; want one segment", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	truncated := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(segs[0], []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the new segment must not touch the damaged one.
	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(testRecord(99)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ = Segments(dir)
	if len(segs) != 2 {
		t.Fatalf("Segments after reopen = %v, want the damaged one plus a fresh one", segs)
	}

	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || stats.Skipped != 1 {
		t.Fatalf("read %d records, %d skipped; want 3 intact + 1 skipped truncated tail", len(recs), stats.Skipped)
	}
	if len(stats.SkippedAt) != 1 || !strings.Contains(stats.SkippedAt[0], filepath.Base(segs[0])) {
		t.Errorf("SkippedAt = %v, want the damaged segment's location", stats.SkippedAt)
	}
	if recs[2].Intent != "intent 99" {
		t.Errorf("last record = %q, want the post-reopen append", recs[2].Intent)
	}
}

// TestCloseStopsFlusher checks the interval-fsync goroutine exits on Close
// (no goroutine leak).
func TestCloseStopsFlusher(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		j, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close blocks on the flusher's done channel, so no settling loop is
	// needed; allow a little scheduler slack anyway.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before {
		t.Fatalf("goroutines grew %d -> %d after Close; flusher leaked", before, after)
	}
}

func TestMaxSegmentsPrunes(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, MaxSegmentBytes: 256, MaxSegments: 3, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	if len(segs) > 3 {
		t.Fatalf("%d segments on disk, want <= 3 (MaxSegments)", len(segs))
	}
	if stats.Pruned == 0 {
		t.Error("Stats.Pruned = 0, want prunes after 40 records in 256-byte segments")
	}
}

func TestNilJournalNoOps(t *testing.T) {
	var j *Journal
	if err := j.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	j.Sync()
	if s := j.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	j, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(0)); err == nil {
		t.Fatal("Append after Close must error")
	}
	if err := j.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
}

func TestDiff(t *testing.T) {
	a := "line1\nline2\nline3\n"
	b := "line1\nline2b\nline3\n"
	d := Diff(a, b)
	for _, want := range []string{"  line1", "- line2", "+ line2b", "  line3"} {
		if !strings.Contains(d, want) {
			t.Errorf("Diff missing %q:\n%s", want, d)
		}
	}
	if Diff(a, a) != "" {
		t.Error("Diff of identical texts must be empty")
	}
}
