package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// A segment mixing current-schema records with records from a newer writer
// must yield the current ones and count the rest, not fail the segment.
func TestScanSkipsNewerSchemaRecords(t *testing.T) {
	dir := t.TempDir()
	lines := fmt.Sprintf(`{"schema":%d,"intent":"old","target":"RM","baseConfig":"!","durationMs":1}
{"schema":%d,"kind":"warp-drive","intent":"future","target":"RM","baseConfig":"!","durationMs":1}
{"schema":%d,"intent":"current","target":"RM","baseConfig":"!","durationMs":1}
`, SchemaVersion, SchemaVersion+1, SchemaVersion)
	seg := filepath.Join(dir, fmt.Sprintf(segmentPattern, 1))
	if err := os.WriteFile(seg, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var intents []string
	stats, err := Scan(dir, func(rec *Record) error {
		intents = append(intents, rec.Intent)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if stats.Records != 2 || stats.SkippedUnknownVersion != 1 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v, want 2 records, 1 skipped-unknown-version", stats)
	}
	if len(intents) != 2 || intents[0] != "old" || intents[1] != "current" {
		t.Fatalf("decoded intents = %v", intents)
	}
}

// Kind survives a write/read round trip so lifecycle events are replayable.
func TestKindRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	j.Append(&Record{Kind: KindSessionRestore, Session: "s1", BaseConfig: "!"})
	j.Append(&Record{Session: "s1", Intent: "i", Target: "t", BaseConfig: "!"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, stats, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if stats.Records != 2 || len(recs) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if recs[0].Kind != KindSessionRestore || recs[1].Kind != KindUpdate {
		t.Fatalf("kinds = %q, %q", recs[0].Kind, recs[1].Kind)
	}
}
