// Package route models BGP route advertisements: the inputs over which route
// maps are evaluated, compared and disambiguated.
//
// The model mirrors the attribute set printed by the paper's differential
// examples (§2.2): network prefix, AS path (with confederation segments),
// communities, local preference, metric (MED), next hop, tag and weight.
package route

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Community is a standard BGP community attribute, rendered as "hi:lo".
type Community struct {
	Hi, Lo uint16
}

// String renders the community in the conventional colon form.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.Hi, c.Lo) }

// ParseCommunity parses "hi:lo" notation.
func ParseCommunity(s string) (Community, error) {
	hi, lo, ok := strings.Cut(s, ":")
	if !ok {
		return Community{}, fmt.Errorf("route: community %q is not in hi:lo form", s)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return Community{}, fmt.Errorf("route: community %q: %v", s, err)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return Community{}, fmt.Errorf("route: community %q: %v", s, err)
	}
	return Community{Hi: uint16(h), Lo: uint16(l)}, nil
}

// MustParseCommunity is ParseCommunity for statically known strings.
func MustParseCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ASPathSegment is one segment of an AS path. Confederation segments are
// carried but treated as ordinary sequences by path matching, matching Cisco
// display semantics.
type ASPathSegment struct {
	ASNs          []uint32 `json:"asns"`
	Confederation bool     `json:"confederation"`
}

// Route is a BGP route advertisement.
type Route struct {
	Network     netip.Prefix
	ASPath      []ASPathSegment
	Communities []Community
	LocalPref   uint32
	MED         uint32
	NextHop     netip.Addr
	Tag         uint32
	Weight      uint16
}

// New returns a route for the given CIDR prefix with Cisco-default attribute
// values (local preference 100, everything else zero).
func New(cidr string) Route {
	p := netip.MustParsePrefix(cidr)
	return Route{
		Network:   p.Masked(),
		LocalPref: 100,
		NextHop:   netip.MustParseAddr("0.0.0.1"),
	}
}

// WithASPath returns a copy of r whose AS path is the single plain sequence
// given.
func (r Route) WithASPath(asns ...uint32) Route {
	r.ASPath = []ASPathSegment{{ASNs: append([]uint32(nil), asns...)}}
	return r
}

// WithCommunities returns a copy of r carrying exactly the given communities.
func (r Route) WithCommunities(comms ...string) Route {
	cs := make([]Community, len(comms))
	for i, s := range comms {
		cs[i] = MustParseCommunity(s)
	}
	r.Communities = cs
	return r
}

// FlatASPath returns the concatenated ASN sequence across segments.
func (r Route) FlatASPath() []uint32 {
	var out []uint32
	for _, seg := range r.ASPath {
		out = append(out, seg.ASNs...)
	}
	return out
}

// HasCommunity reports whether the route carries c.
func (r Route) HasCommunity(c Community) bool {
	for _, have := range r.Communities {
		if have == c {
			return true
		}
	}
	return false
}

// AddCommunity returns a copy of r carrying c (deduplicated, sorted order
// preserved by re-normalizing).
func (r Route) AddCommunity(c Community) Route {
	if r.HasCommunity(c) {
		return r
	}
	comms := append(append([]Community(nil), r.Communities...), c)
	sort.Slice(comms, func(i, j int) bool {
		if comms[i].Hi != comms[j].Hi {
			return comms[i].Hi < comms[j].Hi
		}
		return comms[i].Lo < comms[j].Lo
	})
	r.Communities = comms
	return r
}

// Clone returns a deep copy of r.
func (r Route) Clone() Route {
	out := r
	out.ASPath = make([]ASPathSegment, len(r.ASPath))
	for i, seg := range r.ASPath {
		out.ASPath[i] = ASPathSegment{
			ASNs:          append([]uint32(nil), seg.ASNs...),
			Confederation: seg.Confederation,
		}
	}
	out.Communities = append([]Community(nil), r.Communities...)
	return out
}

// Equal reports full attribute equality.
func (r Route) Equal(o Route) bool {
	if r.Network != o.Network || r.LocalPref != o.LocalPref || r.MED != o.MED ||
		r.NextHop != o.NextHop || r.Tag != o.Tag || r.Weight != o.Weight {
		return false
	}
	pa, pb := r.FlatASPath(), o.FlatASPath()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	if len(r.Communities) != len(o.Communities) {
		return false
	}
	for i := range r.Communities {
		if r.Communities[i] != o.Communities[i] {
			return false
		}
	}
	return true
}

// PathBoundaryString renders the AS path in the boundary-explicit form used
// by the regex engine: "^65001 65002$". An empty path renders as "^$".
func (r Route) PathBoundaryString() string {
	var sb strings.Builder
	sb.WriteByte('^')
	for i, asn := range r.FlatASPath() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatUint(uint64(asn), 10))
	}
	sb.WriteByte('$')
	return sb.String()
}

// BoundaryString renders a community in the boundary-explicit regex form.
func (c Community) BoundaryString() string { return "^" + c.String() + "$" }

// String renders the route in the multi-line format the paper's differential
// examples use.
func (r Route) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Network: %s\n", r.Network)
	path, _ := json.Marshal(r.ASPath)
	if r.ASPath == nil {
		path = []byte("[]")
	}
	fmt.Fprintf(&sb, "AS Path: %s\n", path)
	comms := make([]string, len(r.Communities))
	for i, c := range r.Communities {
		comms[i] = c.String()
	}
	cj, _ := json.Marshal(comms)
	fmt.Fprintf(&sb, "Communities: %s\n", cj)
	fmt.Fprintf(&sb, "Local Preference: %d\n", r.LocalPref)
	fmt.Fprintf(&sb, "Metric: %d\n", r.MED)
	fmt.Fprintf(&sb, "Next Hop IP: %s\n", r.NextHop)
	fmt.Fprintf(&sb, "Tag: %d\n", r.Tag)
	fmt.Fprintf(&sb, "Weight: %d", r.Weight)
	return sb.String()
}

// MarshalJSON renders the route with the paper's field names.
func (r Route) MarshalJSON() ([]byte, error) {
	comms := make([]string, len(r.Communities))
	for i, c := range r.Communities {
		comms[i] = c.String()
	}
	return json.Marshal(struct {
		Network     string          `json:"network"`
		ASPath      []ASPathSegment `json:"asPath"`
		Communities []string        `json:"communities"`
		LocalPref   uint32          `json:"localPreference"`
		Metric      uint32          `json:"metric"`
		NextHop     string          `json:"nextHopIp"`
		Tag         uint32          `json:"tag"`
		Weight      uint16          `json:"weight"`
	}{
		Network:     r.Network.String(),
		ASPath:      r.ASPath,
		Communities: comms,
		LocalPref:   r.LocalPref,
		Metric:      r.MED,
		NextHop:     r.NextHop.String(),
		Tag:         r.Tag,
		Weight:      r.Weight,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON, so routes survive a JSON
// round trip (the clarifyd wire format carries witness routes in
// disambiguation questions).
func (r *Route) UnmarshalJSON(data []byte) error {
	var in struct {
		Network     string          `json:"network"`
		ASPath      []ASPathSegment `json:"asPath"`
		Communities []string        `json:"communities"`
		LocalPref   uint32          `json:"localPreference"`
		Metric      uint32          `json:"metric"`
		NextHop     string          `json:"nextHopIp"`
		Tag         uint32          `json:"tag"`
		Weight      uint16          `json:"weight"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	network, err := netip.ParsePrefix(in.Network)
	if err != nil {
		return fmt.Errorf("route: network: %w", err)
	}
	nextHop, err := netip.ParseAddr(in.NextHop)
	if err != nil {
		return fmt.Errorf("route: next hop: %w", err)
	}
	comms := make([]Community, len(in.Communities))
	for i, s := range in.Communities {
		if comms[i], err = ParseCommunity(s); err != nil {
			return err
		}
	}
	if len(comms) == 0 {
		comms = nil
	}
	*r = Route{
		Network:     network,
		ASPath:      in.ASPath,
		Communities: comms,
		LocalPref:   in.LocalPref,
		MED:         in.Metric,
		NextHop:     nextHop,
		Tag:         in.Tag,
		Weight:      in.Weight,
	}
	return nil
}
