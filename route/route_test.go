package route

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCommunityParse(t *testing.T) {
	c, err := ParseCommunity("300:3")
	if err != nil || c.Hi != 300 || c.Lo != 3 {
		t.Fatalf("ParseCommunity: %v %v", c, err)
	}
	if c.String() != "300:3" {
		t.Errorf("String = %q", c.String())
	}
	for _, bad := range []string{"300", ":", "70000:1", "1:70000", "a:b", ""} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) should fail", bad)
		}
	}
}

func TestRouteBuilders(t *testing.T) {
	r := New("100.0.0.0/16").WithASPath(32).WithCommunities("300:3")
	if r.Network.String() != "100.0.0.0/16" {
		t.Errorf("network = %s", r.Network)
	}
	if r.LocalPref != 100 {
		t.Errorf("default localpref = %d", r.LocalPref)
	}
	if !r.HasCommunity(MustParseCommunity("300:3")) || r.HasCommunity(MustParseCommunity("1:1")) {
		t.Error("HasCommunity wrong")
	}
	flat := r.FlatASPath()
	if len(flat) != 1 || flat[0] != 32 {
		t.Errorf("FlatASPath = %v", flat)
	}
}

func TestNewMasksHostBits(t *testing.T) {
	r := New("10.1.2.3/8")
	if r.Network.String() != "10.0.0.0/8" {
		t.Errorf("network not masked: %s", r.Network)
	}
}

func TestAddCommunity(t *testing.T) {
	r := New("10.0.0.0/8").WithCommunities("300:3")
	r2 := r.AddCommunity(MustParseCommunity("100:1"))
	if len(r.Communities) != 1 {
		t.Error("AddCommunity mutated receiver")
	}
	if len(r2.Communities) != 2 || r2.Communities[0].String() != "100:1" {
		t.Errorf("AddCommunity result = %v", r2.Communities)
	}
	if got := r2.AddCommunity(MustParseCommunity("100:1")); len(got.Communities) != 2 {
		t.Error("duplicate community added")
	}
}

func TestPathBoundaryString(t *testing.T) {
	r := New("10.0.0.0/8")
	if got := r.PathBoundaryString(); got != "^$" {
		t.Errorf("empty path = %q", got)
	}
	r = r.WithASPath(32, 54)
	if got := r.PathBoundaryString(); got != "^32 54$" {
		t.Errorf("path = %q", got)
	}
	c := MustParseCommunity("300:3")
	if c.BoundaryString() != "^300:3$" {
		t.Errorf("community boundary = %q", c.BoundaryString())
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New("10.0.0.0/8").WithASPath(1, 2).WithCommunities("9:9")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.ASPath[0].ASNs[0] = 7
	if a.FlatASPath()[0] == 7 {
		t.Error("clone shares path storage")
	}
	if a.Equal(b) {
		t.Error("Equal ignores path")
	}
	c := a.Clone()
	c.MED = 55
	if a.Equal(c) {
		t.Error("Equal ignores MED")
	}
}

func TestStringFormat(t *testing.T) {
	// Matches the shape of the paper's differential example output.
	r := New("100.0.0.0/16").WithASPath(32).WithCommunities("300:3")
	s := r.String()
	for _, want := range []string{
		"Network: 100.0.0.0/16",
		`"asns":[32]`,
		`Communities: ["300:3"]`,
		"Local Preference: 100",
		"Metric: 0",
		"Next Hop IP: 0.0.0.1",
		"Tag: 0",
		"Weight: 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestMarshalJSON(t *testing.T) {
	r := New("100.0.0.0/16").WithASPath(32).WithCommunities("300:3")
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["network"] != "100.0.0.0/16" || m["localPreference"] != float64(100) {
		t.Errorf("marshal = %s", b)
	}
}
