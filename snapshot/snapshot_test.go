package snapshot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/clarifynet/clarify"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	return &File{
		Time: time.Unix(1700000000, 42).UTC(),
		Node: "127.0.0.1:8080",
		Sessions: []*Session{{
			ID:          "s1-abcd",
			CapturedAt:  time.Unix(1700000000, 0).UTC(),
			Node:        "127.0.0.1:8080",
			ConfigText:  "route-map RM permit 10\n match ip address prefix-list PL\n!",
			Fingerprint: "deadbeef",
			Stats:       clarify.Stats{LLMCalls: 3, Updates: 1},
			NextUpdate:  2,
			Order:       []string{"u1", "u2"},
			Updates: []UpdateRecord{{
				ID: "u1", Status: "done",
				Result: json.RawMessage(`{"kind":"route-map","attempts":1}`),
			}},
			Pending: &PendingUpdate{
				ID: "u2", Intent: "permit 10.0.0.0/8", Target: "RM",
				Answers:  []Answer{{Kind: "route-map", PreferNew: true}},
				Question: &Question{Seq: 2, Kind: "route-map", Text: "OPTION 1 ..."},
			},
		}},
	}
}

func TestWriteLoadConsumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleFile(t)
	path, err := Write(dir, want)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded) != 1 || loaded[0].Err != nil {
		t.Fatalf("Load = %+v, want one clean file", loaded)
	}
	if loaded[0].Path != path {
		t.Fatalf("path = %q, want %q", loaded[0].Path, path)
	}
	got := loaded[0].File
	if got.Schema != SchemaVersion {
		t.Fatalf("file schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if len(got.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(got.Sessions))
	}
	s := got.Sessions[0]
	if s.Schema != SchemaVersion {
		t.Fatalf("session schema = %d, want %d", s.Schema, SchemaVersion)
	}
	if s.ID != "s1-abcd" || s.NextUpdate != 2 || len(s.Order) != 2 {
		t.Fatalf("session round trip mangled: %+v", s)
	}
	if s.Pending == nil || s.Pending.ID != "u2" || len(s.Pending.Answers) != 1 || !s.Pending.Answers[0].PreferNew {
		t.Fatalf("pending round trip mangled: %+v", s.Pending)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	if err := Consume(path); err != nil {
		t.Fatalf("Consume: %v", err)
	}
	loaded, err = Load(dir)
	if err != nil {
		t.Fatalf("Load after consume: %v", err)
	}
	if len(loaded) != 0 {
		t.Fatalf("consumed file still loaded: %+v", loaded)
	}
	if _, err := os.Stat(path + consumedMark); err != nil {
		t.Fatalf("consumed file not preserved: %v", err)
	}
}

func TestLoadOrdersOldestFirstAndSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	newer := sampleFile(t)
	newer.Time = time.Unix(1700000100, 0)
	if _, err := Write(dir, newer); err != nil {
		t.Fatalf("Write newer: %v", err)
	}
	older := sampleFile(t)
	older.Time = time.Unix(1700000000, 0)
	if _, err := Write(dir, older); err != nil {
		t.Fatalf("Write older: %v", err)
	}
	garbage := filepath.Join(dir, filePrefix+"1699999999"+fileSuffix)
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d files, want 3", len(loaded))
	}
	if loaded[0].Err == nil {
		t.Fatal("garbage file loaded without error")
	}
	if loaded[1].File == nil || loaded[2].File == nil {
		t.Fatalf("clean files not decoded: %+v", loaded)
	}
	if !loaded[1].File.Time.Before(loaded[2].File.Time) {
		t.Fatalf("files out of order: %v then %v", loaded[1].File.Time, loaded[2].File.Time)
	}
}

func TestLoadSkipsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	future := `{"schema":99,"time":"2026-01-01T00:00:00Z","sessions":[]}`
	path := filepath.Join(dir, filePrefix+"42"+fileSuffix)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded) != 1 || loaded[0].Err == nil {
		t.Fatalf("newer-schema file should surface an error: %+v", loaded)
	}
	if !strings.Contains(loaded[0].Err.Error(), "schema 99") {
		t.Fatalf("error should name the schema: %v", loaded[0].Err)
	}
	// The file must stay on disk for a newer daemon.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("newer-schema file was touched: %v", err)
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	loaded, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(loaded) != 0 {
		t.Fatalf("Load(missing) = %v, %v; want empty, nil", loaded, err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Session)
		want string
	}{
		{"newer schema", func(s *Session) { s.Schema = SchemaVersion + 1 }, "newer than supported"},
		{"no id", func(s *Session) { s.ID = "" }, "no ID"},
		{"no config", func(s *Session) { s.ConfigText = "  \n" }, "no configuration"},
		{"pending no id", func(s *Session) { s.Pending = &PendingUpdate{Intent: "i", Target: "t"} }, "no ID"},
		{"pending no intent", func(s *Session) { s.Pending = &PendingUpdate{ID: "u2"} }, "no intent"},
	}
	for _, tc := range cases {
		s := sampleFile(t).Sessions[0]
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := sampleFile(t).Sessions[0].Validate(); err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
}
