// Package snapshot externalizes hosted-session state so a clarifyd can hand
// its sessions to a successor: either a schema-versioned JSON file in a
// snapshot directory (picked up by the next process on the same host) or a
// peer replica via PUT /v1/sessions/{id}/restore (live handoff behind the
// balancer).
//
// A snapshot carries everything the serving layer needs to resurrect the
// session byte-identically: the printed base configuration and its symbolic
// fingerprint, the update history in submission order, cumulative pipeline
// counters, and — the part that makes rolling restarts invisible — the
// pending update's intent plus the transcript of answers delivered so far.
// The pipeline is deterministic given the same config, intent, and answers
// (the replay package proves this), so the restoring daemon re-executes the
// parked update, auto-answering the recorded prefix; the pipeline re-parks
// on the same question with the same sequence number, and the client's next
// poll cannot tell a handoff happened.
package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/clarifynet/clarify"
)

// SchemaVersion is stamped on every snapshot file and session so future
// readers can migrate — or refuse — old and new formats explicitly. A loader
// skips files (and a restoring server rejects sessions) whose schema is
// newer than it understands.
const SchemaVersion = 1

// Answer is one disambiguation answer already delivered to the pending
// update, in question order. Restore replays these against the re-executed
// pipeline; Kind guards against divergence.
type Answer struct {
	// Kind is "route-map" or "acl".
	Kind string `json:"kind"`
	// Question is the rendered question text, kept for audit and divergence
	// diagnostics; replay matches on order and Kind, not text.
	Question string `json:"question,omitempty"`
	// PreferNew is true when the operator chose OPTION 1.
	PreferNew bool `json:"preferNew"`
}

// Question is the question the pending update was parked on at capture
// time, recorded for diagnostics: after restore the re-executed pipeline
// re-derives it, and the restored question must match this one.
type Question struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// PendingUpdate is an update that had not finished when the snapshot was
// taken — typically parked on an unanswered question. The restoring daemon
// re-executes it from the session's base config, replaying Answers, and
// re-parks under the same update ID.
type PendingUpdate struct {
	// ID is the update's serving ID ("u3"); the restored update keeps it so
	// clients polling it never notice the handoff.
	ID string `json:"id"`
	// Intent and Target are the original Submit inputs.
	Intent string `json:"intent"`
	Target string `json:"target"`
	// TraceParent is the update's propagated W3C trace context, serialized
	// in traceparent header form, so the re-executed update keeps the fleet
	// trace ID it was submitted under. Empty when the original submission
	// carried no context; kept opaque here so the snapshot package does not
	// depend on the obs wire types.
	TraceParent string `json:"traceParent,omitempty"`
	// Answers is the transcript of answers delivered before capture.
	Answers []Answer `json:"answers,omitempty"`
	// Question is the question displayed at capture time, if any.
	Question *Question `json:"question,omitempty"`
}

// UpdateRecord is one finished update's poll view, preserved so GET
// /v1/sessions/{id}/updates/{uid} keeps answering for pre-handoff history.
type UpdateRecord struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	TraceID  string `json:"traceId,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Result is the marshalled server.UpdateResultInfo, kept opaque here so
	// the snapshot package does not depend on the server wire types.
	Result json.RawMessage `json:"result,omitempty"`
}

// Session is one externalized hosted session.
type Session struct {
	// Schema is the session format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// ID is the serving session ID; restore preserves it.
	ID string `json:"id"`
	// CapturedAt is when the snapshot was taken.
	CapturedAt time.Time `json:"capturedAt"`
	// Node names the daemon that captured the session (its listen address);
	// affinity metadata for the balancer and for debugging handoffs.
	Node string `json:"node,omitempty"`
	// Tenant is the admission principal the session was created under;
	// restore re-binds the session to the same tenant's quotas and fair
	// share on the successor. Empty means the default tenant (pre-tenancy
	// snapshots restore unchanged).
	Tenant string `json:"tenant,omitempty"`
	// ConfigText is the printed current configuration.
	ConfigText string `json:"configText"`
	// Fingerprint is the symbolic.SpaceCache content fingerprint of
	// ConfigText; restore recomputes it and refuses a mismatch.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Session knobs.
	MaxAttempts      int  `json:"maxAttempts,omitempty"`
	EnableReuse      bool `json:"enableReuse,omitempty"`
	SkipVerification bool `json:"skipVerification,omitempty"`
	// Stats are the session's cumulative pipeline counters.
	Stats clarify.Stats `json:"stats"`
	// IdleSeconds is how long the session had been idle at capture. The
	// restoring daemon starts a fresh idle clock regardless — a restored
	// session must never materialize already past the janitor's cutoff.
	IdleSeconds float64 `json:"idleSeconds,omitempty"`
	// NextUpdate seeds the update-ID counter so post-restore submissions
	// continue the sequence ("u4" after a restored "u3").
	NextUpdate int `json:"nextUpdate"`
	// Order is every update ID in submission order.
	Order []string `json:"order,omitempty"`
	// Updates is the finished-update history.
	Updates []UpdateRecord `json:"updates,omitempty"`
	// Pending is the in-flight update, if the session had one.
	Pending *PendingUpdate `json:"pending,omitempty"`
}

// Validate reports structural problems a restoring server must reject
// before touching its session table.
func (s *Session) Validate() error {
	if s.Schema > SchemaVersion {
		return fmt.Errorf("snapshot: session %q has schema %d, newer than supported %d", s.ID, s.Schema, SchemaVersion)
	}
	if s.ID == "" {
		return fmt.Errorf("snapshot: session has no ID")
	}
	if strings.TrimSpace(s.ConfigText) == "" {
		return fmt.Errorf("snapshot: session %q has no configuration text", s.ID)
	}
	if s.Pending != nil {
		if s.Pending.ID == "" {
			return fmt.Errorf("snapshot: session %q pending update has no ID", s.ID)
		}
		if s.Pending.Intent == "" || s.Pending.Target == "" {
			return fmt.Errorf("snapshot: session %q pending update %q has no intent/target", s.ID, s.Pending.ID)
		}
	}
	return nil
}

// File is one snapshot file: every session a draining daemon could not hand
// off live.
type File struct {
	// Schema is the file format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Time is when the file was written.
	Time time.Time `json:"time"`
	// Node names the daemon that wrote the file.
	Node string `json:"node,omitempty"`
	// Sessions are the captured sessions.
	Sessions []*Session `json:"sessions"`
}

const (
	filePrefix   = "sessions-"
	fileSuffix   = ".json"
	consumedMark = ".restored"
)

// Write atomically persists f into dir (created if missing) and returns the
// file's path. The write goes to a temp file first and is renamed into
// place, so a reader never sees a torn snapshot.
func Write(dir string, f *File) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: create dir: %w", err)
	}
	f.Schema = SchemaVersion
	for _, s := range f.Sessions {
		s.Schema = SchemaVersion
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", fmt.Errorf("snapshot: marshal: %w", err)
	}
	name := fmt.Sprintf("%s%d%s", filePrefix, f.Time.UnixNano(), fileSuffix)
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("snapshot: create temp: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("snapshot: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("snapshot: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("snapshot: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("snapshot: rename: %w", err)
	}
	return path, nil
}

// Loaded is one snapshot file found by Load. Err is set when the file could
// not be decoded or carries a schema newer than this build understands; such
// files are left on disk untouched (a newer daemon may pick them up).
type Loaded struct {
	Path string
	File *File
	Err  error
}

// Load reads every unconsumed snapshot file in dir, oldest first. A missing
// directory is an empty result, not an error.
func Load(dir string) ([]Loaded, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: read dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths) // sessions-<unixnano> sorts chronologically
	out := make([]Loaded, 0, len(paths))
	for _, p := range paths {
		l := Loaded{Path: p}
		data, err := os.ReadFile(p)
		if err != nil {
			l.Err = fmt.Errorf("snapshot: read %s: %w", p, err)
			out = append(out, l)
			continue
		}
		f := new(File)
		if err := json.Unmarshal(data, f); err != nil {
			l.Err = fmt.Errorf("snapshot: decode %s: %w", p, err)
			out = append(out, l)
			continue
		}
		if f.Schema > SchemaVersion {
			l.Err = fmt.Errorf("snapshot: %s has schema %d, newer than supported %d", p, f.Schema, SchemaVersion)
			out = append(out, l)
			continue
		}
		l.File = f
		out = append(out, l)
	}
	return out, nil
}

// Consume marks a snapshot file as restored by renaming it with a
// ".restored" suffix, so a crash between restore and consume replays the
// snapshot (restores are idempotent: an existing session ID is a conflict,
// not a duplicate) rather than losing it.
func Consume(path string) error {
	if err := os.Rename(path, path+consumedMark); err != nil {
		return fmt.Errorf("snapshot: consume: %w", err)
	}
	return nil
}
