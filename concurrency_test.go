package clarify

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/symbolic"
)

func mustEquivalentMaps(t *testing.T, a, b *ios.Config, mapName string) {
	t.Helper()
	space, err := symbolic.NewRouteSpace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := analysis.EquivalentRouteMaps(space, a, a.RouteMaps[mapName], b, b.RouteMaps[mapName])
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("configurations not equivalent:\n--- a ---\n%s\n--- b ---\n%s", a.Print(), b.Print())
	}
}

// TestConcurrentSubmits drives one session from two goroutines (run under
// -race): Submit must work against a config snapshot and install its result
// under the session mutex, so neither call observes a torn config and the
// counters add up. Regression test for the unguarded Session.Config access.
func TestConcurrentSubmits(t *testing.T) {
	s := &Session{
		Client:      llm.NewSimLLM(),
		Config:      ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(q disambig.RouteQuestion) (bool, error) { return true, nil }),
		SpaceCache:  symbolic.NewSpaceCache(),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Updates != 2 {
		t.Errorf("updates = %d, want 2", st.Updates)
	}
	// Last writer wins: the final config holds at least one insertion.
	final := s.CurrentConfig()
	if n := len(final.RouteMaps["ISP_OUT"].Stanzas); n < 4 {
		t.Errorf("final map has %d stanzas, want >= 4", n)
	}
}

// TestConcurrentSessionsSharedCache runs separate sessions over one shared
// SpaceCache (run under -race), the daemon's configuration.
func TestConcurrentSessionsSharedCache(t *testing.T) {
	cache := symbolic.NewSpaceCache()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &Session{
				Client:      llm.NewSimLLM(),
				Config:      ios.MustParse(paperISPOut),
				RouteOracle: disambig.FuncRouteOracle(func(q disambig.RouteQuestion) (bool, error) { return true, nil }),
				SpaceCache:  cache,
			}
			if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("shared cache was never consulted")
	}
}

// garbageClassifier answers every request with text that is not a valid
// intent kind.
type garbageClassifier struct{}

func (garbageClassifier) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{Content: "  poetry \n"}, nil
}

// TestClassifierGarbage pins the error path when the classifier returns
// neither "acl" nor "route-map": the message must quote the (trimmed)
// classifier output.
func TestClassifierGarbage(t *testing.T) {
	s := &Session{
		Client: garbageClassifier{},
		Config: ios.MustParse(paperISPOut),
	}
	_, err := s.Submit(context.Background(), "do something", "ISP_OUT")
	if err == nil {
		t.Fatal("expected an error for unclassifiable intent")
	}
	if !strings.Contains(err.Error(), `"poetry"`) {
		t.Errorf("error %q does not quote the trimmed classifier output", err)
	}
}

// TestCachedSessionMatchesUncached: the same walkthrough with and without a
// SpaceCache must yield semantically identical configurations and identical
// question counts.
func TestCachedSessionMatchesUncached(t *testing.T) {
	run := func(cache *symbolic.SpaceCache) *UpdateResult {
		t.Helper()
		s := newPaperSession(t, llm.NewSimLLM())
		s.SpaceCache = cache
		res, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	cache := symbolic.NewSpaceCache()
	warm := run(cache)   // populates
	cached := run(cache) // hits
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("second cached run produced no hits: %+v", st)
	}
	for _, res := range []*UpdateResult{warm, cached} {
		if res.RouteInsert.Position != plain.RouteInsert.Position {
			t.Errorf("position %d (cached) vs %d (plain)", res.RouteInsert.Position, plain.RouteInsert.Position)
		}
		if len(res.RouteInsert.Questions) != len(plain.RouteInsert.Questions) {
			t.Errorf("questions %d (cached) vs %d (plain)", len(res.RouteInsert.Questions), len(plain.RouteInsert.Questions))
		}
		mustEquivalentMaps(t, res.Config, plain.Config, "ISP_OUT")
	}
}
